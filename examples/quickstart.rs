//! Quickstart: mine dependencies from a hand-built log stream.
//!
//! Builds a miniature log store by hand — two interacting applications
//! plus an independent one, with session context and free text — and
//! runs all three techniques of the paper on it.
//!
//! ```text
//! cargo run --release -p logdep-examples --example quickstart
//! ```

use logdep::l1::{direction_test, L1Config};
use logdep::l2::{run_l2, L2Config};
use logdep::l3::{run_l3, L3Config};
use logdep_logstore::time::{TimeRange, MS_PER_HOUR};
use logdep_logstore::{LogRecord, LogStore, Millis};
use logdep_stats::sampling::Sampler;

fn main() {
    // --- 1. Assemble a log store. In production this would come from
    // your centralized logging system (see logdep_logstore::codec for
    // the TSV ingestion path).
    let mut store = LogStore::new();
    let frontend = store.registry.source("Frontend");
    let reports = store.registry.source("ReportService");
    let billing = store.registry.source("BillingService");
    let cron = store.registry.source("CronDaemon");
    let alice = store.registry.user("alice");
    let bob = store.registry.user("bob");
    let ws1 = store.registry.host("ws-001");
    let ws2 = store.registry.host("ws-002");

    for k in 0..400i64 {
        let t = k * 9_000; // a request every 9 seconds
        let (user, ws) = if k % 2 == 0 { (alice, ws1) } else { (bob, ws2) };
        // The front end logs the invocation, citing the directory id...
        store.push(
            LogRecord::minimal(frontend, Millis(t))
                .with_user(user)
                .with_host(ws)
                .with_text("(REPORTS) render( $patient )"),
        );
        // ...and the service logs shortly after, within the session.
        store.push(
            LogRecord::minimal(reports, Millis(t + 120))
                .with_user(user)
                .with_host(ws)
                .with_text("handled render in 87 ms"),
        );
        // Every third request also fetches an invoice.
        if k % 3 == 0 {
            store.push(
                LogRecord::minimal(frontend, Millis(t + 300))
                    .with_user(user)
                    .with_host(ws)
                    .with_text("(BILLING) invoice( $patient )"),
            );
            store.push(
                LogRecord::minimal(billing, Millis(t + 410))
                    .with_user(user)
                    .with_host(ws)
                    .with_text("invoice rendered"),
            );
        }
        // An unrelated daemon ticks on its own schedule.
        store.push(LogRecord::minimal(cron, Millis(t * 7 % 3_600_000)).with_text("tick"));
    }
    store.finalize();
    let hour = TimeRange::new(Millis(0), Millis(MS_PER_HOUR));

    // --- 2. Technique L1: activity correlation (timestamps only).
    let l1cfg = L1Config {
        minlogs: 50,
        ..L1Config::default()
    };
    let mut sampler = Sampler::from_seed(1);
    let outcome = direction_test(
        store.timeline(frontend),
        store.timeline(reports),
        hour,
        &l1cfg,
        &mut sampler,
    )
    .expect("enough data");
    println!(
        "L1: ReportService attracted to Frontend? {} (median dist {:.0} ms vs random {:.0} ms)",
        outcome.positive, outcome.sample_b.center, outcome.sample_r.center
    );

    // --- 3. Technique L2: session co-occurrence.
    let l2 = run_l2(&store, hour, &L2Config::default()).expect("L2 runs");
    println!(
        "L2: {} sessions, {} bigrams, detected pairs:",
        l2.session_stats.n_sessions, l2.bigrams.total
    );
    for (a, b) in l2.detected.iter() {
        println!(
            "     {} <-> {}",
            store.registry.source_name(a),
            store.registry.source_name(b)
        );
    }

    // --- 4. Technique L3: directory citations in free text.
    let directory_ids = vec!["REPORTS".to_owned(), "BILLING".to_owned()];
    // (BILLING is cited too: the quickstart model has two services.)
    let l3 = run_l3(&store, hour, &directory_ids, &L3Config::default()).expect("L3 runs");
    println!("L3: detected app -> service dependencies:");
    for (app, svc) in l3.detected.iter() {
        println!(
            "     {} -> {}",
            store.registry.source_name(app),
            directory_ids[svc]
        );
    }

    assert!(outcome.positive, "L1 should flag the interacting pair");
    assert!(l2.detected.contains(frontend, reports));
    assert!(l3.detected.contains(frontend, 0));
    println!("\nall three techniques agree: Frontend depends on ReportService/REPORTS");
}
