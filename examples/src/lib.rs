//! Example applications for the `logdep` workspace.
//!
//! This crate exists to host the runnable examples; the library itself
//! is intentionally empty. Run them with e.g.
//!
//! ```text
//! cargo run --release -p logdep-examples --example quickstart
//! cargo run --release -p logdep-examples --example hospital_week
//! cargo run --release -p logdep-examples --example banking_sessions
//! cargo run --release -p logdep-examples --example soa_directory
//! ```
