//! Mapping the *moving* landscape: week-over-week change detection.
//!
//! The paper's title problem is that manual models rot because the
//! landscape keeps moving. This example simulates two consecutive
//! weeks of the same hospital — with the topology evolving in between
//! (services rewired, new integrations added) — mines both weeks with
//! technique L3, and reports exactly what changed, checked against the
//! known mutations.
//!
//! ```text
//! cargo run --release -p logdep-examples --example moving_landscape
//! ```

use logdep::evolution::app_service_churn;
use logdep::l3::{run_l3, L3Config};
use logdep::AppServiceModel;
use logdep_logstore::time::TimeRange;
use logdep_logstore::Millis;
use logdep_sim::textgen::standard_stop_patterns;
use logdep_sim::topology::Topology;
use logdep_sim::{simulate_with, NoiseConfig, SimConfig, TopologyConfig};

const ADDED: usize = 9;
const REMOVED: usize = 6;

fn mine(out: &logdep_sim::SimOutput, ids: &[String]) -> AppServiceModel {
    run_l3(
        &out.store,
        TimeRange::new(Millis(0), Millis::from_days(4)),
        ids,
        &L3Config::with_stop_patterns(standard_stop_patterns()),
    )
    .expect("L3 runs")
    .detected
}

fn main() {
    let mut cfg = SimConfig::paper_week(23, 0.2);
    cfg.days = 3;

    // Week 1: the original landscape.
    let topo1 = Topology::generate(
        &TopologyConfig::hug_like(),
        &NoiseConfig::paper_taxonomy(),
        cfg.seed,
    );
    let week1 = simulate_with(&cfg, topo1.clone());
    let ids: Vec<String> = week1
        .directory
        .ids()
        .iter()
        .map(|s| s.to_string())
        .collect();

    // Between the weeks, the landscape moves: new integrations appear,
    // old ones are decommissioned.
    let topo2 = topo1.evolve(ADDED, REMOVED, 1234);
    cfg.seed += 1; // different traffic, same workload shape
    let week2 = simulate_with(&cfg, topo2.clone());

    let model1 = mine(&week1, &ids);
    let model2 = mine(&week2, &ids);
    let churn = app_service_churn(&model1, &model2);

    println!(
        "week 1 model: {} dependencies; week 2 model: {} dependencies",
        model1.len(),
        model2.len()
    );
    println!(
        "churn: {} appeared, {} disappeared, {} stable (stability {:.2})\n",
        churn.appeared.len(),
        churn.disappeared.len(),
        churn.stable.len(),
        churn.stability()
    );

    // Check against the known mutations: which of the truly added
    // edges were flagged as "appeared"?
    let truly_added: Vec<(String, String)> = topo2
        .app_service_pairs()
        .into_iter()
        .filter(|p| !topo1.app_service_pairs().contains(p))
        .map(|(a, s)| (topo2.apps[a].name.clone(), topo2.services[s].id.clone()))
        .collect();
    let appeared_names: Vec<(String, String)> = churn
        .appeared
        .iter()
        .map(|&(app, svc)| {
            (
                week2.store.registry.source_name(app).to_owned(),
                ids[svc].clone(),
            )
        })
        .collect();
    let caught = truly_added
        .iter()
        .filter(|p| appeared_names.contains(p))
        .count();
    println!(
        "of the {} dependencies really added between the weeks, the miner surfaced {}",
        truly_added.len(),
        caught
    );
    println!("\nexamples of surfaced changes:");
    for (app, svc) in appeared_names.iter().take(4) {
        println!("  + {app} -> {svc}");
    }
    for &(app, svc) in churn.disappeared.iter().take(3) {
        println!(
            "  - {} -> {}",
            week1.store.registry.source_name(app),
            ids[svc]
        );
    }
    assert!(
        caught * 2 >= truly_added.len(),
        "the miner should surface most of the real changes"
    );
}
