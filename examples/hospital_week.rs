//! The paper's pipeline end-to-end: simulate a hospital week, mine it
//! with all three techniques, and score against the ground truth.
//!
//! This is the workload of the paper's case study (§4) at a reduced
//! scale so it finishes in seconds:
//!
//! ```text
//! cargo run --release -p logdep-examples --example hospital_week
//! ```

use logdep::eval::{l1_daily, l2_daily, l3_daily};
use logdep::l1::L1Config;
use logdep::l2::L2Config;
use logdep::l3::L3Config;
use logdep::{AppServiceModel, PairModel};
use logdep_sim::textgen::standard_stop_patterns;
use logdep_sim::{simulate, SimConfig};

fn main() {
    // A quarter-scale week keeps this example fast.
    let days = 7;
    let out = simulate(&SimConfig::paper_week(7, 0.25));
    println!(
        "simulated {} logs over {days} days; {} apps, {} directory entries, {} true pairs",
        out.store.len(),
        out.truth.app_names.len(),
        out.truth.service_ids.len(),
        out.truth.n_app_pairs()
    );

    // Resolve the ground truth against the store's registry.
    let pair_ref = PairModel::from_names(
        &out.store.registry,
        out.truth
            .app_pairs
            .iter()
            .map(|(a, b)| (a.as_str(), b.as_str())),
    )
    .expect("names resolve");
    let ids: Vec<String> = out.directory.ids().iter().map(|s| s.to_string()).collect();
    let svc_ref = AppServiceModel::from_names(
        &out.store.registry,
        &ids,
        out.truth
            .app_service
            .iter()
            .map(|(a, s)| (a.as_str(), s.as_str())),
    )
    .expect("ids resolve");

    // L3 — the precise technique.
    let l3cfg = L3Config::with_stop_patterns(standard_stop_patterns());
    let s3 = l3_daily(&out.store, days, &ids, &l3cfg, &svc_ref).expect("L3");
    println!("\nL3 per day (tp/fp):");
    for d in &s3.days {
        println!("  day {}: {}/{} (tpr {:.2})", d.day, d.tp, d.fp, d.tpr);
    }

    // L2 — session co-occurrence.
    let s2 = l2_daily(&out.store, days, &L2Config::default(), &pair_ref).expect("L2");
    println!("L2 per day (tp/fp):");
    for d in &s2.days {
        println!("  day {}: {}/{} (tpr {:.2})", d.day, d.tp, d.fp, d.tpr);
    }

    // L1 — activity correlation (minlogs scaled for the smaller volume).
    let l1cfg = L1Config {
        minlogs: 10,
        seed: 3,
        ..L1Config::default()
    };
    let sources = out.store.active_sources();
    let s1 = l1_daily(&out.store, days, &sources, &l1cfg, &pair_ref).expect("L1");
    println!("L1 per day (tp/fp):");
    for d in &s1.days {
        println!("  day {}: {}/{} (tpr {:.2})", d.day, d.tp, d.fp, d.tpr);
    }

    // The paper's ordering: precision grows with the semantic content
    // used (L3 ≥ L2, and L1 trades recall for breadth of applicability).
    let tpr = |s: &logdep::eval::DailySeries| {
        let v = s.tpr_values();
        v.iter().sum::<f64>() / v.len() as f64
    };
    println!(
        "\nmean precision: L3 {:.2} ≥ L2 {:.2}; L1 recall is lowest by design",
        tpr(&s3),
        tpr(&s2)
    );
}
