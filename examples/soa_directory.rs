//! Technique L3 against a service-directory document, with log
//! persistence: the "operations" workflow of the paper's HUG solution.
//!
//! Demonstrates the full external interface: parse the directory XML,
//! ingest a TSV log file, scan for citations with stop patterns, and
//! print the resulting dependency model — exactly what a deployment
//! would run nightly.
//!
//! ```text
//! cargo run --release -p logdep-examples --example soa_directory
//! ```

use logdep::l3::{run_l3, L3Config};
use logdep_logstore::codec::{read_store, write_store};
use logdep_logstore::time::TimeRange;
use logdep_logstore::Millis;
use logdep_sim::ServiceDirectory;

const DIRECTORY_XML: &str = r#"<serviceDirectory>
  <group id="DPINOTIFICATION" url="http://srv01.hcuge.ch:9999/dpinotification" replicated="true"/>
  <group id="DPIPUBLICATION" url="http://srv02.hcuge.ch:9999/dpipublication" replicated="false"/>
  <group id="LABRESULTS" url="http://srv03.hcuge.ch:9999/labresults" replicated="false"/>
</serviceDirectory>"#;

const LOG_TSV: &str = "\
1000\t1002\tDPIFormidoc\t-\t-\tINF\tInvoke externalService [fct [notify] server [srv01.hcuge.ch:9999/dpinotification]]\n\
1100\t1104\tDPINotifyCore\t-\t-\tINF\tServing request [fct [notify] group [DPINOTIFICATION]] for DPIFormidoc\n\
2000\t2001\tDPIFormidoc\t-\t-\tINF\t(DPIPUBLICATION) publish( $doc )\n\
3000\t3003\tDPIViewer\t-\t-\tINF\tcalling LABRESULTS.fetch for record 4711\n\
4000\t4002\tDPIViewer\t-\t-\tINF\topened record for patient Mrs DPINOTIFICATION (dob 3.7.1951)\n\
5000\t5001\tDPIBatch\t-\t-\tDBG\theartbeat ok seq=99\n";

fn main() {
    // 1. The service directory, as the XML document HUG publishes.
    let directory = ServiceDirectory::from_xml(DIRECTORY_XML).expect("directory parses");
    let ids: Vec<String> = directory.ids().iter().map(|s| s.to_string()).collect();
    println!("directory: {} groups: {:?}", directory.len(), ids);

    // 2. Ingest the TSV log export (round-tripped through the codec to
    // show both directions).
    let (store, errors) = read_store(LOG_TSV.as_bytes()).expect("logs parse");
    assert!(errors.is_empty(), "malformed lines: {errors:?}");
    let mut buf = Vec::new();
    write_store(&mut buf, &store).expect("logs re-serialize");
    println!(
        "ingested {} logs ({} bytes round-tripped)\n",
        store.len(),
        buf.len()
    );

    let range = TimeRange::new(Millis(0), Millis(10_000));

    // 3. Naive scan — no stop patterns: the server-side log of
    // DPINotifyCore inverts a dependency, and the patient whose name
    // matches a service id creates a coincidence (§4.8).
    let naive = run_l3(&store, range, &ids, &L3Config::default()).expect("L3 naive");
    println!("without stop patterns:");
    for (app, svc) in naive.detected.iter() {
        println!("  {} -> {}", store.registry.source_name(app), ids[svc]);
    }

    // 4. Production scan with stop patterns.
    let cfg = L3Config::with_stop_patterns(["serving request*"]);
    let res = run_l3(&store, range, &ids, &cfg).expect("L3 runs");
    println!("\nwith stop patterns ({} logs stopped):", res.stopped_logs);
    for (app, svc) in res.detected.iter() {
        println!("  {} -> {}", store.registry.source_name(app), ids[svc]);
    }

    let formidoc = store
        .registry
        .find_source("DPIFormidoc")
        .expect("known app");
    let core = store
        .registry
        .find_source("DPINotifyCore")
        .expect("known app");
    assert!(res.detected.contains(formidoc, 0));
    assert!(res.detected.contains(formidoc, 1));
    assert!(
        !res.detected.contains(core, 0),
        "server-side citation must be stopped"
    );
    println!(
        "\nnote the surviving coincidence (DPIViewer -> DPINOTIFICATION from a patient \
         name): §4.8's coincidence category — stop patterns cannot remove it, only more context can"
    );
}
