//! What the dependency model is *for*: root-cause analysis and impact
//! prediction (§1.1 of the paper).
//!
//! Mines the model with technique L3, builds the dependency graph, and
//! answers the operator questions the paper opens with: which
//! components does a degradation reach, which single component best
//! explains a set of simultaneous symptoms, and whose availability
//! matters most.
//!
//! ```text
//! cargo run --release -p logdep-examples --example root_cause
//! ```

use logdep::graph::DependencyGraph;
use logdep::l3::{run_l3, L3Config};
use logdep_logstore::time::TimeRange;
use logdep_sim::textgen::standard_stop_patterns;
use logdep_sim::{simulate, SimConfig};

fn main() {
    // Mine the model from one simulated day.
    let mut cfg = SimConfig::paper_week(31, 0.2);
    cfg.days = 1;
    let out = simulate(&cfg);
    let ids: Vec<String> = out.directory.ids().iter().map(|s| s.to_string()).collect();
    let res = run_l3(
        &out.store,
        TimeRange::day(0),
        &ids,
        &L3Config::with_stop_patterns(standard_stop_patterns()),
    )
    .expect("L3 runs");

    // Service index → owner application, from operational knowledge
    // (the simulator's topology plays that role here).
    let owners: Vec<_> = out
        .topology
        .services
        .iter()
        .map(|s| {
            out.store
                .registry
                .find_source(&out.topology.apps[s.owner].name)
                .expect("owner registered")
        })
        .collect();
    let graph = DependencyGraph::from_app_service(&res.detected, &owners);
    let name = |id| out.store.registry.source_name(id);
    println!(
        "mined graph: {} applications, {} directed dependencies\n",
        graph.nodes().count(),
        graph.n_edges()
    );

    // 1. Availability criticality: who must not go down?
    println!("most critical components (size of transitive impact):");
    for (app, impact) in graph.criticality().into_iter().take(5) {
        println!("  {:>24}  impacts {impact} applications", name(app));
    }

    // 2. Impact prediction for the most critical component.
    let (critical, _) = graph.criticality()[0];
    let impact = graph.impact_set(critical);
    println!(
        "\nif {} degrades, {} applications are affected, e.g.: {}",
        name(critical),
        impact.len(),
        impact
            .iter()
            .take(4)
            .map(|&a| name(a))
            .collect::<Vec<_>>()
            .join(", ")
    );

    // 3. Root-cause analysis: three dependents of the critical
    // component start alarming — who explains all three?
    let symptoms: Vec<_> = impact.iter().copied().take(3).collect();
    if symptoms.len() == 3 {
        println!(
            "\nsymptoms: {} are all degraded",
            symptoms
                .iter()
                .map(|&a| name(a))
                .collect::<Vec<_>>()
                .join(", ")
        );
        println!("root-cause candidates (fewest collateral implications first):");
        for (cand, collateral) in graph.root_candidates(&symptoms).into_iter().take(5) {
            println!(
                "  {:>24}  (+{collateral} unexplained implications)",
                name(cand)
            );
        }
        let candidates = graph.root_candidates(&symptoms);
        assert!(
            candidates.iter().any(|c| c.0 == critical),
            "the true culprit must appear among the candidates"
        );
        println!(
            "\nthe ranked list contains {}, the component the symptoms were drawn from",
            name(critical)
        );
    }
}
