//! Session mining in another domain: an online bank.
//!
//! §5 of the paper singles out online banking as a setting where
//! session information is logged for audit anyway, making technique L2
//! a natural fit. This example builds a small synthetic banking
//! workload *without* the hospital simulator — just the public
//! `LogStore` API and a few lines of generation code — and mines it
//! with L2 at several timeouts.
//!
//! ```text
//! cargo run --release -p logdep-examples --example banking_sessions
//! ```

use logdep::l2::{run_l2, L2Config};
use logdep_logstore::time::{TimeRange, MS_PER_HOUR};
use logdep_logstore::{LogRecord, LogStore, Millis};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(2024);
    let mut store = LogStore::new();

    let web = store.registry.source("WebPortal");
    let auth = store.registry.source("AuthService");
    let accounts = store.registry.source("AccountsCore");
    let payments = store.registry.source("PaymentsGateway");
    let fraud = store.registry.source("FraudScreening");
    let marketing = store.registry.source("MarketingBanner"); // unrelated

    // 150 customer sessions in one hour: login (auth), balance check
    // (accounts), sometimes a payment (payments → fraud, async).
    for k in 0..150u32 {
        let user = store.registry.user(&format!("cust{k:04}"));
        let host = store.registry.host(&format!("ip-{}", rng.gen_range(0..64)));
        let mut t = rng.gen_range(0..MS_PER_HOUR - 60_000);
        let log = |store: &mut LogStore, src, at: i64, text: &str| {
            store.push(
                LogRecord::minimal(src, Millis(at))
                    .with_user(user)
                    .with_host(host)
                    .with_text(text),
            );
        };
        log(&mut store, web, t, "GET /login");
        log(&mut store, auth, t + 90, "credentials verified");
        log(&mut store, web, t + 180, "session established");
        t += rng.gen_range(2_000..9_000);
        log(&mut store, web, t, "GET /balance");
        log(&mut store, accounts, t + 70, "balance computed");
        if rng.gen_bool(0.4) {
            t += rng.gen_range(3_000..12_000);
            log(&mut store, web, t, "POST /transfer");
            log(&mut store, payments, t + 110, "payment queued");
            // Fraud screening is asynchronous: it lands seconds later,
            // interleaving with whatever the customer does next — the
            // very concurrency §4.6 blames for L2's false positives.
            log(
                &mut store,
                fraud,
                t + rng.gen_range(1_500..6_000),
                "screening verdict ok",
            );
        }
        // The marketing banner refreshes on its own timer, uncorrelated.
        if rng.gen_bool(0.5) {
            log(
                &mut store,
                marketing,
                t + rng.gen_range(0..20_000),
                "banner rotated",
            );
        }
    }
    store.finalize();
    println!("generated {} logs across {} sources\n", store.len(), 6);

    let hour = TimeRange::new(Millis(0), Millis(MS_PER_HOUR));
    for timeout in [Some(500i64), Some(1_000), Some(2_000), None] {
        let cfg = L2Config {
            timeout_ms: timeout,
            ..L2Config::default()
        };
        let res = run_l2(&store, hour, &cfg).expect("L2 runs");
        let label = match timeout {
            Some(ms) => format!("{:>5} ms", ms),
            None => "     inf".to_owned(),
        };
        let pairs: Vec<String> = res
            .detected
            .iter()
            .map(|(a, b)| {
                format!(
                    "{}<->{}",
                    store.registry.source_name(a),
                    store.registry.source_name(b)
                )
            })
            .collect();
        println!(
            "timeout {label}: {} pairs: {}",
            pairs.len(),
            pairs.join(", ")
        );
    }

    println!(
        "\nexpected true pairs: WebPortal<->AuthService, WebPortal<->AccountsCore, \
         WebPortal<->PaymentsGateway; FraudScreening couples only loosely (async), and \
         MarketingBanner should stay out at strict timeouts"
    );
}
