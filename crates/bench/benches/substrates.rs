//! Criterion benchmarks of the substrate primitives: the nearest-
//! distance query (L1's inner loop), the Aho–Corasick scan (L3's inner
//! loop), session reconstruction, and the order-statistics CI.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use logdep_logstore::{Millis, Timeline};
use logdep_sessions::{reconstruct, SessionConfig};
use logdep_sim::textgen::standard_stop_patterns;
use logdep_sim::{simulate, SimConfig};
use logdep_stats::order_stats::median_ci_sorted;
use logdep_textmatch::{MatcherBuilder, StopPatterns};

fn bench_distance(c: &mut Criterion) {
    let mut group = c.benchmark_group("timeline_dist_to_nearest");
    for &n in &[1_000usize, 100_000, 1_000_000] {
        let tl: Timeline = (0..n as i64).map(|i| Millis(i * 37)).collect();
        let probes: Vec<Millis> = (0..1_000i64).map(|i| Millis(i * 4_111 + 13)).collect();
        group.throughput(Throughput::Elements(probes.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &tl, |b, tl| {
            b.iter(|| {
                let mut acc = 0i64;
                for &p in &probes {
                    acc += tl.dist_to_nearest(p).unwrap_or(0);
                }
                acc
            });
        });
    }
    group.finish();
}

fn bench_matcher(c: &mut Criterion) {
    let mut group = c.benchmark_group("aho_corasick_scan");
    // A realistic directory-sized pattern set over typical log lines.
    let ids: Vec<String> = (0..47).map(|i| format!("DPISERVICE{i:02}")).collect();
    let mut builder = MatcherBuilder::new();
    builder.add_all(ids.iter().map(String::as_str));
    let matcher = builder.build();
    let lines: Vec<String> = (0..1_000)
        .map(|i| {
            format!(
                "Invoke externalService [fct [notify] server \
                 [srv{:02}.hcuge.ch:9999/dpiservice{:02}]] seq={i}",
                i % 20,
                i % 47
            )
        })
        .collect();
    group.throughput(Throughput::Elements(lines.len() as u64));
    group.bench_function("1k_lines_47_patterns", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for line in &lines {
                hits += matcher.matched_ids(line).len();
            }
            hits
        });
    });
    group.finish();
}

fn bench_stop_patterns(c: &mut Criterion) {
    let stops = StopPatterns::new(standard_stop_patterns());
    let lines: Vec<String> = (0..1_000)
        .map(|i| {
            if i % 3 == 0 {
                format!("Serving request [fct [q] group [SVC{i}]] for App{i}")
            } else {
                format!("call returned [fct [notify]] rc=0 in {i} ms")
            }
        })
        .collect();
    let mut group = c.benchmark_group("stop_patterns");
    group.throughput(Throughput::Elements(lines.len() as u64));
    group.bench_function("1k_lines_10_globs", |b| {
        b.iter(|| lines.iter().filter(|l| stops.matches(l)).count());
    });
    group.finish();
}

fn bench_sessions(c: &mut Criterion) {
    let mut cfg = SimConfig::paper_week(5, 0.2);
    cfg.days = 1;
    let out = simulate(&cfg);
    let mut group = c.benchmark_group("session_reconstruction");
    group.throughput(Throughput::Elements(out.store.len() as u64));
    group.bench_function(format!("{}_logs", out.store.len()), |b| {
        b.iter(|| {
            reconstruct(&out.store, &SessionConfig::default())
                .stats
                .n_sessions
        });
    });
    group.finish();
}

fn bench_median_ci(c: &mut Criterion) {
    let mut group = c.benchmark_group("order_stats_median_ci");
    for &n in &[100usize, 1_000, 10_000] {
        let sorted: Vec<f64> = (0..n).map(|i| i as f64).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &sorted, |b, xs| {
            b.iter(|| median_ci_sorted(xs, 0.95).expect("ci"));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_distance,
    bench_matcher,
    bench_stop_patterns,
    bench_sessions,
    bench_median_ci
);
criterion_main!(benches);
