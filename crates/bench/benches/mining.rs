//! Criterion benchmarks of the three mining techniques, at several
//! traffic scales — backing §5's claim that "all algorithms scale
//! linearly with respect to the number of logs".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use logdep::l1::{run_l1, L1Config};
use logdep::l2::{run_l2, L2Config};
use logdep::l3::{run_l3, L3Config};
use logdep_logstore::time::TimeRange;
use logdep_sim::textgen::standard_stop_patterns;
use logdep_sim::{simulate, SimConfig, SimOutput};

/// One simulated day at the given scale.
fn day_at_scale(scale: f64) -> SimOutput {
    let mut cfg = SimConfig::paper_week(11, scale);
    cfg.days = 1;
    simulate(&cfg)
}

fn bench_l3(c: &mut Criterion) {
    let mut group = c.benchmark_group("l3_scan");
    for &scale in &[0.1, 0.2, 0.4] {
        let out = day_at_scale(scale);
        let ids: Vec<String> = out.directory.ids().iter().map(|s| s.to_string()).collect();
        let cfg = L3Config::with_stop_patterns(standard_stop_patterns());
        let range = TimeRange::day(0);
        group.throughput(Throughput::Elements(out.store.len() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(out.store.len()),
            &out,
            |b, out| {
                b.iter(|| run_l3(&out.store, range, &ids, &cfg).expect("L3"));
            },
        );
    }
    group.finish();
}

fn bench_l2(c: &mut Criterion) {
    let mut group = c.benchmark_group("l2_sessions_and_bigrams");
    for &scale in &[0.1, 0.2, 0.4] {
        let out = day_at_scale(scale);
        let cfg = L2Config::default();
        let range = TimeRange::day(0);
        group.throughput(Throughput::Elements(out.store.len() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(out.store.len()),
            &out,
            |b, out| {
                b.iter(|| run_l2(&out.store, range, &cfg).expect("L2"));
            },
        );
    }
    group.finish();
}

fn bench_l1(c: &mut Criterion) {
    let mut group = c.benchmark_group("l1_slot_tests");
    group.sample_size(10); // L1 over a full day is the heavy one
    for &scale in &[0.1, 0.2] {
        let out = day_at_scale(scale);
        let cfg = L1Config {
            minlogs: 15,
            seed: 1,
            ..L1Config::default()
        };
        let sources = out.store.active_sources();
        let range = TimeRange::day(0);
        group.throughput(Throughput::Elements(out.store.len() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(out.store.len()),
            &out,
            |b, out| {
                b.iter(|| run_l1(&out.store, range, &sources, &cfg).expect("L1"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_l3, bench_l2, bench_l1);
criterion_main!(benches);
