//! Minimal ASCII renderings of the paper's figures.

/// Renders the stacked TP/FP bars of Figures 5/6/8: one row per day
/// with a `#` bar for true positives, a `x` bar for false positives,
/// and the true-positive ratio annotated.
pub fn stacked_days(labels: &[String], tp: &[usize], fp: &[usize]) -> String {
    assert_eq!(labels.len(), tp.len());
    assert_eq!(tp.len(), fp.len());
    let max = tp
        .iter()
        .zip(fp)
        .map(|(a, b)| a + b)
        .max()
        .unwrap_or(1)
        .max(1);
    let width = 60usize;
    let mut out = String::new();
    for i in 0..labels.len() {
        let tpw = tp[i] * width / max;
        let fpw = fp[i] * width / max;
        let ratio = if tp[i] + fp[i] > 0 {
            tp[i] as f64 / (tp[i] + fp[i]) as f64
        } else {
            0.0
        };
        out.push_str(&format!(
            "{:>6} | {}{} tp={} fp={} ratio={:.2}\n",
            labels[i],
            "#".repeat(tpw),
            "x".repeat(fpw),
            tp[i],
            fp[i],
            ratio
        ));
    }
    out
}

/// Renders a numeric series as a sparkline-style row of height levels.
pub fn sparkline(values: &[f64]) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (max - min).max(1e-12);
    values
        .iter()
        .map(|v| {
            let idx = (((v - min) / span) * 7.0).round() as usize;
            LEVELS[idx.min(7)]
        })
        .collect()
}

/// Renders a boxplot summary on one line over a fixed scale
/// (min..max of the data), marking quartiles, median and the CI.
pub fn boxplot_line(
    label: &str,
    min: f64,
    q1: f64,
    median: f64,
    q3: f64,
    max: f64,
    ci: (f64, f64),
) -> String {
    let width = 64usize;
    let span = (max - min).max(1e-12);
    let pos = |v: f64| -> usize { (((v - min) / span) * (width as f64 - 1.0)).round() as usize };
    let mut row = vec![' '; width];
    for cell in row.iter_mut().take(pos(q3) + 1).skip(pos(q1)) {
        *cell = '-';
    }
    for cell in row.iter_mut().take(pos(ci.1) + 1).skip(pos(ci.0)) {
        *cell = '=';
    }
    row[pos(min)] = '|';
    row[pos(max)] = '|';
    row[pos(median)] = 'M';
    format!("{label:>10} [{}]", row.iter().collect::<String>())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stacked_days_shapes() {
        let s = stacked_days(&["d0".to_owned(), "d1".to_owned()], &[10, 20], &[5, 0]);
        assert_eq!(s.lines().count(), 2);
        assert!(s.contains("ratio=0.67"));
        assert!(s.contains("ratio=1.00"));
        assert!(s.lines().next().expect("row").contains('x'));
    }

    #[test]
    fn sparkline_monotone() {
        let s = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn boxplot_line_marks_median() {
        let s = boxplot_line("r", 0.0, 1.0, 2.0, 3.0, 4.0, (1.5, 2.5));
        assert!(s.contains('M'));
        assert!(s.contains('='));
        assert!(s.contains('-'));
    }

    #[test]
    fn degenerate_inputs_do_not_panic() {
        let _ = stacked_days(&["d".to_owned()], &[0], &[0]);
        let _ = sparkline(&[1.0, 1.0, 1.0]);
        let _ = boxplot_line("x", 5.0, 5.0, 5.0, 5.0, 5.0, (5.0, 5.0));
    }
}
