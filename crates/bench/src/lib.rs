//! Shared experiment harness for the table/figure regeneration
//! binaries.
//!
//! Every `--bin` in this crate reproduces one table or figure of
//! Steinle et al. (VLDB 2006); this library holds the pieces they
//! share: the calibrated simulated week, resolved reference models,
//! default technique configurations, JSON report output and small
//! ASCII renderings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ascii;
pub mod workbench;

pub use workbench::Workbench;
