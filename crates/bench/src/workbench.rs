//! The shared experiment workbench.

use logdep::l1::L1Config;
use logdep::l2::L2Config;
use logdep::l3::L3Config;
use logdep::{AppServiceModel, PairModel};
use logdep_logstore::SourceId;
use logdep_sim::textgen::standard_stop_patterns;
use logdep_sim::{simulate, SimConfig, SimOutput};
use serde::Serialize;
use std::path::PathBuf;

/// Default seed of the published experiment runs.
pub const DEFAULT_SEED: u64 = 42;
/// Default traffic scale (the calibrated ~100×-reduced HUG week).
pub const DEFAULT_SCALE: f64 = 1.0;

/// A simulated week plus everything the experiments need around it.
pub struct Workbench {
    /// The simulation output (store, truth, directory, stats).
    pub out: SimOutput,
    /// Reference pair model resolved against the store's registry.
    pub pair_ref: PairModel,
    /// Reference app→service model.
    pub svc_ref: AppServiceModel,
    /// Published directory ids, in directory order.
    pub service_ids: Vec<String>,
    /// Owner application per directory entry (same order).
    pub owners: Vec<SourceId>,
    /// Applications excluded from oracle duties (incomplete loggers).
    pub excluded: Vec<SourceId>,
    /// Number of simulated days.
    pub days: u32,
}

impl Workbench {
    /// Builds the calibrated paper week.
    pub fn paper_week(seed: u64, scale: f64) -> Self {
        Self::from_config(&SimConfig::paper_week(seed, scale))
    }

    /// Builds from an arbitrary simulation config.
    pub fn from_config(cfg: &SimConfig) -> Self {
        let out = simulate(cfg);
        let pair_ref = PairModel::from_names(
            &out.store.registry,
            out.truth
                .app_pairs
                .iter()
                .map(|(a, b)| (a.as_str(), b.as_str())),
        )
        .expect("truth names resolve against the registry");
        let service_ids: Vec<String> = out.directory.ids().iter().map(|s| s.to_string()).collect();
        let svc_ref = AppServiceModel::from_names(
            &out.store.registry,
            &service_ids,
            out.truth
                .app_service
                .iter()
                .map(|(a, s)| (a.as_str(), s.as_str())),
        )
        .expect("truth service ids resolve");
        let owners: Vec<SourceId> = out
            .topology
            .services
            .iter()
            .map(|s| {
                out.store
                    .registry
                    .find_source(&out.topology.apps[s.owner].name)
                    .expect("owner app is registered")
            })
            .collect();
        let excluded: Vec<SourceId> = out
            .truth
            .incomplete_loggers
            .iter()
            .filter_map(|n| out.store.registry.find_source(n))
            .collect();
        Self {
            out,
            pair_ref,
            svc_ref,
            service_ids,
            owners,
            excluded,
            days: cfg.days,
        }
    }

    /// The calibrated L1 configuration for this scale of data (the
    /// paper's parameters with `minlogs` rescaled from its 10 M
    /// logs/day to the simulated volume).
    pub fn l1_config(&self) -> L1Config {
        L1Config {
            minlogs: 25,
            seed: 7,
            ..L1Config::default()
        }
    }

    /// The paper's L2 configuration (timeout 1 s).
    pub fn l2_config(&self) -> L2Config {
        L2Config::default()
    }

    /// The paper's L3 configuration: the 10 standard stop patterns.
    pub fn l3_config(&self) -> L3Config {
        L3Config::with_stop_patterns(standard_stop_patterns())
    }

    /// Resolves a source id to its application name.
    pub fn name(&self, id: SourceId) -> &str {
        self.out.store.registry.source_name(id)
    }

    /// Writes a machine-readable experiment report under
    /// `target/experiments/<name>.json` and returns the path.
    pub fn report<T: Serialize>(&self, name: &str, value: &T) -> PathBuf {
        write_report(name, value)
    }
}

/// Writes a JSON report under `target/experiments/`.
pub fn write_report<T: Serialize>(name: &str, value: &T) -> PathBuf {
    let dir =
        PathBuf::from(std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".to_owned()))
            .join("experiments");
    std::fs::create_dir_all(&dir).expect("create target/experiments");
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialize report");
    std::fs::write(&path, json).expect("write report");
    path
}

/// Parses `--seed N` and `--scale X` from argv, with defaults.
pub fn cli_seed_scale() -> (u64, f64) {
    let mut seed = DEFAULT_SEED;
    let mut scale = DEFAULT_SCALE;
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" if i + 1 < args.len() => {
                seed = args[i + 1].parse().expect("--seed takes an integer");
                i += 2;
            }
            "--scale" if i + 1 < args.len() => {
                scale = args[i + 1].parse().expect("--scale takes a float");
                i += 2;
            }
            other => {
                eprintln!("ignoring unknown argument {other:?}");
                i += 1;
            }
        }
    }
    (seed, scale)
}
