//! Figure 7: L2 positive decisions on one day for different timeout
//! values.
//!
//! Paper (§4.7, 12 Dec 2005 = day 6): a timeout that is "neither too
//! small nor too big" raises the fraction of correct decisions while
//! slightly lowering the absolute number of true positives.

use logdep::l2::{run_l2, L2Config};
use logdep::model::diff_pairs;
use logdep_bench::ascii::stacked_days;
use logdep_bench::workbench::{cli_seed_scale, Workbench};
use logdep_logstore::time::TimeRange;
use serde::Serialize;

#[derive(Serialize)]
struct SweepPoint {
    timeout_ms: Option<i64>,
    tp: usize,
    fp: usize,
    tpr: f64,
}

#[derive(Serialize)]
struct Fig7Report {
    day: i64,
    points: Vec<SweepPoint>,
}

fn main() {
    let (seed, scale) = cli_seed_scale();
    let wb = Workbench::paper_week(seed, scale);
    let day = 6i64; // the paper's 12.12.2005
    let timeouts: Vec<Option<i64>> = vec![
        Some(100),
        Some(200),
        Some(300),
        Some(400),
        Some(600),
        Some(800),
        Some(1_000),
        Some(1_500),
        Some(2_000),
        Some(4_000),
        None,
    ];

    println!("Figure 7 — L2 on day {day} for different timeout values");
    println!("paper: moderate timeouts raise precision, slightly reduce absolute tp\n");

    let mut labels = Vec::new();
    let mut tps = Vec::new();
    let mut fps = Vec::new();
    let mut points = Vec::new();
    for &to in &timeouts {
        let cfg = L2Config {
            timeout_ms: to,
            ..wb.l2_config()
        };
        let res = run_l2(&wb.out.store, TimeRange::day(day), &cfg).expect("L2 run");
        let d = diff_pairs(&res.detected, &wb.pair_ref);
        labels.push(match to {
            Some(ms) => format!("{:.1}s", ms as f64 / 1000.0),
            None => "inf".to_owned(),
        });
        tps.push(d.tp());
        fps.push(d.fp());
        points.push(SweepPoint {
            timeout_ms: to,
            tp: d.tp(),
            fp: d.fp(),
            tpr: d.true_positive_ratio(),
        });
    }
    print!("{}", stacked_days(&labels, &tps, &fps));

    let best = points
        .iter()
        .filter(|p| p.timeout_ms.is_some())
        .max_by(|a, b| a.tpr.partial_cmp(&b.tpr).expect("finite"))
        .expect("non-empty");
    let inf = points.last().expect("inf point");
    println!(
        "\nbest finite timeout {:?} ms: tpr {:.2} vs infinity tpr {:.2}; tp {} vs {}",
        best.timeout_ms, best.tpr, inf.tpr, best.tp, inf.tp
    );

    let path = wb.report("fig7", &Fig7Report { day, points });
    println!("report: {}", path.display());
}
