//! Warm-over-cold benchmark of the sliding-window evidence cache.
//!
//! The "around the clock" scenario of §1.2: a 7-day window advances by
//! one day at a time for a full week of operation, so the entering days
//! cover one complete weekday/weekend cycle of the simulated landscape.
//! For every advance the cold path re-mines the whole window with an
//! empty cache; the warm path replays the cached evidence of the 6
//! shared days and recomputes only the day that entered the window.
//! The reported speedup is total cold wall time over total warm wall
//! time across all advances — the week-of-operation cost ratio. Emits
//! `BENCH_incremental.json` both under `target/experiments/` and at the
//! repository root (the committed evidence artifact).
//!
//! Invariants checked on every run:
//! * every warm (cached) model is **byte-identical** to a fresh-cache
//!   run of the same window, and the first advance's detected sets
//!   equal the batch pipeline's (`run_pipeline`) on that window;
//! * every warm advance actually hits (L1 and L3 hit counts > 0);
//! * in full mode the warm week must be at least 5× faster than the
//!   cold week (skipped in `--smoke`, where the window is tiny and
//!   fixed costs dominate).

use logdep::cache::{run_l1_cached, CacheStats, EvidenceCache};
use logdep::health::{run_pipeline, PipelineConfig};
use logdep::window::{
    run_l2_windowed_cached, run_l3_windowed_cached, run_window_cached, WindowOutcome,
};
use logdep_bench::workbench::{write_report, Workbench, DEFAULT_SEED};
use logdep_logstore::time::TimeRange;
use logdep_logstore::LogStore;
use logdep_logstore::Millis;
use logdep_par::ParConfig;
use logdep_sim::SimConfig;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct Step {
    /// First day of the advanced window (the window is
    /// `[start_day, start_day + window_days)`).
    start_day: i64,
    warm_ms: f64,
    cold_ms: f64,
    /// Per-layer wall time of the warm advance.
    warm_layer_ms: [f64; 3],
    /// Per-layer wall time of the cold baseline.
    cold_layer_ms: [f64; 3],
    /// Cache traffic of the warm advance.
    warm_stats: CacheStats,
}

#[derive(Serialize)]
struct Report {
    seed: u64,
    scale: f64,
    smoke: bool,
    days: u32,
    window_days: i64,
    n_advances: i64,
    n_logs: usize,
    host_cpus: usize,
    /// Wall time of priming the cache on the first window.
    prime_ms: f64,
    /// Total wall time of re-mining each advanced window cold.
    cold_ms: f64,
    /// Total wall time of the cached advances over the same windows.
    warm_ms: f64,
    speedup: f64,
    speedup_asserted: bool,
    steps: Vec<Step>,
    /// Every warm model byte-identical to its fresh-cache model, and
    /// the first advance equal to the batch pipeline (asserted).
    identical: bool,
}

/// Canonical text form of everything scientific in a window outcome;
/// floats render with `{:?}` (shortest round trip) so a last-ulp drift
/// fails the comparison.
fn canonical(out: &WindowOutcome) -> String {
    let mut s = String::new();
    if let Some(r) = &out.l1 {
        s.push_str(&format!("l1 slots {}\n", r.n_slots));
        for (a, b) in r.detected.iter() {
            s.push_str(&format!("l1 {a:?}<->{b:?}\n"));
        }
        for o in &r.outcomes {
            s.push_str(&format!(
                "l1p {:?} {:?} {} {} {:?} {}\n",
                o.a, o.b, o.support, o.positives, o.pr, o.dependent
            ));
        }
    }
    if let Some(r) = &out.l2 {
        for (a, b) in r.detected.iter() {
            s.push_str(&format!("l2 {a:?}<->{b:?}\n"));
        }
        for o in &r.outcomes {
            s.push_str(&format!(
                "l2t {:?} {:?} {} {:?} {:?} {}\n",
                o.first, o.second, o.joint, o.statistic, o.p_value, o.significant
            ));
        }
        s.push_str(&format!("l2 total {}\n", r.bigrams.total));
    }
    if let Some(r) = &out.l3 {
        for (app, svc) in r.detected.iter() {
            s.push_str(&format!("l3 {app:?}->{svc}\n"));
        }
        let mut cites: Vec<_> = r.citations.iter().collect();
        cites.sort();
        for ((app, svc), n) in cites {
            s.push_str(&format!("l3c {app:?} {svc} {n}\n"));
        }
        s.push_str(&format!("l3 stats {} {}\n", r.scanned_logs, r.stopped_logs));
    }
    s
}

/// Runs the three cached layers individually (equivalent to
/// `run_window_cached`, which drives the same entry points) so the
/// report can attribute warm/cold wall time per layer.
fn timed_window(
    store: &LogStore,
    window: TimeRange,
    service_ids: &[String],
    cfg: &PipelineConfig,
    cache: &mut EvidenceCache,
) -> (WindowOutcome, [f64; 3]) {
    let before = cache.stats();
    let mut layer_ms = [0.0f64; 3];
    let ms = |t: Instant| t.elapsed().as_secs_f64() * 1_000.0;
    let sources = store.active_sources();

    let t = Instant::now();
    let l1 = cfg
        .l1
        .as_ref()
        .map(|c| run_l1_cached(store, window, &sources, c, &cfg.par, cache).expect("cached L1"));
    layer_ms[0] = ms(t);
    let t = Instant::now();
    let l2 = cfg
        .l2
        .as_ref()
        .map(|c| run_l2_windowed_cached(store, window, c, cache).expect("cached L2"));
    layer_ms[1] = ms(t);
    let t = Instant::now();
    let l3 = cfg
        .l3
        .as_ref()
        .map(|c| run_l3_windowed_cached(store, window, service_ids, c, cache).expect("cached L3"));
    layer_ms[2] = ms(t);
    cache.evict_outside(window);

    let outcome = WindowOutcome {
        window,
        l1,
        l2,
        l3,
        stats: cache.stats().since(&before),
    };
    (outcome, layer_ms)
}

fn main() {
    let mut seed = DEFAULT_SEED;
    let mut scale = 0.5f64;
    let mut smoke = false;
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" if i + 1 < args.len() => {
                seed = args[i + 1].parse().expect("--seed takes an integer");
                i += 2;
            }
            "--scale" if i + 1 < args.len() => {
                scale = args[i + 1].parse().expect("--scale takes a float");
                i += 2;
            }
            "--smoke" => {
                smoke = true;
                i += 1;
            }
            other => {
                eprintln!("ignoring unknown argument {other:?}");
                i += 1;
            }
        }
    }
    let window_days: i64 = if smoke { 2 } else { 7 };
    let n_advances: i64 = if smoke { 1 } else { 7 };
    if smoke {
        scale = 0.15;
    }

    let mut cfg = SimConfig::paper_week(seed, scale);
    cfg.days = u32::try_from(window_days + n_advances).expect("small");
    let wb = Workbench::from_config(&cfg);
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "incremental bench: seed {seed}, scale {scale}, {} days, window {window_days} days, \
         {n_advances} advance(s), {} logs, host has {host_cpus} cpu(s)",
        wb.days,
        wb.out.store.len()
    );

    let pcfg = PipelineConfig {
        l1: Some(wb.l1_config()),
        l2: Some(wb.l2_config()),
        l3: Some(wb.l3_config()),
        par: ParConfig::default(),
    };
    let w0 = TimeRange::new(Millis(0), Millis::from_days(window_days));

    // Prime: mine the first window into an empty rolling cache.
    let mut rolling = EvidenceCache::new();
    let start = Instant::now();
    run_window_cached(&wb.out.store, w0, &wb.service_ids, &pcfg, &mut rolling)
        .expect("prime window");
    let prime_ms = start.elapsed().as_secs_f64() * 1_000.0;
    println!("  prime   [0,{window_days}) : {prime_ms:8.1} ms (cold cache)");

    let mut steps = Vec::new();
    let mut warm_total = 0.0f64;
    let mut cold_total = 0.0f64;
    for step in 1..=n_advances {
        let w = TimeRange::new(
            Millis::from_days(step),
            Millis::from_days(step + window_days),
        );

        // Warm: advance the rolling window by one day on the live cache.
        rolling.reset_stats();
        let start = Instant::now();
        let (warm, warm_layer_ms) =
            timed_window(&wb.out.store, w, &wb.service_ids, &pcfg, &mut rolling);
        let warm_ms = start.elapsed().as_secs_f64() * 1_000.0;
        let warm_stats = warm.stats;
        println!(
            "  advance [{step},{}) : {warm_ms:8.1} ms warm (l1 {:.1}, l2 {:.1}, l3 {:.1}; \
             {} hits, {} misses)",
            step + window_days,
            warm_layer_ms[0],
            warm_layer_ms[1],
            warm_layer_ms[2],
            warm_stats.hits(),
            warm_stats.misses()
        );
        assert!(warm_stats.l1_hits > 0, "L1 never hit: {warm_stats:?}");
        assert!(warm_stats.l3_hits > 0, "L3 never hit: {warm_stats:?}");

        // Cold baseline: the same window from scratch.
        let mut fresh = EvidenceCache::new();
        let start = Instant::now();
        let (cold, cold_layer_ms) =
            timed_window(&wb.out.store, w, &wb.service_ids, &pcfg, &mut fresh);
        let cold_ms = start.elapsed().as_secs_f64() * 1_000.0;
        println!(
            "  cold    [{step},{}) : {cold_ms:8.1} ms cold (l1 {:.1}, l2 {:.1}, l3 {:.1})",
            step + window_days,
            cold_layer_ms[0],
            cold_layer_ms[1],
            cold_layer_ms[2]
        );

        assert_eq!(
            canonical(&warm),
            canonical(&cold),
            "cached advance drifted from the fresh-cache model on window [{step},{})",
            step + window_days
        );
        if step == 1 {
            let batch = run_pipeline(&wb.out.store, w, &wb.service_ids, Some(&wb.owners), &pcfg);
            assert!(batch.fully_healthy(), "batch pipeline degraded");
            assert_eq!(
                warm.l1.as_ref().map(|r| &r.detected),
                batch.l1_pairs.as_ref(),
                "L1 model differs from the batch pipeline"
            );
            assert_eq!(
                warm.l2.as_ref().map(|r| &r.detected),
                batch.l2_pairs.as_ref(),
                "L2 model differs from the batch pipeline"
            );
            assert_eq!(
                warm.l3.as_ref().map(|r| &r.detected),
                batch.l3_deps.as_ref(),
                "L3 model differs from the batch pipeline"
            );
        }

        warm_total += warm_ms;
        cold_total += cold_ms;
        steps.push(Step {
            start_day: step,
            warm_ms,
            cold_ms,
            warm_layer_ms,
            cold_layer_ms,
            warm_stats,
        });
    }

    let speedup = cold_total / warm_total;
    let speedup_asserted = !smoke;
    if speedup_asserted {
        assert!(
            speedup >= 5.0,
            "expected >= 5x warm-over-cold speedup across the week, got {speedup:.2}x \
             (cold {cold_total:.1} ms, warm {warm_total:.1} ms)"
        );
        println!("speedup gate passed: {speedup:.2}x warm over cold across {n_advances} advances");
    } else {
        println!("speedup gate skipped (smoke mode): {speedup:.2}x observed");
    }

    // Smoke-only overhead gate: replaying the final (fully warm) window
    // with a recorder installed must cost within 5% of the bare replay,
    // plus a small absolute allowance for timer noise on a path this
    // short. Min-of-K on an interleaved schedule so a scheduler hiccup
    // cannot fail the gate on one side only.
    if smoke {
        let w = TimeRange::new(
            Millis::from_days(n_advances),
            Millis::from_days(n_advances + window_days),
        );
        let ms = |t: Instant| t.elapsed().as_secs_f64() * 1_000.0;
        let mut bare = f64::INFINITY;
        let mut traced = f64::INFINITY;
        for _ in 0..7 {
            let t = Instant::now();
            run_window_cached(&wb.out.store, w, &wb.service_ids, &pcfg, &mut rolling)
                .expect("bare warm window");
            bare = bare.min(ms(t));

            logdep::obs::set_recorder(logdep::obs::Recorder::new());
            let t = Instant::now();
            run_window_cached(&wb.out.store, w, &wb.service_ids, &pcfg, &mut rolling)
                .expect("traced warm window");
            let elapsed = ms(t);
            let rec = logdep::obs::take_recorder().expect("recorder still installed");
            assert!(rec.sink.len() > 0, "traced warm window emitted no events");
            traced = traced.min(elapsed);
        }
        let limit = bare * 1.05 + 1.0;
        assert!(
            traced <= limit,
            "instrumentation overhead gate: traced warm window took {traced:.2} ms, \
             limit {limit:.2} ms (bare {bare:.2} ms + 5% + 1 ms)"
        );
        println!(
            "instrumentation gate passed: warm window {bare:.2} ms bare, {traced:.2} ms traced"
        );
    }

    let report = Report {
        seed,
        scale,
        smoke,
        days: wb.days,
        window_days,
        n_advances,
        n_logs: wb.out.store.len(),
        host_cpus,
        prime_ms,
        cold_ms: cold_total,
        warm_ms: warm_total,
        speedup,
        speedup_asserted,
        steps,
        identical: true,
    };
    let path = write_report("BENCH_incremental", &report);
    println!("wrote {}", path.display());
    let root = "BENCH_incremental.json";
    std::fs::write(
        root,
        serde_json::to_string_pretty(&report).expect("serialize report"),
    )
    .expect("write repo-root report");
    println!("wrote {root}");
}
