//! Ablation of technique L1's design choices (DESIGN.md §6).
//!
//! The paper adapts Li & Ma's test in three ways: median instead of
//! mean, nearest instead of next arrival, one-sided instead of
//! two-sided. This binary runs the paper's configuration, the full
//! Li–Ma style baseline, and each single-change variant over one day,
//! plus a `minlogs`/slot-length sensitivity sweep.

use logdep::l1::{run_l1, CenterStat, DecisionRule, DistanceKind, L1Config};
use logdep::model::diff_pairs;
use logdep_bench::workbench::{cli_seed_scale, Workbench};
use logdep_logstore::time::TimeRange;
use serde::Serialize;

#[derive(Serialize)]
struct Variant {
    name: String,
    tp: usize,
    fp: usize,
    tpr: f64,
}

#[derive(Serialize)]
struct AblationReport {
    day: i64,
    variants: Vec<Variant>,
    minlogs_sweep: Vec<(usize, usize, usize)>,
    slot_sweep_minutes: Vec<(i64, usize, usize)>,
}

fn main() {
    let (seed, scale) = cli_seed_scale();
    let wb = Workbench::paper_week(seed, scale);
    let sources = wb.out.store.active_sources();
    let day = 0i64;
    let range = TimeRange::day(day);
    let base = wb.l1_config();

    let run = |cfg: &L1Config| -> (usize, usize, f64) {
        let res = run_l1(&wb.out.store, range, &sources, cfg).expect("L1 run");
        let d = diff_pairs(&res.detected, &wb.pair_ref);
        (d.tp(), d.fp(), d.true_positive_ratio())
    };

    println!("L1 design-choice ablation (day {day})\n");
    let mut variants = Vec::new();
    let named: Vec<(&str, L1Config)> = vec![
        ("paper (median/nearest/1-sided)", base.clone()),
        (
            "li-ma baseline (mean/next/2-sided)",
            L1Config {
                distance: DistanceKind::Next,
                stat: CenterStat::Mean,
                two_sided: true,
                ..base.clone()
            },
        ),
        (
            "mean instead of median",
            L1Config {
                stat: CenterStat::Mean,
                ..base.clone()
            },
        ),
        (
            "next instead of nearest",
            L1Config {
                distance: DistanceKind::Next,
                ..base.clone()
            },
        ),
        (
            "two-sided instead of one-sided",
            L1Config {
                two_sided: true,
                ..base.clone()
            },
        ),
        (
            "rank-sum instead of CI separation",
            L1Config {
                decision: DecisionRule::RankSum { alpha: 0.01 },
                ..base.clone()
            },
        ),
    ];
    println!("{:<36} {:>5} {:>5} {:>6}", "variant", "tp", "fp", "tpr");
    for (name, cfg) in named {
        let (tp, fp, tpr) = run(&cfg);
        println!("{name:<36} {tp:>5} {fp:>5} {tpr:>6.2}");
        variants.push(Variant {
            name: name.to_owned(),
            tp,
            fp,
            tpr,
        });
    }

    println!("\nminlogs sensitivity:");
    let mut minlogs_sweep = Vec::new();
    for minlogs in [10usize, 15, 25, 40, 60, 100] {
        let cfg = L1Config {
            minlogs,
            ..base.clone()
        };
        let (tp, fp, _) = run(&cfg);
        println!("  minlogs {minlogs:>4}: tp {tp:>3} fp {fp:>3}");
        minlogs_sweep.push((minlogs, tp, fp));
    }

    println!("\nslot-length sensitivity:");
    let mut slot_sweep = Vec::new();
    for minutes in [20i64, 30, 60, 120, 240] {
        let cfg = L1Config {
            slot_ms: minutes * 60 * 1_000,
            ..base.clone()
        };
        let (tp, fp, _) = run(&cfg);
        println!("  slot {minutes:>4} min: tp {tp:>3} fp {fp:>3}");
        slot_sweep.push((minutes, tp, fp));
    }

    let report = AblationReport {
        day,
        variants,
        minlogs_sweep,
        slot_sweep_minutes: slot_sweep,
    };
    let path = wb.report("ablation_l1", &report);
    println!("\nreport: {}", path.display());
}
