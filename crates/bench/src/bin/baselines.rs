//! Related-work baseline comparison (§2.1 of the paper): technique L1
//! against Agrawal et al.'s delay-histogram test and Ensel's supervised
//! neural network, on the same simulated day.
//!
//! The comparison quantifies the paper's positioning:
//! * Agrawal's test needs a delay-window assumption and reacts to the
//!   same parallelism L1 does;
//! * Ensel's classifier can match or beat L1 — *but only after being
//!   trained on labeled pairs*, which is exactly the "laborious,
//!   delicate, expensive" supervision the paper set out to avoid.

use logdep::baselines::{pair_features, run_agrawal, AgrawalConfig, EnselClassifier, EnselConfig};
use logdep::l1::run_l1;
use logdep::model::{diff_pairs, PairModel};
use logdep_bench::workbench::{cli_seed_scale, Workbench};
use logdep_logstore::time::TimeRange;
use logdep_logstore::SourceId;
use serde::Serialize;

#[derive(Serialize, Default)]
struct BaselinesReport {
    l1: (usize, usize),
    agrawal: (usize, usize),
    ensel_test_tp: usize,
    ensel_test_fp: usize,
    ensel_test_fn: usize,
    ensel_train_pairs: usize,
}

fn main() {
    let (seed, scale) = cli_seed_scale();
    let wb = Workbench::paper_week(seed, scale);
    let day = TimeRange::day(0);
    let sources = wb.out.store.active_sources();
    let mut report = BaselinesReport::default();

    // --- Technique L1 (the paper's unsupervised method).
    let l1 = run_l1(&wb.out.store, day, &sources, &wb.l1_config()).expect("L1");
    let d = diff_pairs(&l1.detected, &wb.pair_ref);
    report.l1 = (d.tp(), d.fp());

    // --- Agrawal et al. delay histograms.
    let ag = run_agrawal(&wb.out.store, day, &sources, &AgrawalConfig::default()).expect("agrawal");
    let d = diff_pairs(&ag.detected, &wb.pair_ref);
    report.agrawal = (d.tp(), d.fp());

    // --- Ensel: supervised NN with a train/test split over pairs.
    // Even-indexed pairs are training material (the "laborious expert
    // labeling"), odd-indexed pairs are the evaluation set.
    let cfg = EnselConfig::default();
    let mut all_pairs: Vec<(SourceId, SourceId, bool)> = Vec::new();
    for (i, &a) in sources.iter().enumerate() {
        for &b in sources.iter().skip(i + 1) {
            all_pairs.push((a, b, wb.pair_ref.contains(a, b)));
        }
    }
    let mut train = Vec::new();
    let mut test = Vec::new();
    let mut n_train_neg = 0usize;
    for (k, &(a, b, label)) in all_pairs.iter().enumerate() {
        let f = pair_features(&wb.out.store, day, a, b, &cfg);
        if k % 2 == 0 {
            // Balance the training set: keep all positives, downsample
            // the vastly more numerous negatives.
            if label {
                train.push((f, label));
            } else if n_train_neg < 220 {
                n_train_neg += 1;
                train.push((f, label));
            }
        } else {
            test.push((a, b, label, f));
        }
    }
    report.ensel_train_pairs = train.len();
    let net = EnselClassifier::train(&train, &cfg).expect("training");
    let mut detected = PairModel::new();
    let mut reference = PairModel::new();
    for &(a, b, label, ref f) in &test {
        if label {
            reference.insert(a, b);
        }
        if net.classify(f) {
            detected.insert(a, b);
        }
    }
    let d = diff_pairs(&detected, &reference);
    report.ensel_test_tp = d.tp();
    report.ensel_test_fp = d.fp();
    report.ensel_test_fn = d.fn_();

    println!("related-work baselines vs technique L1 (day 0)\n");
    println!("{:<42} {:>5} {:>5}", "method", "tp", "fp");
    println!(
        "{:<42} {:>5} {:>5}",
        "L1 (unsupervised, paper)", report.l1.0, report.l1.1
    );
    println!(
        "{:<42} {:>5} {:>5}",
        "Agrawal et al. delay histograms", report.agrawal.0, report.agrawal.1
    );
    println!(
        "{:<42} {:>5} {:>5}   (on a 50% held-out pair set; trained on {} labeled pairs)",
        "Ensel supervised NN", report.ensel_test_tp, report.ensel_test_fp, report.ensel_train_pairs
    );
    println!(
        "\nEnsel recall on held-out true pairs: {}/{} — possible, but only with \
         the expert labeling the paper's techniques avoid needing",
        report.ensel_test_tp,
        report.ensel_test_tp + report.ensel_test_fn
    );

    let path = wb.report("baselines", &report);
    println!("\nreport: {}", path.display());
}
