//! Diagnostic scratchpad for the Figure 9 load experiment: compares a
//! night hour and a peak hour in detail.

use logdep::l1::{run_l1, L1Config};
use logdep::l3::run_l3;
use logdep::PairModel;
use logdep_bench::workbench::{cli_seed_scale, Workbench};
use logdep_logstore::time::TimeRange;
use std::collections::BTreeSet;

fn main() {
    let (seed, scale) = cli_seed_scale();
    let wb = Workbench::paper_week(seed, scale);
    let excluded: BTreeSet<_> = wb.excluded.iter().copied().collect();
    let l1cfg = L1Config {
        minlogs: 10,
        ..wb.l1_config()
    };

    for (label, day, hour) in [("night", 1i64, 3i64), ("peak", 1, 10)] {
        let range = TimeRange::hour_of_day(day, hour);
        let n_logs = wb.out.store.range(range).len();
        let l3 = run_l3(&wb.out.store, range, &wb.service_ids, &wb.l3_config()).unwrap();
        let mut oracle = PairModel::new();
        for (app, svc) in l3.detected.iter() {
            if excluded.contains(&app) {
                continue;
            }
            let owner = wb.owners[svc];
            if app != owner && wb.pair_ref.contains(app, owner) {
                oracle.insert(app, owner);
            }
        }
        let sources: Vec<_> = oracle
            .iter()
            .flat_map(|(a, b)| [a, b])
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        let l1 = run_l1(&wb.out.store, range, &sources, &l1cfg).unwrap();
        let mut testable = 0;
        let mut found = 0;
        for (a, b) in oracle.iter() {
            let ca = wb.out.store.timeline(a).count_in(range);
            let cb = wb.out.store.timeline(b).count_in(range);
            if ca >= l1cfg.minlogs && cb >= l1cfg.minlogs {
                testable += 1;
            }
            if l1.detected.contains(a, b) {
                found += 1;
            }
        }
        println!(
            "{label}: logs={n_logs} oracle={} testable={} found={} p1={:.2} p1|testable={:.2}",
            oracle.len(),
            testable,
            found,
            found as f64 / oracle.len().max(1) as f64,
            found as f64 / testable.max(1) as f64,
        );
        // Distribution of per-app hourly counts among oracle apps.
        let mut counts: Vec<usize> = sources
            .iter()
            .map(|&s| wb.out.store.timeline(s).count_in(range))
            .collect();
        counts.sort_unstable();
        println!("  oracle app hourly counts: {counts:?}");
    }
}
