//! One-shot reproduction: simulates the paper week once and runs every
//! §4 experiment over it, printing a one-screen summary and writing a
//! combined JSON report. The per-figure binaries remain the detailed
//! views; this is the "is the whole reproduction still green?" check.

use logdep::eval::{l1_daily, l2_daily, l3_daily, load_experiment, timeout_study, LoadConfig};
use logdep_bench::workbench::{cli_seed_scale, Workbench};
use serde::Serialize;

#[derive(Serialize)]
struct Summary {
    seed: u64,
    scale: f64,
    logs_per_day: Vec<usize>,
    l1_days: Vec<logdep::eval::DailyOutcome>,
    l2_days: Vec<logdep::eval::DailyOutcome>,
    l3_days: Vec<logdep::eval::DailyOutcome>,
    l1_tpr_ci: (f64, f64),
    l2_tpr_ci: (f64, f64),
    l3_tpr_ci: (f64, f64),
    timeout_rows: Vec<logdep::eval::TimeoutRow>,
    slope_p1: (f64, f64),
    slope_p2: (f64, f64),
}

fn main() {
    let (seed, scale) = cli_seed_scale();
    eprintln!("simulating the paper week (seed {seed}, scale {scale})...");
    let wb = Workbench::paper_week(seed, scale);
    let store = &wb.out.store;
    let days = wb.days;

    let logs_per_day: Vec<usize> = store
        .counts_per_day()
        .iter()
        .take(days as usize)
        .map(|d| d.1)
        .collect();

    eprintln!("running L3, L2, L1 daily series...");
    let l3 =
        l3_daily(store, days, &wb.service_ids, &wb.l3_config(), &wb.svc_ref).expect("L3 daily");
    let l2 = l2_daily(store, days, &wb.l2_config(), &wb.pair_ref).expect("L2 daily");
    let sources = store.active_sources();
    let l1 = l1_daily(store, days, &sources, &wb.l1_config(), &wb.pair_ref).expect("L1 daily");

    eprintln!("running the timeout study...");
    let study = timeout_study(
        store,
        days,
        &[300, 600, 800, 1_000],
        &wb.l2_config(),
        &wb.pair_ref,
        0.98,
    )
    .expect("timeout study");

    eprintln!("running the load experiment (168 hourly slices)...");
    let l1_hourly = logdep::l1::L1Config {
        minlogs: 10,
        ..wb.l1_config()
    };
    let l2_hourly = logdep::l2::L2Config {
        alpha: 0.10,
        min_joint: 2,
        session: logdep_sessions::SessionConfig {
            min_logs: 2,
            ..Default::default()
        },
        ..wb.l2_config()
    };
    let l3_oracle = logdep::l3::L3Config {
        min_citations: 3,
        ..wb.l3_config()
    };
    let load = load_experiment(
        store,
        &wb.service_ids,
        &wb.owners,
        &wb.pair_ref,
        &LoadConfig {
            days,
            l1: l1_hourly,
            l2: l2_hourly,
            l3: l3_oracle,
            exclude_apps: wb.excluded.clone(),
            ci_level: 0.95,
            min_oracle_pairs: 3,
        },
    )
    .expect("load experiment");

    let ci = |s: &logdep::eval::DailySeries| {
        let c = s.tpr_median_ci(0.984).expect("ci");
        (c.lower, c.upper)
    };
    let summary = Summary {
        seed,
        scale,
        logs_per_day: logs_per_day.clone(),
        l1_tpr_ci: ci(&l1),
        l2_tpr_ci: ci(&l2),
        l3_tpr_ci: ci(&l3),
        l1_days: l1.days.clone(),
        l2_days: l2.days.clone(),
        l3_days: l3.days.clone(),
        timeout_rows: study.rows.clone(),
        slope_p1: (load.slope_p1.lower, load.slope_p1.upper),
        slope_p2: (load.slope_p2.lower, load.slope_p2.upper),
    };

    println!("=== reproduction summary (seed {seed}, scale {scale}) ===\n");
    println!("Table 1  volume/day: {logs_per_day:?}");
    let line = |name: &str, s: &logdep::eval::DailySeries, paper: &str| {
        let tp: Vec<usize> = s.days.iter().map(|d| d.tp).collect();
        let fp: Vec<usize> = s.days.iter().map(|d| d.fp).collect();
        let c = ci(s);
        println!(
            "{name}  tp {tp:?} fp {fp:?}\n         tpr CI@0.984 [{:.2},{:.2}]  (paper {paper})",
            c.0, c.1
        );
    };
    line("Fig 5 L1", &l1, "tp 30-46, fp 11-22, [0.63,0.73]");
    line("Fig 6 L2", &l2, "tp 62-74 wd, fp 21-25, [0.71,0.78]");
    line("Fig 8 L3", &l3, "tp 141-152 wd, fp 7-11, [0.93,0.96]");
    println!(
        "Table 2  Δtpr medians: {:?} pp (paper: +4.5..+5.4, all positive)",
        study
            .rows
            .iter()
            .map(|r| (r.d_tpr_median * 10.0).round() / 10.0)
            .collect::<Vec<_>>()
    );
    println!(
        "         Δtp medians:  {:?}    (paper: -4..-7, all negative)",
        study.rows.iter().map(|r| r.d_tp_median).collect::<Vec<_>>()
    );
    println!(
        "Fig 9    slope(p1) [{:.3},{:.3}] strictly negative: {} (paper: yes)",
        load.slope_p1.lower,
        load.slope_p1.upper,
        load.slope_p1.strictly_negative()
    );
    println!(
        "         slope(p2) [{:.3},{:.3}] (paper: contains zero; see EXPERIMENTS.md)",
        load.slope_p2.lower, load.slope_p2.upper
    );

    let checks = [
        ("table1 weekend dip", logs_per_day[4] * 2 < logs_per_day[0]),
        (
            "fig5 L1 band",
            l1.days.iter().all(|d| d.tp >= 15 && d.tpr > 0.6),
        ),
        (
            "fig6 L2 band",
            l2.days.iter().all(|d| d.tp >= 40 && d.tpr > 0.6),
        ),
        (
            "fig8 L3 band",
            l3.days.iter().all(|d| d.tp >= 120 && d.tpr > 0.85),
        ),
        (
            "table2 signs",
            study
                .rows
                .iter()
                .all(|r| r.d_tpr_median >= 0.0 && r.d_tp_median <= 0.0),
        ),
        ("fig9 slope(p1) < 0", load.slope_p1.strictly_negative()),
    ];
    println!();
    let mut ok = true;
    for (name, pass) in checks {
        println!("  [{}] {name}", if pass { "ok" } else { "FAIL" });
        ok &= pass;
    }

    let path = logdep_bench::workbench::write_report("repro_all", &summary);
    println!("\nreport: {}", path.display());
    if !ok {
        std::process::exit(1);
    }
}
