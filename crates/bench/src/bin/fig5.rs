//! Figure 5: positive decisions of technique L1 per day.
//!
//! Paper (§4.5, minlogs = 100, th_pr = 0.6, th_s = 0.3): 30–46 true
//! positives per day at 11–22 false positives; 0.984-level CI for the
//! median true-positive ratio [0.63, 0.73]; classification error on
//! the 1253 unrelated pairs stays ~2 %.

use logdep::eval::l1_daily;
use logdep_bench::ascii::stacked_days;
use logdep_bench::workbench::{cli_seed_scale, Workbench};
use serde::Serialize;

#[derive(Serialize)]
struct Fig5Report {
    days: Vec<logdep::eval::DailyOutcome>,
    tpr_median_ci: (f64, f64),
    paper_tp_range: (usize, usize),
    paper_fp_range: (usize, usize),
    paper_tpr_ci: (f64, f64),
}

fn main() {
    let (seed, scale) = cli_seed_scale();
    let wb = Workbench::paper_week(seed, scale);
    let sources = wb.out.store.active_sources();
    let series = l1_daily(
        &wb.out.store,
        wb.days,
        &sources,
        &wb.l1_config(),
        &wb.pair_ref,
    )
    .expect("L1 daily run");

    println!("Figure 5 — L1 positive decisions per day (th_pr=0.6, th_s=0.3)");
    println!("paper: tp 30–46, fp 11–22, tpr CI@0.984 [0.63, 0.73]\n");
    let labels: Vec<String> = series
        .days
        .iter()
        .map(|d| format!("day {}", d.day))
        .collect();
    let tp: Vec<usize> = series.days.iter().map(|d| d.tp).collect();
    let fp: Vec<usize> = series.days.iter().map(|d| d.fp).collect();
    print!("{}", stacked_days(&labels, &tp, &fp));

    let ci = series.tpr_median_ci(0.984).expect("ci");
    println!(
        "\nmeasured tpr median CI@{:.3}: [{:.2}, {:.2}]",
        ci.achieved_level, ci.lower, ci.upper
    );
    let unrelated = wb.out.truth.n_possible_app_pairs() - wb.pair_ref.len();
    let worst_fp = fp.iter().max().copied().unwrap_or(0);
    println!(
        "classification error on the {unrelated} unrelated pairs: ≤ {:.1} % (paper ~2 %)",
        100.0 * worst_fp as f64 / unrelated as f64
    );

    let path = wb.report(
        "fig5",
        &Fig5Report {
            days: series.days.clone(),
            tpr_median_ci: (ci.lower, ci.upper),
            paper_tp_range: (30, 46),
            paper_fp_range: (11, 22),
            paper_tpr_ci: (0.63, 0.73),
        },
    );
    println!("report: {}", path.display());
}
