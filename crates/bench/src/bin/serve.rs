//! Throughput benchmark of the loopback query server.
//!
//! Baseline: sequential single requests, one fresh connection each, at
//! one worker — the cost an operator pays scripting `curl` in a loop.
//! Measured mode: four workers serving four keep-alive client threads.
//! The gate asserts the pooled keep-alive mode is at least 10x the
//! single-request baseline (skipped in `--smoke` and on hosts with
//! fewer than 4 CPUs, where the pool cannot win). Every response body
//! in both phases is byte-checked against the expected rendering, and
//! a snapshot hot-swap mid-run must flip all subsequent bodies to the
//! new generation — correctness is asserted in every mode, including
//! smoke. Emits `BENCH_serve.json` under `target/experiments/` and at
//! the repository root (the committed evidence artifact).

use logdep::health::PipelineConfig;
use logdep::EvidenceCache;
use logdep_bench::workbench::{write_report, Workbench, DEFAULT_SEED};
use logdep_par::ParConfig;
use logdep_serve::{HttpClient, IndexPlan, ModelIndex, ServeConfig, Server, ServerHandle};
use logdep_sim::SimConfig;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct Report {
    seed: u64,
    scale: f64,
    smoke: bool,
    host_cpus: usize,
    days: u32,
    snapshots: u64,
    n_logs: usize,
    /// Requests issued in the sequential fresh-connection baseline.
    baseline_requests: u64,
    baseline_ms: f64,
    baseline_rps: f64,
    /// Client threads × requests each in the pooled keep-alive phase.
    throughput_threads: usize,
    throughput_requests: u64,
    throughput_ms: f64,
    throughput_rps: f64,
    workers: usize,
    speedup: f64,
    speedup_asserted: bool,
    /// Every body byte-identical to the expected rendering (asserted).
    identical: bool,
}

fn build_index(wb: &Workbench, steps: u64, generation: u64) -> ModelIndex {
    let cfg = PipelineConfig {
        l1: Some(wb.l1_config()),
        l2: Some(wb.l2_config()),
        l3: Some(wb.l3_config()),
        par: ParConfig::default(),
    };
    let plan = IndexPlan {
        start_day: 0,
        window_days: 1,
        advance_days: 1,
        steps,
    };
    let mut cache = EvidenceCache::new();
    ModelIndex::from_store(
        &wb.out.store,
        &wb.service_ids,
        &cfg,
        &plan,
        &mut cache,
        generation,
    )
    .expect("index build")
}

/// Runs `body` against a live server on a `logdep_par` scope (the
/// workspace's sanctioned threading entry point); the server is shut
/// down and joined before this returns.
fn with_server<T>(workers: usize, index: ModelIndex, body: impl FnOnce(&ServerHandle) -> T) -> T {
    let cfg = ServeConfig {
        workers,
        max_conns: 64,
        request_timeout_ms: 5_000,
        ..ServeConfig::default()
    };
    let server = Server::bind(cfg, index).expect("bind loopback");
    let handle = server.handle();
    logdep_par::scope(|s| {
        s.spawn(move || logdep_serve::run_server(server, None).expect("serve loop"));
        let out = body(&handle);
        handle.shutdown();
        out
    })
}

fn main() {
    let mut seed = DEFAULT_SEED;
    let mut scale = 0.3f64;
    let mut smoke = false;
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" if i + 1 < args.len() => {
                seed = args[i + 1].parse().expect("--seed takes an integer");
                i += 2;
            }
            "--scale" if i + 1 < args.len() => {
                scale = args[i + 1].parse().expect("--scale takes a float");
                i += 2;
            }
            "--smoke" => {
                smoke = true;
                i += 1;
            }
            other => {
                eprintln!("ignoring unknown argument {other:?}");
                i += 1;
            }
        }
    }
    if smoke {
        scale = 0.15;
    }
    let snapshots: u64 = if smoke { 2 } else { 3 };
    let baseline_requests: u64 = if smoke { 30 } else { 300 };
    let per_thread: u64 = if smoke { 100 } else { 3_000 };
    let threads: usize = 4;
    let workers: usize = 4;

    let mut sim = SimConfig::paper_week(seed, scale);
    sim.days = u32::try_from(snapshots).expect("small") + 1;
    let wb = Workbench::from_config(&sim);
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "serve bench: seed {seed}, scale {scale}, {} days, {snapshots} snapshot(s), {} logs, \
         host has {host_cpus} cpu(s)",
        wb.days,
        wb.out.store.len()
    );

    let index = build_index(&wb, snapshots, 1);
    let path = {
        let s0 = index.source_label(logdep::logstore::SourceId(0));
        let s1 = index.source_label(logdep::logstore::SourceId(1));
        format!("/v1/pair?src={s0}&dst={s1}")
    };

    // Expected renderings, straight from a probe exchange.
    let (expected, expected_gen2) = with_server(1, index.clone(), |handle| {
        let mut probe = HttpClient::connect(handle.addr(), 5_000).expect("probe connect");
        let (status, expected) = probe.get(&path).expect("probe");
        assert_eq!(status, 200, "probe body: {expected}");
        handle.install(build_index(&wb, snapshots, 2));
        let (status, expected_gen2) = probe.get(&path).expect("probe gen2");
        assert_eq!(status, 200);
        assert_ne!(expected, expected_gen2, "swap must be observable");
        (expected, expected_gen2)
    });

    let ms = |t: Instant| t.elapsed().as_secs_f64() * 1_000.0;

    // Baseline: fresh connection per request, one worker.
    let baseline_ms = with_server(1, index.clone(), |handle| {
        let t = Instant::now();
        for _ in 0..baseline_requests {
            let mut client = HttpClient::connect(handle.addr(), 5_000).expect("baseline connect");
            let (status, body) = client.get(&path).expect("baseline request");
            assert_eq!(status, 200);
            assert_eq!(body, expected, "baseline body diverged");
        }
        ms(t)
    });
    let baseline_rps = baseline_requests as f64 / (baseline_ms / 1_000.0);
    println!(
        "  baseline: {baseline_requests} fresh-connection request(s) in {baseline_ms:8.1} ms \
         ({baseline_rps:9.0} req/s)"
    );

    // Measured mode: pooled workers, keep-alive client threads. The
    // hot-swap check rides the same server: after the measured phase,
    // install generation 2 and require every subsequent body to be the
    // new rendering, byte for byte.
    let throughput_ms = with_server(workers, index.clone(), |handle| {
        let addr = handle.addr();
        let t = Instant::now();
        logdep_par::scope(|s| {
            for _ in 0..threads {
                let expected = &expected;
                let path = &path;
                s.spawn(move || {
                    let mut client = HttpClient::connect(addr, 5_000).expect("client connect");
                    for _ in 0..per_thread {
                        let (status, body) = client.get(path).expect("pooled request");
                        assert_eq!(status, 200);
                        assert_eq!(&body, expected, "pooled body diverged");
                    }
                });
            }
        });
        let elapsed = ms(t);
        handle.install(build_index(&wb, snapshots, 2));
        let mut client = HttpClient::connect(addr, 5_000).expect("post-swap connect");
        for _ in 0..10 {
            let (status, body) = client.get(&path).expect("post-swap request");
            assert_eq!(status, 200);
            assert_eq!(body, expected_gen2, "post-swap body diverged");
        }
        elapsed
    });
    let throughput_requests = per_thread * threads as u64;
    let throughput_rps = throughput_requests as f64 / (throughput_ms / 1_000.0);
    println!(
        "  pooled:   {throughput_requests} keep-alive request(s) over {threads} thread(s) in \
         {throughput_ms:8.1} ms ({throughput_rps:9.0} req/s)"
    );

    let speedup = throughput_rps / baseline_rps;
    let speedup_asserted = !smoke && host_cpus >= 4;
    if speedup_asserted {
        assert!(
            speedup >= 10.0,
            "expected >= 10x pooled keep-alive throughput over the single-request \
             baseline, got {speedup:.2}x ({throughput_rps:.0} vs {baseline_rps:.0} req/s)"
        );
        println!("serve gate passed: {speedup:.2}x over the single-request baseline");
    } else {
        println!("serve gate skipped (smoke or <4 cpus): {speedup:.2}x observed");
    }

    let report = Report {
        seed,
        scale,
        smoke,
        host_cpus,
        days: wb.days,
        snapshots,
        n_logs: wb.out.store.len(),
        baseline_requests,
        baseline_ms,
        baseline_rps,
        throughput_threads: threads,
        throughput_requests,
        throughput_ms,
        throughput_rps,
        workers,
        speedup,
        speedup_asserted,
        identical: true,
    };
    let out = write_report("BENCH_serve", &report);
    println!("wrote {}", out.display());
    let root = "BENCH_serve.json";
    std::fs::write(
        root,
        serde_json::to_string_pretty(&report).expect("serialize report"),
    )
    .expect("write repo-root report");
    println!("wrote {root}");
}
