//! Table 2: median differences (with CI bounds) between finite
//! timeouts and the no-timeout baseline for technique L2, plus the
//! Wilcoxon signed-rank test.
//!
//! Paper (§4.7): for to ∈ {0.3, 0.6, 0.8, 1.0} s the tpr difference is
//! positive (medians ~4.5–5.4 percentage points, 0.98-level CIs
//! strictly positive) while the absolute tp difference is negative
//! (medians −4 … −7, CIs strictly negative); the signed Wilcoxon p is
//! 0.0156 whenever all 7 daily differences agree in sign.

use logdep::eval::timeout_study;
use logdep_bench::workbench::{cli_seed_scale, Workbench};
use serde::Serialize;

/// A paper row: (timeout s, Δtpr median, Δtpr CI, Δtp median, Δtp CI).
type PaperRow = (f64, f64, (f64, f64), f64, (f64, f64));

#[derive(Serialize)]
struct Table2Report {
    rows: Vec<logdep::eval::TimeoutRow>,
    paper_rows: Vec<PaperRow>,
}

fn main() {
    let (seed, scale) = cli_seed_scale();
    let wb = Workbench::paper_week(seed, scale);
    let study = timeout_study(
        &wb.out.store,
        wb.days,
        &[300, 600, 800, 1_000],
        &wb.l2_config(),
        &wb.pair_ref,
        0.98,
    )
    .expect("timeout study");

    // Paper's Table 2: (to, Δtpr median, ci, Δtp median, ci).
    let paper = [
        (0.3, 5.4, (1.9, 9.3), -7.0, (-13.0, -4.0)),
        (0.6, 4.5, (2.0, 6.8), -5.0, (-9.0, -3.0)),
        (0.8, 4.5, (2.3, 5.7), -4.0, (-8.0, -3.0)),
        (1.0, 5.1, (1.7, 6.3), -5.0, (-7.0, -3.0)),
    ];

    println!("Table 2 — timeout influence on L2 (medians with 0.98-level CI bounds)");
    println!(
        "{:>5} | {:>24} | {:>24} | {:>10}",
        "to[s]", "Δtpr [pp] (paper)", "Δtp (paper)", "wilcoxon p"
    );
    for (row, p) in study.rows.iter().zip(&paper) {
        println!(
            "{:>5} | {:>6.1} ({:>5.1},{:>5.1}) vs {:>4.1} | {:>6.1} ({:>5.1},{:>5.1}) vs {:>4.1} | {:.4}/{:.4}",
            row.timeout_ms as f64 / 1000.0,
            row.d_tpr_median,
            row.d_tpr_ci.0,
            row.d_tpr_ci.1,
            p.1,
            row.d_tp_median,
            row.d_tp_ci.0,
            row.d_tp_ci.1,
            p.3,
            row.wilcoxon_p_tpr,
            row.wilcoxon_p_tp,
        );
    }
    println!("\npaper's Wilcoxon p: 0.0156 for 7 same-sign days");
    println!(
        "conclusion check — Δtpr medians ≥ 0: {}; Δtp medians ≤ 0: {}",
        study.rows.iter().all(|r| r.d_tpr_median >= 0.0),
        study.rows.iter().all(|r| r.d_tp_median <= 0.0),
    );

    let path = wb.report(
        "table2",
        &Table2Report {
            rows: study.rows.clone(),
            paper_rows: paper.to_vec(),
        },
    );
    println!("report: {}", path.display());
}
