//! Figure 1: number of logs per second for two interacting
//! applications (DPIFormidoc calling DPIPublication in the paper).
//!
//! Picks the busiest correctly-cited dependency edge of the simulated
//! topology and renders both applications' per-second activity over a
//! busy five-minute window; the correlation of high/low activity
//! periods is the visual motivation for technique L1.

use logdep_bench::ascii::sparkline;
use logdep_bench::workbench::{cli_seed_scale, Workbench};
use logdep_logstore::time::{TimeRange, MS_PER_HOUR, MS_PER_SEC};
use logdep_logstore::Millis;
use serde::Serialize;

#[derive(Serialize)]
struct Fig1Report {
    caller: String,
    callee: String,
    window_start_ms: i64,
    bin_ms: i64,
    caller_counts: Vec<usize>,
    callee_counts: Vec<usize>,
    correlation: f64,
}

fn pearson(a: &[usize], b: &[usize]) -> f64 {
    let n = a.len() as f64;
    let ma = a.iter().sum::<usize>() as f64 / n;
    let mb = b.iter().sum::<usize>() as f64 / n;
    let mut num = 0.0;
    let mut da = 0.0;
    let mut db = 0.0;
    for i in 0..a.len() {
        let xa = a[i] as f64 - ma;
        let xb = b[i] as f64 - mb;
        num += xa * xb;
        da += xa * xa;
        db += xb * xb;
    }
    num / (da.sqrt() * db.sqrt()).max(1e-12)
}

fn main() {
    let (seed, scale) = cli_seed_scale();
    let wb = Workbench::paper_week(seed, scale);
    let topo = &wb.out.topology;

    // Busiest correctly-cited edge on day 0.
    let (edge_idx, _) = wb.out.stats.realized[0]
        .iter()
        .enumerate()
        .filter(|(i, _)| topo.edges[*i].citation == logdep_sim::topology::CitationStyle::Correct)
        .max_by_key(|(_, &c)| c)
        .expect("some edge realized");
    let edge = &topo.edges[edge_idx];
    let caller = topo.apps[edge.caller].name.clone();
    let callee = topo.apps[topo.services[edge.service].owner].name.clone();

    let caller_id = wb.out.store.registry.find_source(&caller).expect("caller");
    let callee_id = wb.out.store.registry.find_source(&callee).expect("callee");

    // Busy five minutes on day 0, 10:00.
    let start = Millis(10 * MS_PER_HOUR);
    let window = TimeRange::new(start, Millis(start.0 + 300 * MS_PER_SEC));
    let bin = 5 * MS_PER_SEC;
    let a = wb.out.store.timeline(caller_id).counts_per_bin(window, bin);
    let b = wb.out.store.timeline(callee_id).counts_per_bin(window, bin);
    let corr = pearson(&a, &b);

    println!("Figure 1 — per-second activity of two interacting applications");
    println!("(paper: DPIFormidoc calls DPIPublication; correlated bursts)\n");
    println!(
        "{caller:>16} {}",
        sparkline(&a.iter().map(|&x| x as f64).collect::<Vec<_>>())
    );
    println!(
        "{callee:>16} {}",
        sparkline(&b.iter().map(|&x| x as f64).collect::<Vec<_>>())
    );
    println!("\nactivity correlation over the window: {corr:.3} (paper: visibly positive)");

    let path = wb.report(
        "fig1",
        &Fig1Report {
            caller,
            callee,
            window_start_ms: window.start.0,
            bin_ms: bin,
            caller_counts: a,
            callee_counts: b,
            correlation: corr,
        },
    );
    println!("report: {}", path.display());
}
