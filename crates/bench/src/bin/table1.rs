//! Table 1: the observation week with per-day log volumes.
//!
//! Paper: days Tue 06 – Mon 12 Dec 2005 with 10.3, 9.4, 9.4, 9.9, 3.7,
//! 3.4, 10.7 million logs (weekend on days 4 and 5). The simulated
//! week is ~100× smaller; the *shape* (weekend dip to roughly a third)
//! is the reproduction target.

use logdep_bench::workbench::{cli_seed_scale, Workbench};
use serde::Serialize;

#[derive(Serialize)]
struct Table1Report {
    paper_mio: Vec<f64>,
    measured: Vec<usize>,
    measured_relative: Vec<f64>,
    paper_relative: Vec<f64>,
}

fn main() {
    let (seed, scale) = cli_seed_scale();
    let wb = Workbench::paper_week(seed, scale);
    let paper = [10.3, 9.4, 9.4, 9.9, 3.7, 3.4, 10.7];
    let days = wb.out.store.counts_per_day();
    let measured: Vec<usize> = (0..7)
        .map(|d| days.get(d).map(|x| x.1).unwrap_or(0))
        .collect();

    let p0 = paper[0];
    let m0 = measured[0].max(1) as f64;
    println!("Table 1 — days in test period with number of logs");
    println!(
        "{:<12} {:>12} {:>10} | {:>12} {:>10}",
        "day", "paper[mio]", "rel", "measured", "rel"
    );
    let labels = [
        "Tue 06", "Wed 07", "Thu 08", "Fri 09", "Sat 10", "Sun 11", "Mon 12",
    ];
    for i in 0..7 {
        println!(
            "{:<12} {:>12.1} {:>10.2} | {:>12} {:>10.2}",
            labels[i],
            paper[i],
            paper[i] / p0,
            measured[i],
            measured[i] as f64 / m0
        );
    }
    println!(
        "\ntotal paper: 56.8 mio; total measured: {}",
        measured.iter().sum::<usize>()
    );

    let report = Table1Report {
        paper_mio: paper.to_vec(),
        measured_relative: measured.iter().map(|&m| m as f64 / m0).collect(),
        paper_relative: paper.iter().map(|&p| p / p0).collect(),
        measured,
    };
    let path = wb.report("table1", &report);
    println!("report: {}", path.display());
}
