//! §5 of the paper, implemented and measured: the improvement
//! directions the authors sketch as future work.
//!
//! * **Direction detection for L2** — burst-lead counting; scored here
//!   against the known caller→owner direction of each true pair.
//! * **Typical-delay analysis** — χ² uniformity test on bigram gaps;
//!   scored by how it separates true pairs from L2's false positives.
//! * **Adaptive slots for L1** — stationarity-driven slotting compared
//!   with the paper's fixed hour grid.
//! * **Load-proportional reference process for L1** — the
//!   non-homogeneous comparison process, same comparison.

use logdep::l1::{
    adaptive_slots, run_l1, run_l1_slots, AdaptiveConfig, L1Config, ReferenceProcess,
};
use logdep::l2::{delay_profiles, detect_directions, run_l2, DelayConfig, DirectionConfig};
use logdep::model::diff_pairs;
use logdep_bench::workbench::{cli_seed_scale, Workbench};
use logdep_logstore::time::TimeRange;
use logdep_sessions::reconstruct_range;
use serde::Serialize;
use std::collections::BTreeMap;

#[derive(Serialize, Default)]
struct ExtensionsReport {
    direction_decided: usize,
    direction_correct: usize,
    direction_undecided: usize,
    delay_causal_tp_rate: f64,
    delay_causal_fp_rate: f64,
    l1_fixed: (usize, usize),
    l1_adaptive: (usize, usize),
    l1_load_proportional: (usize, usize),
    adaptive_slot_count: usize,
}

fn main() {
    let (seed, scale) = cli_seed_scale();
    let wb = Workbench::paper_week(seed, scale);
    let day = TimeRange::day(0);
    let mut report = ExtensionsReport::default();

    // Ground-truth direction: caller app → owner app per true pair.
    let mut true_caller: BTreeMap<
        (logdep_logstore::SourceId, logdep_logstore::SourceId),
        logdep_logstore::SourceId,
    > = BTreeMap::new();
    for e in &wb.out.topology.edges {
        let caller = wb
            .out
            .store
            .registry
            .find_source(&wb.out.topology.apps[e.caller].name)
            .expect("registered");
        let owner = wb.owners[e.service];
        if caller != owner {
            true_caller.insert((caller.min(owner), caller.max(owner)), caller);
        }
    }

    // --- L2 + direction detection.
    let l2 = run_l2(&wb.out.store, day, &wb.l2_config()).expect("L2");
    let sessions = reconstruct_range(&wb.out.store, day, &wb.l2_config().session);
    let detected_pairs: Vec<_> = l2.detected.iter().collect();
    let directions = detect_directions(
        &sessions.sessions,
        &detected_pairs,
        &DirectionConfig::default(),
    );
    for d in &directions {
        match d.caller {
            None => report.direction_undecided += 1,
            Some(c) => {
                if let Some(&truth) = true_caller.get(&(d.a, d.b)) {
                    report.direction_decided += 1;
                    if truth == c {
                        report.direction_correct += 1;
                    }
                }
            }
        }
    }
    println!("§5 extension 1 — L2 direction detection (burst leads):");
    println!(
        "  {} detected pairs; {} directions decided on true pairs, {} correct ({:.0}%), {} undecided",
        detected_pairs.len(),
        report.direction_decided,
        report.direction_correct,
        100.0 * report.direction_correct as f64 / report.direction_decided.max(1) as f64,
        report.direction_undecided,
    );

    // --- Delay profiles: do causal delays separate TP from FP?
    let diff = diff_pairs(&l2.detected, &wb.pair_ref);
    let mut types: Vec<_> = Vec::new();
    for &(a, b) in diff.true_pos.iter().chain(diff.false_pos.iter()) {
        types.push((a, b));
        types.push((b, a));
    }
    let profiles = delay_profiles(&sessions.sessions, &types, &DelayConfig::default());
    let causal_of = |pair: &(logdep_logstore::SourceId, logdep_logstore::SourceId)| {
        profiles
            .iter()
            .filter(|p| {
                (p.first == pair.0 && p.second == pair.1)
                    || (p.first == pair.1 && p.second == pair.0)
            })
            .any(|p| p.causal)
    };
    let tp_causal = diff.true_pos.iter().filter(|p| causal_of(p)).count();
    let fp_causal = diff.false_pos.iter().filter(|p| causal_of(p)).count();
    report.delay_causal_tp_rate = tp_causal as f64 / diff.tp().max(1) as f64;
    report.delay_causal_fp_rate = fp_causal as f64 / diff.fp().max(1) as f64;
    println!("\n§5 extension 2 — typical-delay analysis (χ² vs uniform):");
    println!(
        "  causal verdicts: {:.0}% of true pairs vs {:.0}% of false positives",
        100.0 * report.delay_causal_tp_rate,
        100.0 * report.delay_causal_fp_rate
    );

    // --- L1: fixed vs adaptive slots vs load-proportional reference.
    let sources = wb.out.store.active_sources();
    let base = wb.l1_config();
    let fixed = run_l1(&wb.out.store, day, &sources, &base).expect("L1");
    let dfix = diff_pairs(&fixed.detected, &wb.pair_ref);
    report.l1_fixed = (dfix.tp(), dfix.fp());

    // Slots no shorter than the paper's hour, so `minlogs` keeps its
    // calibration; stationary stretches may merge up to 4 h.
    let acfg = AdaptiveConfig {
        min_slot_ms: 60 * 60 * 1_000,
        ..AdaptiveConfig::default()
    };
    let slots = adaptive_slots(&wb.out.store, day, &acfg).expect("slots");
    report.adaptive_slot_count = slots.len();
    let adaptive = run_l1_slots(&wb.out.store, &slots, &sources, &base).expect("L1 adaptive");
    let dada = diff_pairs(&adaptive.detected, &wb.pair_ref);
    report.l1_adaptive = (dada.tp(), dada.fp());

    let lp = L1Config {
        reference: ReferenceProcess::LoadProportional,
        ..base
    };
    let loadp = run_l1(&wb.out.store, day, &sources, &lp).expect("L1 load-proportional");
    let dlp = diff_pairs(&loadp.detected, &wb.pair_ref);
    report.l1_load_proportional = (dlp.tp(), dlp.fp());

    println!("\n§5 extensions 3/4 — L1 slotting and reference process (day 0):");
    println!(
        "  fixed 1 h slots:          tp {:>3} fp {:>3}",
        report.l1_fixed.0, report.l1_fixed.1
    );
    println!(
        "  adaptive slots ({:>2}):      tp {:>3} fp {:>3}",
        report.adaptive_slot_count, report.l1_adaptive.0, report.l1_adaptive.1
    );
    println!(
        "  load-proportional ref:    tp {:>3} fp {:>3}",
        report.l1_load_proportional.0, report.l1_load_proportional.1
    );

    let path = wb.report("extensions", &report);
    println!("\nreport: {}", path.display());
}
