//! Technique agreement study: combine L1, L2 and L3 on the paper week
//! and measure precision as a function of how many techniques agree.
//!
//! Not a paper experiment — it operationalizes §4.10/§5: the three
//! techniques consume *independent* information (timestamps, sessions,
//! free text), so their agreement is a strong confidence signal.

use logdep::ensemble::{app_service_to_pairs, Ensemble};
use logdep::l1::run_l1;
use logdep::l2::run_l2;
use logdep::l3::run_l3;
use logdep::model::diff_pairs;
use logdep_bench::workbench::{cli_seed_scale, Workbench};
use logdep_logstore::time::TimeRange;
use serde::Serialize;

#[derive(Serialize)]
struct Level {
    min_votes: u8,
    pairs: usize,
    tp: usize,
    fp: usize,
    precision: f64,
}

#[derive(Serialize)]
struct EnsembleReport {
    vote_histogram: [usize; 4],
    levels: Vec<Level>,
    l1_only_fp_share: f64,
}

fn main() {
    let (seed, scale) = cli_seed_scale();
    let wb = Workbench::paper_week(seed, scale);
    let day = TimeRange::day(0);
    let sources = wb.out.store.active_sources();

    let l1 = run_l1(&wb.out.store, day, &sources, &wb.l1_config()).expect("L1");
    let l2 = run_l2(&wb.out.store, day, &wb.l2_config()).expect("L2");
    let l3 = run_l3(&wb.out.store, day, &wb.service_ids, &wb.l3_config()).expect("L3");
    let l3_pairs = app_service_to_pairs(&l3.detected, &wb.owners);

    let ensemble = Ensemble::combine(&l1.detected, &l2.detected, &l3_pairs);
    println!("technique agreement on day 0 (pairs by number of supporting techniques)\n");
    let hist = ensemble.vote_histogram();
    println!(
        "votes: 1 → {} pairs, 2 → {}, 3 → {}\n",
        hist[1], hist[2], hist[3]
    );

    let mut levels = Vec::new();
    println!(
        "{:>9} {:>7} {:>5} {:>5} {:>10}",
        "min votes", "pairs", "tp", "fp", "precision"
    );
    for v in 1..=3u8 {
        let m = ensemble.at_least(v);
        let d = diff_pairs(&m, &wb.pair_ref);
        println!(
            "{:>9} {:>7} {:>5} {:>5} {:>10.2}",
            v,
            m.len(),
            d.tp(),
            d.fp(),
            d.true_positive_ratio()
        );
        levels.push(Level {
            min_votes: v,
            pairs: m.len(),
            tp: d.tp(),
            fp: d.fp(),
            precision: d.true_positive_ratio(),
        });
    }

    // Disagreement diagnosis: how suspect are L1-only pairs?
    let l1_only = ensemble.exactly(true, false, false);
    let d = diff_pairs(&l1_only, &wb.pair_ref);
    let fp_share = if l1_only.is_empty() {
        0.0
    } else {
        d.fp() as f64 / l1_only.len() as f64
    };
    println!(
        "\nL1-only pairs: {} of which {:.0}% are false (correlation without \
         a session or citation trace — §4.5's transitive/concurrent class)",
        l1_only.len(),
        100.0 * fp_share
    );

    let path = wb.report(
        "ensemble",
        &EnsembleReport {
            vote_histogram: hist,
            levels,
            l1_only_fp_share: fp_share,
        },
    );
    println!("report: {}", path.display());
}
