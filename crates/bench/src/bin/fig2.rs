//! Figure 2: boxplots of the distance samples S_r and S_b for the
//! interacting pair of Figure 1, in both directions.
//!
//! Paper: in each direction, the 95 %- and 99 %-level median CIs of
//! the B-sample lie entirely below the CI of the random sample —
//! the pair is correctly declared dependent.

use logdep::l1::direction_test;
use logdep_bench::ascii::boxplot_line;
use logdep_bench::workbench::{cli_seed_scale, Workbench};
use logdep_logstore::time::{TimeRange, MS_PER_HOUR};
use logdep_logstore::Millis;
use logdep_stats::boxplot::summarize;
use logdep_stats::sampling::Sampler;
use serde::Serialize;

#[derive(Serialize)]
struct Direction {
    a: String,
    b: String,
    positive: bool,
    sr: logdep_stats::boxplot::BoxplotSummary,
    sb: logdep_stats::boxplot::BoxplotSummary,
}

#[derive(Serialize)]
struct Fig2Report {
    directions: Vec<Direction>,
}

fn main() {
    let (seed, scale) = cli_seed_scale();
    let wb = Workbench::paper_week(seed, scale);
    let topo = &wb.out.topology;

    let (edge_idx, _) = wb.out.stats.realized[0]
        .iter()
        .enumerate()
        .filter(|(i, _)| topo.edges[*i].citation == logdep_sim::topology::CitationStyle::Correct)
        .max_by_key(|(_, &c)| c)
        .expect("some edge realized");
    let edge = &topo.edges[edge_idx];
    let caller = topo.apps[edge.caller].name.clone();
    let callee = topo.apps[topo.services[edge.service].owner].name.clone();
    let caller_id = wb.out.store.registry.find_source(&caller).expect("caller");
    let callee_id = wb.out.store.registry.find_source(&callee).expect("callee");

    let hour = TimeRange::new(Millis(10 * MS_PER_HOUR), Millis(11 * MS_PER_HOUR));
    let cfg = wb.l1_config();

    println!("Figure 2 — boxplots of S_r (random) vs S_b (partner logs)");
    println!("pair: {caller} / {callee}, day 0 hour 10\n");

    let mut directions = Vec::new();
    for (a_name, b_name, a, b) in [
        (&callee, &caller, callee_id, caller_id),
        (&caller, &callee, caller_id, callee_id),
    ] {
        let mut sampler = Sampler::from_seed(1234);
        let out = direction_test(
            wb.out.store.timeline(a),
            wb.out.store.timeline(b),
            hour,
            &cfg,
            &mut sampler,
        )
        .expect("enough data in the busy hour");
        let sr = summarize(&out.sample_r.dists, 0.95, 0.99).expect("sr summary");
        let sb = summarize(&out.sample_b.dists, 0.95, 0.99).expect("sb summary");
        println!("direction: is {b_name} attracted to {a_name}?");
        let lo = sr.min.min(sb.min);
        let hi = sr.max.max(sb.max);
        println!(
            "{}",
            boxplot_line("S_r", lo, sr.q1, sr.median, sr.q3, hi, sr.median_ci_primary)
        );
        println!(
            "{}",
            boxplot_line("S_b", lo, sb.q1, sb.median, sb.q3, hi, sb.median_ci_primary)
        );
        println!(
            "  S_b median CI (95%): [{:.0}, {:.0}] ms; S_r: [{:.0}, {:.0}] ms; positive: {}\n",
            sb.median_ci_primary.0,
            sb.median_ci_primary.1,
            sr.median_ci_primary.0,
            sr.median_ci_primary.1,
            out.positive
        );
        directions.push(Direction {
            a: a_name.clone(),
            b: b_name.clone(),
            positive: out.positive,
            sr,
            sb,
        });
    }

    let both = directions.iter().all(|d| d.positive);
    println!("both directions positive: {both} (paper: yes — the pair is declared dependent)");
    let path = wb.report("fig2", &Fig2Report { directions });
    println!("report: {}", path.display());
}
