//! Figure 8: positive decisions of technique L3 per day (with the 10
//! stop patterns).
//!
//! Paper (§4.8): 141–152 true positives on week days (116/117 on the
//! weekend) at 7–11 (5) false positives; tpr CI@0.984 [0.93, 0.96].

use logdep::eval::l3_daily;
use logdep_bench::ascii::stacked_days;
use logdep_bench::workbench::{cli_seed_scale, Workbench};
use serde::Serialize;

#[derive(Serialize)]
struct Fig8Report {
    days: Vec<logdep::eval::DailyOutcome>,
    tpr_median_ci: (f64, f64),
    paper_tp_weekday: (usize, usize),
    paper_fp_weekday: (usize, usize),
    paper_tpr_ci: (f64, f64),
}

fn main() {
    let (seed, scale) = cli_seed_scale();
    let wb = Workbench::paper_week(seed, scale);
    let series = l3_daily(
        &wb.out.store,
        wb.days,
        &wb.service_ids,
        &wb.l3_config(),
        &wb.svc_ref,
    )
    .expect("L3 daily run");

    println!("Figure 8 — L3 positive decisions per day (10 stop patterns)");
    println!("paper: tp 141–152 wd / 116–117 we, fp 7–11 / 5, tpr CI@0.984 [0.93, 0.96]\n");
    let labels: Vec<String> = series
        .days
        .iter()
        .map(|d| format!("day {}", d.day))
        .collect();
    let tp: Vec<usize> = series.days.iter().map(|d| d.tp).collect();
    let fp: Vec<usize> = series.days.iter().map(|d| d.fp).collect();
    print!("{}", stacked_days(&labels, &tp, &fp));

    let ci = series.tpr_median_ci(0.984).expect("ci");
    println!(
        "\nmeasured tpr median CI@{:.3}: [{:.2}, {:.2}]",
        ci.achieved_level, ci.lower, ci.upper
    );

    let path = wb.report(
        "fig8",
        &Fig8Report {
            days: series.days.clone(),
            tpr_median_ci: (ci.lower, ci.upper),
            paper_tp_weekday: (141, 152),
            paper_fp_weekday: (7, 11),
            paper_tpr_ci: (0.93, 0.96),
        },
    );
    println!("report: {}", path.display());
}
