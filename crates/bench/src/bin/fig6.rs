//! Figure 6: positive decisions of technique L2 per day (timeout 1 s).
//!
//! Paper (§4.6): ~4000 sessions per weekday (~1000 weekend), 7.5–11 %
//! of logs assignable; 62–74 true positives on week days (51/52 on the
//! weekend) at 21–25 (19/21) false positives; tpr CI@0.984
//! [0.71, 0.78].

use logdep::eval::l2_daily;
use logdep::l2::run_l2;
use logdep_bench::ascii::stacked_days;
use logdep_bench::workbench::{cli_seed_scale, Workbench};
use logdep_logstore::time::TimeRange;
use serde::Serialize;

#[derive(Serialize)]
struct Fig6Report {
    days: Vec<logdep::eval::DailyOutcome>,
    sessions_per_day: Vec<usize>,
    assigned_fraction_per_day: Vec<f64>,
    tpr_median_ci: (f64, f64),
    paper_tp_weekday: (usize, usize),
    paper_fp_weekday: (usize, usize),
    paper_tpr_ci: (f64, f64),
}

fn main() {
    let (seed, scale) = cli_seed_scale();
    let wb = Workbench::paper_week(seed, scale);
    let cfg = wb.l2_config();
    let series = l2_daily(&wb.out.store, wb.days, &cfg, &wb.pair_ref).expect("L2 daily run");

    // Session statistics per day (paper commentary around Figure 6).
    let mut sessions = Vec::new();
    let mut fractions = Vec::new();
    for day in 0..wb.days as i64 {
        let res = run_l2(&wb.out.store, TimeRange::day(day), &cfg).expect("session stats");
        sessions.push(res.session_stats.n_sessions);
        fractions.push(res.session_stats.assigned_fraction());
    }

    println!("Figure 6 — L2 positive decisions per day (timeout = 1 s)");
    println!("paper: tp 62–74 wd / 51–52 we, fp 21–25 / 19–21, tpr CI@0.984 [0.71, 0.78]\n");
    let labels: Vec<String> = series
        .days
        .iter()
        .map(|d| format!("day {}", d.day))
        .collect();
    let tp: Vec<usize> = series.days.iter().map(|d| d.tp).collect();
    let fp: Vec<usize> = series.days.iter().map(|d| d.fp).collect();
    print!("{}", stacked_days(&labels, &tp, &fp));

    println!("\nsessions/day: {sessions:?} (paper: ~4000 wd / ~1000 we, at 100× volume)");
    println!(
        "assigned log fraction per day: {:?} (paper: 7.5–11 %)",
        fractions
            .iter()
            .map(|f| format!("{:.1}%", 100.0 * f))
            .collect::<Vec<_>>()
    );

    let ci = series.tpr_median_ci(0.984).expect("ci");
    println!(
        "measured tpr median CI@{:.3}: [{:.2}, {:.2}]",
        ci.achieved_level, ci.lower, ci.upper
    );

    let path = wb.report(
        "fig6",
        &Fig6Report {
            days: series.days.clone(),
            sessions_per_day: sessions,
            assigned_fraction_per_day: fractions,
            tpr_median_ci: (ci.lower, ci.upper),
            paper_tp_weekday: (62, 74),
            paper_fp_weekday: (21, 25),
            paper_tpr_ci: (0.71, 0.78),
        },
    );
    println!("report: {}", path.display());
}
