//! Resume-over-cold benchmark of the crash-safe daily pipeline.
//!
//! The scenario the durable store exists for: the nightly "around the
//! clock" advance (§1.2) is killed mid-week, and the operator restarts
//! it. For each simulated crash point (after `j` of `n` steps were
//! journaled durably) the bench measures the cost of `--resume`
//! (replay the journal, run only the missing steps) against rebuilding
//! the whole week cold from an empty store, and asserts both converge
//! to **byte-identical** checkpoints and identical mined models. Emits
//! `BENCH_recovery.json` under `target/experiments/` and at the
//! repository root (the committed evidence artifact).
//!
//! Invariants checked on every run:
//! * every resumed run's final models equal the cold rebuild's, and the
//!   two checkpoint files are byte-for-byte identical;
//! * every resumed run leaves an empty journal and a store that
//!   verifies clean;
//! * in full mode the aggregate resume cost across the crash points
//!   must be at least 3× cheaper than the aggregate cold rebuilds
//!   (skipped in `--smoke`, where fixed costs dominate).

use logdep::durable::{
    run_daily_durable, verify_store, DailyPlan, DailyReport, DurableError, DurableOp, NoopPolicy,
    WriteDecision, WritePolicy,
};
use logdep::health::PipelineConfig;
use logdep::window::WindowOutcome;
use logdep_bench::workbench::{write_report, Workbench, DEFAULT_SEED};
use logdep_par::ParConfig;
use logdep_sim::SimConfig;
use serde::Serialize;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Kills the run at its `n`th journal append — i.e. after `n - 1`
/// steps have been made durable (the append of step `n` itself is the
/// write that dies). A clean abort: torn-write modes are the crash
/// test harness's domain; the bench measures recovery *cost*.
struct CrashAtJournalAppend {
    n: u64,
    seen: u64,
}

impl WritePolicy for CrashAtJournalAppend {
    fn before_write(&mut self, op: DurableOp, _bytes: &[u8]) -> WriteDecision {
        if op == DurableOp::JournalAppend {
            self.seen += 1;
            if self.seen == self.n {
                return WriteDecision::Abort { partial: None };
            }
        }
        WriteDecision::Proceed
    }
}

#[derive(Serialize)]
struct CrashCase {
    /// Steps durably completed when the run died.
    completed_steps: u64,
    /// Wall time of the run that crashed (context, not gated).
    crashed_run_ms: f64,
    /// Wall time of `--resume` from the crashed state.
    resume_ms: f64,
    /// Wall time of rebuilding the same plan cold.
    cold_ms: f64,
    /// Steps the resume actually re-ran.
    resume_steps_run: u64,
    ratio: f64,
}

#[derive(Serialize)]
struct Report {
    seed: u64,
    scale: f64,
    smoke: bool,
    days: u32,
    window_days: i64,
    steps: u64,
    n_logs: usize,
    host_cpus: usize,
    cases: Vec<CrashCase>,
    /// Total wall time of the cold rebuilds.
    cold_ms: f64,
    /// Total wall time of the resumes over the same crash points.
    resume_ms: f64,
    speedup: f64,
    speedup_asserted: bool,
    /// Every resume byte-identical to its cold rebuild (asserted).
    identical: bool,
}

/// The identity surface: the mined models themselves. Cache hit/miss
/// stats legitimately differ between a resumed and a cold run.
fn results_of(outcome: &WindowOutcome) -> String {
    format!("{:?}\n{:?}\n{:?}", outcome.l1, outcome.l2, outcome.l3)
}

fn fresh_path(dir: &Path, name: &str) -> PathBuf {
    let path = dir.join(name);
    for suffix in [
        "",
        ".journal",
        ".ledger",
        ".quarantine",
        ".tmp",
        ".journal.tmp",
    ] {
        let mut victim = path.as_os_str().to_os_string();
        victim.push(suffix);
        let _ = std::fs::remove_file(&victim);
    }
    path
}

fn run(
    wb: &Workbench,
    cfg: &PipelineConfig,
    plan: &DailyPlan,
    path: &Path,
    resume: bool,
    policy: &mut dyn WritePolicy,
) -> Result<DailyReport, DurableError> {
    run_daily_durable(
        &wb.out.store,
        &wb.service_ids,
        cfg,
        plan,
        path,
        resume,
        policy,
        &mut |_, _| {},
    )
}

fn main() {
    let mut seed = DEFAULT_SEED;
    let mut scale = 0.5f64;
    let mut smoke = false;
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" if i + 1 < args.len() => {
                seed = args[i + 1].parse().expect("--seed takes an integer");
                i += 2;
            }
            "--scale" if i + 1 < args.len() => {
                scale = args[i + 1].parse().expect("--scale takes a float");
                i += 2;
            }
            "--smoke" => {
                smoke = true;
                i += 1;
            }
            other => {
                eprintln!("ignoring unknown argument {other:?}");
                i += 1;
            }
        }
    }
    let window_days: i64 = if smoke { 2 } else { 7 };
    let steps: u64 = if smoke { 2 } else { 6 };
    if smoke {
        scale = 0.15;
    }

    let mut sim = SimConfig::paper_week(seed, scale);
    sim.days = u32::try_from(window_days + i64::try_from(steps).expect("small")).expect("small");
    let wb = Workbench::from_config(&sim);
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "recovery bench: seed {seed}, scale {scale}, {} days, window {window_days} days, \
         {steps} step(s), {} logs, host has {host_cpus} cpu(s)",
        wb.days,
        wb.out.store.len()
    );

    let cfg = PipelineConfig {
        l1: Some(wb.l1_config()),
        l2: Some(wb.l2_config()),
        l3: Some(wb.l3_config()),
        par: ParConfig::default(),
    };
    let plan = DailyPlan {
        start_day: 0,
        window_days,
        advance_days: 1,
        steps,
    };
    let dir = std::env::temp_dir().join(format!("logdep-recovery-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");

    // Reference: one uninterrupted run, for the identity checks.
    let ref_path = fresh_path(&dir, "reference.ck");
    let ref_report = run(&wb, &cfg, &plan, &ref_path, false, &mut NoopPolicy).expect("reference");
    let ref_results = results_of(&ref_report.final_outcome);
    let ref_bytes = std::fs::read(&ref_path).expect("reference checkpoint");

    // Crash after roughly half the steps, after all but one, and after
    // the whole plan completed (the pure skip-everything resume).
    let crash_after: Vec<u64> = if smoke {
        vec![1, steps]
    } else {
        vec![steps / 2, steps - 1, steps]
    };

    let ms = |t: Instant| t.elapsed().as_secs_f64() * 1_000.0;
    let mut cases = Vec::new();
    let mut resume_total = 0.0f64;
    let mut cold_total = 0.0f64;
    for &completed in &crash_after {
        let path = fresh_path(&dir, &format!("crash-{completed}.ck"));
        let crashed_run_ms = if completed < steps {
            // The append of step `completed + 1` is the write that dies.
            let mut policy = CrashAtJournalAppend {
                n: completed + 1,
                seen: 0,
            };
            let t = Instant::now();
            match run(&wb, &cfg, &plan, &path, false, &mut policy) {
                Err(DurableError::Crashed { .. }) => {}
                other => panic!("crash point never fired: {other:?}"),
            }
            ms(t)
        } else {
            // "Crash" after completion: a finished run that is simply
            // invoked again with --resume the next night.
            let t = Instant::now();
            run(&wb, &cfg, &plan, &path, false, &mut NoopPolicy).expect("full run");
            ms(t)
        };

        let t = Instant::now();
        let resumed =
            run(&wb, &cfg, &plan, &path, true, &mut NoopPolicy).expect("resume after crash");
        let resume_ms = ms(t);

        let cold_path = fresh_path(&dir, &format!("cold-{completed}.ck"));
        let t = Instant::now();
        let cold = run(&wb, &cfg, &plan, &cold_path, false, &mut NoopPolicy).expect("cold rebuild");
        let cold_ms = ms(t);

        assert_eq!(
            results_of(&resumed.final_outcome),
            ref_results,
            "resume from step {completed} diverged from the reference models"
        );
        assert_eq!(
            results_of(&cold.final_outcome),
            ref_results,
            "cold rebuild diverged from the reference models"
        );
        let resumed_bytes = std::fs::read(&path).expect("resumed checkpoint");
        let cold_bytes = std::fs::read(&cold_path).expect("cold checkpoint");
        assert_eq!(
            resumed_bytes, ref_bytes,
            "resumed checkpoint not byte-identical to the reference"
        );
        assert_eq!(
            cold_bytes, ref_bytes,
            "cold checkpoint not byte-identical to the reference"
        );
        let verified = verify_store(&path).expect("verify after resume");
        assert!(
            verified.clean() && verified.journal_records == 0,
            "store unclean after resume: {verified:?}"
        );

        let ratio = cold_ms / resume_ms;
        println!(
            "  crash after {completed}/{steps}: crashed run {crashed_run_ms:8.1} ms, \
             resume {resume_ms:8.1} ms ({} step(s) re-run), cold {cold_ms:8.1} ms \
             ({ratio:.2}x)",
            resumed.steps_run
        );
        resume_total += resume_ms;
        cold_total += cold_ms;
        cases.push(CrashCase {
            completed_steps: completed,
            crashed_run_ms,
            resume_ms,
            cold_ms,
            resume_steps_run: resumed.steps_run,
            ratio,
        });
    }

    let speedup = cold_total / resume_total;
    let speedup_asserted = !smoke;
    if speedup_asserted {
        assert!(
            speedup >= 3.0,
            "expected >= 3x resume-over-cold speedup aggregated across crash points, \
             got {speedup:.2}x (cold {cold_total:.1} ms, resume {resume_total:.1} ms)"
        );
        println!(
            "recovery gate passed: {speedup:.2}x resume over cold across {} crash point(s)",
            cases.len()
        );
    } else {
        println!("recovery gate skipped (smoke mode): {speedup:.2}x observed");
    }

    let report = Report {
        seed,
        scale,
        smoke,
        days: wb.days,
        window_days,
        steps,
        n_logs: wb.out.store.len(),
        host_cpus,
        cases,
        cold_ms: cold_total,
        resume_ms: resume_total,
        speedup,
        speedup_asserted,
        identical: true,
    };
    let path = write_report("BENCH_recovery", &report);
    println!("wrote {}", path.display());
    let root = "BENCH_recovery.json";
    std::fs::write(
        root,
        serde_json::to_string_pretty(&report).expect("serialize report"),
    )
    .expect("write repo-root report");
    println!("wrote {root}");
}
