//! Robustness sweep: fault intensity vs detection quality.
//!
//! Simulates the calibrated week, then for each fault intensity x ∈
//! [0, 1]: re-emits the stream through the `logdep-faults` injector,
//! consolidates it back through the resilient ingest path (quarantine,
//! repair, dedup), runs the degradation-tolerant pipeline (L1/L2/L3 in
//! isolation), and scores every detector plus the rescaled-vote
//! ensemble against the simulator's ground truth. Emits a JSON
//! robustness curve under `target/experiments/robustness.json`.
//!
//! Invariants checked on every run:
//! * intensity 0 reproduces the clean pipeline's precision/recall
//!   exactly (the injector is the identity, ingest repairs nothing);
//! * every nonzero intensity completes without panic and reports
//!   ingest + detector health.
//!
//! `--smoke` runs a one-day, low-scale variant with hard assertions
//! (nonzero quarantine, complete model) for CI.

use logdep::health::{run_pipeline, PipelineConfig, PipelineOutcome};
use logdep::model::{diff_app_service, diff_pairs, AppServiceModel, PairModel};
use logdep_bench::workbench::{write_report, Workbench, DEFAULT_SEED};
use logdep_faults::{inject, FaultConfig};
use logdep_logstore::codec::write_store;
use logdep_logstore::ingest::{read_store_resilient, IngestPolicy};
use logdep_logstore::time::TimeRange;
use logdep_logstore::{LogStore, Millis, SourceId};
use logdep_par::ParConfig;
use serde::Serialize;

#[derive(Serialize, Clone, Copy, PartialEq, Debug)]
struct Score {
    tp: usize,
    fp: usize,
    fn_: usize,
    precision: f64,
    recall: f64,
}

impl Score {
    fn from_pairs(detected: &PairModel, reference: &PairModel) -> Self {
        let d = diff_pairs(detected, reference);
        Self {
            tp: d.tp(),
            fp: d.fp(),
            fn_: d.fn_(),
            precision: d.true_positive_ratio(),
            recall: d.recall(),
        }
    }

    fn from_app_service(detected: &AppServiceModel, reference: &AppServiceModel) -> Self {
        let d = diff_app_service(detected, reference);
        Self {
            tp: d.tp(),
            fp: d.fp(),
            fn_: d.fn_(),
            precision: d.true_positive_ratio(),
            recall: d.recall(),
        }
    }
}

#[derive(Serialize)]
struct DetectorPoint {
    ok: bool,
    error: Option<String>,
    score: Option<Score>,
}

#[derive(Serialize)]
struct SweepPoint {
    intensity: f64,
    // Injection damage (from the FaultLedger).
    records_lost: usize,
    records_duplicated: usize,
    lines_corrupted: usize,
    skewed_sources: usize,
    // Ingest repair (from the IngestReport).
    lines_quarantined: usize,
    records_deduped: usize,
    out_of_order_repaired: usize,
    skew_estimates: usize,
    // Detection quality.
    l1: DetectorPoint,
    l2: DetectorPoint,
    l3: DetectorPoint,
    ensemble_majority: Score,
    detectors_ok: usize,
}

#[derive(Serialize)]
struct RobustnessReport {
    seed: u64,
    scale: f64,
    days: u32,
    points: Vec<SweepPoint>,
}

struct Refs {
    pair_ref: PairModel,
    svc_ref: AppServiceModel,
    owners: Vec<SourceId>,
}

/// Resolves ground truth and the owner relation against a (possibly
/// degraded) store's registry. Truth names whose application lost its
/// every record are interned first, so reference pairs they appear in
/// survive as countable false negatives instead of resolution errors —
/// recall stays honest under heavy loss.
fn resolve_refs(store: &mut LogStore, wb: &Workbench) -> Refs {
    for name in wb.out.truth.app_names.iter() {
        store.registry.source(name);
    }
    let owners: Vec<SourceId> = wb
        .out
        .topology
        .services
        .iter()
        .map(|s| store.registry.source(&wb.out.topology.apps[s.owner].name))
        .collect();
    let pair_ref = PairModel::from_names(
        &store.registry,
        wb.out
            .truth
            .app_pairs
            .iter()
            .map(|(a, b)| (a.as_str(), b.as_str())),
    )
    .expect("truth names interned above");
    let svc_ref = AppServiceModel::from_names(
        &store.registry,
        &wb.service_ids,
        wb.out
            .truth
            .app_service
            .iter()
            .map(|(a, s)| (a.as_str(), s.as_str())),
    )
    .expect("truth service ids are directory ids");
    Refs {
        pair_ref,
        svc_ref,
        owners,
    }
}

fn detector_point(health: &logdep::health::DetectorHealth, score: Option<Score>) -> DetectorPoint {
    DetectorPoint {
        ok: health.ok,
        error: health.error.clone(),
        score,
    }
}

fn score_outcome(
    out: &PipelineOutcome,
    refs: &Refs,
) -> (DetectorPoint, DetectorPoint, DetectorPoint, Score) {
    let l1 = detector_point(
        &out.health[0],
        out.l1_pairs
            .as_ref()
            .map(|m| Score::from_pairs(m, &refs.pair_ref)),
    );
    let l2 = detector_point(
        &out.health[1],
        out.l2_pairs
            .as_ref()
            .map(|m| Score::from_pairs(m, &refs.pair_ref)),
    );
    let l3 = detector_point(
        &out.health[2],
        out.l3_deps
            .as_ref()
            .map(|m| Score::from_app_service(m, &refs.svc_ref)),
    );
    let ens = Score::from_pairs(&out.ensemble.at_least_rescaled(2), &refs.pair_ref);
    (l1, l2, l3, ens)
}

fn pipeline_config(wb: &Workbench) -> PipelineConfig {
    PipelineConfig {
        l1: Some(wb.l1_config()),
        l2: Some(wb.l2_config()),
        l3: Some(wb.l3_config()),
        par: ParConfig::default(),
    }
}

fn main() {
    let mut seed = DEFAULT_SEED;
    let mut scale = 0.5f64;
    let mut smoke = false;
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" if i + 1 < args.len() => {
                seed = args[i + 1].parse().expect("--seed takes an integer");
                i += 2;
            }
            "--scale" if i + 1 < args.len() => {
                scale = args[i + 1].parse().expect("--scale takes a float");
                i += 2;
            }
            "--smoke" => {
                smoke = true;
                i += 1;
            }
            other => {
                eprintln!("ignoring unknown argument {other:?}");
                i += 1;
            }
        }
    }

    let mut cfg = logdep_sim::SimConfig::paper_week(seed, if smoke { 0.15 } else { scale });
    if smoke {
        cfg.days = 1;
    }
    let wb = Workbench::from_config(&cfg);
    let range = TimeRange::new(Millis(0), Millis::from_days(wb.days as i64));
    let pcfg = pipeline_config(&wb);

    // Clean baseline: the pristine store re-read through the same
    // serialize → resilient-ingest path the sweep uses. The simulator
    // can legitimately emit identical (timestamp, source, message)
    // records that consolidation dedups as a policy; routing the
    // baseline through the identical path makes the zero point
    // comparable record-for-record by construction.
    let mut clean_tsv = Vec::new();
    write_store(&mut clean_tsv, &wb.out.store).expect("serialize pristine store");
    let (mut clean_store, clean_report) =
        read_store_resilient(clean_tsv.as_slice(), &IngestPolicy::default())
            .expect("pristine stream is within any error budget");
    assert_eq!(clean_report.quarantined, 0, "pristine stream parses fully");
    let clean_refs = resolve_refs(&mut clean_store, &wb);
    let clean_out = run_pipeline(
        &clean_store,
        range,
        &wb.service_ids,
        Some(&clean_refs.owners),
        &pcfg,
    );
    let (c_l1, c_l2, c_l3, c_ens) = score_outcome(&clean_out, &clean_refs);
    assert!(clean_out.fully_healthy(), "clean pipeline must be healthy");
    println!(
        "clean pipeline: L1 p={:.3} r={:.3}  L2 p={:.3} r={:.3}  L3 p={:.3} r={:.3}  ens p={:.3} r={:.3}",
        c_l1.score.expect("l1 ran").precision,
        c_l1.score.expect("l1 ran").recall,
        c_l2.score.expect("l2 ran").precision,
        c_l2.score.expect("l2 ran").recall,
        c_l3.score.expect("l3 ran").precision,
        c_l3.score.expect("l3 ran").recall,
        c_ens.precision,
        c_ens.recall,
    );

    let intensities: &[f64] = if smoke {
        &[0.0, 0.5]
    } else {
        &[0.0, 0.2, 0.4, 0.6, 0.8, 1.0]
    };

    let mut points = Vec::new();
    for &intensity in intensities {
        let injection = inject(&wb.out.store, &FaultConfig::at_intensity(seed, intensity));
        let (mut store, report) =
            read_store_resilient(injection.tsv.as_bytes(), &IngestPolicy::default())
                .expect("fault profile stays within the default error budget");
        let refs = resolve_refs(&mut store, &wb);
        let out = run_pipeline(&store, range, &wb.service_ids, Some(&refs.owners), &pcfg);
        let (l1, l2, l3, ens) = score_outcome(&out, &refs);

        println!(
            "intensity {intensity:.1}: {} | ingest: {} | {}/3 detectors ok, ens p={:.3} r={:.3}",
            injection.ledger.summary(),
            report.summary(),
            out.detectors_ok(),
            ens.precision,
            ens.recall,
        );

        if intensity == 0.0 {
            // The injector is the identity and ingest repairs nothing:
            // the sweep's zero point IS the clean pipeline.
            assert_eq!(report.quarantined, 0, "intensity 0 quarantines nothing");
            assert_eq!(
                report.deduped, clean_report.deduped,
                "intensity 0 dedups exactly what the clean path dedups"
            );
            assert_eq!(
                (l1.score, l2.score, l3.score, ens),
                (c_l1.score, c_l2.score, c_l3.score, c_ens),
                "intensity 0 must reproduce the clean pipeline exactly"
            );
        } else {
            assert!(
                injection.ledger.total_lost() > 0 || injection.ledger.corruption.total() > 0,
                "nonzero intensity must inject damage"
            );
        }
        if smoke && intensity > 0.0 {
            assert!(report.quarantined > 0, "smoke: corruption must quarantine");
            assert_eq!(out.health.len(), 3, "smoke: health for all detectors");
            assert!(
                !out.ensemble.is_empty(),
                "smoke: degraded run still produces a model"
            );
        }

        points.push(SweepPoint {
            intensity,
            records_lost: injection.ledger.total_lost(),
            records_duplicated: injection.ledger.duplicated,
            lines_corrupted: injection.ledger.corruption.total(),
            skewed_sources: injection.ledger.skew_applied_ms.len(),
            lines_quarantined: report.quarantined,
            records_deduped: report.deduped,
            out_of_order_repaired: report.repaired_out_of_order,
            skew_estimates: report.per_source_skew_ms.len(),
            l1,
            l2,
            l3,
            ensemble_majority: ens,
            detectors_ok: out.detectors_ok(),
        });
    }

    let report = RobustnessReport {
        seed,
        scale: cfg.workload.scale,
        days: wb.days,
        points,
    };
    let path = write_report("robustness", &report);
    println!("wrote {}", path.display());
    if smoke {
        println!("smoke assertions passed");
    }
}
