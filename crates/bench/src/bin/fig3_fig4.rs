//! Figures 3 and 4: the paper's running example of technique L2.
//!
//! Figure 3 shows an excerpt of a user session — a controlling client
//! `A2` calls `A1`, then twice `A3`, which in turn calls `A4` — and
//! Figure 4 the contingency table for the bigram type `(A2, A3)`.
//! This binary reconstructs the exact example, extracts the bigrams
//! (with and without the 0.5 s timeout the text discusses), and prints
//! the table, checked against the paper's published counts.

use logdep::l2::extract_bigrams;
use logdep_bench::workbench::write_report;
use logdep_logstore::{HostId, Millis, SourceId, UserId};
use logdep_sessions::{Session, SessionEntry};
use logdep_stats::contingency::Table2x2;
use serde::Serialize;

#[derive(Serialize)]
struct Fig34Report {
    bigrams: Vec<(String, String)>,
    table_a2_a3: (u64, u64, u64, u64),
    paper_table: (u64, u64, u64, u64),
    bigrams_without_last: usize,
}

fn main() {
    // The session of Figure 3 (times in seconds from the first log,
    // sources A1..A4 as indices 1..4). The final gap is 0.6 s.
    let entries = [
        (0.0, 2),
        (0.1, 1),
        (0.2, 2),
        (0.3, 3),
        (0.4, 4),
        (0.5, 2),
        (0.6, 3),
        (0.7, 4),
        (1.3, 2),
    ];
    let session = Session {
        user: UserId(0),
        host: HostId(0),
        entries: entries
            .iter()
            .map(|&(t, s)| SessionEntry {
                ts: Millis::from_secs_f64(t),
                source: SourceId(s),
            })
            .collect(),
    };

    println!("Figure 3 — the running example session (source per log):");
    let seq: Vec<String> = entries.iter().map(|&(_, s)| format!("A{s}")).collect();
    println!("  {}\n", seq.join(" → "));

    let counts = extract_bigrams(std::slice::from_ref(&session), None);
    let mut bigrams: Vec<(String, String)> = counts
        .joint
        .iter()
        .flat_map(|(&(a, b), &n)| {
            std::iter::repeat_n((format!("A{}", a.0), format!("A{}", b.0)), n as usize)
        })
        .collect();
    bigrams.sort();
    println!("bigrams (paper: (a2,a1),(a1,a2),(a2,a3),(a3,a4),(a4,a2),(a2,a3),(a3,a4),(a4,a2)):");
    println!(
        "  {} bigrams over {} types\n",
        counts.total,
        counts.n_types()
    );

    // Figure 4: contingency table for (A2, A3).
    let f = counts.joint[&(SourceId(2), SourceId(3))];
    let f1 = counts.first_margin[&SourceId(2)];
    let f2 = counts.second_margin[&SourceId(3)];
    let table = Table2x2::from_marginals(f, f1, f2, counts.total).expect("valid margins");
    println!("Figure 4 — contingency table for bigram type (A2, A3):");
    println!("              a = A2   a ≠ A2");
    println!("  b = A3    {:>7} {:>8}", table.o11, table.o12);
    println!("  b ≠ A3    {:>7} {:>8}", table.o21, table.o22);
    println!("  (paper:        2        0  /      1        5)\n");
    assert_eq!(
        (table.o11, table.o12, table.o21, table.o22),
        (2, 0, 1, 5),
        "running example must match the paper exactly"
    );

    // The timeout remark: "the last bigram (A4, A2) would be ignored
    // for any timeout value between 0 and 0.5 seconds".
    let with_timeout = extract_bigrams(std::slice::from_ref(&session), Some(500));
    println!(
        "with a 0.5 s timeout: {} bigrams (paper: the final (A4, A2) is dropped)",
        with_timeout.total
    );
    assert_eq!(with_timeout.total, counts.total - 1);

    let path = write_report(
        "fig3_fig4",
        &Fig34Report {
            bigrams,
            table_a2_a3: (table.o11, table.o12, table.o21, table.o22),
            paper_table: (2, 0, 1, 5),
            bigrams_without_last: with_timeout.total as usize,
        },
    );
    println!("report: {}", path.display());
}
