//! Figure 9: influence of the system's load on techniques L1 and L2.
//!
//! Paper (§4.9): using L3 as a dynamic oracle for each of the 168
//! hours (after removing 4 applications that do not log all of their
//! invocations), the percentage p₁ of realized dependencies found by
//! L1 *decreases* with the number of logs (slope CI [−0.284, −0.215],
//! strictly negative) while p₂ for L2 is load-insensitive (slope CI
//! [−0.025, 0.002] contains zero). The false-positive ratios of both
//! techniques are also load-insensitive.

use logdep::eval::{load_experiment, LoadConfig};
use logdep_bench::ascii::sparkline;
use logdep_bench::workbench::{cli_seed_scale, Workbench};
use serde::Serialize;

#[derive(Serialize)]
struct Fig9Report {
    experiment: logdep::eval::LoadExperiment,
    paper_slope_p1: (f64, f64),
    paper_slope_p2: (f64, f64),
}

fn main() {
    let (seed, scale) = cli_seed_scale();
    let wb = Workbench::paper_week(seed, scale);
    // Hourly slices carry far fewer logs than full days at this scale,
    // so the per-hour runs use proportionally lower support thresholds
    // (the paper's full-scale night hours still clear minlogs = 100).
    let l1_hourly = logdep::l1::L1Config {
        minlogs: 10,
        ..wb.l1_config()
    };
    let l2_hourly = logdep::l2::L2Config {
        alpha: 0.10,
        min_joint: 2,
        session: logdep_sessions::SessionConfig {
            min_logs: 2,
            ..Default::default()
        },
        ..wb.l2_config()
    };
    // The oracle only admits dependencies realized substantially in the
    // hour (3+ citations), mirroring the paper's focus on realizations.
    let l3_oracle = logdep::l3::L3Config {
        min_citations: 3,
        ..wb.l3_config()
    };
    let cfg = LoadConfig {
        days: wb.days,
        l1: l1_hourly,
        l2: l2_hourly,
        l3: l3_oracle,
        exclude_apps: wb.excluded.clone(),
        ci_level: 0.95,
        min_oracle_pairs: 3,
    };
    let exp = load_experiment(
        &wb.out.store,
        &wb.service_ids,
        &wb.owners,
        &wb.pair_ref,
        &cfg,
    )
    .expect("load experiment");

    println!("Figure 9 — system load vs hourly detection (L3 as dynamic oracle)");
    println!("paper: slope(p1) CI [-0.284, -0.215] (strictly negative);");
    println!("       slope(p2) CI [-0.025, 0.002] (contains zero)\n");

    let loads: Vec<f64> = exp.points.iter().map(|p| p.n_logs as f64).collect();
    let p1: Vec<f64> = exp.points.iter().map(|p| p.p1).collect();
    let p2: Vec<f64> = exp.points.iter().map(|p| p.p2).collect();
    println!("hours used: {}", exp.points.len());
    println!("load {}", sparkline(&loads));
    println!("p1   {}", sparkline(&p1));
    println!("p2   {}", sparkline(&p2));

    println!(
        "\nslope(p1) CI: [{:.3}, {:.3}] strictly negative: {}",
        exp.slope_p1.lower,
        exp.slope_p1.upper,
        exp.slope_p1.strictly_negative()
    );
    println!(
        "slope(p2) CI: [{:.3}, {:.3}] contains zero: {}",
        exp.slope_p2.lower,
        exp.slope_p2.upper,
        exp.slope_p2.contains_zero()
    );
    println!(
        "slope(fp1 ratio) CI: [{:.3}, {:.3}] contains zero: {}",
        exp.slope_fp1.lower,
        exp.slope_fp1.upper,
        exp.slope_fp1.contains_zero()
    );
    println!(
        "slope(fp2 ratio) CI: [{:.3}, {:.3}] contains zero: {}",
        exp.slope_fp2.lower,
        exp.slope_fp2.upper,
        exp.slope_fp2.contains_zero()
    );
    // Residual-normality check as in the paper (QQ straightness).
    let straightness = |qq: &[(f64, f64)]| -> f64 {
        if qq.len() < 3 {
            return 0.0;
        }
        let xs: Vec<f64> = qq.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = qq.iter().map(|p| p.1).collect();
        logdep_stats::regression::linear_fit(&xs, &ys)
            .map(|f| f.r_squared)
            .unwrap_or(0.0)
    };
    println!(
        "QQ straightness (R² of qq line) p1: {:.3}, p2: {:.3} (paper: verified by qqplots)",
        straightness(&exp.qq_p1),
        straightness(&exp.qq_p2)
    );

    let path = wb.report(
        "fig9",
        &Fig9Report {
            experiment: exp,
            paper_slope_p1: (-0.284, -0.215),
            paper_slope_p2: (-0.025, 0.002),
        },
    );
    println!("report: {}", path.display());
}
