//! Calibration scratchpad: runs all three techniques over the paper
//! week and prints the daily series next to the paper's target bands.

use logdep::eval::{l1_daily, l2_daily, l3_daily};
use logdep::l1::L1Config;
use logdep::l2::L2Config;
use logdep::l3::L3Config;
use logdep::{AppServiceModel, PairModel};
use logdep_sim::textgen::standard_stop_patterns;
use logdep_sim::{simulate, SimConfig};

fn main() {
    let out = simulate(&SimConfig::paper_week(42, 1.0));
    let store = &out.store;
    let truth = &out.truth;

    let pair_ref = PairModel::from_names(
        &store.registry,
        truth
            .app_pairs
            .iter()
            .map(|(a, b)| (a.as_str(), b.as_str())),
    )
    .expect("app names resolve");
    let service_ids: Vec<String> = out.directory.ids().iter().map(|s| s.to_string()).collect();
    let svc_ref = AppServiceModel::from_names(
        &store.registry,
        &service_ids,
        truth
            .app_service
            .iter()
            .map(|(a, s)| (a.as_str(), s.as_str())),
    )
    .expect("ids resolve");

    println!(
        "reference: {} pairs, {} app-service",
        pair_ref.len(),
        svc_ref.len()
    );

    // --- L3 (paper: TP 141-152 weekday / 116-117 weekend; FP 7-11 / 5).
    let l3cfg = L3Config::with_stop_patterns(standard_stop_patterns());
    let s3 = l3_daily(store, 7, &service_ids, &l3cfg, &svc_ref).unwrap();
    println!("\nL3 (paper tp 141-152 wd, 116 we; fp 7-11; tpr ci [.93,.96]):");
    for d in &s3.days {
        println!(
            "  day {} tp {} fp {} fn {} tpr {:.3}",
            d.day, d.tp, d.fp, d.fn_, d.tpr
        );
    }
    let ci = s3.tpr_median_ci(0.984).unwrap();
    println!("  tpr median ci [{:.3},{:.3}]", ci.lower, ci.upper);

    // --- L2 (paper: tp 62-74 wd, 51/52 we; fp 21-25 / 19-21; ci [.71,.78]).
    let l2cfg = L2Config::default();
    let s2 = l2_daily(store, 7, &l2cfg, &pair_ref).unwrap();
    println!("\nL2 (paper tp 62-74 wd, ~51 we; fp 21-25; tpr ci [.71,.78]):");
    for d in &s2.days {
        println!(
            "  day {} tp {} fp {} fn {} tpr {:.3}",
            d.day, d.tp, d.fp, d.fn_, d.tpr
        );
    }
    let ci = s2.tpr_median_ci(0.984).unwrap();
    println!("  tpr median ci [{:.3},{:.3}]", ci.lower, ci.upper);

    // --- L1 (paper: tp 30-46, fp 11-22, tpr ci [.63,.73]).
    let sources = store.active_sources();
    // Near-miss diagnostics on day 0 with minlogs=25.
    {
        use logdep::l1::run_l1;
        use logdep_logstore::time::TimeRange;
        let l1cfg = L1Config {
            minlogs: 25,
            seed: 7,
            ..L1Config::default()
        };
        let res = run_l1(store, TimeRange::day(0), &sources, &l1cfg).unwrap();
        let mut bands = [0usize; 5];
        for o in &res.outcomes {
            if o.support >= 8 {
                let b = ((o.pr * 5.0) as usize).min(4);
                bands[b] += 1;
            }
        }
        println!("\nL1 day0 pr bands (support>=8) [0-.2,.2-.4,.4-.6,.6-.8,.8-1]: {bands:?}");
        let tested: usize = res.outcomes.len();
        println!("pairs with any support: {tested}");
    }
    for minlogs in [15usize, 25, 40] {
        let l1cfg = L1Config {
            minlogs,
            seed: 7,
            ..L1Config::default()
        };
        let s1 = l1_daily(store, 7, &sources, &l1cfg, &pair_ref).unwrap();
        println!("\nL1 minlogs={minlogs} (paper tp 30-46; fp 11-22; tpr ci [.63,.73]):");
        for d in &s1.days {
            println!(
                "  day {} tp {} fp {} fn {} tpr {:.3}",
                d.day, d.tp, d.fp, d.fn_, d.tpr
            );
        }
    }
}
