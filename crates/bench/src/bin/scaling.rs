//! Thread-scaling sweep of the deterministic parallel detector engine.
//!
//! Runs the full degradation-tolerant pipeline (L1 + L2 + L3 +
//! ensemble) over the calibrated simulated week at pool widths 1, 2, 4
//! and 8, and emits a scaling curve under
//! `target/experiments/BENCH_scaling.json`.
//!
//! Invariants checked on every run:
//! * the mined dependency model is **bit-identical at every thread
//!   count** (the whole point of `logdep-par`'s chunk-ordered merge) —
//!   a canonical serialization of each run is compared against the
//!   `threads = 1` baseline and any mismatch aborts;
//! * on a host with ≥ 4 cores the 4-thread run must be at least 2×
//!   faster than the serial run (skipped in `--smoke` mode and on
//!   smaller hosts, where the speedup is physically unobservable; the
//!   report records `host_cpus` so a curve is never read out of
//!   context).
//!
//! `--smoke` runs a one-day, low-scale variant for CI: equivalence is
//! still hard-asserted, timing is recorded but not judged.

use logdep::health::{run_pipeline, PipelineConfig, PipelineOutcome};
use logdep_bench::workbench::{write_report, Workbench, DEFAULT_SEED};
use logdep_logstore::time::TimeRange;
use logdep_logstore::Millis;
use logdep_par::ParConfig;
use logdep_sim::SimConfig;
use serde::Serialize;
use std::time::Instant;

const SWEEP: [usize; 4] = [1, 2, 4, 8];

#[derive(Serialize)]
struct Point {
    threads: usize,
    wall_ms: f64,
    l1_us: u64,
    l2_us: u64,
    l3_us: u64,
    /// Canonical model identical to the serial baseline (asserted).
    identical_to_serial: bool,
    speedup_vs_serial: f64,
}

#[derive(Serialize)]
struct Report {
    seed: u64,
    scale: f64,
    smoke: bool,
    days: u32,
    n_logs: usize,
    /// `std::thread::available_parallelism` on the machine that
    /// produced this curve — speedups above it are unobservable.
    host_cpus: usize,
    speedup_asserted: bool,
    points: Vec<Point>,
}

/// Canonical text form of everything scientific in a pipeline outcome:
/// models, ensemble votes, health verdicts — everything except the
/// wall-clock fields, which legitimately vary run to run.
fn canonical(out: &PipelineOutcome) -> String {
    let mut s = String::new();
    if let Some(p) = &out.l1_pairs {
        for (a, b) in p.iter() {
            s.push_str(&format!("l1 {a:?}<->{b:?}\n"));
        }
    }
    if let Some(p) = &out.l2_pairs {
        for (a, b) in p.iter() {
            s.push_str(&format!("l2 {a:?}<->{b:?}\n"));
        }
    }
    if let Some(m) = &out.l3_deps {
        for (app, svc) in m.iter() {
            s.push_str(&format!("l3 {app:?}->{svc}\n"));
        }
    }
    if let Some(p) = &out.l3_pairs {
        for (a, b) in p.iter() {
            s.push_str(&format!("l3p {a:?}<->{b:?}\n"));
        }
    }
    for ((a, b), support) in out.ensemble.iter() {
        s.push_str(&format!("vote {a:?}<->{b:?} {support:?}\n"));
    }
    for h in &out.health {
        s.push_str(&format!(
            "health {} ok={} enabled={} detected={} error={:?}\n",
            h.detector, h.ok, h.enabled, h.detected, h.error
        ));
    }
    s
}

fn detector_us(out: &PipelineOutcome, idx: usize) -> u64 {
    out.health.get(idx).map_or(0, |h| h.elapsed_us)
}

fn main() {
    let mut seed = DEFAULT_SEED;
    let mut scale = 0.5f64;
    let mut smoke = false;
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" if i + 1 < args.len() => {
                seed = args[i + 1].parse().expect("--seed takes an integer");
                i += 2;
            }
            "--scale" if i + 1 < args.len() => {
                scale = args[i + 1].parse().expect("--scale takes a float");
                i += 2;
            }
            "--smoke" => {
                smoke = true;
                i += 1;
            }
            other => {
                eprintln!("ignoring unknown argument {other:?}");
                i += 1;
            }
        }
    }
    if smoke {
        scale = 0.15;
    }

    let mut cfg = SimConfig::paper_week(seed, scale);
    if smoke {
        cfg.days = 1;
    }
    let wb = Workbench::from_config(&cfg);
    let range = TimeRange::new(Millis(0), Millis::from_days(i64::from(wb.days)));
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "scaling sweep: seed {seed}, scale {scale}, {} days, {} logs, host has {host_cpus} cpu(s)",
        wb.days,
        wb.out.store.len()
    );

    let mut points: Vec<Point> = Vec::new();
    let mut baseline: Option<(String, f64)> = None;
    for threads in SWEEP {
        let par = ParConfig::with_threads(threads).expect("sweep widths are >= 1");
        let pcfg = PipelineConfig {
            l1: Some(wb.l1_config()),
            l2: Some(wb.l2_config()),
            l3: Some(wb.l3_config()),
            par,
        };
        let start = Instant::now();
        let out = run_pipeline(
            &wb.out.store,
            range,
            &wb.service_ids,
            Some(&wb.owners),
            &pcfg,
        );
        let wall_ms = start.elapsed().as_secs_f64() * 1_000.0;
        assert!(
            out.fully_healthy(),
            "pipeline degraded at {threads} threads: {:?}",
            out.health
        );

        let snapshot = canonical(&out);
        let (serial_snapshot, serial_ms) = match &baseline {
            None => {
                baseline = Some((snapshot.clone(), wall_ms));
                (snapshot.clone(), wall_ms)
            }
            Some((s, ms)) => (s.clone(), *ms),
        };
        assert_eq!(
            snapshot, serial_snapshot,
            "model at {threads} threads differs from the serial baseline"
        );

        let speedup = serial_ms / wall_ms;
        println!(
            "  threads {threads}: {wall_ms:8.1} ms  (l1 {} us, l2 {} us, l3 {} us, speedup {speedup:.2}x)",
            detector_us(&out, 0),
            detector_us(&out, 1),
            detector_us(&out, 2),
        );
        points.push(Point {
            threads,
            wall_ms,
            l1_us: detector_us(&out, 0),
            l2_us: detector_us(&out, 1),
            l3_us: detector_us(&out, 2),
            identical_to_serial: true,
            speedup_vs_serial: speedup,
        });
    }

    let speedup_asserted = !smoke && host_cpus >= 4;
    if speedup_asserted {
        let at4 = points
            .iter()
            .find(|p| p.threads == 4)
            .expect("4 is in the sweep")
            .speedup_vs_serial;
        assert!(
            at4 >= 2.0,
            "expected >= 2x speedup at 4 threads on a {host_cpus}-cpu host, got {at4:.2}x"
        );
        println!("speedup gate passed: {at4:.2}x at 4 threads");
    } else {
        println!(
            "speedup gate skipped ({}); equivalence still asserted at every width",
            if smoke {
                "smoke mode"
            } else {
                "host has < 4 cpus"
            }
        );
    }

    let report = Report {
        seed,
        scale,
        smoke,
        days: wb.days,
        n_logs: wb.out.store.len(),
        host_cpus,
        speedup_asserted,
        points,
    };
    let path = write_report("BENCH_scaling", &report);
    println!("wrote {}", path.display());
}
