//! Ablation of technique L2's association statistic: Dunning's G²
//! versus Pearson's X² (DESIGN.md §6).
//!
//! The paper follows Dunning (1993) in preferring the log-likelihood
//! ratio because Pearson's statistic loses its χ² calibration on the
//! heavily skewed tables bigram data produces — it fires on rare
//! coincidences. This binary runs both gates on the same day and also
//! reports how the significance level α shifts the operating point.

use logdep::l2::{run_l2, L2Config};
use logdep::model::diff_pairs;
use logdep_bench::workbench::{cli_seed_scale, Workbench};
use logdep_logstore::time::TimeRange;
use logdep_stats::contingency::AssociationStatistic;
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    statistic: String,
    alpha: f64,
    tp: usize,
    fp: usize,
    tpr: f64,
}

#[derive(Serialize)]
struct AblationL2Report {
    day: i64,
    points: Vec<Point>,
}

fn main() {
    let (seed, scale) = cli_seed_scale();
    let wb = Workbench::paper_week(seed, scale);
    let day = 0i64;
    let range = TimeRange::day(day);

    println!("L2 association-statistic ablation (day {day})\n");
    println!(
        "{:<9} {:>7} {:>5} {:>5} {:>6}",
        "stat", "alpha", "tp", "fp", "tpr"
    );
    let mut points = Vec::new();
    for stat in [AssociationStatistic::Dunning, AssociationStatistic::Pearson] {
        for alpha in [0.05, 0.01, 0.001] {
            let cfg = L2Config {
                statistic: stat,
                alpha,
                ..wb.l2_config()
            };
            let res = run_l2(&wb.out.store, range, &cfg).expect("L2 run");
            let d = diff_pairs(&res.detected, &wb.pair_ref);
            let name = match stat {
                AssociationStatistic::Dunning => "dunning",
                AssociationStatistic::Pearson => "pearson",
            };
            println!(
                "{:<9} {:>7} {:>5} {:>5} {:>6.2}",
                name,
                alpha,
                d.tp(),
                d.fp(),
                d.true_positive_ratio()
            );
            points.push(Point {
                statistic: name.to_owned(),
                alpha,
                tp: d.tp(),
                fp: d.fp(),
                tpr: d.true_positive_ratio(),
            });
        }
    }

    println!("\n(the paper's choice is Dunning at a strict level; Pearson inflates");
    println!(" the skewed-table statistic and admits more false positives at the");
    println!(" same nominal α)");

    let path = wb.report("ablation_l2", &AblationL2Report { day, points });
    println!("report: {}", path.display());
}
