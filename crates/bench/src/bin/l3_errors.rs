//! §4.8 — the false-negative / false-positive taxonomy of technique
//! L3, on the union of all seven days.
//!
//! Paper: 161 of 177 dependencies detected over the week. 16 false
//! negatives: 6 dormant (reclassified as true negatives), 7 not logged
//! by the applications, 3 logged under an outdated name. 19 false
//! positives: 2 inverted (server-side logs escaping the stop
//! patterns), 5 transitive (exception stack traces), 7 coincidences,
//! 5 similar-but-wrong service ids. Without stop patterns, inverted
//! dependencies rise from 2 to 24.

use logdep::l3::{run_l3, L3Config};
use logdep::model::diff_app_service;
use logdep_bench::workbench::{cli_seed_scale, Workbench};
use logdep_logstore::time::TimeRange;
use logdep_logstore::Millis;
use logdep_sim::topology::CitationStyle;
use serde::Serialize;
use std::collections::BTreeSet;

#[derive(Serialize, Default)]
struct Taxonomy {
    tp: usize,
    // False negatives.
    fn_total: usize,
    fn_dormant: usize,
    fn_unlogged: usize,
    fn_renamed: usize,
    fn_wrong_id: usize,
    fn_other: usize,
    // False positives.
    fp_total: usize,
    fp_inverted: usize,
    fp_transitive_trace: usize,
    fp_coincidence: usize,
    fp_wrong_id: usize,
    fp_other: usize,
    inverted_without_stop_patterns: usize,
}

fn main() {
    let (seed, scale) = cli_seed_scale();
    let wb = Workbench::paper_week(seed, scale);
    let whole_week = TimeRange::new(Millis(0), Millis::from_days(wb.days as i64 + 1));

    let res =
        run_l3(&wb.out.store, whole_week, &wb.service_ids, &wb.l3_config()).expect("L3 union run");
    let diff = diff_app_service(&res.detected, &wb.svc_ref);

    // Name-based taxonomy sets from the generated topology.
    let topo = &wb.out.topology;
    let reg = &wb.out.store.registry;
    let mut dormant = BTreeSet::new();
    let mut unlogged = BTreeSet::new();
    let mut renamed = BTreeSet::new();
    let mut wrong_id_edges = BTreeSet::new(); // the true dep that is miscited
    let mut wrong_id_targets = BTreeSet::new(); // the wrongly cited pair
    for e in &topo.edges {
        let app = reg
            .find_source(&topo.apps[e.caller].name)
            .expect("registered");
        let key = (app, e.service);
        if e.freq == logdep_sim::topology::FreqTier::Dormant {
            dormant.insert(key);
        }
        match e.citation {
            CitationStyle::Unlogged => {
                unlogged.insert(key);
            }
            CitationStyle::Renamed => {
                renamed.insert(key);
            }
            CitationStyle::WrongId(w) => {
                wrong_id_edges.insert(key);
                wrong_id_targets.insert((app, w));
            }
            CitationStyle::Correct => {}
        }
    }
    let coincidences: BTreeSet<(logdep_logstore::SourceId, usize)> = topo
        .coincidence_pairs
        .iter()
        .map(|&(a, s)| (reg.find_source(&topo.apps[a].name).expect("registered"), s))
        .collect();
    // Transitive (stack-trace) pairs: top caller × deep service.
    let trace_pairs: BTreeSet<(logdep_logstore::SourceId, usize)> = topo
        .flaky_chains
        .iter()
        .map(|c| {
            let top = &topo.edges[c.top_edge];
            let deep = &topo.edges[c.deep_edge];
            (
                reg.find_source(&topo.apps[top.caller].name)
                    .expect("registered"),
                deep.service,
            )
        })
        .collect();

    let mut t = Taxonomy {
        tp: diff.tp(),
        fn_total: diff.fn_(),
        fp_total: diff.fp(),
        ..Taxonomy::default()
    };
    for &(app, svc) in &diff.false_neg {
        if dormant.contains(&(app, svc)) {
            t.fn_dormant += 1;
        } else if unlogged.contains(&(app, svc)) {
            t.fn_unlogged += 1;
        } else if renamed.contains(&(app, svc)) {
            t.fn_renamed += 1;
        } else if wrong_id_edges.contains(&(app, svc)) {
            t.fn_wrong_id += 1;
        } else {
            t.fn_other += 1;
        }
    }
    for &(app, svc) in &diff.false_pos {
        if wb.owners[svc] == app {
            t.fp_inverted += 1;
        } else if trace_pairs.contains(&(app, svc)) {
            t.fp_transitive_trace += 1;
        } else if coincidences.contains(&(app, svc)) {
            t.fp_coincidence += 1;
        } else if wrong_id_targets.contains(&(app, svc)) {
            t.fp_wrong_id += 1;
        } else {
            t.fp_other += 1;
        }
    }

    // Ablation: no stop patterns → inverted dependencies jump.
    let res_nostop = run_l3(
        &wb.out.store,
        whole_week,
        &wb.service_ids,
        &L3Config::default(),
    )
    .expect("L3 without stop patterns");
    t.inverted_without_stop_patterns = res_nostop
        .detected
        .iter()
        .filter(|&(app, svc)| wb.owners[svc] == app)
        .count();

    println!(
        "§4.8 — L3 error taxonomy over the union of all {} days",
        wb.days
    );
    println!("(paper values in parentheses)\n");
    println!("detected dependencies: {} (161 of 177)", t.tp);
    println!("false negatives: {} (16)", t.fn_total);
    println!("  dormant / never realized:   {} (6)", t.fn_dormant);
    println!("  interactions not logged:    {} (7)", t.fn_unlogged);
    println!("  logged under outdated name: {} (3)", t.fn_renamed);
    println!("  miscited (wrong id):        {} (-)", t.fn_wrong_id);
    println!("  other (realization misses): {} (0)", t.fn_other);
    println!("false positives: {} (19)", t.fp_total);
    println!("  inverted (server logs):     {} (2)", t.fp_inverted);
    println!(
        "  transitive (stack traces):  {} (5)",
        t.fp_transitive_trace
    );
    println!("  coincidences:               {} (7)", t.fp_coincidence);
    println!("  similar-but-wrong id:       {} (5)", t.fp_wrong_id);
    println!("  other:                      {} (0)", t.fp_other);
    println!(
        "\ninverted dependencies without stop patterns: {} (24, vs {} with)",
        t.inverted_without_stop_patterns, t.fp_inverted
    );

    let path = wb.report("l3_errors", &t);
    println!("report: {}", path.display());
}
