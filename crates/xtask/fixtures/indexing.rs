//! Seeded violations for the unchecked-indexing rule.

pub fn seeded(xs: &[u32], i: usize, j: usize) -> u32 {
    let a = xs[i];
    let b = xs[j + 1];
    a + b
}

pub fn fine(xs: &[u32; 4]) -> u32 {
    let first = xs[0];
    let all = &xs[..];
    first + all.len() as u32
}
