//! Every deny violation here carries a lint:allow justification, so the
//! file must lint clean at deny level.

pub fn justified(x: Option<u32>, xs: &mut [f64]) -> u32 {
    // lint:allow(no-panic-in-lib) — invariant: caller checked is_some
    let a = x.unwrap();
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap()); // lint:allow(nan-unsafe-float, no-panic-in-lib) — inputs are finite by construction
    a
}
