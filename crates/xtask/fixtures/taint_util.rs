//! Taint fixture, helper half (`crates/core/src/util.rs`). Seeds one
//! HashMap iteration (fires), one BTreeMap iteration (clean — ordered),
//! one justified HashMap iteration (suppressed), and one wall-clock
//! read outside the health module (fires).

use std::collections::{BTreeMap, HashMap};
use std::time::Instant;

fn hash_counts(n: u64) -> u64 {
    let mut m: HashMap<u64, u64> = HashMap::new();
    m.insert(n, n);
    let mut total = 0;
    for (_, v) in &m {
        total += *v;
    }
    total
}

fn tree_counts(n: u64) -> u64 {
    let mut m: BTreeMap<u64, u64> = BTreeMap::new();
    m.insert(n, n);
    m.values().sum()
}

fn tolerated_counts(n: u64) -> u64 {
    let mut m: HashMap<u64, u64> = HashMap::new();
    m.insert(n, n);
    // lint:allow(nondeterminism-taint) — order-insensitive sum
    m.values().sum()
}

fn stamp() -> u64 {
    let t = Instant::now();
    t.elapsed().as_millis() as u64
}
