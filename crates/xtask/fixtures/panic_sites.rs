//! Seeded violations for the no-panic-in-lib rule: one per panic form.

pub fn seeded(x: Option<u32>, y: Result<u32, ()>) -> u32 {
    let a = x.unwrap();
    let b = y.expect("value");
    if a == 0 {
        panic!("zero");
    }
    if b == 1 {
        unimplemented!()
    }
    todo!()
}

pub fn fine(x: Option<u32>) -> u32 {
    x.unwrap_or_default()
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt() {
        Some(1).unwrap();
    }
}
