//! Seeded violations for the nan-unsafe-float rule.

pub fn comparator_uses_partial_cmp(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

pub fn chained_unwrap(a: f64, b: f64) -> std::cmp::Ordering {
    a.partial_cmp(&b).unwrap()
}

// NaN-safe: the sort below must not be flagged.
pub fn fine(xs: &mut [f64]) {
    let _first = xs.first();
    xs.sort_by(|a, b| a.total_cmp(b));
}
