//! Fingerprint-completeness fixture (`crates/core/src/fp.rs`). One
//! digest with a seeded gap (fires, naming the skipped field), one
//! that folds every field (clean), and one gapped digest under a
//! justification (suppressed).

pub struct DemoConfig {
    pub slot_ms: u64,
    pub alpha: f64,
    pub two_sided: bool,
}

pub struct FullConfig {
    pub seed: u64,
    pub level: f64,
}

pub struct LegacyConfig {
    pub seed: u64,
    pub retries: u64,
}

pub fn demo_fingerprint(cfg: &DemoConfig) -> u64 {
    let mut h = cfg.slot_ms;
    h ^= cfg.alpha.to_bits();
    h
}

pub fn full_fingerprint(cfg: &FullConfig) -> u64 {
    cfg.seed ^ cfg.level.to_bits()
}

// lint:allow(fingerprint-completeness) — legacy digest; gap is tracked
pub fn legacy_fingerprint(cfg: &LegacyConfig) -> u64 {
    cfg.seed
}
