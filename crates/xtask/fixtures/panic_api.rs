//! Panic-reach fixture, pub API half (`crates/stats/src/api.rs`).
//! `percentile` has no panic of its own but calls into a private fn
//! that unwraps — the graph rule must flag it with the full chain.
//! `justified` takes the same path under a suppression; `safe` sticks
//! to the checked variant and must stay clean.

pub fn percentile(xs: &[f64]) -> f64 {
    let i = xs.len() / 2;
    inner::pick(xs, i)
}

// lint:allow(panic-reach) — callers validate the index upstream
pub fn justified(xs: &[f64]) -> f64 {
    inner::pick(xs, 0)
}

pub fn safe(xs: &[f64]) -> f64 {
    inner::pick_checked(xs, 0).unwrap_or(0.0)
}
