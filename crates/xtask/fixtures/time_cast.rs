//! Seeded violations for the lossy-time-cast rule.

pub fn seeded(ts: i64, duration_ms: u128) -> (u32, u64, i64) {
    let a = ts as u32;
    let b = duration_ms as u64;
    let c = std::time::Duration::from_secs(1).as_millis() as i64;
    (a, b, c)
}

pub fn fine(count: usize) -> u64 {
    count as u64
}
