//! Lint fixture: the instrumented pipeline driver for the
//! instrumentation-completeness rule. Linted as
//! `crates/core/src/pipe.rs` alongside `instr_stages.rs` as
//! `crates/core/src/window.rs`.

/// The driver itself emits its own span pair, so only the silent stage
/// it reaches may fire.
pub fn run_pipeline(n: u64) -> u64 {
    recorder::span_begin("pipeline");
    let total = run_window_cached(n) + run_silent(n) + run_tolerated(n);
    recorder::span_end("pipeline");
    total
}
