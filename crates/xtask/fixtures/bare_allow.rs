//! Bare-allow fixture. The first marker silences its target rule but
//! carries no justification — it must itself be denied. The second is
//! reasoned and must pass.

pub fn seeded(x: Option<u32>, y: Option<u32>) -> u32 {
    // lint:allow(no-panic-in-lib)
    let a = x.unwrap();
    // lint:allow(no-panic-in-lib) — invariant: caller checked is_some
    let b = y.unwrap();
    a + b
}
