//! Seeded `raw-thread-spawn` violations, plus sanctioned threading
//! forms that must stay clean.

use std::thread;

pub fn bad_fully_qualified() {
    let handle = std::thread::spawn(|| 1 + 1); // seeded hit 1
    drop(handle);
}

pub fn bad_bare_path() {
    let handle = thread::spawn(|| 2 + 2); // seeded hit 2
    drop(handle);
}

pub fn fine_scoped_spawn() {
    // Scoped spawns are `.`-qualified and join deterministically; the
    // sanctioned entry point is logdep_par::scope.
    std::thread::scope(|s| {
        s.spawn(|| ());
    });
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let handle = std::thread::spawn(|| 3);
        drop(handle);
    }
}
