// Fixture for the hot-sort rule: comparator sorts in distance-mining
// hot paths. Lines 6 and 7 are findings when linted under
// crates/logstore or crates/core/src/l1; key sorts, derived-order
// sorts, and suppressed calls are not.
pub fn resort(mut xs: Vec<i64>) -> Vec<i64> {
    xs.sort_by(|a, b| a.cmp(b));
    xs.sort_unstable_by(|a, b| b.cmp(a));
    xs.sort_unstable();
    xs.sort_by_key(|x| *x);
    // lint:allow(hot-sort) — cold path: runs once per config reload
    xs.sort_by(|a, b| a.cmp(b));
    xs
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_sort_freely() {
        let mut v = vec![2i64, 1];
        v.sort_by(|a, b| a.cmp(b));
    }
}
