//! Lint fixture: stage entry points for the
//! instrumentation-completeness rule, linted as
//! `crates/core/src/window.rs`. One clean stage, one silent stage (the
//! seeded violation), one justified escape, and a private helper that
//! is exempt by design.

/// Clean: emits a begin/end pair around its work.
pub fn run_window_cached(n: u64) -> u64 {
    recorder::span_begin("window");
    let out = inner_sum(n);
    recorder::span_end("window");
    out
}

/// Seeded violation: a reachable stage that never emits.
pub fn run_silent(n: u64) -> u64 {
    inner_sum(n)
}

/// Justified escape: suppressed with a reason.
// lint:allow(instrumentation-completeness) — compatibility shim, retired next release
pub fn run_tolerated(n: u64) -> u64 {
    inner_sum(n)
}

/// Private helpers are exempt: they may run on worker threads, where
/// emission is forbidden.
fn inner_sum(n: u64) -> u64 {
    (0..n).sum()
}
