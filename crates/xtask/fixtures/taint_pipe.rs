//! Taint fixture, entry half. Linted as `crates/core/src/pipe.rs`
//! alongside `taint_util.rs` as `crates/core/src/util.rs`: the pub
//! pipeline driver reaches every helper in the util module, so the
//! nondeterminism facts over there decide which diags fire.

pub fn run_pipeline(n: u64) -> u64 {
    let a = util::hash_counts(n);
    let b = util::tree_counts(n);
    let c = util::tolerated_counts(n);
    a + b + c + util::stamp()
}
