//! Seeded violation for the result-api rule.

pub fn hidden_panic(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn surfaced(x: Option<u32>) -> Result<u32, String> {
    x.ok_or_else(|| "missing".to_string())
}

fn private_helper(x: Option<u32>) -> u32 {
    x.unwrap()
}
