//! Lint fixture: the reload/swap path for the blocking-io-in-handler
//! rule, linted as `crates/serve/src/loader.rs`. The same blocking
//! calls the handlers are denied are legal here — this module is not
//! reachable from any `handle_*` fn. The driver/stage pair also keeps
//! the instrumentation-completeness rule satisfied for the serve
//! entry points.

/// The serve driver: emits its own span pair, reloads, then serves.
pub fn run_server(path: &str) -> usize {
    recorder::span_begin("serve");
    let n = run_reload(path);
    recorder::span_end("serve");
    n
}

/// The swap path: blocking I/O is sanctioned here.
pub fn run_reload(path: &str) -> usize {
    recorder::span_begin("reload");
    let bytes = fs::read(path);
    let store = DurableStore::open_existing(path);
    recorder::span_end("reload");
    bytes.len() + store.len()
}
