//! Seeded violations for the `silent-drop` rule: `let _ =` on a call
//! result in library code. Exactly two lines must be flagged.

use std::io::Write;

pub fn cleanup(path: &str) {
    let _ = std::fs::remove_file(path); // seeded: discards io::Result
}

pub fn log_line(mut w: impl Write) {
    let _ = writeln!(w, "ignored"); // seeded: discards io::Result
}

pub fn not_flagged(flag: bool) {
    let _unused = compute(flag); // named binding is a deliberate keep
    let _ = flag; // plain value, nothing fallible dropped
    // lint:allow(silent-drop) — best-effort cleanup, failure is benign
    let _ = std::fs::remove_file("tmp");
}

fn compute(flag: bool) -> bool {
    !flag
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let _ = std::fs::read_to_string("x");
    }
}
