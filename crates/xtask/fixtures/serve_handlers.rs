//! Lint fixture: request handlers for the blocking-io-in-handler rule.
//! Linted as `crates/serve/src/handlers.rs` alongside `serve_swap.rs`
//! as `crates/serve/src/loader.rs`.

/// Seeded violation: a handler reading the filesystem directly.
pub fn handle_stale(path: &str) -> String {
    fs::read_to_string(path).unwrap_or_default()
}

/// Seeded violation through a helper: the handler itself looks pure,
/// but a same-crate callee opens the durable store.
pub fn handle_rebuild(path: &str) -> usize {
    load_evidence(path)
}

fn load_evidence(path: &str) -> usize {
    let store = DurableStore::open_existing(path);
    store.len()
}

/// Clean: answers from the in-memory index only.
pub fn handle_lookup(index: &[u64], key: u64) -> bool {
    index.iter().any(|&k| k == key)
}

/// Justified escape: suppressed with a reason.
pub fn handle_bootstrap(path: &str) -> String {
    // lint:allow(blocking-io-in-handler) — first-boot banner, removed once the splash page ships
    fs::read_to_string(path).unwrap_or_default()
}
