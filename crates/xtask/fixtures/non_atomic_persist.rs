// Fixture for the non-atomic-persist rule: raw fs::write/File::create
// aimed at persistent-state paths. Lines 6, 7 and 8 are findings; the
// data-path write, the `.`-qualified method write, the durable helper,
// the suppressed call, and the test module must all stay clean.
pub fn persist(cache_path: &str, data_path: &str) -> std::io::Result<()> {
    std::fs::write(cache_path, b"state")?;
    std::fs::write("evidence.journal", b"rec")?;
    let file = std::fs::File::create(checkpoint_path())?;
    std::fs::write(data_path, b"out")?;
    file.write(b"x")?;
    persist_atomic(std::path::Path::new(cache_path), b"state")?;
    // lint:allow(non-atomic-persist) — scratch snapshot, rebuilt every run
    std::fs::write(snapshot_path(), b"tmp")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_write_caches_directly() {
        std::fs::write("cache.ck", b"wreck").unwrap();
    }
}
