//! Panic-reach fixture, private half (`crates/stats/src/inner.rs`).
//! `pick` owns the panic site the pub API reaches transitively;
//! `pick_checked` is the panic-free alternative.

fn pick(xs: &[f64], i: usize) -> f64 {
    *xs.get(i).unwrap()
}

fn pick_checked(xs: &[f64], i: usize) -> Option<f64> {
    xs.get(i).copied()
}
