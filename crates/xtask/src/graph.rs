//! Workspace symbol table and interprocedural call graph.
//!
//! The per-file rules in [`crate::lint`] judge each token stream in
//! isolation; the determinism contract of the pipeline is a *path*
//! property ("no HashMap iteration reachable from a snapshot entry
//! point"), so the graph rules need a whole-workspace view. This module
//! extracts, per file, the function items (with their call sites and
//! nondeterminism/panic facts) and struct definitions, then links calls
//! across files by name with a same-file → same-crate → workspace
//! preference. The resolution over-approximates — an unqualified method
//! call links to every workspace function of that name — which is the
//! right bias for a deny rule guarding reproducibility: a false edge
//! can be suppressed with a reason, a missed real edge cannot be.
//!
//! Everything here is deterministic: files arrive sorted, functions are
//! indexed in token order, candidate lists preserve file order, and no
//! hash-ordered container is ever iterated.

use crate::lexer::{Lexed, TokKind, Token};
use crate::lint::{matching, test_mask};
use std::collections::HashMap;

/// An atomic nondeterminism or panic source observed inside one fn body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FactKind {
    /// Iteration over a `HashMap`/`HashSet`-typed binding or field.
    HashIter,
    /// A `SystemTime`/`Instant` mention (wall-clock dependence).
    WallClock,
    /// `std::env::var`/`vars`/`var_os` read.
    EnvRead,
    /// `available_parallelism` (machine-shape dependence).
    AvailPar,
    /// An unwrap/expect/panic!/unimplemented!/todo! site.
    PanicSite,
}

impl FactKind {
    pub fn describe(self) -> &'static str {
        match self {
            FactKind::HashIter => "HashMap/HashSet iteration",
            FactKind::WallClock => "wall-clock read (Instant/SystemTime)",
            FactKind::EnvRead => "environment read (std::env)",
            FactKind::AvailPar => "available_parallelism",
            FactKind::PanicSite => "panic site",
        }
    }
}

/// One fact, with the source line and the token that triggered it.
#[derive(Debug, Clone)]
pub struct Fact {
    pub kind: FactKind,
    pub line: u32,
    pub detail: String,
}

/// One call site inside a fn body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Callee name (last path segment).
    pub name: String,
    /// Path segment immediately before the name (`Timeline::get` →
    /// `Timeline`), with `Self` already rewritten to the impl type.
    pub qualifier: Option<String>,
    /// `true` for `.name(...)` receiver calls.
    pub is_method: bool,
    pub line: u32,
}

/// One function item in a file.
#[derive(Debug, Clone)]
pub struct FnDef {
    pub name: String,
    /// Enclosing `impl` type, when the fn is an associated item.
    pub owner: Option<String>,
    pub line: u32,
    /// Unrestricted `pub` (not `pub(crate)`/`pub(super)`).
    pub is_pub: bool,
    pub calls: Vec<Call>,
    pub facts: Vec<Fact>,
    /// Idents ending in `Config` among the parameter types — drives the
    /// fingerprint-completeness pairing.
    pub config_params: Vec<String>,
    /// Field names the body projects with `.field` — drives the
    /// fingerprint-completeness field check.
    pub field_accesses: Vec<String>,
}

/// One struct definition with its named fields.
#[derive(Debug, Clone)]
pub struct StructDef {
    pub name: String,
    pub line: u32,
    pub fields: Vec<String>,
    /// Fields whose declared type mentions `HashMap`/`HashSet`.
    pub hash_fields: Vec<String>,
}

/// Everything the graph pass needs from one file.
#[derive(Debug, Clone)]
pub struct FileIndex {
    pub rel: String,
    pub crate_name: String,
    pub fns: Vec<FnDef>,
    pub structs: Vec<StructDef>,
    /// `line -> rules` suppression table, copied from the lexer so the
    /// graph rules can honour `lint:allow` at fact and entry sites.
    pub suppressions: HashMap<u32, Vec<String>>,
}

impl FileIndex {
    /// Whether `rule` is suppressed at `line` (same line or line above).
    pub fn suppressed(&self, rule: &str, line: u32) -> bool {
        [line, line.saturating_sub(1)].iter().any(|l| {
            self.suppressions
                .get(l)
                .is_some_and(|rules| rules.iter().any(|r| r == rule || r == "all"))
        })
    }
}

/// Iterator methods whose call on a hash container is order-sensitive.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// Keywords that look like calls when followed by `(`.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "in", "as", "fn", "impl", "move", "loop", "else",
    "let", "ref", "mut", "box", "await", "dyn", "where",
];

/// Indexes one classified source file: fn items with calls and facts,
/// struct defs, and the suppression table.
pub fn index_file(rel: &str, crate_name: &str, lexed: &Lexed) -> FileIndex {
    let tokens = &lexed.tokens;
    let mask = test_mask(tokens);

    let impls = find_impl_ranges(tokens);
    let structs = find_structs(tokens, &mask);
    let raw_fns = find_fn_items(tokens, &mask);

    let mut fns = Vec::new();
    for (fi, item) in raw_fns.iter().enumerate() {
        // Attribute body tokens to the *innermost* fn: skip sub-ranges
        // belonging to fn items nested inside this one.
        let nested: Vec<(usize, usize)> = raw_fns
            .iter()
            .enumerate()
            .filter(|(oi, o)| *oi != fi && o.body.0 > item.body.0 && o.body.1 <= item.body.1)
            .map(|(_, o)| o.body)
            .collect();
        let own: Vec<usize> = (item.body.0..=item.body.1)
            .filter(|&i| !nested.iter().any(|&(s, e)| i >= s && i <= e))
            .collect();

        let owner = impls
            .iter()
            .filter(|(s, e, _)| item.body.0 > *s && item.body.1 <= *e)
            .min_by_key(|(s, e, _)| e - s)
            .map(|(_, _, name)| name.clone());

        let hash_locals = collect_hash_locals(tokens, item, &own);
        let hash_field_names: Vec<&str> = structs
            .iter()
            .flat_map(|s| s.hash_fields.iter().map(String::as_str))
            .collect();

        let calls = collect_calls(tokens, &own, owner.as_deref());
        let mut facts = collect_facts(tokens, &mask, &own, &hash_locals, &hash_field_names);
        facts.dedup_by_key(|f| (f.kind, f.line));

        let mut field_accesses: Vec<String> = own
            .iter()
            .filter(|&&i| {
                i > 0
                    && tokens[i - 1].is_punct('.')
                    && tokens[i].kind == TokKind::Ident
                    && !tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
            })
            .map(|&i| tokens[i].text.clone())
            .collect();
        field_accesses.sort();
        field_accesses.dedup();

        fns.push(FnDef {
            name: item.name.clone(),
            owner,
            line: item.line,
            is_pub: item.is_pub,
            calls,
            facts,
            config_params: item.config_params.clone(),
            field_accesses,
        });
    }

    FileIndex {
        rel: rel.to_string(),
        crate_name: crate_name.to_string(),
        fns,
        structs,
        suppressions: lexed.suppressions.clone(),
    }
}

/// A fn item before body attribution: header facts + body token range.
struct RawFn {
    name: String,
    line: u32,
    is_pub: bool,
    config_params: Vec<String>,
    /// Token-index range of the parameter list `(...)`, inclusive.
    params: (usize, usize),
    /// Inclusive token-index range of the `{...}` body.
    body: (usize, usize),
}

fn find_fn_items(tokens: &[Token], mask: &[bool]) -> Vec<RawFn> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if mask[i] || !tokens[i].is_ident("fn") {
            i += 1;
            continue;
        }
        // `fn(` is a function-pointer type, not an item.
        let Some(name_tok) = tokens.get(i + 1) else {
            break;
        };
        if name_tok.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let is_pub = visibility_is_pub(tokens, i);
        // Parameter list: first `(` after the name (skipping generics).
        let mut p = i + 2;
        while p < tokens.len() && !tokens[p].is_punct('(') && !tokens[p].is_punct('{') {
            p += 1;
        }
        if !tokens.get(p).is_some_and(|t| t.is_punct('(')) {
            i += 1;
            continue;
        }
        let Some(params_end) = matching(tokens, p, '(', ')') else {
            break;
        };
        let config_params: Vec<String> = tokens[p..params_end]
            .iter()
            .filter(|t| t.kind == TokKind::Ident && t.text.ends_with("Config"))
            .map(|t| t.text.clone())
            .collect();
        // Body: first `{` before any `;` (a `;` first means a bodyless
        // trait-method declaration).
        let mut b = params_end + 1;
        let mut body = None;
        while b < tokens.len() {
            if tokens[b].is_punct(';') {
                break;
            }
            if tokens[b].is_punct('{') {
                body = matching(tokens, b, '{', '}').map(|e| (b, e));
                break;
            }
            b += 1;
        }
        let Some(body) = body else {
            i = b + 1;
            continue;
        };
        out.push(RawFn {
            name: name_tok.text.clone(),
            line: name_tok.line,
            is_pub,
            config_params,
            params: (p, params_end),
            body,
        });
        // Continue *inside* the body so nested fn items are found too.
        i += 2;
    }
    out
}

/// Whether the item whose `fn` keyword sits at `fn_idx` is unrestricted
/// `pub`. Walks back over `const`/`async`/`unsafe`/`extern "C"`.
fn visibility_is_pub(tokens: &[Token], fn_idx: usize) -> bool {
    let mut j = fn_idx;
    while j > 0 {
        j -= 1;
        let t = &tokens[j];
        if t.kind == TokKind::Str
            || t.is_ident("const")
            || t.is_ident("async")
            || t.is_ident("unsafe")
            || t.is_ident("extern")
        {
            continue;
        }
        if t.is_punct(')') {
            // `pub(crate)` / `pub(super)`: restricted, not public.
            return false;
        }
        return t.is_ident("pub");
    }
    false
}

/// `impl` block ranges with their type names: `(start, end, type)`.
/// `impl Trait for Type` records `Type`; generics are skipped.
fn find_impl_ranges(tokens: &[Token]) -> Vec<(usize, usize, String)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !tokens[i].is_ident("impl") {
            i += 1;
            continue;
        }
        // Header runs to the block opener.
        let mut open = i + 1;
        while open < tokens.len() && !tokens[open].is_punct('{') {
            open += 1;
        }
        let Some(end) = matching(tokens, open, '{', '}') else {
            break;
        };
        let header = &tokens[i + 1..open];
        // The implemented type: the ident after `for` when present,
        // else the first ident outside the generic parameter list.
        let name = if let Some(fi) = header.iter().position(|t| t.is_ident("for")) {
            header[fi + 1..]
                .iter()
                .find(|t| t.kind == TokKind::Ident)
                .map(|t| t.text.clone())
        } else {
            let mut depth = 0i32;
            let mut found = None;
            for t in header {
                if t.is_punct('<') {
                    depth += 1;
                } else if t.is_punct('>') {
                    depth -= 1;
                } else if depth == 0 && t.kind == TokKind::Ident && !t.is_ident("where") {
                    found = Some(t.text.clone());
                    break;
                }
            }
            found
        };
        if let Some(name) = name {
            out.push((open, end, name));
        }
        // Descend into the block (nested impls are legal).
        i = open + 1;
    }
    out
}

/// Struct definitions with named fields (tuple structs are skipped —
/// they have no field names to check).
fn find_structs(tokens: &[Token], mask: &[bool]) -> Vec<StructDef> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < tokens.len() {
        if mask[i] || !tokens[i].is_ident("struct") || tokens[i + 1].kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let name = tokens[i + 1].text.clone();
        let line = tokens[i + 1].line;
        // Find the field block, skipping generics/where; `(` or `;`
        // first means a tuple/unit struct.
        let mut b = i + 2;
        let mut depth = 0i32;
        let mut open = None;
        while b < tokens.len() {
            let t = &tokens[b];
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') && !(b > 0 && tokens[b - 1].is_punct('-')) {
                depth -= 1;
            } else if depth == 0 && (t.is_punct(';') || t.is_punct('(')) {
                break;
            } else if depth == 0 && t.is_punct('{') {
                open = Some(b);
                break;
            }
            b += 1;
        }
        let Some(open) = open else {
            i = b + 1;
            continue;
        };
        let Some(end) = matching(tokens, open, '{', '}') else {
            break;
        };
        let mut fields = Vec::new();
        let mut hash_fields = Vec::new();
        let mut depth = 0i32;
        let mut j = open + 1;
        while j < end {
            let t = &tokens[j];
            if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') || t.is_punct('>') {
                depth -= 1;
            } else if depth == 0
                && t.kind == TokKind::Ident
                && tokens.get(j + 1).is_some_and(|n| n.is_punct(':'))
                && !tokens.get(j + 2).is_some_and(|n| n.is_punct(':'))
            {
                fields.push(t.text.clone());
                // The field's type runs to the next depth-0 comma.
                let mut k = j + 2;
                let mut tdepth = 0i32;
                let mut hashy = false;
                while k < end {
                    let tt = &tokens[k];
                    if tt.is_punct('<') || tt.is_punct('(') || tt.is_punct('[') {
                        tdepth += 1;
                    } else if tt.is_punct('>') || tt.is_punct(')') || tt.is_punct(']') {
                        tdepth -= 1;
                    } else if tdepth == 0 && tt.is_punct(',') {
                        break;
                    }
                    if tt.is_ident("HashMap") || tt.is_ident("HashSet") {
                        hashy = true;
                    }
                    k += 1;
                }
                if hashy {
                    hash_fields.push(t.text.clone());
                }
                j = k;
                continue;
            }
            j += 1;
        }
        out.push(StructDef {
            name,
            line,
            fields,
            hash_fields,
        });
        i = end + 1;
    }
    out
}

/// Local bindings and parameters of hash-container type, by name.
fn collect_hash_locals(tokens: &[Token], item: &RawFn, own: &[usize]) -> Vec<String> {
    let mut out = Vec::new();
    // Parameters: `name: ...HashMap<...>` inside the param list.
    let (open, close) = item.params;
    let mut j = open + 1;
    while j < close {
        if tokens[j].kind == TokKind::Ident
            && tokens.get(j + 1).is_some_and(|t| t.is_punct(':'))
            && !tokens.get(j + 2).is_some_and(|t| t.is_punct(':'))
        {
            let name = tokens[j].text.clone();
            let mut k = j + 2;
            let mut depth = 0i32;
            let mut hashy = false;
            while k < close {
                let tt = &tokens[k];
                if tt.is_punct('<') || tt.is_punct('(') {
                    depth += 1;
                } else if tt.is_punct('>') || tt.is_punct(')') {
                    depth -= 1;
                } else if depth == 0 && tt.is_punct(',') {
                    break;
                }
                if tt.is_ident("HashMap") || tt.is_ident("HashSet") {
                    hashy = true;
                }
                k += 1;
            }
            if hashy {
                out.push(name);
            }
            j = k;
            continue;
        }
        j += 1;
    }
    // Locals: `let [mut] name [: ...Hash{Map,Set}...] = ...` and
    // `let [mut] name = Hash{Map,Set}::...`.
    for (pos, &i) in own.iter().enumerate() {
        if !tokens[i].is_ident("let") {
            continue;
        }
        let mut j = pos + 1;
        if own.get(j).is_some_and(|&k| tokens[k].is_ident("mut")) {
            j += 1;
        }
        let Some(&name_idx) = own.get(j) else {
            continue;
        };
        if tokens[name_idx].kind != TokKind::Ident {
            continue;
        }
        let name = tokens[name_idx].text.clone();
        // Scan to the `=` or `;`, looking for a hash type on the way
        // (annotation) or right after the `=` (constructor).
        let mut hashy = false;
        let mut seen_eq = false;
        let mut budget = 40;
        for &k in own.iter().skip(j + 1) {
            if budget == 0 {
                break;
            }
            budget -= 1;
            let t = &tokens[k];
            if t.is_punct(';') {
                break;
            }
            if t.is_punct('=') && !seen_eq {
                seen_eq = true;
                // Only peek a few tokens into the initializer.
                budget = budget.min(4);
                continue;
            }
            if t.is_ident("HashMap") || t.is_ident("HashSet") {
                hashy = true;
                break;
            }
        }
        if hashy {
            out.push(name);
        }
    }
    out
}

fn collect_calls(tokens: &[Token], own: &[usize], owner: Option<&str>) -> Vec<Call> {
    let mut out = Vec::new();
    for &i in own {
        if tokens[i].kind != TokKind::Ident
            || !tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
            || NON_CALL_KEYWORDS.contains(&tokens[i].text.as_str())
        {
            continue;
        }
        // A definition (`fn name(`) is not a call of `name`.
        if i > 0 && tokens[i - 1].is_ident("fn") {
            continue;
        }
        let is_method = i > 0 && tokens[i - 1].is_punct('.');
        let qualifier = if i >= 3
            && tokens[i - 1].is_punct(':')
            && tokens[i - 2].is_punct(':')
            && tokens[i - 3].kind == TokKind::Ident
        {
            let q = tokens[i - 3].text.as_str();
            Some(if q == "Self" {
                owner.unwrap_or(q).to_string()
            } else {
                q.to_string()
            })
        } else {
            None
        };
        out.push(Call {
            name: tokens[i].text.clone(),
            qualifier,
            is_method,
            line: tokens[i].line,
        });
    }
    out
}

fn collect_facts(
    tokens: &[Token],
    mask: &[bool],
    own: &[usize],
    hash_locals: &[String],
    hash_fields: &[&str],
) -> Vec<Fact> {
    let mut out = Vec::new();
    for &i in own {
        if mask[i] || tokens[i].kind != TokKind::Ident {
            continue;
        }
        let t = &tokens[i];
        let name = t.text.as_str();
        let next_paren = tokens.get(i + 1).is_some_and(|n| n.is_punct('('));
        let next_bang = tokens.get(i + 1).is_some_and(|n| n.is_punct('!'));
        let prev_dot = i > 0 && tokens[i - 1].is_punct('.');
        let prev_colons = i >= 2 && tokens[i - 1].is_punct(':') && tokens[i - 2].is_punct(':');

        match name {
            "Instant" | "SystemTime" => out.push(Fact {
                kind: FactKind::WallClock,
                line: t.line,
                detail: name.to_string(),
            }),
            "available_parallelism" => out.push(Fact {
                kind: FactKind::AvailPar,
                line: t.line,
                detail: name.to_string(),
            }),
            "var" | "vars" | "var_os" if prev_colons && i >= 3 && tokens[i - 3].is_ident("env") => {
                out.push(Fact {
                    kind: FactKind::EnvRead,
                    line: t.line,
                    detail: format!("env::{name}"),
                })
            }
            "unwrap" | "expect" if prev_dot && next_paren => out.push(Fact {
                kind: FactKind::PanicSite,
                line: t.line,
                detail: format!(".{name}()"),
            }),
            "panic" | "unimplemented" | "todo" if next_bang => out.push(Fact {
                kind: FactKind::PanicSite,
                line: t.line,
                detail: format!("{name}!"),
            }),
            _ => {}
        }

        // Hash iteration: `name.iter()`-style on a known hash binding or
        // a `.field.iter()`-style projection of a hash-typed field.
        let known_local = !prev_dot && hash_locals.iter().any(|l| l == name);
        let known_field = prev_dot && hash_fields.contains(&name);
        if (known_local || known_field)
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('.'))
            && tokens
                .get(i + 2)
                .is_some_and(|n| ITER_METHODS.contains(&n.text.as_str()))
            && tokens.get(i + 3).is_some_and(|n| n.is_punct('('))
        {
            out.push(Fact {
                kind: FactKind::HashIter,
                line: t.line,
                detail: format!("`{}.{}()`", name, tokens[i + 2].text),
            });
        }

        // `for pat in [&[mut]] path {`: iterating the container itself.
        if t.is_ident("in") {
            let mut j = i + 1;
            let mut last_ident: Option<usize> = None;
            let mut budget = 12;
            while let Some(n) = tokens.get(j) {
                if budget == 0 || n.is_punct('{') || n.is_punct(';') || n.is_punct('(') {
                    break;
                }
                if n.kind == TokKind::Ident && !n.is_ident("mut") {
                    last_ident = Some(j);
                }
                j += 1;
                budget -= 1;
            }
            if let Some(li) = last_ident {
                let n = &tokens[li];
                let proj = li > 0 && tokens[li - 1].is_punct('.');
                let hits = (!proj && hash_locals.iter().any(|l| l == &n.text))
                    || (proj && hash_fields.contains(&n.text.as_str()));
                if hits {
                    out.push(Fact {
                        kind: FactKind::HashIter,
                        line: n.line,
                        detail: format!("`for .. in {}`", n.text),
                    });
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Call graph over all files.
// ---------------------------------------------------------------------

/// A function's global id paired with the call-site line of the edge.
pub type Edge = (usize, u32);

/// The linked workspace call graph.
pub struct CallGraph<'a> {
    pub files: &'a [FileIndex],
    /// Global fn id → `(file index, fn index within file)`.
    pub fns: Vec<(usize, usize)>,
    /// Forward adjacency: resolved callees per fn.
    pub edges: Vec<Vec<Edge>>,
}

impl<'a> CallGraph<'a> {
    pub fn build(files: &'a [FileIndex]) -> Self {
        let mut fns = Vec::new();
        let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
        for (fi, file) in files.iter().enumerate() {
            for (di, def) in file.fns.iter().enumerate() {
                by_name.entry(&def.name).or_default().push(fns.len());
                fns.push((fi, di));
            }
        }

        let mut edges = Vec::with_capacity(fns.len());
        for &(fi, di) in &fns {
            let def = &files[fi].fns[di];
            let mut out: Vec<Edge> = Vec::new();
            for call in &def.calls {
                let Some(cands) = by_name.get(call.name.as_str()) else {
                    continue;
                };
                let resolved = resolve(files, &fns, cands, call, fi);
                for id in resolved {
                    if !out.iter().any(|&(e, _)| e == id) {
                        out.push((id, call.line));
                    }
                }
            }
            edges.push(out);
        }
        CallGraph { files, fns, edges }
    }

    pub fn def(&self, id: usize) -> &FnDef {
        let (fi, di) = self.fns[id];
        &self.files[fi].fns[di]
    }

    pub fn file(&self, id: usize) -> &FileIndex {
        &self.files[self.fns[id].0]
    }

    /// BFS from `entries`; returns, per fn, `Some(parent)` when
    /// reachable (`parent == (self, 0)` for the entries themselves).
    pub fn reach(&self, entries: &[usize]) -> Vec<Option<Edge>> {
        let mut parent: Vec<Option<Edge>> = vec![None; self.fns.len()];
        let mut queue = std::collections::VecDeque::new();
        for &e in entries {
            if parent[e].is_none() {
                parent[e] = Some((e, 0));
                queue.push_back(e);
            }
        }
        while let Some(u) = queue.pop_front() {
            for &(v, line) in &self.edges[u] {
                if parent[v].is_none() {
                    parent[v] = Some((u, line));
                    queue.push_back(v);
                }
            }
        }
        parent
    }

    /// The call chain from the entry down to `id`, as
    /// `"name (file:line)"` strings, given a parent forest from
    /// [`CallGraph::reach`].
    pub fn chain_to(&self, parent: &[Option<Edge>], id: usize) -> Vec<String> {
        let mut rev = Vec::new();
        let mut cur = id;
        loop {
            let def = self.def(cur);
            rev.push(format!(
                "{} ({}:{})",
                self.display_name(cur),
                self.file(cur).rel,
                def.line
            ));
            match parent[cur] {
                Some((p, _)) if p != cur => cur = p,
                _ => break,
            }
        }
        rev.reverse();
        rev
    }

    /// `Owner::name` for associated fns, bare `name` otherwise.
    pub fn display_name(&self, id: usize) -> String {
        let def = self.def(id);
        match &def.owner {
            Some(o) => format!("{}::{}", o, def.name),
            None => def.name.clone(),
        }
    }
}

/// Resolves one call against same-named candidates. Qualified calls
/// must match the qualifier (impl-type name, file stem, or crate name);
/// a qualified call matching nothing is treated as external. Bare calls
/// prefer same-file, then same-crate, then everything; method calls
/// over-approximate to every candidate.
fn resolve(
    files: &[FileIndex],
    fns: &[(usize, usize)],
    cands: &[usize],
    call: &Call,
    caller_file: usize,
) -> Vec<usize> {
    if let Some(q) = &call.qualifier {
        let stem = snake_of(q);
        return cands
            .iter()
            .copied()
            .filter(|&id| {
                let (fi, di) = fns[id];
                let def = &files[fi].fns[di];
                def.owner.as_deref() == Some(q.as_str())
                    || file_stem(&files[fi].rel) == stem
                    || q.strip_prefix("logdep_").unwrap_or(q) == files[fi].crate_name
            })
            .collect();
    }
    if call.is_method {
        return cands.to_vec();
    }
    let same_file: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&id| fns[id].0 == caller_file)
        .collect();
    if !same_file.is_empty() {
        return same_file;
    }
    let crate_name = &files[caller_file].crate_name;
    let same_crate: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&id| &files[fns[id].0].crate_name == crate_name)
        .collect();
    if !same_crate.is_empty() {
        return same_crate;
    }
    cands.to_vec()
}

fn file_stem(rel: &str) -> String {
    rel.rsplit('/')
        .next()
        .unwrap_or(rel)
        .trim_end_matches(".rs")
        .to_string()
}

/// `Timeline` → `timeline`, `EvidenceCache` → `evidence_cache`: lets a
/// `Type::fn` qualifier match the module file named after the type.
fn snake_of(name: &str) -> String {
    let mut out = String::new();
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn index(rel: &str, src: &str) -> FileIndex {
        let crate_name = rel.split('/').nth(1).unwrap_or("core").to_string();
        index_file(rel, &crate_name, &lex(src))
    }

    #[test]
    fn extracts_fns_with_visibility_and_owner() {
        let src = r#"
            pub fn free() {}
            pub(crate) fn restricted() {}
            struct T;
            impl T {
                pub fn method(&self) { helper(); }
                fn helper() {}
            }
        "#;
        let idx = index("crates/core/src/x.rs", src);
        let names: Vec<(&str, bool)> = idx
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.is_pub))
            .collect();
        assert_eq!(
            names,
            vec![
                ("free", true),
                ("restricted", false),
                ("method", true),
                ("helper", false)
            ]
        );
        assert_eq!(idx.fns[2].owner.as_deref(), Some("T"));
        assert_eq!(idx.fns[2].calls.len(), 1);
        assert_eq!(idx.fns[2].calls[0].name, "helper");
    }

    #[test]
    fn nested_fn_bodies_are_not_double_attributed() {
        let src = r#"
            fn outer() {
                fn inner() { x.unwrap(); }
                inner();
            }
        "#;
        let idx = index("crates/core/src/x.rs", src);
        let outer = idx.fns.iter().find(|f| f.name == "outer").unwrap();
        let inner = idx.fns.iter().find(|f| f.name == "inner").unwrap();
        assert!(outer.facts.is_empty(), "outer owns inner's panic site");
        assert_eq!(inner.facts.len(), 1);
        assert_eq!(inner.facts[0].kind, FactKind::PanicSite);
    }

    #[test]
    fn hash_iteration_facts_require_iteration_not_lookup() {
        let src = r#"
            use std::collections::HashMap;
            fn lookup_only(index: &HashMap<u32, u32>) -> Option<u32> {
                index.get(&1).copied()
            }
            fn iterates() {
                let mut counts: HashMap<u32, u32> = HashMap::new();
                counts.insert(1, 2);
                for (k, v) in counts.iter() { let _ = (k, v); }
            }
            fn for_loop_over_local() {
                let set = HashSet::new();
                for x in &set { drop(x); }
            }
        "#;
        let idx = index("crates/core/src/x.rs", src);
        let lookup = idx.fns.iter().find(|f| f.name == "lookup_only").unwrap();
        assert!(
            !lookup.facts.iter().any(|f| f.kind == FactKind::HashIter),
            "lookups must not count as iteration: {:?}",
            lookup.facts
        );
        let iterates = idx.fns.iter().find(|f| f.name == "iterates").unwrap();
        assert!(iterates.facts.iter().any(|f| f.kind == FactKind::HashIter));
        let floop = idx
            .fns
            .iter()
            .find(|f| f.name == "for_loop_over_local")
            .unwrap();
        assert!(floop.facts.iter().any(|f| f.kind == FactKind::HashIter));
    }

    #[test]
    fn struct_fields_and_hash_fields_are_collected() {
        let src = r#"
            pub struct Conf {
                pub alpha: f64,
                pub names: Vec<String>,
                cache: HashMap<u64, u64>,
            }
            struct Tuple(u32);
        "#;
        let idx = index("crates/core/src/x.rs", src);
        assert_eq!(idx.structs.len(), 1, "tuple structs skipped");
        assert_eq!(idx.structs[0].fields, vec!["alpha", "names", "cache"]);
        assert_eq!(idx.structs[0].hash_fields, vec!["cache"]);
    }

    #[test]
    fn wallclock_env_and_parallelism_facts() {
        let src = r#"
            fn timed() { let t = Instant::now(); drop(t); }
            fn env_read() { let v = std::env::var("X"); drop(v); }
            fn shape() { let n = std::thread::available_parallelism(); drop(n); }
        "#;
        let idx = index("crates/core/src/x.rs", src);
        let kinds: Vec<FactKind> = idx
            .fns
            .iter()
            .flat_map(|f| f.facts.iter().map(|x| x.kind))
            .collect();
        assert_eq!(
            kinds,
            vec![FactKind::WallClock, FactKind::EnvRead, FactKind::AvailPar]
        );
    }

    #[test]
    fn cross_file_resolution_prefers_same_crate() {
        let a = index("crates/core/src/a.rs", "pub fn entry() { shared(); }\n");
        let b = index("crates/core/src/b.rs", "pub fn shared() {}\n");
        let c = index("crates/stats/src/c.rs", "pub fn shared() {}\n");
        let files = vec![a, b, c];
        let g = CallGraph::build(&files);
        let entry = (0..g.fns.len())
            .find(|&i| g.def(i).name == "entry")
            .unwrap();
        let callees: Vec<&str> = g.edges[entry]
            .iter()
            .map(|&(id, _)| g.file(id).crate_name.as_str())
            .collect();
        assert_eq!(callees, vec!["core"], "same-crate candidate wins");
    }

    #[test]
    fn qualified_external_calls_do_not_link() {
        let a = index(
            "crates/core/src/a.rs",
            "pub fn entry() { std::mem::replace(&mut 1, 2); }\n",
        );
        let b = index("crates/core/src/b.rs", "pub fn replace() {}\n");
        let files = vec![a, b];
        let g = CallGraph::build(&files);
        let entry = (0..g.fns.len())
            .find(|&i| g.def(i).name == "entry")
            .unwrap();
        assert!(
            g.edges[entry].is_empty(),
            "std::mem::replace must not link to a workspace fn"
        );
    }

    #[test]
    fn reach_produces_full_chain() {
        let a = index("crates/core/src/a.rs", "pub fn top() { mid(); }\n");
        let b = index("crates/core/src/b.rs", "pub fn mid() { leaf(); }\n");
        let c = index("crates/core/src/c.rs", "pub fn leaf() {}\n");
        let files = vec![a, b, c];
        let g = CallGraph::build(&files);
        let top = (0..g.fns.len()).find(|&i| g.def(i).name == "top").unwrap();
        let leaf = (0..g.fns.len()).find(|&i| g.def(i).name == "leaf").unwrap();
        let parent = g.reach(&[top]);
        assert!(parent[leaf].is_some());
        let chain = g.chain_to(&parent, leaf);
        assert_eq!(chain.len(), 3);
        assert!(chain[0].starts_with("top ("));
        assert!(chain[2].starts_with("leaf ("));
    }
}
