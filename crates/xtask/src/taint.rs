//! The graph-based rules: nondeterminism taint, interprocedural panic
//! reach, and cache-fingerprint completeness.
//!
//! All three consume the [`crate::graph`] symbol table. Taint and
//! panic-reach are reachability passes over the call graph; fingerprint
//! completeness is a field-set comparison between a `*Config` struct
//! and the body of its `*_fingerprint` fn. Diagnostics carry the full
//! entry-point → violation call chain so a deny is actionable without
//! re-deriving the path by hand.

use crate::graph::{CallGraph, FactKind, FileIndex};
use crate::lint::{Diagnostic, Severity};

/// Crates whose non-test code participates in the panic-reach pass —
/// the same set `no-panic-in-lib` guards.
const LIB_CRATES: &[&str] = &[
    "core",
    "stats",
    "logstore",
    "textmatch",
    "sessions",
    "simulator",
    "faults",
    "par",
    "obs",
    "serve",
];

/// Runs all graph rules over the indexed workspace.
pub fn graph_rules(files: &[FileIndex]) -> Vec<Diagnostic> {
    let graph = CallGraph::build(files);
    let mut out = Vec::new();
    out.extend(nondeterminism_taint(&graph));
    out.extend(panic_reach(&graph));
    out.extend(fingerprint_completeness(files));
    out.extend(instrumentation_completeness(&graph));
    out.extend(blocking_io_in_handler(&graph));
    out
}

/// Whether fn `id` is a snapshot/serialization/cache entry point: the
/// pipeline driver, any pub fn in the cache or windowed-cache modules,
/// or a pub `summarize*`/`snapshot*` fn.
fn is_taint_entry(graph: &CallGraph, id: usize) -> bool {
    let def = graph.def(id);
    let file = graph.file(id);
    if file.crate_name == "core" && def.name == "run_pipeline" {
        return true;
    }
    if def.is_pub
        && (file.rel.ends_with("crates/core/src/cache.rs")
            || file.rel.ends_with("crates/core/src/window.rs"))
    {
        return true;
    }
    def.is_pub && (def.name.starts_with("summarize") || def.name.starts_with("snapshot"))
}

/// Whether a nondeterminism fact of `kind` is sanctioned where it sits.
/// `DetectorHealth` timing lives in `crates/core/src/health.rs`; env
/// reads and hardware introspection belong to the `par` config layer.
fn fact_allowed(kind: FactKind, file: &FileIndex) -> bool {
    match kind {
        FactKind::WallClock => file.rel.ends_with("crates/core/src/health.rs"),
        FactKind::EnvRead | FactKind::AvailPar => file.crate_name == "par",
        FactKind::HashIter => false,
        FactKind::PanicSite => true, // handled by panic-reach, not taint
    }
}

fn nondeterminism_taint(graph: &CallGraph) -> Vec<Diagnostic> {
    let entries: Vec<usize> = (0..graph.fns.len())
        .filter(|&id| is_taint_entry(graph, id))
        .collect();
    let parent = graph.reach(&entries);

    let mut out = Vec::new();
    for id in 0..graph.fns.len() {
        if parent[id].is_none() {
            continue;
        }
        let def = graph.def(id);
        let file = graph.file(id);
        for fact in &def.facts {
            if fact.kind == FactKind::PanicSite
                || fact_allowed(fact.kind, file)
                || file.suppressed("nondeterminism-taint", fact.line)
            {
                continue;
            }
            let chain = graph.chain_to(&parent, id);
            let entry = chain.first().cloned().unwrap_or_default();
            out.push(Diagnostic {
                rule: "nondeterminism-taint",
                severity: Severity::Deny,
                file: file.rel.clone(),
                line: fact.line,
                message: format!(
                    "{} {} is reachable from snapshot entry point {}; path: {}",
                    fact.kind.describe(),
                    fact.detail,
                    entry,
                    chain.join(" → "),
                ),
                chain,
            });
        }
    }
    out
}

fn panic_reach(graph: &CallGraph) -> Vec<Diagnostic> {
    let n = graph.fns.len();
    // A fn "panics locally" when it owns an unsuppressed panic site in a
    // lib crate; sites justified for no-panic-in-lib are trusted here
    // too — the justification covers every caller.
    let panics_locally: Vec<bool> = (0..n)
        .map(|id| {
            let file = graph.file(id);
            LIB_CRATES.contains(&file.crate_name.as_str())
                && graph.def(id).facts.iter().any(|f| {
                    f.kind == FactKind::PanicSite
                        && !file.suppressed("no-panic-in-lib", f.line)
                        && !file.suppressed("panic-reach", f.line)
                })
        })
        .collect();

    // Fixed point: can_panic[u] = panics_locally[u] || any callee can.
    let mut can_panic = panics_locally.clone();
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (u, edges) in graph.edges.iter().enumerate() {
        for &(v, _) in edges {
            rev[v].push(u);
        }
    }
    let mut work: Vec<usize> = (0..n).filter(|&id| can_panic[id]).collect();
    while let Some(v) = work.pop() {
        for &u in &rev[v] {
            if !can_panic[u] {
                can_panic[u] = true;
                work.push(u);
            }
        }
    }

    let mut out = Vec::new();
    for id in 0..n {
        let def = graph.def(id);
        let file = graph.file(id);
        if !def.is_pub
            || !LIB_CRATES.contains(&file.crate_name.as_str())
            || panics_locally[id]      // the direct case is no-panic-in-lib's
            || !can_panic[id]
            || file.suppressed("panic-reach", def.line)
        {
            continue;
        }
        // Shortest path from this API to a panicking fn, for the chain.
        let parent = graph.reach(&[id]);
        let Some(target) = (0..n)
            .filter(|&t| panics_locally[t] && parent[t].is_some())
            .min_by_key(|&t| chain_len(&parent, t))
        else {
            continue;
        };
        let chain = graph.chain_to(&parent, target);
        let site = graph
            .def(target)
            .facts
            .iter()
            .find(|f| f.kind == FactKind::PanicSite)
            .map(|f| format!("{} at {}:{}", f.detail, graph.file(target).rel, f.line))
            .unwrap_or_default();
        out.push(Diagnostic {
            rule: "panic-reach",
            severity: Severity::Deny,
            file: file.rel.clone(),
            line: def.line,
            message: format!(
                "pub fn {} can reach a panic ({site}); path: {}",
                graph.display_name(id),
                chain.join(" → "),
            ),
            chain,
        });
    }
    out
}

fn chain_len(parent: &[Option<(usize, u32)>], mut cur: usize) -> usize {
    let mut len = 0;
    while let Some((p, _)) = parent[cur] {
        if p == cur {
            break;
        }
        cur = p;
        len += 1;
    }
    len
}

/// The drivers of the instrumentation-completeness pass: the batch
/// pipeline, the durable daily runner, and the query server.
fn is_instr_root(graph: &CallGraph, id: usize) -> bool {
    let def = graph.def(id);
    let file = graph.file(id);
    (file.crate_name == "core" && (def.name == "run_pipeline" || def.name == "run_daily_durable"))
        || (file.crate_name == "serve" && def.name == "run_server")
}

/// The stage modules whose pub `run_*` entry points must be traced.
const INSTRUMENTED_MODULES: &[&str] = &[
    "crates/core/src/window.rs",
    "crates/core/src/cache.rs",
    "crates/core/src/durable.rs",
    "crates/serve/src/loader.rs",
    "crates/serve/src/server.rs",
];

/// Whether fn `id` is an instrumentation target: the pipeline driver
/// itself, or a pub `run_*` stage entry point in one of the cached
/// window / durable modules.
fn is_instr_target(graph: &CallGraph, id: usize) -> bool {
    let def = graph.def(id);
    let file = graph.file(id);
    if file.crate_name == "core" && def.name == "run_pipeline" {
        return true;
    }
    def.is_pub
        && def.name.starts_with("run_")
        && INSTRUMENTED_MODULES.iter().any(|m| file.rel.ends_with(m))
}

/// Every pipeline entry point reachable from the drivers must emit a
/// begin/end trace event pair — directly or through a callee — or the
/// structured trace silently skips the stage and the RunReport lies by
/// omission. Private helpers are exempt: they may run on worker
/// threads, where emission is forbidden by the determinism contract.
fn instrumentation_completeness(graph: &CallGraph) -> Vec<Diagnostic> {
    let roots: Vec<usize> = (0..graph.fns.len())
        .filter(|&id| is_instr_root(graph, id))
        .collect();
    if roots.is_empty() {
        return Vec::new();
    }
    let parent = graph.reach(&roots);

    let mut out = Vec::new();
    for id in 0..graph.fns.len() {
        if parent[id].is_none() || !is_instr_target(graph, id) {
            continue;
        }
        let def = graph.def(id);
        let file = graph.file(id);
        if file.suppressed("instrumentation-completeness", def.line) {
            continue;
        }
        // The target emits when both span calls appear in its own body
        // or anywhere in its transitive callees.
        let sub = graph.reach(&[id]);
        let emits = |span_call: &str| {
            (0..graph.fns.len())
                .any(|t| sub[t].is_some() && graph.def(t).calls.iter().any(|c| c.name == span_call))
        };
        let missing: Vec<&str> = ["span_begin", "span_end"]
            .iter()
            .copied()
            .filter(|m| !emits(m))
            .collect();
        if missing.is_empty() {
            continue;
        }
        let chain = graph.chain_to(&parent, id);
        let entry = chain.first().cloned().unwrap_or_default();
        out.push(Diagnostic {
            rule: "instrumentation-completeness",
            severity: Severity::Deny,
            file: file.rel.clone(),
            line: def.line,
            message: format!(
                "pipeline entry point {} never emits {}; every stage reachable from {} \
                 must record a begin/end event pair or the trace silently skips it; path: {}",
                graph.display_name(id),
                missing.join(" or "),
                entry,
                chain.join(" → "),
            ),
            chain,
        });
    }
    out
}

/// The serve request handlers (`handle_*` fns in the serve crate) must
/// never perform blocking I/O: no `fs::*`/`File::*` call, and no call
/// into the durable-store layer. Snapshot loads belong exclusively to
/// the reload/swap path, or a slow disk rides a request thread and the
/// bounded pool stalls.
///
/// Reachability is restricted to edges *within* the handler's crate:
/// method-call resolution over-approximates by name across the whole
/// workspace, and following those edges out of the serve crate would
/// flag every `.len()` that happens to share a name with a durable
/// method. The blocking facts themselves are explicit: an `fs`/`File`
/// qualified call, or a non-method call that resolves into
/// `crates/core/src/durable.rs` (or is `durable::`/`DurableStore::`
/// qualified).
fn blocking_io_in_handler(graph: &CallGraph) -> Vec<Diagnostic> {
    let entries: Vec<usize> = (0..graph.fns.len())
        .filter(|&id| {
            graph.file(id).crate_name == "serve" && graph.def(id).name.starts_with("handle_")
        })
        .collect();
    if entries.is_empty() {
        return Vec::new();
    }

    // Same-crate BFS.
    let n = graph.fns.len();
    let mut parent: Vec<Option<(usize, u32)>> = vec![None; n];
    let mut queue = std::collections::VecDeque::new();
    for &e in &entries {
        if parent[e].is_none() {
            parent[e] = Some((e, 0));
            queue.push_back(e);
        }
    }
    while let Some(u) = queue.pop_front() {
        for &(v, line) in &graph.edges[u] {
            if parent[v].is_none() && graph.file(v).crate_name == graph.file(u).crate_name {
                parent[v] = Some((u, line));
                queue.push_back(v);
            }
        }
    }

    const FS_QUALIFIERS: &[&str] = &["fs", "File", "OpenOptions", "DurableStore", "durable"];
    let mut out = Vec::new();
    for id in 0..n {
        if parent[id].is_none() {
            continue;
        }
        let def = graph.def(id);
        let file = graph.file(id);
        for call in &def.calls {
            let fs_qualified = call
                .qualifier
                .as_deref()
                .is_some_and(|q| FS_QUALIFIERS.contains(&q));
            // A non-method call resolving into the durable module; the
            // resolved edges are consulted so bare calls count too. The
            // callee name must match — several calls can share a line,
            // and a method edge there must not indict its neighbours.
            let into_durable = !call.is_method
                && graph.edges[id].iter().any(|&(v, line)| {
                    line == call.line
                        && graph.def(v).name == call.name
                        && graph.file(v).rel.ends_with("crates/core/src/durable.rs")
                });
            if !(fs_qualified || into_durable) {
                continue;
            }
            if file.suppressed("blocking-io-in-handler", call.line) {
                continue;
            }
            let chain = graph.chain_to(&parent, id);
            let entry = chain.first().cloned().unwrap_or_default();
            let callee = match &call.qualifier {
                Some(q) => format!("{}::{}", q, call.name),
                None => call.name.clone(),
            };
            out.push(Diagnostic {
                rule: "blocking-io-in-handler",
                severity: Severity::Deny,
                file: file.rel.clone(),
                line: call.line,
                message: format!(
                    "blocking call {callee} is reachable from request handler {entry}; \
                     snapshot loads must go through the reload/swap path, never a \
                     request thread; path: {}",
                    chain.join(" → "),
                ),
                chain,
            });
        }
    }
    out
}

/// Pairs every `*_fingerprint(cfg: &XConfig, ..)` fn with the struct
/// `XConfig` and denies any struct field the body never projects — the
/// cache would serve stale evidence when that field changes.
fn fingerprint_completeness(files: &[FileIndex]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for file in files {
        for def in &file.fns {
            if !def.name.ends_with("_fingerprint") {
                continue;
            }
            let Some(cfg_type) = def.config_params.first() else {
                continue;
            };
            // Prefer a same-crate struct definition, else any.
            let found = files
                .iter()
                .filter(|f| f.crate_name == file.crate_name)
                .chain(files.iter())
                .flat_map(|f| f.structs.iter().map(move |s| (f, s)))
                .find(|(_, s)| &s.name == cfg_type);
            let Some((struct_file, strukt)) = found else {
                continue;
            };
            let missing: Vec<&str> = strukt
                .fields
                .iter()
                .filter(|f| !def.field_accesses.iter().any(|a| a == *f))
                .map(String::as_str)
                .collect();
            if missing.is_empty() || file.suppressed("fingerprint-completeness", def.line) {
                continue;
            }
            out.push(Diagnostic {
                rule: "fingerprint-completeness",
                severity: Severity::Deny,
                file: file.rel.clone(),
                line: def.line,
                message: format!(
                    "{} never folds {} field{} `{}` ({} defined at {}:{}); a change there would silently replay stale cached evidence",
                    def.name,
                    cfg_type,
                    if missing.len() == 1 { "" } else { "s" },
                    missing.join("`, `"),
                    cfg_type,
                    struct_file.rel,
                    strukt.line,
                ),
                chain: Vec::new(),
            });
        }
    }
    out
}
