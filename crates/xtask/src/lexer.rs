//! A hand-rolled Rust lexer producing a line-annotated token stream.
//!
//! The lint pass needs exact source lines, comment-aware suppression
//! markers, and correct skipping of string/char literal contents — but
//! not full parsing. This lexer covers the whole surface the workspace
//! uses: line/block comments (nested), doc comments, string literals
//! with escapes, raw (byte) strings with arbitrary `#` fences, char
//! literals vs. lifetimes, numeric literals including floats and
//! exponents, identifiers, and single-char punctuation.
//!
//! Comments are not emitted as tokens; instead, `// lint:allow(rule)`
//! markers are collected into a per-line suppression table.

use std::collections::HashMap;

/// Kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// A single punctuation character (`.`, `(`, `!`, ...).
    Punct,
    /// String or byte-string literal (cooked or raw); text is the raw
    /// source slice including quotes.
    Str,
    /// Char or byte literal.
    Char,
    /// Numeric literal (integer or float, any base, with suffix).
    Num,
    /// Lifetime such as `'a` or `'_`.
    Lifetime,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Token {
    /// True when the token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// True when the token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// Result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream, comments stripped.
    pub tokens: Vec<Token>,
    /// `line -> rules` from `// lint:allow(a, b)` comment markers. The
    /// special name `all` suppresses every rule.
    pub suppressions: HashMap<u32, Vec<String>>,
    /// Lines whose `lint:allow(...)` marker carries no justification
    /// text after the closing paren — fodder for the `bare-allow` rule.
    pub bare_allows: Vec<u32>,
}

/// Whether the text after a `lint:allow(...)` marker's closing paren is
/// a justification. Leading separator punctuation (`—`, `--`, `:`) is
/// cosmetic; what must follow is at least one word of prose.
fn has_reason(after: &str) -> bool {
    after
        .trim_start_matches(|c: char| c.is_whitespace() || matches!(c, '—' | '–' | '-' | ':' | ','))
        .chars()
        .any(|c| c.is_alphanumeric())
}

/// Lexes `src` into tokens plus suppression markers.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            match c {
                '\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                c if c.is_whitespace() => self.pos += 1,
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.cooked_string(),
                'r' if matches!(self.peek(1), Some('"' | '#')) && self.raw_string_ahead(1) => {
                    self.raw_string(1)
                }
                'b' if self.peek(1) == Some('"') => self.cooked_string_prefixed(1),
                'b' if self.peek(1) == Some('\'') => self.char_literal(1),
                'b' if self.peek(1) == Some('r') && self.raw_string_ahead(2) => self.raw_string(2),
                '\'' => self.quote(),
                c if c.is_ascii_digit() => self.number(),
                c if c == '_' || c.is_alphabetic() => self.ident(),
                _ => {
                    self.push(TokKind::Punct, c.to_string());
                    self.pos += 1;
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokKind, text: String) {
        self.out.tokens.push(Token {
            kind,
            text,
            line: self.line,
        });
    }

    /// Whether `r` (at offset `at`) begins a raw string: `r"` or `r#"`
    /// with only `#` fence characters between.
    fn raw_string_ahead(&self, at: usize) -> bool {
        let mut i = at;
        while self.peek(i) == Some('#') {
            i += 1;
        }
        self.peek(i) == Some('"')
    }

    fn line_comment(&mut self) {
        let start = self.pos;
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        if let Some(idx) = text.find("lint:allow(") {
            let rest = &text[idx + "lint:allow(".len()..];
            if let Some(end) = rest.find(')') {
                let rules: Vec<String> = rest[..end]
                    .split(',')
                    .map(|r| r.trim().to_string())
                    .filter(|r| !r.is_empty())
                    .collect();
                if !has_reason(&rest[end + 1..]) {
                    self.out.bare_allows.push(self.line);
                }
                self.out
                    .suppressions
                    .entry(self.line)
                    .or_default()
                    .extend(rules);
            }
        }
    }

    fn block_comment(&mut self) {
        self.pos += 2;
        let mut depth = 1usize;
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                self.line += 1;
                self.pos += 1;
            } else if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                self.pos += 2;
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                self.pos += 2;
                if depth == 0 {
                    return;
                }
            } else {
                self.pos += 1;
            }
        }
    }

    fn cooked_string(&mut self) {
        self.cooked_string_prefixed(0);
    }

    /// Cooked (escaped) string; `prefix` chars precede the opening quote.
    fn cooked_string_prefixed(&mut self, prefix: usize) {
        let start = self.pos;
        let start_line = self.line;
        self.pos += prefix + 1; // prefix + opening quote
        while let Some(c) = self.peek(0) {
            match c {
                '\\' => self.pos += 2,
                '"' => {
                    self.pos += 1;
                    break;
                }
                '\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        let text: String = self.chars[start..self.pos.min(self.chars.len())]
            .iter()
            .collect();
        self.out.tokens.push(Token {
            kind: TokKind::Str,
            text,
            line: start_line,
        });
    }

    /// Raw string starting at `r`/`br`; `quote_at` is the offset of the
    /// first fence/quote character after the prefix letters.
    fn raw_string(&mut self, quote_at: usize) {
        let start = self.pos;
        let start_line = self.line;
        self.pos += quote_at;
        let mut fences = 0usize;
        while self.peek(0) == Some('#') {
            fences += 1;
            self.pos += 1;
        }
        self.pos += 1; // opening quote
        'body: while let Some(c) = self.peek(0) {
            if c == '\n' {
                self.line += 1;
                self.pos += 1;
                continue;
            }
            if c == '"' {
                // A close requires `"` followed by exactly `fences` #s.
                for i in 0..fences {
                    if self.peek(1 + i) != Some('#') {
                        self.pos += 1;
                        continue 'body;
                    }
                }
                self.pos += 1 + fences;
                break;
            }
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos.min(self.chars.len())]
            .iter()
            .collect();
        self.out.tokens.push(Token {
            kind: TokKind::Str,
            text,
            line: start_line,
        });
    }

    /// Byte char literal `b'x'`; `prefix` is 1 for the `b`.
    fn char_literal(&mut self, prefix: usize) {
        let start = self.pos;
        self.pos += prefix + 1; // prefix + opening quote
        if self.peek(0) == Some('\\') {
            self.pos += 2;
        } else {
            self.pos += 1;
        }
        // Consume up to the closing quote (covers `'\u{1F600}'`).
        while let Some(c) = self.peek(0) {
            self.pos += 1;
            if c == '\'' {
                break;
            }
        }
        let text: String = self.chars[start..self.pos.min(self.chars.len())]
            .iter()
            .collect();
        self.push(TokKind::Char, text);
    }

    /// A `'`: either a char literal or a lifetime.
    fn quote(&mut self) {
        match (self.peek(1), self.peek(2)) {
            // `'\...'` is always a char literal.
            (Some('\\'), _) => self.char_literal(0),
            // `'x'` is a char literal; `'x` followed by anything else is
            // a lifetime (or a loop label, lexed identically).
            (Some(_), Some('\'')) => self.char_literal(0),
            _ => {
                let start = self.pos;
                self.pos += 1;
                while let Some(c) = self.peek(0) {
                    if c == '_' || c.is_alphanumeric() {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                let text: String = self.chars[start..self.pos].iter().collect();
                self.push(TokKind::Lifetime, text);
            }
        }
    }

    fn number(&mut self) {
        let start = self.pos;
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                self.pos += 1;
                // Exponent sign: `1e-3`, `2.5E+7`.
                if (c == 'e' || c == 'E')
                    && !self.base_prefixed(start)
                    && matches!(self.peek(0), Some('+' | '-'))
                {
                    self.pos += 1;
                }
            } else if c == '.'
                && self.peek(1).is_some_and(|d| d.is_ascii_digit())
                && !self.base_prefixed(start)
            {
                // Fractional part — but never consume `..` (range).
                self.pos += 1;
            } else {
                break;
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        self.push(TokKind::Num, text);
    }

    /// Whether the literal starting at `start` has a base prefix
    /// (`0x`/`0o`/`0b`), which rules out float parts.
    fn base_prefixed(&self, start: usize) -> bool {
        self.chars[start] == '0'
            && matches!(
                self.chars.get(start + 1),
                Some('x' | 'o' | 'b' | 'X' | 'O' | 'B')
            )
    }

    fn ident(&mut self) {
        let start = self.pos;
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        self.push(TokKind::Ident, text);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn lexes_mixed_tokens_with_lines() {
        let lexed = lex("let x = 1;\nlet y = x.unwrap();\n");
        let unwrap = lexed
            .tokens
            .iter()
            .find(|t| t.is_ident("unwrap"))
            .expect("unwrap token");
        assert_eq!(unwrap.line, 2);
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Num && t.text == "1"));
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let lexed = lex(
            "// panic! in a comment\nlet s = \"panic!('x')\";\n/* .unwrap() */\nlet r = r#\"expect(\"inner\")\"#;\n",
        );
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("panic")));
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("unwrap")));
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("expect")));
        let strs: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .collect();
        assert_eq!(strs.len(), 2);
    }

    #[test]
    fn char_literals_and_lifetimes_are_distinguished() {
        let toks = kinds("fn f<'a>(c: char) { let x = 'x'; let nl = '\\n'; }");
        assert!(toks.contains(&(TokKind::Lifetime, "'a".into())));
        assert!(toks.contains(&(TokKind::Char, "'x'".into())));
        assert!(toks.contains(&(TokKind::Char, "'\\n'".into())));
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let toks = kinds("for i in 0..10 { let f = 1.5e-3f64; let h = 0xFF; t.0 }");
        assert!(toks.contains(&(TokKind::Num, "0".into())));
        assert!(toks.contains(&(TokKind::Num, "10".into())));
        assert!(toks.contains(&(TokKind::Num, "1.5e-3f64".into())));
        assert!(toks.contains(&(TokKind::Num, "0xFF".into())));
    }

    #[test]
    fn suppression_markers_are_collected() {
        let lexed = lex(
            "x.unwrap(); // lint:allow(no-panic-in-lib)\n// lint:allow(rule-a, rule-b)\ny();\n",
        );
        assert_eq!(
            lexed.suppressions.get(&1),
            Some(&vec!["no-panic-in-lib".to_string()])
        );
        assert_eq!(
            lexed.suppressions.get(&2),
            Some(&vec!["rule-a".to_string(), "rule-b".to_string()])
        );
    }

    #[test]
    fn bare_allows_are_distinguished_from_reasoned_ones() {
        let lexed = lex(concat!(
            "a(); // lint:allow(rule-a)\n",
            "b(); // lint:allow(rule-b) — bounds checked above\n",
            "c(); // lint:allow(rule-c) -- legacy reason style\n",
            "d(); // lint:allow(rule-d) —\n",
        ));
        assert_eq!(lexed.bare_allows, vec![1, 4]);
        // Bare markers still populate the suppression table.
        assert!(lexed.suppressions.contains_key(&1));
    }

    #[test]
    fn nested_block_comments_and_multiline_strings() {
        let lexed = lex("/* outer /* inner */ still comment */ let a = \"line1\nline2\"; b");
        assert!(lexed.tokens.iter().any(|t| t.is_ident("a")));
        let b = lexed.tokens.iter().find(|t| t.is_ident("b")).expect("b");
        assert_eq!(b.line, 2);
    }
}
