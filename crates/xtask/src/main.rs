//! Workspace automation tasks, invoked as `cargo xtask <command>`.
//!
//! The only command today is `lint`, the custom static-analysis pass
//! described in DESIGN.md's "Lint registry" section: it lexes every
//! workspace `.rs` file in parallel, runs the per-file rules, then
//! builds a workspace symbol table + call graph and runs the graph
//! rules (nondeterminism-taint, panic-reach, fingerprint-completeness)
//! over it. Warn counts are ratcheted against the committed
//! `LINT_BASELINE.json` — warns may only go down.
//!
//! ```text
//! cargo xtask lint                    # human-readable report, exit 1 on deny
//! cargo xtask lint --format json      # machine-readable report (CI)
//! cargo xtask lint --list             # print the rule registry
//! cargo xtask lint --root <dir>       # lint a different tree (tests)
//! cargo xtask lint --update-baseline  # rewrite LINT_BASELINE.json
//! ```

mod graph;
mod lexer;
mod lint;
mod taint;

use lint::{Diagnostic, Severity, RULES};
use logdep_par::ParConfig;
use serde_json::Value;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

/// The committed warn-count ratchet, at the lint root.
const BASELINE_FILE: &str = "LINT_BASELINE.json";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(&args[1..]),
        Some(other) => {
            eprintln!("unknown command `{other}`; available: lint");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo xtask lint [--format human|json] [--list] [--root <dir>]");
            ExitCode::FAILURE
        }
    }
}

#[derive(Debug, PartialEq, Eq)]
enum Format {
    Human,
    Json,
}

fn run_lint(args: &[String]) -> ExitCode {
    let mut format = Format::Human;
    let mut root: Option<PathBuf> = None;
    let mut update_baseline = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--format" => match iter.next().map(String::as_str) {
                Some("human") => format = Format::Human,
                Some("json") => format = Format::Json,
                other => {
                    eprintln!("--format expects `human` or `json`, got {other:?}");
                    return ExitCode::FAILURE;
                }
            },
            "--list" => {
                for rule in RULES {
                    println!(
                        "{:<24} {:<5} [{}]  {}",
                        rule.name,
                        rule.severity.as_str(),
                        rule.scope.join(", "),
                        rule.summary
                    );
                }
                return ExitCode::SUCCESS;
            }
            "--root" => match iter.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--root expects a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--update-baseline" => update_baseline = true,
            other => {
                eprintln!("unknown lint option `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    let started = Instant::now();
    let root = root.unwrap_or_else(workspace_root);
    let paths = collect_rs_files(&root);
    let mut files: Vec<(String, String)> = Vec::with_capacity(paths.len());
    for path in &paths {
        let rel = relative_label(&root, path);
        match std::fs::read_to_string(path) {
            Ok(src) => files.push((rel, src)),
            Err(err) => eprintln!("warning: could not read {rel}: {err}"),
        }
    }
    let diagnostics = lint::lint_workspace(&files, &ParConfig::default());
    let elapsed_ms = started.elapsed().as_millis() as u64;

    let denies = diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Deny)
        .count();
    let warns = diagnostics.len() - denies;
    let warns_by_rule = count_warns_by_rule(&diagnostics);

    let baseline_path = root.join(BASELINE_FILE);
    if update_baseline {
        let text = baseline_to_json(&warns_by_rule);
        if let Err(err) = std::fs::write(&baseline_path, text) {
            eprintln!("could not write {}: {err}", baseline_path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {}", baseline_path.display());
    }
    let baseline = read_baseline(&baseline_path);
    let exceeded = baseline_exceeded(&warns_by_rule, baseline.as_deref());

    match format {
        Format::Human => {
            for d in &diagnostics {
                println!(
                    "{}:{} {}[{}]: {}",
                    d.file,
                    d.line,
                    d.severity.as_str(),
                    d.rule,
                    d.message
                );
                if !d.chain.is_empty() {
                    println!("    via: {}", d.chain.join(" → "));
                }
            }
            for (rule, current, allowed) in &exceeded {
                println!(
                    "baseline[{rule}]: {current} warns exceeds the committed ratchet of {allowed}"
                );
            }
            println!(
                "lint: {} files scanned, {denies} deny, {warns} warn, {elapsed_ms} ms{}",
                files.len(),
                match (&baseline, exceeded.is_empty()) {
                    (None, _) => ", no baseline".to_string(),
                    (Some(_), true) => ", baseline ok".to_string(),
                    (Some(_), false) => ", BASELINE EXCEEDED".to_string(),
                }
            );
        }
        Format::Json => {
            let report = Value::Object(vec![
                ("files_scanned".into(), Value::U64(files.len() as u64)),
                ("deny".into(), Value::U64(denies as u64)),
                ("warn".into(), Value::U64(warns as u64)),
                ("elapsed_ms".into(), Value::U64(elapsed_ms)),
                (
                    "warns_by_rule".into(),
                    Value::Object(
                        warns_by_rule
                            .iter()
                            .map(|(rule, n)| (rule.to_string(), Value::U64(*n)))
                            .collect(),
                    ),
                ),
                (
                    "baseline".into(),
                    Value::Object(vec![
                        ("found".into(), Value::Bool(baseline.is_some())),
                        ("ok".into(), Value::Bool(exceeded.is_empty())),
                        (
                            "exceeded".into(),
                            Value::Array(
                                exceeded
                                    .iter()
                                    .map(|(rule, current, allowed)| {
                                        Value::Object(vec![
                                            ("rule".into(), Value::Str(rule.to_string())),
                                            ("current".into(), Value::U64(*current)),
                                            ("baseline".into(), Value::U64(*allowed)),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                    ]),
                ),
                (
                    "diagnostics".into(),
                    Value::Array(diagnostics.iter().map(diag_to_value).collect()),
                ),
            ]);
            match serde_json::to_string_pretty(&report) {
                Ok(text) => println!("{text}"),
                Err(err) => {
                    eprintln!("could not serialize report: {err}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    if denies > 0 || !exceeded.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Warn counts per rule, sorted by rule name for stable output.
fn count_warns_by_rule(diagnostics: &[Diagnostic]) -> Vec<(&'static str, u64)> {
    let mut out: Vec<(&'static str, u64)> = Vec::new();
    for d in diagnostics {
        if d.severity != Severity::Warn {
            continue;
        }
        match out.iter_mut().find(|(rule, _)| *rule == d.rule) {
            Some((_, n)) => *n += 1,
            None => out.push((d.rule, 1)),
        }
    }
    out.sort_by_key(|(rule, _)| *rule);
    out
}

fn baseline_to_json(warns_by_rule: &[(&'static str, u64)]) -> String {
    let value = Value::Object(vec![
        ("version".into(), Value::U64(1)),
        (
            "warns".into(),
            Value::Object(
                warns_by_rule
                    .iter()
                    .map(|(rule, n)| (rule.to_string(), Value::U64(*n)))
                    .collect(),
            ),
        ),
    ]);
    serde_json::to_string_pretty(&value).unwrap_or_else(|_| "{}".to_string())
}

/// The committed per-rule warn allowances, when a baseline file exists.
fn read_baseline(path: &Path) -> Option<Vec<(String, u64)>> {
    let text = std::fs::read_to_string(path).ok()?;
    let value: Value = serde_json::from_str(&text).ok()?;
    let Value::Object(fields) = value else {
        return None;
    };
    let warns = fields.iter().find(|(k, _)| k == "warns")?;
    let Value::Object(entries) = &warns.1 else {
        return None;
    };
    Some(
        entries
            .iter()
            .filter_map(|(rule, v)| match v {
                Value::U64(n) => Some((rule.clone(), *n)),
                Value::I64(n) if *n >= 0 => Some((rule.clone(), *n as u64)),
                _ => None,
            })
            .collect(),
    )
}

/// Rules whose current warn count exceeds the committed allowance
/// (`(rule, current, allowed)`). Rules absent from the baseline have an
/// allowance of zero — adding a warn rule forces a baseline update.
fn baseline_exceeded(
    current: &[(&'static str, u64)],
    baseline: Option<&[(String, u64)]>,
) -> Vec<(&'static str, u64, u64)> {
    let Some(baseline) = baseline else {
        return Vec::new();
    };
    current
        .iter()
        .filter_map(|&(rule, n)| {
            let allowed = baseline
                .iter()
                .find(|(r, _)| r == rule)
                .map_or(0, |&(_, a)| a);
            (n > allowed).then_some((rule, n, allowed))
        })
        .collect()
}

fn diag_to_value(d: &Diagnostic) -> Value {
    Value::Object(vec![
        ("rule".into(), Value::Str(d.rule.to_string())),
        ("severity".into(), Value::Str(d.severity.as_str().into())),
        ("file".into(), Value::Str(d.file.clone())),
        ("line".into(), Value::U64(u64::from(d.line))),
        ("message".into(), Value::Str(d.message.clone())),
        (
            "chain".into(),
            Value::Array(d.chain.iter().map(|c| Value::Str(c.clone())).collect()),
        ),
    ])
}

/// The workspace root: two levels above this crate's manifest dir.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &[
    "target",
    "vendor",
    ".git",
    ".cargo",
    "fixtures",
    "node_modules",
];

/// All `.rs` files under `root`, depth-first, skipping build output,
/// vendored stand-ins, and lint fixtures.
fn collect_rs_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = match std::fs::read_dir(&dir) {
            Ok(entries) => entries,
            Err(_) => continue,
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

/// Repo-relative, `/`-separated label for diagnostics.
fn relative_label(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod fixture_tests {
    //! End-to-end checks over the seeded-violation fixture files in
    //! `crates/xtask/fixtures/`. Each fixture is linted as if it lived
    //! in a scoped crate, and must produce exactly the violations it
    //! seeds.

    use crate::lint::{lint_source, lint_workspace, rule, Diagnostic, Severity};
    use logdep_par::ParConfig;

    fn fixture(name: &str) -> String {
        let path = format!("{}/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
    }

    /// Lints fixture files as if they lived at the given workspace
    /// paths, so the graph rules see a multi-module crate.
    fn workspace(pairs: &[(&str, &str)]) -> Vec<Diagnostic> {
        let files: Vec<(String, String)> = pairs
            .iter()
            .map(|(rel, name)| (rel.to_string(), fixture(name)))
            .collect();
        lint_workspace(&files, &ParConfig::default())
    }

    #[test]
    fn registry_is_well_formed() {
        for info in crate::lint::RULES {
            assert!(rule(info.name).is_some());
            assert!(!info.scope.is_empty(), "{} has no scope", info.name);
            assert!(!info.summary.is_empty());
        }
        assert_eq!(
            rule("no-panic-in-lib").map(|r| r.severity),
            Some(Severity::Deny)
        );
        assert_eq!(rule("result-api").map(|r| r.severity), Some(Severity::Warn));
    }

    #[test]
    fn catches_panic_sites() {
        let diags = lint_source("crates/stats/src/fixture.rs", &fixture("panic_sites.rs"));
        let lines: Vec<u32> = diags
            .iter()
            .filter(|d| d.rule == "no-panic-in-lib")
            .map(|d| d.line)
            .collect();
        // Seeded: unwrap, expect, panic!, unimplemented!, todo! — one each.
        assert_eq!(lines.len(), 5, "diags: {diags:?}");
    }

    #[test]
    fn catches_nan_unsafe_comparators() {
        let diags = lint_source("crates/stats/src/fixture.rs", &fixture("nan_float.rs"));
        let nan: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == "nan-unsafe-float")
            .collect();
        assert_eq!(nan.len(), 2, "diags: {diags:?}");
        // The total_cmp sort must NOT be flagged.
        assert!(
            nan.iter().all(|d| d.line != 14),
            "total_cmp flagged: {nan:?}"
        );
    }

    #[test]
    fn catches_lossy_time_casts() {
        let diags = lint_source("crates/logstore/src/fixture.rs", &fixture("time_cast.rs"));
        let casts: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == "lossy-time-cast")
            .collect();
        assert_eq!(casts.len(), 3, "diags: {diags:?}");
    }

    #[test]
    fn catches_result_api_violations() {
        let diags = lint_source("crates/core/src/fixture.rs", &fixture("result_api.rs"));
        let api: Vec<_> = diags.iter().filter(|d| d.rule == "result-api").collect();
        assert_eq!(api.len(), 1, "diags: {diags:?}");
        assert!(api[0].message.contains("hidden_panic"));
    }

    #[test]
    fn catches_runtime_indexing_but_not_literals() {
        let diags = lint_source("crates/sessions/src/fixture.rs", &fixture("indexing.rs"));
        let idx: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == "unchecked-indexing")
            .collect();
        assert_eq!(idx.len(), 2, "diags: {diags:?}");
    }

    #[test]
    fn catches_silent_result_drops() {
        let diags = lint_source("crates/logstore/src/fixture.rs", &fixture("silent_drop.rs"));
        let drops: Vec<_> = diags.iter().filter(|d| d.rule == "silent-drop").collect();
        assert_eq!(drops.len(), 2, "diags: {diags:?}");
        // Named bindings, plain-value drops, suppressed sites, and test
        // code must all stay clean.
        assert!(
            drops.iter().all(|d| d.line == 7 || d.line == 11),
            "diags: {drops:?}"
        );
    }

    #[test]
    fn catches_raw_thread_spawns_outside_par() {
        let diags = lint_source("crates/core/src/fixture.rs", &fixture("thread_spawn.rs"));
        let spawns: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == "raw-thread-spawn")
            .collect();
        // Seeded: std::thread::spawn and bare thread::spawn, one each;
        // the scoped spawn and the test-module spawn must stay clean.
        assert_eq!(spawns.len(), 2, "diags: {diags:?}");
        assert!(spawns.iter().all(|d| d.message.contains("logdep_par")));
        // The par crate itself is the one place raw spawns are legal.
        let diags = lint_source("crates/par/src/fixture.rs", &fixture("thread_spawn.rs"));
        assert!(
            diags.iter().all(|d| d.rule != "raw-thread-spawn"),
            "diags: {diags:?}"
        );
    }

    #[test]
    fn catches_hot_path_comparator_sorts() {
        // Timeline crate: every file is hot.
        let diags = lint_source("crates/logstore/src/fixture.rs", &fixture("hot_sort.rs"));
        let sorts: Vec<_> = diags.iter().filter(|d| d.rule == "hot-sort").collect();
        // Seeded: one sort_by and one sort_unstable_by; the derived-order
        // sort, the key sort, the suppressed call, and the test module
        // must all stay clean.
        let lines: Vec<u32> = sorts.iter().map(|d| d.line).collect();
        assert_eq!(lines, vec![6, 7], "diags: {diags:?}");
        assert!(sorts
            .iter()
            .all(|d| d.severity == Severity::Warn && d.message.contains("merge-sweep")));
        // Core crate: only the L1 kernel directory is hot.
        let diags = lint_source("crates/core/src/l1/fixture.rs", &fixture("hot_sort.rs"));
        assert_eq!(
            diags.iter().filter(|d| d.rule == "hot-sort").count(),
            2,
            "diags: {diags:?}"
        );
        let diags = lint_source("crates/core/src/fixture.rs", &fixture("hot_sort.rs"));
        assert!(
            diags.iter().all(|d| d.rule != "hot-sort"),
            "cold core path flagged: {diags:?}"
        );
    }

    #[test]
    fn catches_non_atomic_persistent_writes() {
        let diags = lint_source(
            "crates/cli/src/fixture.rs",
            &fixture("non_atomic_persist.rs"),
        );
        let hits: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == "non-atomic-persist")
            .collect();
        // Seeded: a cache-named path, a `.journal` string literal, and a
        // File::create of a checkpoint path; the data-path write, the
        // method-call write, the durable helper, the suppressed call,
        // and the test module must all stay clean.
        let lines: Vec<u32> = hits.iter().map(|d| d.line).collect();
        assert_eq!(lines, vec![6, 7, 8], "diags: {diags:?}");
        assert!(hits
            .iter()
            .all(|d| d.severity == Severity::Warn && d.message.contains("persist_atomic")));
        // The durable writer itself is the sanctioned home for raw writes.
        let diags = lint_source(
            "crates/core/src/durable.rs",
            &fixture("non_atomic_persist.rs"),
        );
        assert!(
            diags.iter().all(|d| d.rule != "non-atomic-persist"),
            "diags: {diags:?}"
        );
    }

    #[test]
    fn suppressions_silence_seeded_violations() {
        let diags = lint_source("crates/stats/src/fixture.rs", &fixture("suppressed.rs"));
        assert!(
            diags.iter().all(|d| d.severity != Severity::Deny),
            "diags: {diags:?}"
        );
    }

    #[test]
    fn out_of_scope_crates_are_untouched() {
        let diags = lint_source("crates/cli/src/fixture.rs", &fixture("panic_sites.rs"));
        assert!(diags.is_empty(), "cli is not a lib crate: {diags:?}");
    }

    #[test]
    fn taint_flags_nondeterminism_reachable_from_pipeline() {
        let diags = workspace(&[
            ("crates/core/src/pipe.rs", "taint_pipe.rs"),
            ("crates/core/src/util.rs", "taint_util.rs"),
        ]);
        let taint: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == "nondeterminism-taint")
            .collect();
        // Seeded: the HashMap iteration in hash_counts and the Instant
        // read in stamp. The BTreeMap walk and the justified HashMap
        // walk must stay clean.
        assert_eq!(taint.len(), 2, "diags: {diags:?}");
        assert!(taint.iter().all(|d| d.file == "crates/core/src/util.rs"));
        let hash = taint
            .iter()
            .find(|d| d.message.contains("HashMap/HashSet iteration"))
            .expect("hash-iteration diag");
        // The diagnostic must carry the full entry → fact call chain.
        assert!(
            hash.chain
                .first()
                .is_some_and(|c| c.contains("run_pipeline"))
                && hash.chain.last().is_some_and(|c| c.contains("hash_counts")),
            "chain: {:?}",
            hash.chain
        );
        assert!(taint
            .iter()
            .any(|d| d.message.contains("wall-clock") && d.message.contains("Instant")));
    }

    #[test]
    fn taint_stays_quiet_without_an_entry_point() {
        // Same helpers, but nothing named like a snapshot entry reaches
        // them — util.rs alone must not fire the taint rule.
        let diags = workspace(&[("crates/core/src/util.rs", "taint_util.rs")]);
        assert!(
            diags.iter().all(|d| d.rule != "nondeterminism-taint"),
            "diags: {diags:?}"
        );
    }

    #[test]
    fn panic_reach_flags_pub_api_through_private_fn() {
        let diags = workspace(&[
            ("crates/stats/src/api.rs", "panic_api.rs"),
            ("crates/stats/src/inner.rs", "panic_inner.rs"),
        ]);
        let reach: Vec<_> = diags.iter().filter(|d| d.rule == "panic-reach").collect();
        // Only percentile: justified is suppressed at its definition,
        // safe calls the checked variant.
        assert_eq!(reach.len(), 1, "diags: {diags:?}");
        let d = reach[0];
        assert_eq!(d.file, "crates/stats/src/api.rs");
        assert!(d.message.contains("percentile"), "msg: {}", d.message);
        assert!(
            d.message.contains("crates/stats/src/inner.rs"),
            "msg: {}",
            d.message
        );
        assert!(
            d.chain.first().is_some_and(|c| c.contains("percentile"))
                && d.chain.last().is_some_and(|c| c.contains("pick")),
            "chain: {:?}",
            d.chain
        );
    }

    #[test]
    fn fingerprint_gaps_are_denied_and_suppressible() {
        let diags = workspace(&[("crates/core/src/fp.rs", "fingerprint.rs")]);
        let fp: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == "fingerprint-completeness")
            .collect();
        // demo_fingerprint skips two_sided; full_fingerprint folds
        // everything; legacy_fingerprint is justified.
        assert_eq!(fp.len(), 1, "diags: {diags:?}");
        assert!(
            fp[0].message.contains("demo_fingerprint"),
            "msg: {}",
            fp[0].message
        );
        assert!(
            fp[0].message.contains("`two_sided`"),
            "msg: {}",
            fp[0].message
        );
        assert!(
            !fp[0].message.contains("slot_ms") && !fp[0].message.contains("alpha"),
            "folded fields reported missing: {}",
            fp[0].message
        );
    }

    #[test]
    fn instrumentation_gaps_are_denied_and_suppressible() {
        let diags = workspace(&[
            ("crates/core/src/pipe.rs", "instr_pipe.rs"),
            ("crates/core/src/window.rs", "instr_stages.rs"),
        ]);
        let instr: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == "instrumentation-completeness")
            .collect();
        // Only run_silent: the driver and run_window_cached emit their
        // own pairs, run_tolerated is justified, inner_sum is private.
        assert_eq!(instr.len(), 1, "diags: {diags:?}");
        let d = instr[0];
        assert_eq!(d.severity, Severity::Deny);
        assert_eq!(d.file, "crates/core/src/window.rs");
        assert!(d.message.contains("run_silent"), "msg: {}", d.message);
        assert!(
            d.message.contains("span_begin") && d.message.contains("span_end"),
            "msg: {}",
            d.message
        );
        assert!(
            d.chain.first().is_some_and(|c| c.contains("run_pipeline"))
                && d.chain.last().is_some_and(|c| c.contains("run_silent")),
            "chain: {:?}",
            d.chain
        );
    }

    #[test]
    fn instrumentation_stays_quiet_without_a_driver() {
        // The stages alone, with no run_pipeline/run_daily_durable in
        // sight, must not fire: unreachable stages are dead code's
        // problem, not the trace's.
        let diags = workspace(&[("crates/core/src/window.rs", "instr_stages.rs")]);
        assert!(
            diags
                .iter()
                .all(|d| d.rule != "instrumentation-completeness"),
            "diags: {diags:?}"
        );
    }

    #[test]
    fn bare_allows_are_denied_but_still_suppress() {
        let diags = workspace(&[("crates/stats/src/fixture.rs", "bare_allow.rs")]);
        let bare: Vec<_> = diags.iter().filter(|d| d.rule == "bare-allow").collect();
        assert_eq!(bare.len(), 1, "diags: {diags:?}");
        assert_eq!(bare[0].severity, Severity::Deny);
        // Even a bare marker silences its target rule — the deny moves
        // the problem to the marker itself, not back to the panic site.
        assert!(
            diags.iter().all(|d| d.rule != "no-panic-in-lib"),
            "diags: {diags:?}"
        );
    }

    #[test]
    fn blocking_io_in_handlers_is_denied_and_suppressible() {
        let diags = workspace(&[
            ("crates/serve/src/handlers.rs", "serve_handlers.rs"),
            ("crates/serve/src/loader.rs", "serve_swap.rs"),
        ]);
        let blocking: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == "blocking-io-in-handler")
            .collect();
        // Two violations: handle_stale reads the fs directly, and
        // handle_rebuild reaches the durable store through a helper.
        // handle_lookup is pure, handle_bootstrap is suppressed, and
        // the reload/swap path is legal — no handler reaches it.
        assert_eq!(blocking.len(), 2, "diags: {diags:?}");
        for d in &blocking {
            assert_eq!(d.severity, Severity::Deny);
            assert_eq!(d.file, "crates/serve/src/handlers.rs");
        }
        let direct = blocking
            .iter()
            .find(|d| d.message.contains("handle_stale"))
            .expect("direct fs violation");
        assert!(direct.message.contains("fs::"), "msg: {}", direct.message);
        let chained = blocking
            .iter()
            .find(|d| d.message.contains("handle_rebuild"))
            .expect("chained durable violation");
        assert!(
            chained.message.contains("DurableStore"),
            "msg: {}",
            chained.message
        );
        assert!(
            chained
                .chain
                .first()
                .is_some_and(|c| c.contains("handle_rebuild"))
                && chained
                    .chain
                    .last()
                    .is_some_and(|c| c.contains("load_evidence")),
            "chain: {:?}",
            chained.chain
        );
        // The loader's own fs/durable calls never fire.
        assert!(
            diags
                .iter()
                .all(|d| d.rule != "blocking-io-in-handler"
                    || d.file != "crates/serve/src/loader.rs"),
            "diags: {diags:?}"
        );
    }

    #[test]
    fn blocking_io_stays_quiet_without_handlers() {
        // The reload/swap path alone — fs and durable calls galore, but
        // no handle_* entry point in sight — must not fire.
        let diags = workspace(&[("crates/serve/src/loader.rs", "serve_swap.rs")]);
        assert!(
            diags.iter().all(|d| d.rule != "blocking-io-in-handler"),
            "diags: {diags:?}"
        );
    }
}
