//! Workspace automation tasks, invoked as `cargo xtask <command>`.
//!
//! The only command today is `lint`, the custom static-analysis pass
//! described in DESIGN.md's "Lint registry" section: it lexes every
//! workspace `.rs` file and enforces the panic-hygiene and numeric-
//! robustness rules the paper-reproduction code relies on.
//!
//! ```text
//! cargo xtask lint                 # human-readable report, exit 1 on deny
//! cargo xtask lint --format json   # machine-readable report (CI)
//! cargo xtask lint --list          # print the rule registry
//! cargo xtask lint --root <dir>    # lint a different tree (tests)
//! ```

mod lexer;
mod lint;

use lint::{Diagnostic, Severity, RULES};
use serde_json::Value;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(&args[1..]),
        Some(other) => {
            eprintln!("unknown command `{other}`; available: lint");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo xtask lint [--format human|json] [--list] [--root <dir>]");
            ExitCode::FAILURE
        }
    }
}

#[derive(Debug, PartialEq, Eq)]
enum Format {
    Human,
    Json,
}

fn run_lint(args: &[String]) -> ExitCode {
    let mut format = Format::Human;
    let mut root: Option<PathBuf> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--format" => match iter.next().map(String::as_str) {
                Some("human") => format = Format::Human,
                Some("json") => format = Format::Json,
                other => {
                    eprintln!("--format expects `human` or `json`, got {other:?}");
                    return ExitCode::FAILURE;
                }
            },
            "--list" => {
                for rule in RULES {
                    println!(
                        "{:<20} {:<5} [{}]  {}",
                        rule.name,
                        rule.severity.as_str(),
                        rule.scope.join(", "),
                        rule.summary
                    );
                }
                return ExitCode::SUCCESS;
            }
            "--root" => match iter.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--root expects a directory");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown lint option `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    let root = root.unwrap_or_else(workspace_root);
    let files = collect_rs_files(&root);
    let mut diagnostics: Vec<Diagnostic> = Vec::new();
    for file in &files {
        let rel = relative_label(&root, file);
        match std::fs::read_to_string(file) {
            Ok(src) => diagnostics.extend(lint::lint_source(&rel, &src)),
            Err(err) => eprintln!("warning: could not read {rel}: {err}"),
        }
    }
    diagnostics.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));

    let denies = diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Deny)
        .count();
    let warns = diagnostics.len() - denies;

    match format {
        Format::Human => {
            for d in &diagnostics {
                println!(
                    "{}:{} {}[{}]: {}",
                    d.file,
                    d.line,
                    d.severity.as_str(),
                    d.rule,
                    d.message
                );
            }
            println!(
                "lint: {} files scanned, {denies} deny, {warns} warn",
                files.len()
            );
        }
        Format::Json => {
            let report = Value::Object(vec![
                ("files_scanned".into(), Value::U64(files.len() as u64)),
                ("deny".into(), Value::U64(denies as u64)),
                ("warn".into(), Value::U64(warns as u64)),
                (
                    "diagnostics".into(),
                    Value::Array(diagnostics.iter().map(diag_to_value).collect()),
                ),
            ]);
            match serde_json::to_string_pretty(&report) {
                Ok(text) => println!("{text}"),
                Err(err) => {
                    eprintln!("could not serialize report: {err}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    if denies > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn diag_to_value(d: &Diagnostic) -> Value {
    Value::Object(vec![
        ("rule".into(), Value::Str(d.rule.to_string())),
        ("severity".into(), Value::Str(d.severity.as_str().into())),
        ("file".into(), Value::Str(d.file.clone())),
        ("line".into(), Value::U64(u64::from(d.line))),
        ("message".into(), Value::Str(d.message.clone())),
    ])
}

/// The workspace root: two levels above this crate's manifest dir.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &[
    "target",
    "vendor",
    ".git",
    ".cargo",
    "fixtures",
    "node_modules",
];

/// All `.rs` files under `root`, depth-first, skipping build output,
/// vendored stand-ins, and lint fixtures.
fn collect_rs_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = match std::fs::read_dir(&dir) {
            Ok(entries) => entries,
            Err(_) => continue,
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

/// Repo-relative, `/`-separated label for diagnostics.
fn relative_label(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod fixture_tests {
    //! End-to-end checks over the seeded-violation fixture files in
    //! `crates/xtask/fixtures/`. Each fixture is linted as if it lived
    //! in a scoped crate, and must produce exactly the violations it
    //! seeds.

    use crate::lint::{lint_source, rule, Severity};

    fn fixture(name: &str) -> String {
        let path = format!("{}/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
    }

    #[test]
    fn registry_is_well_formed() {
        for info in crate::lint::RULES {
            assert!(rule(info.name).is_some());
            assert!(!info.scope.is_empty(), "{} has no scope", info.name);
            assert!(!info.summary.is_empty());
        }
        assert_eq!(
            rule("no-panic-in-lib").map(|r| r.severity),
            Some(Severity::Deny)
        );
        assert_eq!(rule("result-api").map(|r| r.severity), Some(Severity::Warn));
    }

    #[test]
    fn catches_panic_sites() {
        let diags = lint_source("crates/stats/src/fixture.rs", &fixture("panic_sites.rs"));
        let lines: Vec<u32> = diags
            .iter()
            .filter(|d| d.rule == "no-panic-in-lib")
            .map(|d| d.line)
            .collect();
        // Seeded: unwrap, expect, panic!, unimplemented!, todo! — one each.
        assert_eq!(lines.len(), 5, "diags: {diags:?}");
    }

    #[test]
    fn catches_nan_unsafe_comparators() {
        let diags = lint_source("crates/stats/src/fixture.rs", &fixture("nan_float.rs"));
        let nan: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == "nan-unsafe-float")
            .collect();
        assert_eq!(nan.len(), 2, "diags: {diags:?}");
        // The total_cmp sort must NOT be flagged.
        assert!(
            nan.iter().all(|d| d.line != 14),
            "total_cmp flagged: {nan:?}"
        );
    }

    #[test]
    fn catches_lossy_time_casts() {
        let diags = lint_source("crates/logstore/src/fixture.rs", &fixture("time_cast.rs"));
        let casts: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == "lossy-time-cast")
            .collect();
        assert_eq!(casts.len(), 3, "diags: {diags:?}");
    }

    #[test]
    fn catches_result_api_violations() {
        let diags = lint_source("crates/core/src/fixture.rs", &fixture("result_api.rs"));
        let api: Vec<_> = diags.iter().filter(|d| d.rule == "result-api").collect();
        assert_eq!(api.len(), 1, "diags: {diags:?}");
        assert!(api[0].message.contains("hidden_panic"));
    }

    #[test]
    fn catches_runtime_indexing_but_not_literals() {
        let diags = lint_source("crates/sessions/src/fixture.rs", &fixture("indexing.rs"));
        let idx: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == "unchecked-indexing")
            .collect();
        assert_eq!(idx.len(), 2, "diags: {diags:?}");
    }

    #[test]
    fn catches_silent_result_drops() {
        let diags = lint_source("crates/logstore/src/fixture.rs", &fixture("silent_drop.rs"));
        let drops: Vec<_> = diags.iter().filter(|d| d.rule == "silent-drop").collect();
        assert_eq!(drops.len(), 2, "diags: {diags:?}");
        // Named bindings, plain-value drops, suppressed sites, and test
        // code must all stay clean.
        assert!(
            drops.iter().all(|d| d.line == 7 || d.line == 11),
            "diags: {drops:?}"
        );
    }

    #[test]
    fn catches_raw_thread_spawns_outside_par() {
        let diags = lint_source("crates/core/src/fixture.rs", &fixture("thread_spawn.rs"));
        let spawns: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == "raw-thread-spawn")
            .collect();
        // Seeded: std::thread::spawn and bare thread::spawn, one each;
        // the scoped spawn and the test-module spawn must stay clean.
        assert_eq!(spawns.len(), 2, "diags: {diags:?}");
        assert!(spawns.iter().all(|d| d.message.contains("logdep_par")));
        // The par crate itself is the one place raw spawns are legal.
        let diags = lint_source("crates/par/src/fixture.rs", &fixture("thread_spawn.rs"));
        assert!(
            diags.iter().all(|d| d.rule != "raw-thread-spawn"),
            "diags: {diags:?}"
        );
    }

    #[test]
    fn catches_hot_path_comparator_sorts() {
        // Timeline crate: every file is hot.
        let diags = lint_source("crates/logstore/src/fixture.rs", &fixture("hot_sort.rs"));
        let sorts: Vec<_> = diags.iter().filter(|d| d.rule == "hot-sort").collect();
        // Seeded: one sort_by and one sort_unstable_by; the derived-order
        // sort, the key sort, the suppressed call, and the test module
        // must all stay clean.
        let lines: Vec<u32> = sorts.iter().map(|d| d.line).collect();
        assert_eq!(lines, vec![6, 7], "diags: {diags:?}");
        assert!(sorts
            .iter()
            .all(|d| d.severity == Severity::Warn && d.message.contains("merge-sweep")));
        // Core crate: only the L1 kernel directory is hot.
        let diags = lint_source("crates/core/src/l1/fixture.rs", &fixture("hot_sort.rs"));
        assert_eq!(
            diags.iter().filter(|d| d.rule == "hot-sort").count(),
            2,
            "diags: {diags:?}"
        );
        let diags = lint_source("crates/core/src/fixture.rs", &fixture("hot_sort.rs"));
        assert!(
            diags.iter().all(|d| d.rule != "hot-sort"),
            "cold core path flagged: {diags:?}"
        );
    }

    #[test]
    fn suppressions_silence_seeded_violations() {
        let diags = lint_source("crates/stats/src/fixture.rs", &fixture("suppressed.rs"));
        assert!(
            diags.iter().all(|d| d.severity != Severity::Deny),
            "diags: {diags:?}"
        );
    }

    #[test]
    fn out_of_scope_crates_are_untouched() {
        let diags = lint_source("crates/cli/src/fixture.rs", &fixture("panic_sites.rs"));
        assert!(diags.is_empty(), "cli is not a lib crate: {diags:?}");
    }
}
