//! The lint engine: rule registry, crate scoping, test-code masking,
//! suppression handling, and the token-walking rule implementations.
//!
//! Rules operate on the comment-free token stream from [`crate::lexer`],
//! so string/comment contents can never produce false positives. Each
//! rule is scoped to the crates where its invariant matters (see
//! `RULES`); test code — `#[cfg(test)]` modules, `#[test]` functions,
//! and files under `tests/` or `benches/` — is exempt, because panics
//! are the correct failure mode there.
//!
//! A diagnostic can be suppressed by a `// lint:allow(<rule>)` comment
//! on the same line or the line directly above; suppressions should
//! carry a justification, e.g.
//! `// lint:allow(no-panic-in-lib) — length checked by constructor`.

use crate::graph::FileIndex;
use crate::lexer::{lex, Lexed, TokKind, Token};
use logdep_par::{par_map, ParConfig};
use std::collections::HashSet;

/// Diagnostic severity. `Deny` violations fail `cargo xtask lint`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    Deny,
    Warn,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Deny => "deny",
            Severity::Warn => "warn",
        }
    }
}

/// Static description of one rule in the registry.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable rule name, used in output and `lint:allow(...)`.
    pub name: &'static str,
    pub severity: Severity,
    /// One-line summary for `cargo xtask lint --list`.
    pub summary: &'static str,
    /// Crate directory names (under `crates/`) the rule applies to.
    pub scope: &'static [&'static str],
}

/// The library crates whose non-test code must not panic.
const LIB_CRATES: &[&str] = &[
    "core",
    "stats",
    "logstore",
    "textmatch",
    "sessions",
    "simulator",
    "faults",
    "par",
    "obs",
    "serve",
];

/// Every scoped crate — the bare-allow hygiene rule has no exemptions.
const ALL_CRATES: &[&str] = &[
    "core",
    "stats",
    "logstore",
    "textmatch",
    "sessions",
    "simulator",
    "faults",
    "par",
    "obs",
    "serve",
    "cli",
    "bench",
];

/// Marker scope for the graph rules, which run once over the whole
/// indexed workspace (in [`lint_workspace`]) rather than per file.
const WORKSPACE: &[&str] = &["workspace"];

/// Crates that must route all threading through `logdep-par`: every
/// library crate except `par` itself (the one place allowed to touch
/// `std::thread`), plus the cli and bench binaries.
const POOLED_CRATES: &[&str] = &[
    "core",
    "stats",
    "logstore",
    "textmatch",
    "sessions",
    "simulator",
    "faults",
    "obs",
    "serve",
    "cli",
    "bench",
];

/// The full lint registry. Adding a rule means adding an entry here and
/// an arm in [`lint_tokens`].
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "no-panic-in-lib",
        severity: Severity::Deny,
        summary: "unwrap()/expect()/panic!/unimplemented!/todo! in non-test library code",
        scope: LIB_CRATES,
    },
    RuleInfo {
        name: "nan-unsafe-float",
        severity: Severity::Deny,
        summary:
            "partial_cmp().unwrap() or partial_cmp inside sort/min/max comparators; use total_cmp",
        scope: &["core", "stats"],
    },
    RuleInfo {
        name: "lossy-time-cast",
        severity: Severity::Deny,
        summary: "`as` cast on a timestamp/duration-named expression; use explicit conversions",
        scope: &["logstore", "sessions"],
    },
    RuleInfo {
        name: "result-api",
        severity: Severity::Warn,
        summary: "public fn whose body unwraps but whose signature does not return Result",
        scope: &["core", "stats"],
    },
    RuleInfo {
        name: "unchecked-indexing",
        severity: Severity::Warn,
        summary: "slice/array indexing with a runtime index expression in library code",
        scope: LIB_CRATES,
    },
    RuleInfo {
        name: "silent-drop",
        severity: Severity::Deny,
        summary: "`let _ =` discarding a call's Result in library code; handle or match the error",
        scope: LIB_CRATES,
    },
    RuleInfo {
        name: "raw-thread-spawn",
        severity: Severity::Deny,
        summary: "direct thread::spawn outside crates/par; use logdep_par::{scope, par_map, par_chunks_fold}",
        scope: POOLED_CRATES,
    },
    RuleInfo {
        name: "hot-sort",
        severity: Severity::Warn,
        summary: "comparator sort (sort_by/sort_unstable_by) in the L1/timeline hot paths; \
                  prefer the merge-sweep kernels or sorted-run merges",
        scope: &["core", "logstore"],
    },
    RuleInfo {
        name: "non-atomic-persist",
        severity: Severity::Warn,
        summary: "direct fs::write/File::create to persistent-state paths (cache, journal, \
                  checkpoint, ledger, ...) outside the durable writer; use persist_atomic",
        scope: ALL_CRATES,
    },
    RuleInfo {
        name: "bare-allow",
        severity: Severity::Deny,
        summary: "lint:allow(..) without a justification after the closing paren; \
                  append `— why this is sound`",
        scope: ALL_CRATES,
    },
    RuleInfo {
        name: "nondeterminism-taint",
        severity: Severity::Deny,
        summary: "call path from a snapshot/cache entry point to HashMap iteration, \
                  wall-clock, env, or available_parallelism outside their sanctioned homes",
        scope: WORKSPACE,
    },
    RuleInfo {
        name: "fingerprint-completeness",
        severity: Severity::Deny,
        summary: "a *Config struct field never folded by its *_fingerprint fn; \
                  the evidence cache would replay stale entries",
        scope: WORKSPACE,
    },
    RuleInfo {
        name: "panic-reach",
        severity: Severity::Deny,
        summary: "pub library API that transitively calls into an unsuppressed panic site",
        scope: WORKSPACE,
    },
    RuleInfo {
        name: "blocking-io-in-handler",
        severity: Severity::Deny,
        summary: "fs::* or durable-store call reachable from a serve request handler \
                  (handle_* fn); snapshot loads must go through the reload/swap path",
        scope: WORKSPACE,
    },
    RuleInfo {
        name: "instrumentation-completeness",
        severity: Severity::Deny,
        summary: "pipeline entry point reachable from the drivers that never emits a \
                  begin/end trace event pair; the run report would silently miss the stage",
        scope: WORKSPACE,
    },
];

/// Looks up a rule by name.
#[cfg_attr(not(test), allow(dead_code))]
pub fn rule(name: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.name == name)
}

/// One finding, pointing at a source line.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub rule: &'static str,
    pub severity: Severity,
    pub file: String,
    pub line: u32,
    pub message: String,
    /// For graph rules: the entry-point → violation call chain, as
    /// `"name (file:line)"` strings. Empty for per-file rules.
    pub chain: Vec<String>,
}

/// Classification of a workspace source file by its repo-relative path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileScope {
    /// `crates/<name>/src/**` — library (or binary) source of `<name>`.
    CrateSrc(String),
    /// Integration tests, benches, examples, vendored stand-ins, xtask
    /// itself: lexed and counted, but no scoped rules apply.
    Unscoped,
}

/// Classifies `rel` (repo-relative, `/`-separated).
pub fn classify(rel: &str) -> FileScope {
    let parts: Vec<&str> = rel.split('/').collect();
    if parts.len() >= 4 && parts[0] == "crates" && parts[2] == "src" && parts[1] != "xtask" {
        return FileScope::CrateSrc(parts[1].to_string());
    }
    FileScope::Unscoped
}

/// Lints one file's source text. `rel` is the repo-relative path used
/// both for scope classification and in diagnostics. Runs the per-file
/// rules only; the graph rules need [`lint_workspace`].
#[cfg_attr(not(test), allow(dead_code))]
pub fn lint_source(rel: &str, src: &str) -> Vec<Diagnostic> {
    let scope = classify(rel);
    let crate_name = match &scope {
        FileScope::CrateSrc(name) => name.clone(),
        FileScope::Unscoped => return Vec::new(),
    };
    let lexed = lex(src);
    lint_tokens(rel, &crate_name, &lexed)
}

/// Lints the whole workspace: the per-file rules run over every file in
/// parallel (via the same `logdep-par` pool the pipeline uses), each
/// file also yielding its symbol-table slice; the graph rules then run
/// once over the assembled [`FileIndex`] set. Diagnostics come back
/// sorted by `(file, line, rule)`.
pub fn lint_workspace(files: &[(String, String)], par: &ParConfig) -> Vec<Diagnostic> {
    let per_file: Vec<(Option<FileIndex>, Vec<Diagnostic>)> =
        par_map(par, files, |(rel, src)| match classify(rel) {
            FileScope::CrateSrc(crate_name) => {
                let lexed = lex(src);
                let diags = lint_tokens(rel, &crate_name, &lexed);
                let index = crate::graph::index_file(rel, &crate_name, &lexed);
                (Some(index), diags)
            }
            FileScope::Unscoped => (None, Vec::new()),
        });

    let mut diags = Vec::new();
    let mut indexes = Vec::new();
    for (index, file_diags) in per_file {
        diags.extend(file_diags);
        if let Some(index) = index {
            indexes.push(index);
        }
    }
    diags.extend(crate::taint::graph_rules(&indexes));

    let mut seen = HashSet::new();
    diags.retain(|d| seen.insert((d.rule, d.file.clone(), d.line)));
    diags.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    diags
}

fn applies(info: &RuleInfo, crate_name: &str) -> bool {
    info.scope.contains(&crate_name)
}

fn lint_tokens(rel: &str, crate_name: &str, lexed: &Lexed) -> Vec<Diagnostic> {
    let tokens = &lexed.tokens;
    let mask = test_mask(tokens);
    let mut diags = Vec::new();

    for info in RULES {
        if !applies(info, crate_name) {
            continue;
        }
        let found = match info.name {
            "no-panic-in-lib" => no_panic_in_lib(tokens, &mask),
            "nan-unsafe-float" => nan_unsafe_float(tokens, &mask),
            "lossy-time-cast" => lossy_time_cast(tokens, &mask),
            "result-api" => result_api(tokens, &mask),
            "unchecked-indexing" => unchecked_indexing(tokens, &mask),
            "silent-drop" => silent_drop(tokens, &mask),
            "raw-thread-spawn" => raw_thread_spawn(tokens, &mask),
            "hot-sort" => hot_sort(rel, crate_name, tokens, &mask),
            "non-atomic-persist" => non_atomic_persist(rel, tokens, &mask),
            "bare-allow" => bare_allow(lexed),
            _ => Vec::new(),
        };
        for (line, message) in found {
            diags.push(Diagnostic {
                rule: info.name,
                severity: info.severity,
                file: rel.to_string(),
                line,
                message,
                chain: Vec::new(),
            });
        }
    }

    // Drop duplicates (e.g. a sort_by comparator that also unwraps) and
    // suppressed findings, then order by position. `bare-allow` is
    // exempt from suppression — a reasonless marker must not be able to
    // wave itself through.
    let mut seen = HashSet::new();
    diags.retain(|d| {
        if !seen.insert((d.rule, d.line)) {
            return false;
        }
        d.rule == "bare-allow" || !suppressed(lexed, d.rule, d.line)
    });
    diags.sort_by_key(|d| (d.line, d.rule));
    diags
}

/// Whether `rule` is suppressed at `line` by a `lint:allow` marker on
/// that line or the one above.
fn suppressed(lexed: &Lexed, rule: &str, line: u32) -> bool {
    [line, line.saturating_sub(1)].iter().any(|l| {
        lexed
            .suppressions
            .get(l)
            .is_some_and(|rules| rules.iter().any(|r| r == rule || r == "all"))
    })
}

/// Marks token ranges belonging to test code: any item annotated with an
/// attribute containing the `test` identifier (`#[test]`, `#[cfg(test)]`,
/// `#[cfg(all(test, ...))]`) — but not `#[cfg(not(test))]`.
pub(crate) fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && i + 1 < tokens.len() && tokens[i + 1].is_punct('[') {
            let attr_end = match matching(tokens, i + 1, '[', ']') {
                Some(e) => e,
                None => break,
            };
            let attr = &tokens[i + 2..attr_end];
            let is_test_attr =
                attr.iter().any(|t| t.is_ident("test")) && !attr.iter().any(|t| t.is_ident("not"));
            if is_test_attr {
                // Skip any further attributes, then mask the item body.
                let mut j = attr_end + 1;
                while j + 1 < tokens.len() && tokens[j].is_punct('#') && tokens[j + 1].is_punct('[')
                {
                    match matching(tokens, j + 1, '[', ']') {
                        Some(e) => j = e + 1,
                        None => break,
                    }
                }
                // The item ends at its first top-level `{...}` block, or
                // at `;` for forms like `mod tests;`.
                let mut k = j;
                let mut body_end = None;
                while k < tokens.len() {
                    if tokens[k].is_punct(';') {
                        body_end = Some(k);
                        break;
                    }
                    if tokens[k].is_punct('{') {
                        body_end = matching(tokens, k, '{', '}');
                        break;
                    }
                    k += 1;
                }
                let end = body_end.unwrap_or(tokens.len() - 1);
                for slot in &mut mask[i..=end.min(tokens.len() - 1)] {
                    *slot = true;
                }
                i = end + 1;
                continue;
            }
            i = attr_end + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// Index of the closer matching the opener at `open_idx`.
pub(crate) fn matching(
    tokens: &[Token],
    open_idx: usize,
    open: char,
    close: char,
) -> Option<usize> {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

// ---------------------------------------------------------------------
// Rule implementations. Each returns `(line, message)` pairs.
// ---------------------------------------------------------------------

fn no_panic_in_lib(tokens: &[Token], mask: &[bool]) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if mask[i] || tokens[i].kind != TokKind::Ident {
            continue;
        }
        let prev_dot = i > 0 && tokens[i - 1].is_punct('.');
        let next_paren = tokens.get(i + 1).is_some_and(|t| t.is_punct('('));
        let next_bang = tokens.get(i + 1).is_some_and(|t| t.is_punct('!'));
        match tokens[i].text.as_str() {
            "unwrap" | "expect" if prev_dot && next_paren => out.push((
                tokens[i].line,
                format!(
                    ".{}() can panic; return a Result/Option or justify with lint:allow",
                    tokens[i].text
                ),
            )),
            "panic" | "unimplemented" | "todo" if next_bang => out.push((
                tokens[i].line,
                format!(
                    "{}! can abort library callers; return an error instead",
                    tokens[i].text
                ),
            )),
            _ => {}
        }
    }
    out
}

/// Comparator methods whose closures must not use `partial_cmp`.
const COMPARATOR_METHODS: &[&str] = &[
    "sort_by",
    "sort_unstable_by",
    "sort_by_cached_key",
    "max_by",
    "min_by",
    "binary_search_by",
];

fn nan_unsafe_float(tokens: &[Token], mask: &[bool]) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if mask[i] || tokens[i].kind != TokKind::Ident {
            continue;
        }
        let name = tokens[i].text.as_str();
        let has_call = tokens.get(i + 1).is_some_and(|t| t.is_punct('('));
        if name == "partial_cmp" && has_call {
            // `partial_cmp(..).unwrap()` / `.expect(..)`: NaN panics.
            if let Some(close) = matching(tokens, i + 1, '(', ')') {
                let chained_panic = tokens.get(close + 1).is_some_and(|t| t.is_punct('.'))
                    && tokens
                        .get(close + 2)
                        .is_some_and(|t| t.is_ident("unwrap") || t.is_ident("expect"));
                if chained_panic {
                    out.push((
                        tokens[i].line,
                        "partial_cmp(..).unwrap() panics on NaN; use total_cmp".to_string(),
                    ));
                }
            }
        } else if COMPARATOR_METHODS.contains(&name) && has_call {
            if let Some(close) = matching(tokens, i + 1, '(', ')') {
                if tokens[i + 1..close]
                    .iter()
                    .any(|t| t.is_ident("partial_cmp"))
                {
                    out.push((
                        tokens[i].line,
                        format!("{name} comparator uses partial_cmp; use total_cmp for a NaN-safe total order"),
                    ));
                }
            }
        }
    }
    out
}

/// Identifier name parts that mark a value as a timestamp or duration.
const TIME_NAME_PARTS: &[&str] = &[
    "ts",
    "time",
    "timestamp",
    "millis",
    "ms",
    "micros",
    "nanos",
    "secs",
    "dur",
    "duration",
    "epoch",
    "elapsed",
    "deadline",
];

/// Numeric types an `as` cast can target.
const NUM_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

fn time_named(ident: &str) -> bool {
    ident
        .split('_')
        .any(|part| TIME_NAME_PARTS.contains(&part.to_ascii_lowercase().as_str()))
}

fn lossy_time_cast(tokens: &[Token], mask: &[bool]) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if mask[i] || !tokens[i].is_ident("as") {
            continue;
        }
        let casts_to_num = tokens
            .get(i + 1)
            .is_some_and(|t| t.kind == TokKind::Ident && NUM_TYPES.contains(&t.text.as_str()));
        if !casts_to_num {
            continue;
        }
        // Walk back over call/index/field plumbing to the nearest
        // identifier naming the casted expression.
        let mut j = i;
        let mut budget = 8;
        while j > 0 && budget > 0 {
            j -= 1;
            budget -= 1;
            let t = &tokens[j];
            if t.kind == TokKind::Ident {
                if time_named(&t.text) {
                    out.push((
                        tokens[i].line,
                        format!(
                            "`{} as {}` silently truncates/wraps; use a checked or widening conversion",
                            t.text,
                            tokens[i + 1].text
                        ),
                    ));
                }
                break;
            }
            if t.kind == TokKind::Num
                || t.is_punct('.')
                || t.is_punct(')')
                || t.is_punct('(')
                || t.is_punct(']')
                || t.is_punct('[')
            {
                continue;
            }
            break;
        }
    }
    out
}

fn result_api(tokens: &[Token], mask: &[bool]) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if mask[i] || !tokens[i].is_ident("pub") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        // `pub(crate)` / `pub(super)` visibility qualifier.
        if tokens.get(j).is_some_and(|t| t.is_punct('(')) {
            match matching(tokens, j, '(', ')') {
                Some(e) => j = e + 1,
                None => break,
            }
        }
        if !tokens.get(j).is_some_and(|t| t.is_ident("fn")) {
            i += 1;
            continue;
        }
        let fn_line = tokens[i].line;
        let fn_name = tokens
            .get(j + 1)
            .map(|t| t.text.clone())
            .unwrap_or_default();
        let mut k = j + 2;
        // Generic parameters.
        if tokens.get(k).is_some_and(|t| t.is_punct('<')) {
            let mut depth = 0i32;
            while k < tokens.len() {
                if tokens[k].is_punct('<') {
                    depth += 1;
                } else if tokens[k].is_punct('>') {
                    // Ignore `->` arrows inside bounds.
                    if !(k > 0 && tokens[k - 1].is_punct('-')) {
                        depth -= 1;
                        if depth == 0 {
                            k += 1;
                            break;
                        }
                    }
                }
                k += 1;
            }
        }
        // Argument list.
        if !tokens.get(k).is_some_and(|t| t.is_punct('(')) {
            i = k;
            continue;
        }
        let args_end = match matching(tokens, k, '(', ')') {
            Some(e) => e,
            None => break,
        };
        k = args_end + 1;
        // Return type up to the body/`;`.
        let mut returns_result = false;
        if tokens.get(k).is_some_and(|t| t.is_punct('-'))
            && tokens.get(k + 1).is_some_and(|t| t.is_punct('>'))
        {
            let mut r = k + 2;
            while r < tokens.len() {
                let t = &tokens[r];
                if t.is_punct('{') || t.is_punct(';') || t.is_ident("where") {
                    break;
                }
                if t.is_ident("Result") || t.is_ident("Option") {
                    returns_result = true;
                }
                r += 1;
            }
            k = r;
        }
        // Skip a where clause to the body.
        while k < tokens.len() && !tokens[k].is_punct('{') && !tokens[k].is_punct(';') {
            k += 1;
        }
        if tokens.get(k).is_some_and(|t| t.is_punct('{')) {
            let body_end = match matching(tokens, k, '{', '}') {
                Some(e) => e,
                None => break,
            };
            if !returns_result {
                let unwraps = (k..body_end).any(|b| {
                    !mask[b]
                        && (tokens[b].is_ident("unwrap") || tokens[b].is_ident("expect"))
                        && b > 0
                        && tokens[b - 1].is_punct('.')
                        && tokens.get(b + 1).is_some_and(|t| t.is_punct('('))
                });
                if unwraps {
                    out.push((
                        fn_line,
                        format!(
                            "pub fn {fn_name} unwraps internally but does not return Result; surface the failure"
                        ),
                    ));
                }
            }
            i = body_end + 1;
            continue;
        }
        i = k + 1;
    }
    out
}

fn unchecked_indexing(tokens: &[Token], mask: &[bool]) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for i in 1..tokens.len() {
        if mask[i] || !tokens[i].is_punct('[') {
            continue;
        }
        // Index position: the bracket follows a completed expression.
        let prev = &tokens[i - 1];
        let index_pos =
            prev.kind == TokKind::Ident && !prev.is_ident("mut") && !prev.is_ident("return")
                || prev.is_punct(']')
                || prev.is_punct(')');
        if !index_pos {
            continue;
        }
        if let Some(close) = matching(tokens, i, '[', ']') {
            // Only flag runtime indices (an identifier inside); literal
            // `xs[0]` and full-range `xs[..]` are usually intentional.
            let runtime = tokens[i + 1..close]
                .iter()
                .any(|t| t.kind == TokKind::Ident && !NUM_TYPES.contains(&t.text.as_str()));
            if runtime {
                out.push((
                    tokens[i].line,
                    "indexing with a runtime value can panic; prefer .get() or justify bounds"
                        .to_string(),
                ));
            }
        }
    }
    out
}

fn silent_drop(tokens: &[Token], mask: &[bool]) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 2 < tokens.len() {
        if mask[i]
            || !tokens[i].is_ident("let")
            || !tokens[i + 1].is_ident("_")
            || !tokens[i + 2].is_punct('=')
        {
            i += 1;
            continue;
        }
        // Scan the initializer to its terminating `;` at bracket depth
        // zero; the discard is silent only if something in it is called
        // (a function/method call or a macro invocation) — dropping a
        // plain value binds nothing fallible.
        let mut j = i + 3;
        let mut depth = 0i32;
        let mut calls = false;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth -= 1;
            } else if depth == 0 && t.is_punct(';') {
                break;
            }
            if t.kind == TokKind::Ident {
                let next = tokens.get(j + 1);
                let call = next.is_some_and(|n| n.is_punct('('));
                let mac = next.is_some_and(|n| n.is_punct('!'))
                    && tokens
                        .get(j + 2)
                        .is_some_and(|n| n.is_punct('(') || n.is_punct('[') || n.is_punct('{'));
                if call || mac {
                    calls = true;
                }
            }
            j += 1;
        }
        if calls {
            out.push((
                tokens[i].line,
                "`let _ =` silently discards the call's result; handle the error, match it, or justify with lint:allow".to_string(),
            ));
        }
        i = j + 1;
    }
    out
}

fn raw_thread_spawn(tokens: &[Token], mask: &[bool]) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if mask[i] || !tokens[i].is_ident("thread") {
            continue;
        }
        // `thread::spawn` / `std::thread::spawn` (`::` lexes as two
        // `:` puncts). Scoped `s.spawn(..)` is `.`-qualified and never
        // matches; `logdep_par::scope` is the sanctioned entry point.
        let spawns = tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 3).is_some_and(|t| t.is_ident("spawn"));
        if spawns {
            out.push((
                tokens[i].line,
                "thread::spawn outside crates/par bypasses the deterministic pool; use logdep_par::{scope, par_map, par_chunks_fold}".to_string(),
            ));
        }
    }
    out
}

/// Comparator-sort methods that reintroduce O(n log n) work per call.
const HOT_SORT_METHODS: &[&str] = &["sort_by", "sort_unstable_by"];

/// Comparator sorts in the distance-mining hot paths. The L1 kernel and
/// the logstore timeline are the pipeline's per-slot inner loops; the
/// merge-sweep rewrite removed their comparator sorts in favour of
/// O(n+m) sweeps and cheap sorted-run merges, and this rule keeps them
/// out. Scope is `crates/logstore` and `crates/core/src/l1` only —
/// elsewhere in core a comparator sort is fine. Justified uses carry
/// `// lint:allow(hot-sort)`.
fn hot_sort(rel: &str, crate_name: &str, tokens: &[Token], mask: &[bool]) -> Vec<(u32, String)> {
    let hot = crate_name == "logstore" || (crate_name == "core" && rel.contains("/l1/"));
    if !hot {
        return Vec::new();
    }
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if mask[i] || tokens[i].kind != TokKind::Ident {
            continue;
        }
        let name = tokens[i].text.as_str();
        let is_method_call = i > 0
            && tokens[i - 1].is_punct('.')
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('('));
        if HOT_SORT_METHODS.contains(&name) && is_method_call {
            out.push((
                tokens[i].line,
                format!(
                    ".{name}() in a distance-mining hot path; use the merge-sweep kernels \
                     (dists_to_*_sorted) or a sorted-run merge, or justify with lint:allow"
                ),
            ));
        }
    }
    out
}

/// Name parts that mark a path as persistent pipeline state — the files
/// the crash-recovery guarantee covers.
const PERSIST_NAME_PARTS: &[&str] = &[
    "cache",
    "journal",
    "checkpoint",
    "quarantine",
    "ledger",
    "snapshot",
    "baseline",
];

fn persist_named(ident: &str) -> bool {
    ident
        .split('_')
        .any(|part| PERSIST_NAME_PARTS.contains(&part.to_ascii_lowercase().as_str()))
}

/// Direct `fs::write` / `File::create` aimed at a persistent-state path.
/// A torn write there is exactly the corruption the durable store exists
/// to rule out: such paths must go through `logdep::durable` (its
/// `persist_atomic` helper, or the checkpoint/journal writers), which
/// write-to-temp + rename and checksum everything. The durable writer
/// itself is the one sanctioned home for the raw calls.
fn non_atomic_persist(rel: &str, tokens: &[Token], mask: &[bool]) -> Vec<(u32, String)> {
    if rel.ends_with("crates/core/src/durable.rs") {
        return Vec::new();
    }
    let mut out = Vec::new();
    for i in 3..tokens.len() {
        if mask[i] || tokens[i].kind != TokKind::Ident {
            continue;
        }
        // `fs :: write (` / `File :: create (` — `::` lexes as two `:`
        // puncts. Only the `::`-qualified std forms match; method calls
        // like `w.write(..)` are `.`-qualified and never do.
        let qualified = |head: &str| {
            tokens[i - 1].is_punct(':')
                && tokens[i - 2].is_punct(':')
                && tokens[i - 3].is_ident(head)
        };
        let call = tokens.get(i + 1).is_some_and(|t| t.is_punct('('));
        let hit = call
            && ((tokens[i].is_ident("write") && qualified("fs"))
                || (tokens[i].is_ident("create") && qualified("File")));
        if !hit {
            continue;
        }
        if let Some(close) = matching(tokens, i + 1, '(', ')') {
            let persisty = tokens[i + 2..close].iter().any(|t| match t.kind {
                TokKind::Ident => persist_named(&t.text),
                TokKind::Str => PERSIST_NAME_PARTS
                    .iter()
                    .any(|part| t.text.to_ascii_lowercase().contains(part)),
                _ => false,
            });
            if persisty {
                out.push((
                    tokens[i].line,
                    "non-atomic write to persistent state; route it through \
                     logdep::durable::persist_atomic (or the durable store) so a crash \
                     cannot tear it"
                        .to_string(),
                ));
            }
        }
    }
    out
}

/// Suppression markers that carry no justification. The marker still
/// suppresses its target rule — but the missing reason is itself a deny,
/// so the tree cannot accumulate unexplained escapes.
fn bare_allow(lexed: &Lexed) -> Vec<(u32, String)> {
    lexed
        .bare_allows
        .iter()
        .map(|&line| {
            (
                line,
                "lint:allow without a justification; append `— <why this is sound>`".to_string(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_as(rel: &str, src: &str) -> Vec<Diagnostic> {
        lint_source(rel, src)
    }

    #[test]
    fn classify_scopes_crate_sources_only() {
        assert_eq!(
            classify("crates/stats/src/ranks.rs"),
            FileScope::CrateSrc("stats".into())
        );
        assert_eq!(
            classify("crates/stats/tests/proptests.rs"),
            FileScope::Unscoped
        );
        assert_eq!(classify("tests/src/lib.rs"), FileScope::Unscoped);
        assert_eq!(classify("vendor/rand/src/lib.rs"), FileScope::Unscoped);
        assert_eq!(classify("crates/xtask/src/main.rs"), FileScope::Unscoped);
    }

    #[test]
    fn test_code_is_exempt() {
        let src = r#"
            pub fn good() -> u32 { 1 }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { Some(1).unwrap(); panic!("boom"); }
            }
        "#;
        assert!(lint_as("crates/stats/src/x.rs", src).is_empty());
    }

    #[test]
    fn cfg_not_test_is_not_exempt() {
        let src = r#"
            #[cfg(not(test))]
            pub fn bad() { Some(1).unwrap(); }
        "#;
        let diags = lint_as("crates/stats/src/x.rs", src);
        assert!(diags.iter().any(|d| d.rule == "no-panic-in-lib"));
    }

    #[test]
    fn suppression_on_same_or_previous_line() {
        let src = "fn f() {\n    x.unwrap(); // lint:allow(no-panic-in-lib) justified\n    // lint:allow(no-panic-in-lib)\n    y.unwrap();\n    z.unwrap();\n}\n";
        let diags = lint_as("crates/core/src/x.rs", src);
        let lines: Vec<u32> = diags
            .iter()
            .filter(|d| d.rule == "no-panic-in-lib")
            .map(|d| d.line)
            .collect();
        assert_eq!(lines, vec![5], "only the unsuppressed unwrap remains");
    }

    #[test]
    fn raw_thread_spawn_denied_outside_par() {
        let src = r#"
            pub fn bad() {
                std::thread::spawn(|| {});
                thread::spawn(work);
            }
        "#;
        let diags = lint_as("crates/core/src/x.rs", src);
        let hits: Vec<u32> = diags
            .iter()
            .filter(|d| d.rule == "raw-thread-spawn")
            .map(|d| d.line)
            .collect();
        assert_eq!(hits, vec![3, 4]);
        assert_eq!(
            rule("raw-thread-spawn").map(|r| r.severity),
            Some(Severity::Deny)
        );
    }

    #[test]
    fn raw_thread_spawn_exempts_par_scoped_spawn_and_tests() {
        // The par crate itself is out of scope.
        let src = "pub fn pool() { std::thread::spawn(|| {}); }";
        assert!(lint_as("crates/par/src/lib.rs", src).is_empty());
        // Scoped spawns and the sanctioned wrapper never match.
        let src = r#"
            pub fn fine() {
                logdep_par::scope(|s| { s.spawn(|| {}); });
                std::thread::scope(|s| { s.spawn(|| {}); });
            }
        "#;
        assert!(lint_as("crates/core/src/x.rs", src)
            .iter()
            .all(|d| d.rule != "raw-thread-spawn"));
        // Test code is exempt, as everywhere else.
        let src = r#"
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { std::thread::spawn(|| {}); }
            }
        "#;
        assert!(lint_as("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn unwrap_or_variants_are_not_flagged() {
        let src = "fn f() { a.unwrap_or(0); b.unwrap_or_else(|| 1); c.unwrap_or_default(); }";
        assert!(lint_as("crates/core/src/x.rs", src)
            .iter()
            .all(|d| d.rule != "no-panic-in-lib"));
    }
}
