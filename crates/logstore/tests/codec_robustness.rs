//! Robustness properties for the TSV codec: arbitrary byte soup must
//! parse to `Ok` or `ParseError` — never a panic — and every record the
//! writer emits must survive a write → parse round trip, including text
//! containing the characters the escaping layer exists for (tabs,
//! newlines, carriage returns, backslashes).

use logdep_logstore::codec::{parse_record, read_store, write_record};
use logdep_logstore::record::{LogRecord, Severity};
use logdep_logstore::registry::NameRegistry;
use logdep_logstore::time::Millis;
use proptest::prelude::*;

/// Printable ASCII plus the escape-relevant control characters.
fn nasty_text() -> impl Strategy<Value = String> {
    "[ -~\t\n\r]{0,60}"
}

fn severity(tag: u8) -> Severity {
    match tag % 4 {
        0 => Severity::Debug,
        1 => Severity::Info,
        2 => Severity::Warning,
        _ => Severity::Error,
    }
}

proptest! {
    #[test]
    fn parse_record_never_panics(line in "[ -~\t]{0,80}") {
        let mut registry = NameRegistry::new();
        // Ok or Err are both fine; reaching this point is the property.
        let _ = parse_record(&line, &mut registry);
    }

    #[test]
    fn short_lines_error_on_field_count(line in "[a-z ]{0,30}") {
        let mut registry = NameRegistry::new();
        prop_assert!(parse_record(&line, &mut registry).is_err());
    }

    #[test]
    fn bad_timestamps_are_rejected_not_panicked(
        ts in "[a-z0-9.x-]{1,24}",
        rest in "[a-z]{1,6}",
    ) {
        // Valid i64s parse; everything else must error cleanly.
        let line = format!("{ts}\t0\t{rest}\t-\t-\tINF\tmessage");
        let mut registry = NameRegistry::new();
        let r = parse_record(&line, &mut registry);
        if ts.parse::<i64>().is_ok() {
            prop_assert!(r.is_ok());
        } else {
            prop_assert!(r.is_err());
        }
    }

    #[test]
    fn write_parse_round_trips_nasty_records(
        client_ts in any::<i64>(),
        server_ts in any::<i64>(),
        source in "[a-z]{1,8}",
        user in proptest::option::of("[a-z]{1,8}"),
        host in proptest::option::of("[a-z]{1,8}"),
        sev in any::<u8>(),
        text in nasty_text(),
    ) {
        let mut registry = NameRegistry::new();
        let record = LogRecord {
            client_ts: Millis(client_ts),
            server_ts: Millis(server_ts),
            source: registry.source(&source),
            user: user.as_deref().map(|u| registry.user(u)),
            host: host.as_deref().map(|h| registry.host(h)),
            severity: severity(sev),
            text,
        };

        let mut buf = Vec::new();
        write_record(&mut buf, &record, &registry).expect("write to Vec");
        let line = String::from_utf8(buf).expect("codec emits UTF-8");
        let line = line.strip_suffix('\n').expect("one trailing newline");
        prop_assert!(!line.contains('\n'), "escaping must keep one record per line");

        let parsed = parse_record(line, &mut registry).expect("round trip parses");
        prop_assert_eq!(parsed, record);
    }

    #[test]
    fn read_store_accounts_for_every_nonempty_line(
        lines in proptest::collection::vec("[ -~\t]{0,40}", 0..30),
    ) {
        let input = lines.join("\n");
        let (store, errors) = read_store(input.as_bytes()).expect("reading from memory");
        let nonempty = lines.iter().filter(|l| !l.is_empty()).count();
        prop_assert_eq!(store.records().len() + errors.len(), nonempty);
        for (lineno, _) in &errors {
            prop_assert!(*lineno >= 1 && *lineno <= lines.len());
        }
    }
}
