//! Properties of the resilient ingest path: repair is a *fixpoint* —
//! re-serializing a repaired store and ingesting it again changes
//! nothing (`repair(repair(x)) == repair(x)`), for arbitrary line soup
//! mixing valid records, duplicates, out-of-order delivery and garbage.

use logdep_logstore::codec::write_store;
use logdep_logstore::ingest::{read_store_resilient, IngestPolicy};
use proptest::prelude::*;

/// A line that is usually a valid TSV record (with small id spaces to
/// force duplicates and collisions) and sometimes raw garbage, so
/// streams mix both.
fn line() -> impl Strategy<Value = String> {
    (
        any::<u8>(),
        0..50i64,
        0..50i64,
        0..4u8,
        "[a-z]{0,6}",
        "[ -~]{0,30}",
    )
        .prop_map(|(selector, client, server, src, text, garbage)| {
            if selector % 3 == 0 {
                garbage
            } else {
                format!("{client}\t{server}\tApp{src}\t-\t-\tINF\t{text}")
            }
        })
}

proptest! {
    #[test]
    fn repair_is_idempotent(lines in proptest::collection::vec(line(), 0..80)) {
        let input = lines.join("\n");
        let policy = IngestPolicy::lenient();

        let (once, first) = read_store_resilient(input.as_bytes(), &policy)
            .expect("lenient policy never aborts");

        // Serialize the repaired store and ingest it again.
        let mut buf = Vec::new();
        write_store(&mut buf, &once).expect("write to Vec");
        let (twice, second) = read_store_resilient(buf.as_slice(), &policy)
            .expect("clean re-ingest");

        // Fixpoint: nothing left to repair.
        prop_assert_eq!(second.quarantined, 0, "repaired output must parse fully");
        prop_assert_eq!(second.deduped, 0, "no duplicates survive a repair");
        prop_assert_eq!(second.repaired_out_of_order, 0, "output is already sorted");
        prop_assert_eq!(second.parsed, first.parsed - first.deduped);

        // And the store content is unchanged. Record order among equal
        // client timestamps tie-breaks on interned source ids, which
        // permute between passes (arrival order vs sorted order), so
        // compare name-resolved records as sorted multisets.
        prop_assert_eq!(once.len(), twice.len());
        let resolve = |s: &logdep_logstore::LogStore| {
            let mut rows: Vec<(i64, String, i64, String)> = s
                .records()
                .iter()
                .map(|r| {
                    (
                        r.client_ts.as_millis(),
                        s.registry.source_name(r.source).to_owned(),
                        r.server_ts.as_millis(),
                        r.text.clone(),
                    )
                })
                .collect();
            rows.sort();
            rows
        };
        prop_assert_eq!(resolve(&once), resolve(&twice));
    }

    #[test]
    fn resilient_ingest_never_panics(raw in "[ -~\t\n]{0,400}") {
        // Ok or ErrorBudgetExceeded are both acceptable; no panic is the
        // property.
        let _ = read_store_resilient(raw.as_bytes(), &IngestPolicy::default());
    }

    #[test]
    fn accounting_balances(lines in proptest::collection::vec(line(), 0..80)) {
        let input = lines.join("\n");
        let (store, report) = read_store_resilient(input.as_bytes(), &IngestPolicy::lenient())
            .expect("lenient policy never aborts");
        let nonempty = lines.iter().filter(|l| !l.is_empty()).count();
        prop_assert_eq!(report.total_lines, nonempty);
        prop_assert_eq!(report.parsed + report.quarantined, nonempty);
        prop_assert_eq!(store.len(), report.parsed - report.deduped);
    }
}
