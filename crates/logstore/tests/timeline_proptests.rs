//! Property tests pinning the O(n+m) merge-sweep distance kernels to
//! the per-point binary-search reference, and the content digests to
//! their invalidation contract.

use logdep_logstore::time::{Millis, TimeRange};
use logdep_logstore::Timeline;
use proptest::prelude::*;

/// Bounded timestamps so distances stay far from i64 overflow.
const T: i64 = 1_000_000;

fn timeline(points: Vec<i64>) -> Timeline {
    Timeline::from_unsorted(points.into_iter().map(Millis).collect())
}

fn sorted_queries(queries: Vec<i64>) -> Vec<Millis> {
    let mut qs: Vec<Millis> = queries.into_iter().map(Millis).collect();
    qs.sort_unstable();
    qs
}

proptest! {
    #[test]
    fn sweep_nearest_equals_per_point_binary_search(
        points in prop::collection::vec(-T..T, 0..200),
        queries in prop::collection::vec(-T..T, 0..200),
    ) {
        let tl = timeline(points);
        let qs = sorted_queries(queries);
        let reference: Vec<i64> = qs.iter().filter_map(|&q| tl.dist_to_nearest(q)).collect();
        prop_assert_eq!(tl.dists_to_nearest_sorted(&qs), reference);
    }

    #[test]
    fn sweep_next_equals_per_point_binary_search(
        points in prop::collection::vec(-T..T, 0..200),
        queries in prop::collection::vec(-T..T, 0..200),
    ) {
        let tl = timeline(points);
        let qs = sorted_queries(queries);
        let reference: Vec<i64> = qs.iter().filter_map(|&q| tl.dist_to_next(q)).collect();
        prop_assert_eq!(tl.dists_to_next_sorted(&qs), reference);
    }

    #[test]
    fn sweep_handles_heavy_duplication(
        point in -T..T,
        query in -T..T,
        reps in 1usize..50,
    ) {
        // Degenerate inputs: every point equal, every query equal.
        let tl = timeline(vec![point; reps]);
        let qs = sorted_queries(vec![query; reps]);
        let reference: Vec<i64> = qs.iter().filter_map(|&q| tl.dist_to_nearest(q)).collect();
        prop_assert_eq!(tl.dists_to_nearest_sorted(&qs), reference);
    }

    #[test]
    fn digest_equality_tracks_content_equality(
        a in prop::collection::vec(-T..T, 0..60),
        b in prop::collection::vec(-T..T, 0..60),
    ) {
        let ta = timeline(a);
        let tb = timeline(b);
        // Content-addressing soundness direction: equal content must
        // digest equally (collisions the other way are astronomically
        // unlikely but not asserted).
        if ta == tb {
            prop_assert_eq!(ta.digest(), tb.digest());
        } else {
            prop_assert_ne!(ta.digest(), tb.digest());
        }
    }

    #[test]
    fn neighborhood_digest_is_insensitive_to_far_points(
        near in prop::collection::vec(-1_000i64..1_000, 0..40),
        far in prop::collection::vec(100_000i64..200_000, 1..10),
        margin in 0i64..500,
    ) {
        // Points far beyond the range + margin may shift WHICH point is
        // the successor, but only matter through pred/succ: appending
        // even-farther points must not disturb the digest.
        let range = TimeRange::new(Millis(-1_000), Millis(1_000));
        let mut with_far = near.clone();
        with_far.extend(&far);
        let base = timeline(with_far.clone());
        with_far.push(300_000);
        let extended = timeline(with_far);
        prop_assert_eq!(
            base.digest_neighborhood(range, margin),
            extended.digest_neighborhood(range, margin)
        );
    }

    #[test]
    fn neighborhood_digest_changes_on_in_range_edits(
        near in prop::collection::vec(-900i64..900, 1..40),
        extra in -900i64..900,
        margin in 0i64..200,
    ) {
        let range = TimeRange::new(Millis(-1_000), Millis(1_000));
        let base = timeline(near.clone());
        let mut edited_points = near;
        edited_points.push(extra);
        let edited = timeline(edited_points);
        prop_assert_ne!(
            base.digest_neighborhood(range, margin),
            edited.digest_neighborhood(range, margin)
        );
    }
}
