//! Log record model and in-memory log store for dependency mining.
//!
//! This crate is the substrate the mining techniques of Steinle et al.
//! (VLDB 2006) read from. It deliberately mirrors the *minimal* structure
//! the paper assumes of a centralized logging system:
//!
//! * every record identifies its **source** (application/module) and
//!   carries a client-side and a server-side **timestamp** (1 ms
//!   resolution, as at the Geneva University Hospitals);
//! * records *may* identify the **user** and **client machine** at the
//!   origin of the transaction (needed only by technique L2's session
//!   reconstruction);
//! * everything else is **free text** (consumed only by technique L3).
//!
//! The [`store::LogStore`] keeps records sorted by client timestamp and
//! maintains per-source timestamp indexes so the L1 primitive — distance
//! to the nearest log of another source — is a binary search.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod ingest;
pub mod record;
pub mod registry;
pub mod store;
pub mod time;
pub mod timeline;

pub use ingest::{read_store_resilient, IngestError, IngestPolicy, IngestReport};
pub use record::{LogRecord, Severity};
pub use registry::{HostId, NameRegistry, SourceId, UserId};
pub use store::LogStore;
pub use time::Millis;
pub use timeline::Timeline;
