//! Sorted per-source timestamp sequences and the nearest-distance
//! primitive.
//!
//! Technique L1 reduces each application to the sequence of timestamps of
//! its logs. Its core operation — equation (1) of the paper,
//! `dist(t, A) = min_{a ∈ A} |a − t|` — is a binary search here.

use crate::time::{Millis, TimeRange};
use serde::{Deserialize, Serialize};

/// A sorted sequence of timestamps belonging to one log source.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Timeline {
    points: Vec<Millis>,
}

impl Timeline {
    /// The empty timeline (const, usable in statics).
    pub const fn empty() -> Self {
        Timeline { points: Vec::new() }
    }

    /// Wraps an already-sorted timestamp vector.
    ///
    /// # Panics
    /// In debug builds, panics if the input is not ascending.
    pub fn from_sorted(points: Vec<Millis>) -> Self {
        debug_assert!(
            points.windows(2).all(|w| w[0] <= w[1]),
            "Timeline::from_sorted: input not sorted"
        );
        Timeline { points }
    }

    /// Sorts and wraps an arbitrary timestamp vector.
    pub fn from_unsorted(mut points: Vec<Millis>) -> Self {
        points.sort_unstable();
        Timeline { points }
    }

    /// Number of timestamps.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when there are no timestamps.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// All timestamps, ascending.
    pub fn points(&self) -> &[Millis] {
        &self.points
    }

    /// Distance (ms) from `t` to the nearest timestamp — equation (1) of
    /// the paper. `None` on an empty timeline.
    pub fn dist_to_nearest(&self, t: Millis) -> Option<i64> {
        if self.points.is_empty() {
            return None;
        }
        let i = self.points.partition_point(|&p| p < t);
        let after = self.points.get(i).map(|&p| p - t);
        let before = if i > 0 {
            Some(t - self.points[i - 1])
        } else {
            None
        };
        match (before, after) {
            (Some(b), Some(a)) => Some(b.min(a)),
            (Some(b), None) => Some(b),
            (None, Some(a)) => Some(a),
            (None, None) => None,
        }
    }

    /// Distance (ms) from `t` to the *next* timestamp at or after `t` —
    /// the variant used by the Li–Ma baseline, which looks only forward.
    /// `None` when no timestamp follows `t`.
    pub fn dist_to_next(&self, t: Millis) -> Option<i64> {
        let i = self.points.partition_point(|&p| p < t);
        self.points.get(i).map(|&p| p - t)
    }

    /// The sub-slice of timestamps inside the half-open `range`.
    pub fn slice_in(&self, range: TimeRange) -> &[Millis] {
        let lo = self.points.partition_point(|&p| p < range.start);
        let hi = self.points.partition_point(|&p| p < range.end);
        &self.points[lo..hi]
    }

    /// Number of timestamps inside `range`.
    pub fn count_in(&self, range: TimeRange) -> usize {
        self.slice_in(range).len()
    }

    /// Histogram of activity: counts per consecutive bin of `bin_ms`
    /// across `range` (the data behind Figure 1 of the paper).
    pub fn counts_per_bin(&self, range: TimeRange, bin_ms: i64) -> Vec<usize> {
        assert!(bin_ms > 0, "non-positive bin width");
        let n_bins = usize::try_from((range.len_ms() + bin_ms - 1) / bin_ms).unwrap_or(0);
        let mut bins = vec![0usize; n_bins];
        for &p in self.slice_in(range) {
            let Ok(idx) = usize::try_from((p - range.start) / bin_ms) else {
                continue;
            };
            if let Some(bin) = bins.get_mut(idx) {
                *bin += 1;
            }
        }
        bins
    }
}

impl FromIterator<Millis> for Timeline {
    fn from_iter<I: IntoIterator<Item = Millis>>(iter: I) -> Self {
        Timeline::from_unsorted(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tl(ts: &[i64]) -> Timeline {
        Timeline::from_unsorted(ts.iter().map(|&t| Millis(t)).collect())
    }

    #[test]
    fn nearest_distance_cases() {
        let t = tl(&[10, 20, 40]);
        assert_eq!(t.dist_to_nearest(Millis(10)), Some(0)); // exact hit
        assert_eq!(t.dist_to_nearest(Millis(14)), Some(4)); // closer left
        assert_eq!(t.dist_to_nearest(Millis(17)), Some(3)); // closer right
        assert_eq!(t.dist_to_nearest(Millis(30)), Some(10)); // tie
        assert_eq!(t.dist_to_nearest(Millis(0)), Some(10)); // before all
        assert_eq!(t.dist_to_nearest(Millis(100)), Some(60)); // after all
        assert_eq!(Timeline::empty().dist_to_nearest(Millis(5)), None);
    }

    #[test]
    fn next_distance_is_forward_only() {
        let t = tl(&[10, 20, 40]);
        assert_eq!(t.dist_to_next(Millis(10)), Some(0));
        assert_eq!(t.dist_to_next(Millis(11)), Some(9));
        assert_eq!(t.dist_to_next(Millis(39)), Some(1));
        assert_eq!(t.dist_to_next(Millis(41)), None);
        // Nearest can be behind; next never is.
        assert_eq!(t.dist_to_nearest(Millis(39)), Some(1));
        assert_eq!(t.dist_to_nearest(Millis(21)), Some(1));
        assert_eq!(t.dist_to_next(Millis(21)), Some(19));
    }

    #[test]
    fn slice_and_count_in_range() {
        let t = tl(&[5, 10, 15, 20, 25]);
        let r = TimeRange::new(Millis(10), Millis(25));
        assert_eq!(
            t.slice_in(r),
            &[Millis(10), Millis(15), Millis(20)],
            "half-open semantics"
        );
        assert_eq!(t.count_in(r), 3);
        assert_eq!(t.count_in(TimeRange::new(Millis(26), Millis(30))), 0);
    }

    #[test]
    fn binning_matches_figure1_shape() {
        let t = tl(&[0, 100, 900, 1000, 1100, 2500]);
        let bins = t.counts_per_bin(TimeRange::new(Millis(0), Millis(3000)), 1000);
        assert_eq!(bins, vec![3, 2, 1]);
    }

    #[test]
    fn binning_partial_last_bin() {
        let t = tl(&[0, 1400]);
        let bins = t.counts_per_bin(TimeRange::new(Millis(0), Millis(1500)), 1000);
        assert_eq!(bins, vec![1, 1]);
    }

    #[test]
    fn from_iterator_sorts() {
        let t: Timeline = [Millis(3), Millis(1), Millis(2)].into_iter().collect();
        assert_eq!(t.points(), &[Millis(1), Millis(2), Millis(3)]);
    }

    #[test]
    fn duplicates_allowed() {
        let t = tl(&[7, 7, 7]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.dist_to_nearest(Millis(7)), Some(0));
        assert_eq!(t.count_in(TimeRange::new(Millis(7), Millis(8))), 3);
    }
}
