//! Sorted per-source timestamp sequences and the nearest-distance
//! primitive.
//!
//! Technique L1 reduces each application to the sequence of timestamps of
//! its logs. Its core operation — equation (1) of the paper,
//! `dist(t, A) = min_{a ∈ A} |a − t|` — is a binary search here.

use crate::time::{Millis, TimeRange};
use serde::{Deserialize, Serialize};

/// A sorted sequence of timestamps belonging to one log source.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Timeline {
    points: Vec<Millis>,
}

impl Timeline {
    /// The empty timeline (const, usable in statics).
    pub const fn empty() -> Self {
        Timeline { points: Vec::new() }
    }

    /// Wraps an already-sorted timestamp vector.
    ///
    /// # Panics
    /// In debug builds, panics if the input is not ascending.
    pub fn from_sorted(points: Vec<Millis>) -> Self {
        debug_assert!(
            points.windows(2).all(|w| w[0] <= w[1]),
            "Timeline::from_sorted: input not sorted"
        );
        Timeline { points }
    }

    /// Sorts and wraps an arbitrary timestamp vector.
    pub fn from_unsorted(mut points: Vec<Millis>) -> Self {
        points.sort_unstable();
        Timeline { points }
    }

    /// Number of timestamps.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when there are no timestamps.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// All timestamps, ascending.
    pub fn points(&self) -> &[Millis] {
        &self.points
    }

    /// Distance (ms) from `t` to the nearest timestamp — equation (1) of
    /// the paper. `None` on an empty timeline.
    pub fn dist_to_nearest(&self, t: Millis) -> Option<i64> {
        if self.points.is_empty() {
            return None;
        }
        let i = self.points.partition_point(|&p| p < t);
        let after = self.points.get(i).map(|&p| p - t);
        let before = if i > 0 {
            Some(t - self.points[i - 1])
        } else {
            None
        };
        match (before, after) {
            (Some(b), Some(a)) => Some(b.min(a)),
            (Some(b), None) => Some(b),
            (None, Some(a)) => Some(a),
            (None, None) => None,
        }
    }

    /// Distance (ms) from `t` to the *next* timestamp at or after `t` —
    /// the variant used by the Li–Ma baseline, which looks only forward.
    /// `None` when no timestamp follows `t`.
    pub fn dist_to_next(&self, t: Millis) -> Option<i64> {
        let i = self.points.partition_point(|&p| p < t);
        self.points.get(i).map(|&p| p - t)
    }

    /// Batched [`dist_to_nearest`] for an *ascending* query sequence:
    /// one two-pointer merge sweep over both sorted sequences computes
    /// every distance in O(n + m) total, instead of one O(log n) binary
    /// search per point. Returns one entry per query point in query
    /// order (each bit-identical to the per-point search), or an empty
    /// vector on an empty timeline, where no distance is defined.
    ///
    /// [`dist_to_nearest`]: Timeline::dist_to_nearest
    ///
    /// # Panics
    /// In debug builds, panics if `sorted_points` is not ascending.
    pub fn dists_to_nearest_sorted(&self, sorted_points: &[Millis]) -> Vec<i64> {
        debug_assert!(
            sorted_points.windows(2).all(|w| w[0] <= w[1]),
            "dists_to_nearest_sorted: query points not sorted"
        );
        if self.points.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(sorted_points.len());
        // Invariant: `i` is the first index with points[i] >= t; the
        // queries ascend, so it only ever moves forward.
        let mut i = 0usize;
        for &t in sorted_points {
            while i < self.points.len() && self.points[i] < t {
                i += 1;
            }
            let after = self.points.get(i).map(|&p| p - t);
            let before = if i > 0 {
                Some(t - self.points[i - 1])
            } else {
                None
            };
            match (before, after) {
                (Some(b), Some(a)) => out.push(b.min(a)),
                (Some(b), None) => out.push(b),
                (None, Some(a)) => out.push(a),
                (None, None) => {} // unreachable: the timeline is non-empty
            }
        }
        out
    }

    /// Batched [`dist_to_next`] for an *ascending* query sequence — the
    /// forward-only sweep companion of [`dists_to_nearest_sorted`].
    /// Queries past the last timestamp have no next distance; since the
    /// queries ascend those form a suffix, so the result is one entry
    /// per query point of the defined prefix, in query order.
    ///
    /// [`dist_to_next`]: Timeline::dist_to_next
    /// [`dists_to_nearest_sorted`]: Timeline::dists_to_nearest_sorted
    ///
    /// # Panics
    /// In debug builds, panics if `sorted_points` is not ascending.
    pub fn dists_to_next_sorted(&self, sorted_points: &[Millis]) -> Vec<i64> {
        debug_assert!(
            sorted_points.windows(2).all(|w| w[0] <= w[1]),
            "dists_to_next_sorted: query points not sorted"
        );
        let mut out = Vec::with_capacity(sorted_points.len());
        let mut i = 0usize;
        for &t in sorted_points {
            while i < self.points.len() && self.points[i] < t {
                i += 1;
            }
            match self.points.get(i) {
                Some(&p) => out.push(p - t),
                None => break, // every later query is also past the end
            }
        }
        out
    }

    /// Content digest (FNV-1a over the timestamp bytes) of the whole
    /// timeline. Equal timelines have equal digests; the incremental
    /// pipeline uses it as a cache-key component.
    pub fn digest(&self) -> u64 {
        let mut h = fnv_fold(
            FNV_OFFSET,
            i64::try_from(self.points.len()).unwrap_or(i64::MAX),
        );
        for &p in &self.points {
            h = fnv_fold(h, p.0);
        }
        h
    }

    /// Content digest of the *evidence neighborhood* of `range`: the
    /// timestamps inside `[range.start − margin_ms, range.end +
    /// margin_ms)` plus the single nearest timestamp on each side.
    /// Distance queries issued from points inside the widened range
    /// consult at most those neighbors, so two timelines with equal
    /// neighborhood digests produce bit-identical slot evidence —
    /// appending logs on a later day does not disturb the digest of an
    /// interior slot. Each section is framed (marker + count) so a
    /// missing neighbor cannot alias with an extra in-range point.
    pub fn digest_neighborhood(&self, range: TimeRange, margin_ms: i64) -> u64 {
        let lo = Millis(range.start.0.saturating_sub(margin_ms));
        let hi = Millis(range.end.0.saturating_add(margin_ms));
        let lo_idx = self.points.partition_point(|&p| p < lo);
        let hi_idx = self.points.partition_point(|&p| p < hi.max(lo));
        let mut h = FNV_OFFSET;
        // Predecessor frame.
        match lo_idx.checked_sub(1).and_then(|i| self.points.get(i)) {
            Some(&p) => {
                h = fnv_fold(h, 1);
                h = fnv_fold(h, p.0);
            }
            None => h = fnv_fold(h, 0),
        }
        // In-range frame.
        h = fnv_fold(h, i64::try_from(hi_idx - lo_idx).unwrap_or(i64::MAX));
        for &p in &self.points[lo_idx..hi_idx] {
            h = fnv_fold(h, p.0);
        }
        // Successor frame.
        match self.points.get(hi_idx) {
            Some(&p) => {
                h = fnv_fold(h, 1);
                h = fnv_fold(h, p.0);
            }
            None => h = fnv_fold(h, 0),
        }
        h
    }

    /// The sub-slice of timestamps inside the half-open `range`.
    pub fn slice_in(&self, range: TimeRange) -> &[Millis] {
        let lo = self.points.partition_point(|&p| p < range.start);
        let hi = self.points.partition_point(|&p| p < range.end);
        &self.points[lo..hi]
    }

    /// Number of timestamps inside `range`.
    pub fn count_in(&self, range: TimeRange) -> usize {
        self.slice_in(range).len()
    }

    /// Histogram of activity: counts per consecutive bin of `bin_ms`
    /// across `range` (the data behind Figure 1 of the paper).
    pub fn counts_per_bin(&self, range: TimeRange, bin_ms: i64) -> Vec<usize> {
        assert!(bin_ms > 0, "non-positive bin width");
        let n_bins = usize::try_from((range.len_ms() + bin_ms - 1) / bin_ms).unwrap_or(0);
        let mut bins = vec![0usize; n_bins];
        for &p in self.slice_in(range) {
            let Ok(idx) = usize::try_from((p - range.start) / bin_ms) else {
                continue;
            };
            if let Some(bin) = bins.get_mut(idx) {
                *bin += 1;
            }
        }
        bins
    }
}

impl FromIterator<Millis> for Timeline {
    fn from_iter<I: IntoIterator<Item = Millis>>(iter: I) -> Self {
        Timeline::from_unsorted(iter.into_iter().collect())
    }
}

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds one value into an FNV-1a digest, byte by byte.
fn fnv_fold(mut hash: u64, value: i64) -> u64 {
    for byte in value.to_le_bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tl(ts: &[i64]) -> Timeline {
        Timeline::from_unsorted(ts.iter().map(|&t| Millis(t)).collect())
    }

    #[test]
    fn nearest_distance_cases() {
        let t = tl(&[10, 20, 40]);
        assert_eq!(t.dist_to_nearest(Millis(10)), Some(0)); // exact hit
        assert_eq!(t.dist_to_nearest(Millis(14)), Some(4)); // closer left
        assert_eq!(t.dist_to_nearest(Millis(17)), Some(3)); // closer right
        assert_eq!(t.dist_to_nearest(Millis(30)), Some(10)); // tie
        assert_eq!(t.dist_to_nearest(Millis(0)), Some(10)); // before all
        assert_eq!(t.dist_to_nearest(Millis(100)), Some(60)); // after all
        assert_eq!(Timeline::empty().dist_to_nearest(Millis(5)), None);
    }

    #[test]
    fn next_distance_is_forward_only() {
        let t = tl(&[10, 20, 40]);
        assert_eq!(t.dist_to_next(Millis(10)), Some(0));
        assert_eq!(t.dist_to_next(Millis(11)), Some(9));
        assert_eq!(t.dist_to_next(Millis(39)), Some(1));
        assert_eq!(t.dist_to_next(Millis(41)), None);
        // Nearest can be behind; next never is.
        assert_eq!(t.dist_to_nearest(Millis(39)), Some(1));
        assert_eq!(t.dist_to_nearest(Millis(21)), Some(1));
        assert_eq!(t.dist_to_next(Millis(21)), Some(19));
    }

    #[test]
    fn slice_and_count_in_range() {
        let t = tl(&[5, 10, 15, 20, 25]);
        let r = TimeRange::new(Millis(10), Millis(25));
        assert_eq!(
            t.slice_in(r),
            &[Millis(10), Millis(15), Millis(20)],
            "half-open semantics"
        );
        assert_eq!(t.count_in(r), 3);
        assert_eq!(t.count_in(TimeRange::new(Millis(26), Millis(30))), 0);
    }

    #[test]
    fn binning_matches_figure1_shape() {
        let t = tl(&[0, 100, 900, 1000, 1100, 2500]);
        let bins = t.counts_per_bin(TimeRange::new(Millis(0), Millis(3000)), 1000);
        assert_eq!(bins, vec![3, 2, 1]);
    }

    #[test]
    fn binning_partial_last_bin() {
        let t = tl(&[0, 1400]);
        let bins = t.counts_per_bin(TimeRange::new(Millis(0), Millis(1500)), 1000);
        assert_eq!(bins, vec![1, 1]);
    }

    #[test]
    fn from_iterator_sorts() {
        let t: Timeline = [Millis(3), Millis(1), Millis(2)].into_iter().collect();
        assert_eq!(t.points(), &[Millis(1), Millis(2), Millis(3)]);
    }

    #[test]
    fn sweep_matches_per_point_nearest() {
        let t = tl(&[10, 20, 40]);
        let queries: Vec<Millis> = [0, 5, 10, 14, 17, 30, 40, 41, 100]
            .iter()
            .map(|&x| Millis(x))
            .collect();
        let swept = t.dists_to_nearest_sorted(&queries);
        let looped: Vec<i64> = queries
            .iter()
            .filter_map(|&q| t.dist_to_nearest(q))
            .collect();
        assert_eq!(swept, looped);
        assert!(Timeline::empty()
            .dists_to_nearest_sorted(&queries)
            .is_empty());
        assert!(t.dists_to_nearest_sorted(&[]).is_empty());
    }

    #[test]
    fn sweep_matches_per_point_next() {
        let t = tl(&[10, 20, 40]);
        let queries: Vec<Millis> = [0, 10, 11, 21, 39, 40, 41, 99]
            .iter()
            .map(|&x| Millis(x))
            .collect();
        let swept = t.dists_to_next_sorted(&queries);
        let looped: Vec<i64> = queries.iter().filter_map(|&q| t.dist_to_next(q)).collect();
        assert_eq!(swept, looped, "defined-prefix semantics");
        assert!(Timeline::empty().dists_to_next_sorted(&queries).is_empty());
    }

    #[test]
    fn sweep_handles_duplicate_queries() {
        let t = tl(&[10, 20]);
        let queries = [Millis(15), Millis(15), Millis(15)];
        assert_eq!(t.dists_to_nearest_sorted(&queries), vec![5, 5, 5]);
        assert_eq!(t.dists_to_next_sorted(&queries), vec![5, 5, 5]);
    }

    #[test]
    fn digest_is_content_addressed() {
        let a = tl(&[1, 2, 3]);
        let b = tl(&[3, 2, 1]); // same sorted content
        let c = tl(&[1, 2, 4]);
        assert_eq!(a.digest(), b.digest());
        assert_ne!(a.digest(), c.digest());
        assert_ne!(tl(&[]).digest(), tl(&[0]).digest());
    }

    #[test]
    fn neighborhood_digest_ignores_far_appends() {
        let base = tl(&[100, 200, 300]);
        let appended = tl(&[100, 200, 300, 9_000]);
        let r = TimeRange::new(Millis(100), Millis(250));
        // The append lands beyond the successor-of-range, so the slot's
        // neighborhood is unchanged... except 300 *is* the successor in
        // both, so digests agree.
        assert_eq!(
            base.digest_neighborhood(r, 0),
            appended.digest_neighborhood(r, 0)
        );
        // Changing a point inside the range changes the digest.
        let moved = tl(&[100, 201, 300]);
        assert_ne!(
            base.digest_neighborhood(r, 0),
            moved.digest_neighborhood(r, 0)
        );
        // Changing the successor changes the digest too.
        let succ_moved = tl(&[100, 200, 301]);
        assert_ne!(
            base.digest_neighborhood(r, 0),
            succ_moved.digest_neighborhood(r, 0)
        );
    }

    #[test]
    fn neighborhood_digest_frames_prevent_aliasing() {
        // Predecessor-present vs one-more-in-range must not collide.
        let with_pred = tl(&[3, 5, 7]);
        let all_in = tl(&[3, 5, 7]);
        let r_excl = TimeRange::new(Millis(4), Millis(8)); // pred = 3
        let r_incl = TimeRange::new(Millis(3), Millis(8)); // 3 in range
        assert_ne!(
            with_pred.digest_neighborhood(r_excl, 0),
            all_in.digest_neighborhood(r_incl, 0)
        );
    }

    #[test]
    fn neighborhood_margin_widens_the_sensitivity() {
        let base = tl(&[100, 200, 1_400]);
        let moved = tl(&[100, 200, 1_450]); // outside range, inside margin
        let r = TimeRange::new(Millis(0), Millis(1_000));
        // Without margin both see 1_400/1_450 only as "the successor",
        // which differs — so use a case where the *second* point out
        // moves instead.
        let base2 = tl(&[100, 200, 1_400, 1_600]);
        let moved2 = tl(&[100, 200, 1_400, 1_650]);
        assert_eq!(
            base2.digest_neighborhood(r, 0),
            moved2.digest_neighborhood(r, 0),
            "beyond the successor, invisible without margin"
        );
        assert_ne!(
            base2.digest_neighborhood(r, 1_000),
            moved2.digest_neighborhood(r, 1_000),
            "inside the 1s margin, visible"
        );
        assert_ne!(
            base.digest_neighborhood(r, 500),
            moved.digest_neighborhood(r, 500)
        );
    }

    #[test]
    fn duplicates_allowed() {
        let t = tl(&[7, 7, 7]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.dist_to_nearest(Millis(7)), Some(0));
        assert_eq!(t.count_in(TimeRange::new(Millis(7), Millis(8))), 3);
    }
}
