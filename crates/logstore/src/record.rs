//! The log record: the unit of information every technique mines.

use crate::registry::{HostId, SourceId, UserId};
use crate::time::Millis;
use serde::{Deserialize, Serialize};

/// Log severity, in syslog-like ascending order of urgency.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum Severity {
    /// Debug/trace detail.
    Debug,
    /// Routine operational message (the overwhelming majority).
    #[default]
    Info,
    /// Something unusual but non-fatal.
    Warning,
    /// An error, e.g. a failed invocation or an exception trace.
    Error,
}

impl Severity {
    /// Short uppercase tag used by the TSV codec.
    pub fn tag(self) -> &'static str {
        match self {
            Severity::Debug => "DBG",
            Severity::Info => "INF",
            Severity::Warning => "WRN",
            Severity::Error => "ERR",
        }
    }

    /// Parses the codec tag back.
    pub fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "DBG" => Some(Severity::Debug),
            "INF" => Some(Severity::Info),
            "WRN" => Some(Severity::Warning),
            "ERR" => Some(Severity::Error),
            _ => None,
        }
    }
}

/// One log entry as stored by the centralized logging system.
///
/// Mirrors the HUG schema described in §4.2 of the paper: a client-side
/// creation timestamp (subject to clock skew and the one used by the
/// miners), a server-side reception timestamp (subject to buffering delay
/// and therefore *not* used), the structured source/user/host fields, and
/// the unstructured message text.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogRecord {
    /// Timestamp assigned by the emitting client, 1 ms resolution.
    pub client_ts: Millis,
    /// Timestamp assigned by the log server on reception.
    pub server_ts: Millis,
    /// The emitting application or module.
    pub source: SourceId,
    /// The user at the origin of the transaction, when known.
    pub user: Option<UserId>,
    /// The client machine at the origin of the transaction, when known.
    pub host: Option<HostId>,
    /// Severity class.
    pub severity: Severity,
    /// Unstructured message text.
    pub text: String,
}

impl LogRecord {
    /// Builds a minimal record: source + client timestamp, everything
    /// else defaulted. The server timestamp is set equal to the client's.
    pub fn minimal(source: SourceId, client_ts: Millis) -> Self {
        Self {
            client_ts,
            server_ts: client_ts,
            source,
            user: None,
            host: None,
            severity: Severity::Info,
            text: String::new(),
        }
    }

    /// Builder-style setter for the user.
    pub fn with_user(mut self, user: UserId) -> Self {
        self.user = Some(user);
        self
    }

    /// Builder-style setter for the host.
    pub fn with_host(mut self, host: HostId) -> Self {
        self.host = Some(host);
        self
    }

    /// Builder-style setter for the message text.
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.text = text.into();
        self
    }

    /// Builder-style setter for the severity.
    pub fn with_severity(mut self, severity: Severity) -> Self {
        self.severity = severity;
        self
    }

    /// Builder-style setter for the server timestamp.
    pub fn with_server_ts(mut self, ts: Millis) -> Self {
        self.server_ts = ts;
        self
    }

    /// Whether this record carries the session-identifying fields
    /// technique L2 needs.
    pub fn has_session_info(&self) -> bool {
        self.user.is_some() && self.host.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_tags_round_trip() {
        for s in [
            Severity::Debug,
            Severity::Info,
            Severity::Warning,
            Severity::Error,
        ] {
            assert_eq!(Severity::from_tag(s.tag()), Some(s));
        }
        assert_eq!(Severity::from_tag("XXX"), None);
    }

    #[test]
    fn severity_ordering() {
        assert!(Severity::Debug < Severity::Info);
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(Severity::default(), Severity::Info);
    }

    #[test]
    fn builder_chain() {
        let r = LogRecord::minimal(SourceId(3), Millis(42))
            .with_user(UserId(1))
            .with_host(HostId(2))
            .with_text("Invoke externalService [fct [notify]]")
            .with_severity(Severity::Warning)
            .with_server_ts(Millis(45));
        assert_eq!(r.source, SourceId(3));
        assert_eq!(r.client_ts, Millis(42));
        assert_eq!(r.server_ts, Millis(45));
        assert!(r.has_session_info());
        assert_eq!(r.severity, Severity::Warning);
        assert!(r.text.contains("notify"));
    }

    #[test]
    fn minimal_record_lacks_session_info() {
        let r = LogRecord::minimal(SourceId(0), Millis(0));
        assert!(!r.has_session_info());
        let r = r.with_user(UserId(0));
        assert!(!r.has_session_info(), "host still missing");
    }
}
