//! TSV (tab-separated) serialization of log streams.
//!
//! A deliberately simple line format so example applications can persist
//! and re-ingest simulated weeks without a heavyweight format dependency:
//!
//! ```text
//! client_ts \t server_ts \t source \t user \t host \t severity \t text
//! ```
//!
//! `user`/`host` are `-` when absent; tabs and newlines inside `text`
//! are escaped (`\t`, `\n`, and `\\` for a backslash).

use crate::record::{LogRecord, Severity};
use crate::registry::NameRegistry;
use crate::store::LogStore;
use crate::time::Millis;
use std::io::{self, BufRead, Write};

/// Escapes text for a single TSV field.
fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

/// Reverses [`escape`].
fn unescape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut chars = text.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('t') => out.push('\t'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Writes one record as a TSV line (including the trailing newline).
pub fn write_record<W: Write>(
    w: &mut W,
    record: &LogRecord,
    registry: &NameRegistry,
) -> io::Result<()> {
    let user = record
        .user
        .and_then(|u| registry.users.name(u.0))
        .unwrap_or("-");
    let host = record
        .host
        .and_then(|h| registry.hosts.name(h.0))
        .unwrap_or("-");
    writeln!(
        w,
        "{}\t{}\t{}\t{}\t{}\t{}\t{}",
        record.client_ts.as_millis(),
        record.server_ts.as_millis(),
        escape(registry.source_name(record.source)),
        escape(user),
        escape(host),
        record.severity.tag(),
        escape(&record.text),
    )
}

/// Writes a whole store as TSV.
pub fn write_store<W: Write>(w: &mut W, store: &LogStore) -> io::Result<()> {
    for record in store.records() {
        write_record(w, record, &store.registry)?;
    }
    Ok(())
}

/// Errors from parsing a TSV log line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The line did not have the expected 7 fields.
    FieldCount(usize),
    /// A timestamp field was not an integer.
    BadTimestamp(String),
    /// The severity tag was unknown.
    BadSeverity(String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::FieldCount(n) => write!(f, "expected 7 TSV fields, got {n}"),
            ParseError::BadTimestamp(s) => write!(f, "bad timestamp: {s:?}"),
            ParseError::BadSeverity(s) => write!(f, "bad severity tag: {s:?}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Parses one TSV line into a record, interning names into `registry`.
pub fn parse_record(line: &str, registry: &mut NameRegistry) -> Result<LogRecord, ParseError> {
    let fields: Vec<&str> = line.splitn(7, '\t').collect();
    if fields.len() != 7 {
        return Err(ParseError::FieldCount(fields.len()));
    }
    let client_ts: i64 = fields[0]
        .parse()
        .map_err(|_| ParseError::BadTimestamp(fields[0].to_owned()))?;
    let server_ts: i64 = fields[1]
        .parse()
        .map_err(|_| ParseError::BadTimestamp(fields[1].to_owned()))?;
    let source = registry.source(&unescape(fields[2]));
    let user = match fields[3] {
        "-" => None,
        u => Some(registry.user(&unescape(u))),
    };
    let host = match fields[4] {
        "-" => None,
        h => Some(registry.host(&unescape(h))),
    };
    let severity = Severity::from_tag(fields[5])
        .ok_or_else(|| ParseError::BadSeverity(fields[5].to_owned()))?;
    Ok(LogRecord {
        client_ts: Millis(client_ts),
        server_ts: Millis(server_ts),
        source,
        user,
        host,
        severity,
        text: unescape(fields[6]),
    })
}

/// Parse failures from one ingest pass, with bounded memory: the first
/// [`ParseErrors::SAMPLE_CAP`] failures are retained verbatim, the rest
/// only counted. A fully-garbage multi-gigabyte input therefore costs a
/// fixed amount of memory for diagnostics, not one allocation per line.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParseErrors {
    samples: Vec<(usize, ParseError)>,
    total: usize,
    cap: usize,
}

impl ParseErrors {
    /// Default number of retained samples.
    pub const SAMPLE_CAP: usize = 32;

    /// Creates an empty collector with the default cap.
    pub fn new() -> Self {
        Self::with_cap(Self::SAMPLE_CAP)
    }

    /// Creates an empty collector retaining at most `cap` samples.
    pub fn with_cap(cap: usize) -> Self {
        Self {
            samples: Vec::new(),
            total: 0,
            cap,
        }
    }

    /// Records one failure (keeps it only while under the cap).
    pub fn record(&mut self, lineno: usize, error: ParseError) {
        if self.samples.len() < self.cap {
            self.samples.push((lineno, error));
        }
        self.total += 1;
    }

    /// Total number of failures seen (not just the retained ones).
    pub fn len(&self) -> usize {
        self.total
    }

    /// True when no line failed to parse.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The retained `(1-based line number, error)` samples.
    pub fn samples(&self) -> &[(usize, ParseError)] {
        &self.samples
    }

    /// True when failures beyond the retained samples were discarded.
    pub fn truncated(&self) -> bool {
        self.total > self.samples.len()
    }
}

impl<'a> IntoIterator for &'a ParseErrors {
    type Item = &'a (usize, ParseError);
    type IntoIter = std::slice::Iter<'a, (usize, ParseError)>;
    fn into_iter(self) -> Self::IntoIter {
        self.samples.iter()
    }
}

/// Reads a whole TSV stream into a fresh (finalized) store.
///
/// Lines that fail to parse are counted (and the first few retained with
/// their 1-based line number); parsing continues past them, mirroring how
/// a real consolidation job must tolerate occasional corrupt lines. For
/// quarantine budgets, repair and dedup, see [`crate::ingest`].
pub fn read_store<R: BufRead>(r: R) -> io::Result<(LogStore, ParseErrors)> {
    let mut store = LogStore::new();
    let mut errors = ParseErrors::new();
    for (i, line) in r.lines().enumerate() {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        match parse_record(&line, &mut store.registry) {
            Ok(rec) => store.push(rec),
            Err(e) => errors.record(i + 1, e),
        }
    }
    store.finalize();
    Ok((store, errors))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::SourceId;

    fn sample_store() -> LogStore {
        let mut s = LogStore::new();
        let app_a = s.registry.source("AppA");
        let app_b = s.registry.source("AppB");
        let user = s.registry.user("alice");
        let host = s.registry.host("ws-001");
        s.push(
            LogRecord::minimal(app_a, Millis(100))
                .with_user(user)
                .with_host(host)
                .with_text("Invoke externalService [fct [notify]]"),
        );
        s.push(
            LogRecord::minimal(app_b, Millis(50))
                .with_severity(Severity::Error)
                .with_text("weird\ttext with\nnewline and \\backslash"),
        );
        s.finalize();
        s
    }

    #[test]
    fn round_trip_preserves_everything() {
        let original = sample_store();
        let mut buf = Vec::new();
        write_store(&mut buf, &original).unwrap();
        let (parsed, errors) = read_store(buf.as_slice()).unwrap();
        assert!(errors.is_empty());
        assert_eq!(parsed.len(), original.len());
        for (a, b) in original.records().iter().zip(parsed.records()) {
            assert_eq!(a.client_ts, b.client_ts);
            assert_eq!(a.severity, b.severity);
            assert_eq!(a.text, b.text);
            assert_eq!(
                original.registry.source_name(a.source),
                parsed.registry.source_name(b.source)
            );
        }
    }

    #[test]
    fn escape_round_trip() {
        for s in ["plain", "tab\there", "line\nbreak", "back\\slash", "\r", ""] {
            assert_eq!(unescape(&escape(s)), s);
        }
    }

    #[test]
    fn unescape_tolerates_trailing_backslash() {
        assert_eq!(unescape("abc\\"), "abc\\");
        assert_eq!(unescape("a\\x"), "a\\x");
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        let mut reg = NameRegistry::new();
        assert!(matches!(
            parse_record("only\tfour\tfields\there", &mut reg),
            Err(ParseError::FieldCount(4))
        ));
        assert!(matches!(
            parse_record("x\t2\tsrc\t-\t-\tINF\ttext", &mut reg),
            Err(ParseError::BadTimestamp(_))
        ));
        assert!(matches!(
            parse_record("1\t2\tsrc\t-\t-\tZZZ\ttext", &mut reg),
            Err(ParseError::BadSeverity(_))
        ));
    }

    #[test]
    fn read_store_collects_errors_and_continues() {
        let data = "1\t1\tA\t-\t-\tINF\tok\nbroken line\n2\t2\tB\t-\t-\tINF\talso ok\n";
        let (store, errors) = read_store(data.as_bytes()).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(errors.len(), 1);
        assert!(!errors.truncated());
        assert_eq!(errors.samples()[0].0, 2, "1-based line number");
    }

    #[test]
    fn parse_error_samples_are_capped() {
        let mut garbage = String::new();
        for i in 0..(ParseErrors::SAMPLE_CAP + 10) {
            garbage.push_str(&format!("broken line {i}\n"));
        }
        let (store, errors) = read_store(garbage.as_bytes()).unwrap();
        assert!(store.is_empty());
        assert_eq!(errors.len(), ParseErrors::SAMPLE_CAP + 10);
        assert_eq!(errors.samples().len(), ParseErrors::SAMPLE_CAP);
        assert!(errors.truncated());
        // The retained samples are the *first* failures.
        assert_eq!(errors.samples()[0].0, 1);
        let mut seen = 0;
        for (lineno, _) in &errors {
            assert!(*lineno <= ParseErrors::SAMPLE_CAP);
            seen += 1;
        }
        assert_eq!(seen, ParseErrors::SAMPLE_CAP);
    }

    #[test]
    fn empty_lines_skipped() {
        let data = "\n1\t1\tA\t-\t-\tINF\tok\n\n";
        let (store, errors) = read_store(data.as_bytes()).unwrap();
        assert_eq!(store.len(), 1);
        assert!(errors.is_empty());
        assert_eq!(store.registry.find_source("A"), Some(SourceId(0)));
    }

    #[test]
    fn missing_user_host_round_trip() {
        let original = sample_store();
        let mut buf = Vec::new();
        write_store(&mut buf, &original).unwrap();
        let (parsed, _) = read_store(buf.as_slice()).unwrap();
        // AppB record (earliest, sorts first) had no user/host.
        let r = &parsed.records()[0];
        assert!(r.user.is_none() && r.host.is_none());
        // AppA record kept them.
        let r = &parsed.records()[1];
        assert!(r.user.is_some() && r.host.is_some());
    }
}
