//! Interned identifiers for log sources, users and hosts.
//!
//! Mining runs touch millions of records; comparing interned `u32` ids is
//! what keeps bigram extraction and pair statistics cheap. The registry
//! is the single authority mapping names (e.g. `"DPIFormidoc"`) to ids
//! and back.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// The raw index value.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

id_newtype!(
    /// Identifier of a log source (an application or module).
    SourceId
);
id_newtype!(
    /// Identifier of a user.
    UserId
);
id_newtype!(
    /// Identifier of a client machine.
    HostId
);

/// A bidirectional name ↔ dense-index map.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Interner {
    names: Vec<String>,
    #[serde(skip)]
    lookup: HashMap<String, u32>,
}

impl Interner {
    /// Interns `name`, returning its dense index.
    pub fn intern(&mut self, name: &str) -> u32 {
        if self.lookup.is_empty() && !self.names.is_empty() {
            self.rebuild_lookup();
        }
        if let Some(&id) = self.lookup.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_owned());
        self.lookup.insert(name.to_owned(), id);
        id
    }

    /// Looks a name up without interning.
    pub fn get(&self, name: &str) -> Option<u32> {
        if self.lookup.is_empty() && !self.names.is_empty() {
            // Deserialized interner: fall back to a linear scan rather
            // than requiring &mut self. Callers that care should call
            // `rebuild_lookup` once after deserializing.
            return self.names.iter().position(|n| n == name).map(|i| i as u32);
        }
        self.lookup.get(name).copied()
    }

    /// Resolves an index back to the name.
    pub fn name(&self, id: u32) -> Option<&str> {
        self.names.get(id as usize).map(String::as_str)
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates `(index, name)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (i as u32, n.as_str()))
    }

    /// Rebuilds the reverse map (needed after deserialization).
    pub fn rebuild_lookup(&mut self) {
        self.lookup = self
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i as u32))
            .collect();
    }
}

/// Registries for the three id spaces of a log stream.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct NameRegistry {
    /// Source (application) names.
    pub sources: Interner,
    /// User names.
    pub users: Interner,
    /// Client machine names.
    pub hosts: Interner,
}

impl NameRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a source name.
    pub fn source(&mut self, name: &str) -> SourceId {
        SourceId(self.sources.intern(name))
    }

    /// Interns a user name.
    pub fn user(&mut self, name: &str) -> UserId {
        UserId(self.users.intern(name))
    }

    /// Interns a host name.
    pub fn host(&mut self, name: &str) -> HostId {
        HostId(self.hosts.intern(name))
    }

    /// Resolves a source id to its name.
    pub fn source_name(&self, id: SourceId) -> &str {
        self.sources.name(id.0).unwrap_or("<unknown-source>")
    }

    /// Looks up a source by name without interning.
    pub fn find_source(&self, name: &str) -> Option<SourceId> {
        self.sources.get(name).map(SourceId)
    }

    /// Number of distinct sources.
    pub fn source_count(&self) -> usize {
        self.sources.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut i = Interner::default();
        let a = i.intern("alpha");
        let b = i.intern("beta");
        assert_ne!(a, b);
        assert_eq!(i.intern("alpha"), a);
        assert_eq!(i.len(), 2);
        assert_eq!(i.name(a), Some("alpha"));
        assert_eq!(i.get("beta"), Some(b));
        assert_eq!(i.get("gamma"), None);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut i = Interner::default();
        for (k, name) in ["a", "b", "c", "d"].iter().enumerate() {
            assert_eq!(i.intern(name), k as u32);
        }
        let collected: Vec<(u32, String)> = i.iter().map(|(id, n)| (id, n.to_owned())).collect();
        assert_eq!(collected[2], (2, "c".to_owned()));
    }

    #[test]
    fn registry_separates_id_spaces() {
        let mut r = NameRegistry::new();
        let s = r.source("App");
        let u = r.user("App"); // same string, different space
        let h = r.host("App");
        assert_eq!(s.0, 0);
        assert_eq!(u.0, 0);
        assert_eq!(h.0, 0);
        assert_eq!(r.source_name(s), "App");
        assert_eq!(r.find_source("App"), Some(s));
        assert_eq!(r.find_source("Nope"), None);
        assert_eq!(r.source_count(), 1);
    }

    #[test]
    fn unknown_source_name_is_stable() {
        let r = NameRegistry::new();
        assert_eq!(r.source_name(SourceId(99)), "<unknown-source>");
    }

    #[test]
    fn lookup_survives_serde_round_trip() {
        let mut i = Interner::default();
        i.intern("x");
        i.intern("y");
        let json = serde_json_round_trip(&i);
        assert_eq!(json.get("y"), Some(1));
        assert_eq!(json.name(0), Some("x"));
    }

    // Minimal round trip without pulling serde_json into deps: serialize
    // via serde's derive through a clone-based check instead.
    fn serde_json_round_trip(i: &Interner) -> Interner {
        // Simulate "deserialized" state: names present, lookup empty.
        let mut copy = Interner::default();
        for (_, n) in i.iter() {
            copy.names.push(n.to_owned());
        }
        copy
    }
}
