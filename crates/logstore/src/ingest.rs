//! Resilient consolidation: quarantine, repair, dedup and skew estimation.
//!
//! [`crate::codec::read_store`] tolerates malformed lines but applies no
//! policy. This module is the hardened path a production consolidation
//! job would use against hostile streams (see the `logdep-faults`
//! injector): it enforces a bounded **error budget** so a mis-pointed
//! ingest fails fast instead of silently quarantining half the data,
//! repairs out-of-order delivery, absorbs at-least-once duplication, and
//! estimates per-source clock skew from the client/server timestamp gap
//! (the paper's §4.2 NT-domain drift), reporting everything in a
//! machine-readable [`IngestReport`].

use crate::codec::{parse_record, ParseErrors};
use crate::store::LogStore;
use std::collections::BTreeMap;
use std::io::{self, BufRead};

/// Per-source cap on skew samples: enough for a stable median without
/// letting one chatty source dominate memory.
const SKEW_SAMPLE_CAP: usize = 4_096;

/// Quarantine and repair policy for one resilient ingest pass.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestPolicy {
    /// Abort when more than this fraction of non-empty lines failed to
    /// parse (checked once at least `min_lines_before_check` lines have
    /// been seen, and again at end of stream).
    pub max_error_fraction: f64,
    /// Grace period: never abort before this many non-empty lines, so a
    /// corrupt burst at the head of an otherwise-healthy stream does not
    /// kill the ingest.
    pub min_lines_before_check: usize,
    /// Retain at most this many quarantined-line samples in the report.
    pub error_sample_cap: usize,
    /// Remove exact duplicates — same `(client_ts, source, text)` — on
    /// finalize (at-least-once shippers retransmit whole batches).
    pub dedup: bool,
}

impl Default for IngestPolicy {
    fn default() -> Self {
        Self {
            max_error_fraction: 0.5,
            min_lines_before_check: 1_000,
            error_sample_cap: ParseErrors::SAMPLE_CAP,
            dedup: true,
        }
    }
}

impl IngestPolicy {
    /// A policy that quarantines without ever aborting (error budget 1.0).
    pub fn lenient() -> Self {
        Self {
            max_error_fraction: 1.0,
            ..Self::default()
        }
    }
}

/// What one resilient ingest pass did, in machine-readable form.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct IngestReport {
    /// Non-empty lines seen.
    pub total_lines: usize,
    /// Lines parsed into records.
    pub parsed: usize,
    /// Lines quarantined (failed to parse).
    pub quarantined: usize,
    /// First few quarantined lines as `(1-based line number, error)`.
    pub quarantine_samples: Vec<(usize, String)>,
    /// Exact duplicate records removed on finalize.
    pub deduped: usize,
    /// Records that arrived with a client timestamp earlier than a
    /// previously-seen record (repaired by the finalize sort).
    pub repaired_out_of_order: usize,
    /// Estimated per-source clock skew: the median of
    /// `client_ts - server_ts` over the source's records, ms. Only
    /// sources with a nonzero estimate appear.
    pub per_source_skew_ms: BTreeMap<String, i64>,
}

impl IngestReport {
    /// Fraction of non-empty lines that were quarantined.
    pub fn quarantine_fraction(&self) -> f64 {
        if self.total_lines == 0 {
            0.0
        } else {
            self.quarantined as f64 / self.total_lines as f64
        }
    }

    /// One-line human summary for CLI output.
    pub fn summary(&self) -> String {
        format!(
            "{} lines: {} parsed, {} quarantined, {} deduped, {} out-of-order repaired, \
             {} sources with clock skew",
            self.total_lines,
            self.parsed,
            self.quarantined,
            self.deduped,
            self.repaired_out_of_order,
            self.per_source_skew_ms.len(),
        )
    }
}

/// Failure of a resilient ingest pass.
#[derive(Debug)]
pub enum IngestError {
    /// The underlying reader failed.
    Io(io::Error),
    /// The malformed-line fraction exceeded the policy's budget.
    ErrorBudgetExceeded {
        /// Non-empty lines seen when the budget check tripped.
        lines: usize,
        /// Quarantined lines at that point.
        quarantined: usize,
        /// The policy's `max_error_fraction`.
        max_fraction: f64,
    },
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Io(e) => write!(f, "ingest I/O error: {e}"),
            IngestError::ErrorBudgetExceeded {
                lines,
                quarantined,
                max_fraction,
            } => write!(
                f,
                "error budget exceeded: {quarantined}/{lines} lines malformed \
                 (limit {:.0}%) — wrong file or unsupported format?",
                max_fraction * 100.0
            ),
        }
    }
}

impl std::error::Error for IngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IngestError::Io(e) => Some(e),
            IngestError::ErrorBudgetExceeded { .. } => None,
        }
    }
}

impl From<io::Error> for IngestError {
    fn from(e: io::Error) -> Self {
        IngestError::Io(e)
    }
}

/// Reads a TSV stream into a finalized store under `policy`, reporting
/// quarantine, repair, dedup and skew statistics.
///
/// Unlike [`crate::codec::read_store`], this fails fast (with
/// [`IngestError::ErrorBudgetExceeded`]) when the stream is mostly
/// garbage, and absorbs duplicate delivery when `policy.dedup` is set.
pub fn read_store_resilient<R: BufRead>(
    r: R,
    policy: &IngestPolicy,
) -> Result<(LogStore, IngestReport), IngestError> {
    let mut store = LogStore::new();
    let mut report = IngestReport::default();
    let mut errors = ParseErrors::with_cap(policy.error_sample_cap);
    // (client_ts - server_ts) samples per source index, capped.
    let mut skew_samples: Vec<Vec<i64>> = Vec::new();
    let mut last_seen_ts: Option<i64> = None;

    for (i, line) in r.lines().enumerate() {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        report.total_lines += 1;
        match parse_record(&line, &mut store.registry) {
            Ok(rec) => {
                report.parsed += 1;
                let ts = rec.client_ts.as_millis();
                if last_seen_ts.is_some_and(|prev| ts < prev) {
                    report.repaired_out_of_order += 1;
                }
                last_seen_ts = Some(last_seen_ts.map_or(ts, |prev| prev.max(ts)));
                let idx = rec.source.index();
                if skew_samples.len() <= idx {
                    skew_samples.resize_with(idx + 1, Vec::new);
                }
                if let Some(samples) = skew_samples.get_mut(idx) {
                    if samples.len() < SKEW_SAMPLE_CAP {
                        samples.push(rec.client_ts - rec.server_ts);
                    }
                }
                store.push(rec);
            }
            Err(e) => errors.record(i + 1, e),
        }
        if report.total_lines >= policy.min_lines_before_check {
            check_budget(report.total_lines, errors.len(), policy)?;
        }
    }
    // End-of-stream check catches short mostly-garbage streams too.
    check_budget(report.total_lines, errors.len(), policy)?;

    report.quarantined = errors.len();
    report.quarantine_samples = errors
        .samples()
        .iter()
        .map(|(lineno, e)| (*lineno, e.to_string()))
        .collect();

    report.deduped = if policy.dedup {
        store.finalize_dedup()
    } else {
        store.finalize();
        0
    };

    for (idx, samples) in skew_samples.iter_mut().enumerate() {
        let skew = median(samples);
        if skew != 0 {
            if let Some(name) = store.registry.sources.name(idx as u32) {
                report.per_source_skew_ms.insert(name.to_owned(), skew);
            }
        }
    }

    Ok((store, report))
}

fn check_budget(
    lines: usize,
    quarantined: usize,
    policy: &IngestPolicy,
) -> Result<(), IngestError> {
    if lines == 0 {
        return Ok(());
    }
    if quarantined as f64 > policy.max_error_fraction * lines as f64 {
        return Err(IngestError::ErrorBudgetExceeded {
            lines,
            quarantined,
            max_fraction: policy.max_error_fraction,
        });
    }
    Ok(())
}

/// Median of the samples (0 when empty); lower-middle for even counts.
fn median(samples: &mut [i64]) -> i64 {
    if samples.is_empty() {
        return 0;
    }
    let mid = (samples.len() - 1) / 2;
    let (_, m, _) = samples.select_nth_unstable(mid);
    *m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::write_record;
    use crate::record::LogRecord;
    use crate::time::Millis;

    fn tsv(rows: &[(i64, i64, &str, &str)]) -> String {
        let mut store = LogStore::new();
        let mut buf = Vec::new();
        for &(client, server, source, text) in rows {
            let src = store.registry.source(source);
            let rec = LogRecord::minimal(src, Millis(client))
                .with_server_ts(Millis(server))
                .with_text(text);
            write_record(&mut buf, &rec, &store.registry).expect("write to Vec");
        }
        String::from_utf8(buf).expect("codec emits UTF-8")
    }

    #[test]
    fn clean_stream_parses_fully() {
        let data = tsv(&[(10, 10, "A", "x"), (20, 20, "B", "y")]);
        let (store, report) =
            read_store_resilient(data.as_bytes(), &IngestPolicy::default()).expect("ok");
        assert_eq!(store.len(), 2);
        assert_eq!(report.parsed, 2);
        assert_eq!(report.quarantined, 0);
        assert_eq!(report.deduped, 0);
        assert_eq!(report.repaired_out_of_order, 0);
        assert!(report.per_source_skew_ms.is_empty());
    }

    #[test]
    fn quarantines_and_reports_bad_lines() {
        let mut data = tsv(&[(10, 10, "A", "x"), (20, 20, "B", "y")]);
        data.push_str("utter garbage\n");
        let (store, report) =
            read_store_resilient(data.as_bytes(), &IngestPolicy::default()).expect("ok");
        assert_eq!(store.len(), 2);
        assert_eq!(report.quarantined, 1);
        assert_eq!(report.quarantine_samples.len(), 1);
        assert_eq!(report.quarantine_samples[0].0, 3);
        assert!((report.quarantine_fraction() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn error_budget_fails_fast() {
        let mut data = String::from("garbage one\ngarbage two\ngarbage three\n");
        data.push_str(&tsv(&[(10, 10, "A", "x")]));
        let policy = IngestPolicy {
            max_error_fraction: 0.5,
            min_lines_before_check: 2,
            ..IngestPolicy::default()
        };
        let err = read_store_resilient(data.as_bytes(), &policy).expect_err("must abort");
        match err {
            IngestError::ErrorBudgetExceeded { quarantined, .. } => assert!(quarantined >= 2),
            other => panic!("unexpected error: {other}"),
        }
        // The same stream passes a lenient policy.
        assert!(read_store_resilient(data.as_bytes(), &IngestPolicy::lenient()).is_ok());
    }

    #[test]
    fn budget_checked_at_end_of_short_streams() {
        // Shorter than min_lines_before_check, but 100% garbage: the
        // end-of-stream check must still trip.
        let data = "bad\nbad\nbad\n";
        let err = read_store_resilient(data.as_bytes(), &IngestPolicy::default())
            .expect_err("must abort");
        assert!(matches!(err, IngestError::ErrorBudgetExceeded { .. }));
    }

    #[test]
    fn out_of_order_is_counted_and_repaired() {
        let data = tsv(&[
            (30, 30, "A", "late"),
            (10, 10, "A", "early"),
            (20, 20, "A", "mid"),
        ]);
        let (store, report) =
            read_store_resilient(data.as_bytes(), &IngestPolicy::default()).expect("ok");
        assert_eq!(report.repaired_out_of_order, 2);
        let ts: Vec<i64> = store
            .records()
            .iter()
            .map(|r| r.client_ts.as_millis())
            .collect();
        assert_eq!(ts, vec![10, 20, 30], "finalize repairs the order");
    }

    #[test]
    fn duplicates_are_absorbed_when_policy_says_so() {
        let data = tsv(&[(10, 10, "A", "x"), (10, 10, "A", "x"), (20, 20, "A", "y")]);
        let (store, report) =
            read_store_resilient(data.as_bytes(), &IngestPolicy::default()).expect("ok");
        assert_eq!(report.deduped, 1);
        assert_eq!(store.len(), 2);

        let keep = IngestPolicy {
            dedup: false,
            ..IngestPolicy::default()
        };
        let (store, report) = read_store_resilient(data.as_bytes(), &keep).expect("ok");
        assert_eq!(report.deduped, 0);
        assert_eq!(store.len(), 3);
    }

    #[test]
    fn skew_estimate_is_median_of_ts_gap() {
        // Source A's clock runs 5s ahead of the server; B is honest.
        let data = tsv(&[
            (15_000, 10_000, "A", "one"),
            (25_000, 20_000, "A", "two"),
            (35_000, 30_000, "A", "three"),
            (10_000, 10_000, "B", "x"),
        ]);
        let (_, report) =
            read_store_resilient(data.as_bytes(), &IngestPolicy::default()).expect("ok");
        assert_eq!(report.per_source_skew_ms.get("A"), Some(&5_000));
        assert_eq!(report.per_source_skew_ms.get("B"), None);
    }

    #[test]
    fn empty_stream_is_fine() {
        let (store, report) =
            read_store_resilient("".as_bytes(), &IngestPolicy::default()).expect("ok");
        assert!(store.is_empty());
        assert_eq!(report, IngestReport::default());
    }

    #[test]
    fn report_summary_mentions_counts() {
        let report = IngestReport {
            total_lines: 10,
            parsed: 8,
            quarantined: 2,
            ..IngestReport::default()
        };
        let s = report.summary();
        assert!(s.contains("10 lines"));
        assert!(s.contains("8 parsed"));
        assert!(s.contains("2 quarantined"));
    }
}
