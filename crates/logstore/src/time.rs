//! Millisecond timestamps and calendar helpers.
//!
//! All simulation and mining code works in milliseconds relative to a
//! *scenario epoch* — midnight at the start of the observation period
//! (the paper's week starts Tuesday 2005-12-06). Keeping time as a plain
//! `i64` newtype avoids any dependency on a date-time crate while still
//! giving day/hour arithmetic for slotting.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Milliseconds since the scenario epoch.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Millis(pub i64);

/// Milliseconds per second.
pub const MS_PER_SEC: i64 = 1_000;
/// Milliseconds per minute.
pub const MS_PER_MIN: i64 = 60 * MS_PER_SEC;
/// Milliseconds per hour.
pub const MS_PER_HOUR: i64 = 60 * MS_PER_MIN;
/// Milliseconds per day.
pub const MS_PER_DAY: i64 = 24 * MS_PER_HOUR;

/// [`MS_PER_SEC`] as `f64`, for fractional-second conversions.
// lint:allow(lossy-time-cast) — exactly representable in f64 (< 2^53)
pub const MS_PER_SEC_F64: f64 = MS_PER_SEC as f64;
/// [`MS_PER_DAY`] as `f64`, for day-fraction conversions.
// lint:allow(lossy-time-cast) — exactly representable in f64 (< 2^53)
pub const MS_PER_DAY_F64: f64 = MS_PER_DAY as f64;

impl Millis {
    /// Zero milliseconds (the scenario epoch itself).
    pub const ZERO: Millis = Millis(0);

    /// Constructs from whole seconds.
    pub fn from_secs(s: i64) -> Self {
        Millis(s * MS_PER_SEC)
    }

    /// Constructs from fractional seconds (rounded to the nearest ms).
    pub fn from_secs_f64(s: f64) -> Self {
        Millis((s * MS_PER_SEC_F64).round() as i64)
    }

    /// Constructs from whole hours.
    pub fn from_hours(h: i64) -> Self {
        Millis(h * MS_PER_HOUR)
    }

    /// Constructs from whole days.
    pub fn from_days(d: i64) -> Self {
        Millis(d * MS_PER_DAY)
    }

    /// The raw millisecond count.
    pub fn as_millis(self) -> i64 {
        self.0
    }

    /// Value in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MS_PER_SEC_F64
    }

    /// Zero-based day index since the epoch (negative times floor).
    pub fn day_index(self) -> i64 {
        self.0.div_euclid(MS_PER_DAY)
    }

    /// Hour of day, `0..24`.
    pub fn hour_of_day(self) -> u8 {
        // lint:allow(lossy-time-cast) — rem_euclid bounds the value to 0..24
        (self.0.rem_euclid(MS_PER_DAY) / MS_PER_HOUR) as u8
    }

    /// Zero-based hour index since the epoch.
    pub fn hour_index(self) -> i64 {
        self.0.div_euclid(MS_PER_HOUR)
    }

    /// Fraction of the day elapsed, in `[0, 1)`.
    pub fn day_fraction(self) -> f64 {
        // lint:allow(lossy-time-cast) — bounded to [0, MS_PER_DAY), exact in f64
        self.0.rem_euclid(MS_PER_DAY) as f64 / MS_PER_DAY_F64
    }

    /// Saturating absolute difference in milliseconds.
    pub fn abs_diff(self, other: Millis) -> i64 {
        (self.0 - other.0).abs()
    }
}

impl Add<i64> for Millis {
    type Output = Millis;
    fn add(self, rhs: i64) -> Millis {
        Millis(self.0 + rhs)
    }
}

impl AddAssign<i64> for Millis {
    fn add_assign(&mut self, rhs: i64) {
        self.0 += rhs;
    }
}

impl Sub for Millis {
    type Output = i64;
    fn sub(self, rhs: Millis) -> i64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for Millis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let day = self.day_index();
        let rem = self.0.rem_euclid(MS_PER_DAY);
        let h = rem / MS_PER_HOUR;
        let m = (rem % MS_PER_HOUR) / MS_PER_MIN;
        let s = (rem % MS_PER_MIN) / MS_PER_SEC;
        let ms = rem % MS_PER_SEC;
        write!(f, "d{day} {h:02}:{m:02}:{s:02}.{ms:03}")
    }
}

/// A half-open time interval `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TimeRange {
    /// Inclusive start.
    pub start: Millis,
    /// Exclusive end.
    pub end: Millis,
}

impl TimeRange {
    /// Constructs a range; `end` must not precede `start`.
    pub fn new(start: Millis, end: Millis) -> Self {
        assert!(end >= start, "inverted time range");
        Self { start, end }
    }

    /// The whole `day`-th day since the epoch.
    pub fn day(day: i64) -> Self {
        Self::new(Millis::from_days(day), Millis::from_days(day + 1))
    }

    /// The `hour`-th hour of day `day`.
    pub fn hour_of_day(day: i64, hour: i64) -> Self {
        let start = Millis(day * MS_PER_DAY + hour * MS_PER_HOUR);
        Self::new(start, start + MS_PER_HOUR)
    }

    /// Length in milliseconds.
    pub fn len_ms(&self) -> i64 {
        self.end - self.start
    }

    /// Whether `t` lies inside the half-open interval.
    pub fn contains(&self, t: Millis) -> bool {
        self.start <= t && t < self.end
    }

    /// Splits the range into consecutive sub-ranges of `width_ms`
    /// (the last one truncated to fit).
    pub fn split(&self, width_ms: i64) -> Vec<TimeRange> {
        assert!(width_ms > 0, "non-positive slot width");
        let mut out = Vec::new();
        let mut s = self.start;
        while s < self.end {
            let e = Millis((s.0 + width_ms).min(self.end.0));
            out.push(TimeRange::new(s, e));
            s = e;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        assert_eq!(Millis::from_secs(2).as_millis(), 2_000);
        assert_eq!(Millis::from_secs_f64(1.5).as_millis(), 1_500);
        assert_eq!(Millis::from_hours(2).as_millis(), 7_200_000);
        assert_eq!(Millis::from_days(1).as_millis(), MS_PER_DAY);
        assert_eq!(Millis(1_500).as_secs_f64(), 1.5);
    }

    #[test]
    fn calendar_helpers() {
        let t = Millis(MS_PER_DAY * 3 + MS_PER_HOUR * 14 + 123);
        assert_eq!(t.day_index(), 3);
        assert_eq!(t.hour_of_day(), 14);
        assert_eq!(t.hour_index(), 3 * 24 + 14);
        assert!((t.day_fraction() - 14.0 / 24.0).abs() < 1e-5);
    }

    #[test]
    fn negative_times_floor() {
        let t = Millis(-1);
        assert_eq!(t.day_index(), -1);
        assert_eq!(t.hour_of_day(), 23);
    }

    #[test]
    fn arithmetic() {
        let t = Millis(100);
        assert_eq!((t + 50).as_millis(), 150);
        assert_eq!(Millis(300) - Millis(100), 200);
        assert_eq!(Millis(100).abs_diff(Millis(300)), 200);
        assert_eq!(Millis(300).abs_diff(Millis(100)), 200);
        let mut u = Millis(5);
        u += 7;
        assert_eq!(u, Millis(12));
    }

    #[test]
    fn display_format() {
        let t = Millis(MS_PER_DAY + MS_PER_HOUR * 9 + MS_PER_MIN * 5 + 2_042);
        assert_eq!(t.to_string(), "d1 09:05:02.042");
    }

    #[test]
    fn range_basics() {
        let r = TimeRange::day(2);
        assert_eq!(r.len_ms(), MS_PER_DAY);
        assert!(r.contains(Millis(2 * MS_PER_DAY)));
        assert!(!r.contains(Millis(3 * MS_PER_DAY)));
        let h = TimeRange::hour_of_day(1, 5);
        assert_eq!(h.start, Millis(MS_PER_DAY + 5 * MS_PER_HOUR));
        assert_eq!(h.len_ms(), MS_PER_HOUR);
    }

    #[test]
    fn range_split() {
        let r = TimeRange::new(Millis(0), Millis(2_500));
        let parts = r.split(1_000);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0], TimeRange::new(Millis(0), Millis(1_000)));
        assert_eq!(parts[2], TimeRange::new(Millis(2_000), Millis(2_500)));
        // Day splits into 24 hours.
        assert_eq!(TimeRange::day(0).split(MS_PER_HOUR).len(), 24);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_range_panics() {
        TimeRange::new(Millis(5), Millis(4));
    }
}
