//! The in-memory log store.
//!
//! Append records in any order, [`LogStore::finalize`] once, then query.
//! Records are kept sorted by client timestamp (the timestamp the paper's
//! miners use, §4.2) with per-source timestamp indexes built lazily on
//! finalize. All range queries are binary searches returning slices —
//! no copying on the hot mining paths.

use crate::record::LogRecord;
use crate::registry::{NameRegistry, SourceId};
use crate::time::{Millis, TimeRange};
use crate::timeline::Timeline;

/// An in-memory, time-sorted collection of log records plus the name
/// registry they were interned against.
#[derive(Debug, Clone, Default)]
pub struct LogStore {
    records: Vec<LogRecord>,
    /// Per-source sorted client timestamps; built by [`LogStore::finalize`].
    per_source: Vec<Timeline>,
    /// Name registry shared with producers.
    pub registry: NameRegistry,
    finalized: bool,
}

impl LogStore {
    /// Creates an empty store with a fresh registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty store that adopts an existing registry.
    pub fn with_registry(registry: NameRegistry) -> Self {
        Self {
            registry,
            ..Self::default()
        }
    }

    /// Appends one record. Invalidates any previous finalization.
    pub fn push(&mut self, record: LogRecord) {
        self.finalized = false;
        self.records.push(record);
    }

    /// Appends many records.
    pub fn extend(&mut self, records: impl IntoIterator<Item = LogRecord>) {
        self.finalized = false;
        self.records.extend(records);
    }

    /// Sorts by client timestamp and (re)builds the per-source indexes.
    /// Idempotent; must be called before any query.
    pub fn finalize(&mut self) {
        if self.finalized {
            return;
        }
        self.records
            .sort_by_key(|r| (r.client_ts, r.source, r.server_ts));
        let n_sources = self.registry.source_count().max(
            self.records
                .iter()
                .map(|r| r.source.index() + 1)
                .max()
                .unwrap_or(0),
        );
        let mut buckets: Vec<Vec<Millis>> = vec![Vec::new(); n_sources];
        for r in &self.records {
            buckets[r.source.index()].push(r.client_ts);
        }
        self.per_source = buckets.into_iter().map(Timeline::from_sorted).collect();
        self.finalized = true;
    }

    /// Total number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records, sorted by client timestamp. Panics if not finalized.
    pub fn records(&self) -> &[LogRecord] {
        self.assert_finalized();
        &self.records
    }

    /// Records whose client timestamp lies in `range`.
    pub fn range(&self, range: TimeRange) -> &[LogRecord] {
        self.assert_finalized();
        let lo = self.records.partition_point(|r| r.client_ts < range.start);
        let hi = self.records.partition_point(|r| r.client_ts < range.end);
        &self.records[lo..hi]
    }

    /// The sorted timestamp timeline of one source (empty if the source
    /// has no records).
    pub fn timeline(&self, source: SourceId) -> &Timeline {
        self.assert_finalized();
        static EMPTY: Timeline = Timeline::empty();
        self.per_source.get(source.index()).unwrap_or(&EMPTY)
    }

    /// Number of logs of `source` within `range`.
    pub fn count_in_range(&self, source: SourceId, range: TimeRange) -> usize {
        self.timeline(source).count_in(range)
    }

    /// Sources that emitted at least one record, ascending by id.
    pub fn active_sources(&self) -> Vec<SourceId> {
        self.assert_finalized();
        (0..self.per_source.len())
            .filter(|&i| !self.per_source[i].is_empty())
            .map(|i| SourceId(i as u32))
            .collect()
    }

    /// Per-day record counts over the closed day range covered by the
    /// store (Table 1 of the paper).
    pub fn counts_per_day(&self) -> Vec<(i64, usize)> {
        self.assert_finalized();
        let (Some(first_rec), Some(last_rec)) = (self.records.first(), self.records.last()) else {
            return Vec::new();
        };
        let first = first_rec.client_ts.day_index();
        let last = last_rec.client_ts.day_index();
        (first..=last)
            .map(|d| (d, self.range(TimeRange::day(d)).len()))
            .collect()
    }

    /// Merges another store into this one, translating the other
    /// store's interned ids into this registry — the *consolidation*
    /// step of §5 ("collection of logging data from decentralized
    /// storage locations"). Invalidates finalization.
    pub fn merge(&mut self, other: &LogStore) {
        self.finalized = false;
        // Dense translation tables, filled lazily.
        let mut src_map: Vec<Option<SourceId>> = vec![None; other.registry.sources.len()];
        let mut user_map: Vec<Option<crate::registry::UserId>> =
            vec![None; other.registry.users.len()];
        let mut host_map: Vec<Option<crate::registry::HostId>> =
            vec![None; other.registry.hosts.len()];
        for r in &other.records {
            let source = *src_map[r.source.index()]
                .get_or_insert_with(|| self.registry.source(other.registry.source_name(r.source)));
            let user = r.user.map(|u| {
                *user_map[u.index()].get_or_insert_with(|| {
                    self.registry
                        .user(other.registry.users.name(u.0).unwrap_or("<unknown-user>"))
                })
            });
            let host = r.host.map(|h| {
                *host_map[h.index()].get_or_insert_with(|| {
                    self.registry
                        .host(other.registry.hosts.name(h.0).unwrap_or("<unknown-host>"))
                })
            });
            self.records.push(LogRecord {
                source,
                user,
                host,
                ..r.clone()
            });
        }
    }

    fn assert_finalized(&self) {
        assert!(self.finalized, "LogStore: call finalize() before querying");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::LogRecord;

    fn store_with(times: &[(u32, i64)]) -> LogStore {
        let mut s = LogStore::new();
        for &(src, t) in times {
            s.push(LogRecord::minimal(SourceId(src), Millis(t)));
        }
        s.finalize();
        s
    }

    #[test]
    fn finalize_sorts_records() {
        let s = store_with(&[(0, 30), (1, 10), (0, 20)]);
        let ts: Vec<i64> = s.records().iter().map(|r| r.client_ts.0).collect();
        assert_eq!(ts, vec![10, 20, 30]);
    }

    #[test]
    fn range_query_half_open() {
        let s = store_with(&[(0, 10), (0, 20), (0, 30), (0, 40)]);
        let r = s.range(TimeRange::new(Millis(20), Millis(40)));
        let ts: Vec<i64> = r.iter().map(|x| x.client_ts.0).collect();
        assert_eq!(ts, vec![20, 30], "end must be exclusive");
        assert!(s.range(TimeRange::new(Millis(100), Millis(200))).is_empty());
    }

    #[test]
    fn per_source_timelines() {
        let s = store_with(&[(0, 10), (1, 15), (0, 30), (2, 5)]);
        assert_eq!(s.timeline(SourceId(0)).len(), 2);
        assert_eq!(s.timeline(SourceId(1)).len(), 1);
        assert_eq!(s.timeline(SourceId(2)).len(), 1);
        assert_eq!(s.timeline(SourceId(9)).len(), 0, "unknown source is empty");
        assert_eq!(
            s.active_sources(),
            vec![SourceId(0), SourceId(1), SourceId(2)]
        );
    }

    #[test]
    fn count_in_range_uses_timeline() {
        let s = store_with(&[(0, 10), (0, 20), (0, 30)]);
        assert_eq!(
            s.count_in_range(SourceId(0), TimeRange::new(Millis(10), Millis(30))),
            2
        );
    }

    #[test]
    fn counts_per_day_covers_gaps() {
        use crate::time::MS_PER_DAY;
        let s = store_with(&[(0, 0), (0, 1), (0, 2 * MS_PER_DAY + 5)]);
        let days = s.counts_per_day();
        assert_eq!(days, vec![(0, 2), (1, 0), (2, 1)]);
    }

    #[test]
    fn refinalization_after_push() {
        let mut s = store_with(&[(0, 10)]);
        s.push(LogRecord::minimal(SourceId(0), Millis(5)));
        s.finalize();
        assert_eq!(s.records()[0].client_ts, Millis(5));
        assert_eq!(s.timeline(SourceId(0)).len(), 2);
    }

    #[test]
    fn merge_translates_registries() {
        let mut a = LogStore::new();
        let app_x = a.registry.source("X");
        a.push(LogRecord::minimal(app_x, Millis(10)));

        let mut b = LogStore::new();
        let app_y = b.registry.source("Y"); // Y gets id 0 in b...
        let app_x2 = b.registry.source("X"); // ...and X id 1
        let u = b.registry.user("alice");
        let h = b.registry.host("ws-1");
        b.push(
            LogRecord::minimal(app_y, Millis(5))
                .with_user(u)
                .with_host(h),
        );
        b.push(LogRecord::minimal(app_x2, Millis(20)));
        b.finalize();

        a.merge(&b);
        a.finalize();
        assert_eq!(a.len(), 3);
        // X must unify: both X records share one source id in `a`.
        let x = a.registry.find_source("X").expect("X registered");
        assert_eq!(a.timeline(x).len(), 2);
        let y = a.registry.find_source("Y").expect("Y registered");
        assert_eq!(a.timeline(y).len(), 1);
        // User/host names survive the translation.
        let first = &a.records()[0];
        assert_eq!(first.client_ts, Millis(5));
        let uname = a.registry.users.name(first.user.expect("user").0);
        assert_eq!(uname, Some("alice"));
    }

    #[test]
    fn merge_empty_stores() {
        let mut a = LogStore::new();
        let mut b = LogStore::new();
        b.finalize();
        a.merge(&b);
        a.finalize();
        assert!(a.is_empty());
    }

    #[test]
    #[should_panic(expected = "finalize")]
    fn querying_unfinalized_panics() {
        let mut s = LogStore::new();
        s.push(LogRecord::minimal(SourceId(0), Millis(1)));
        let _ = s.records();
    }

    #[test]
    fn empty_store() {
        let mut s = LogStore::new();
        s.finalize();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(s.counts_per_day().is_empty());
        assert!(s.active_sources().is_empty());
    }
}
