//! The in-memory log store.
//!
//! Append records in any order, [`LogStore::finalize`] once, then query.
//! Records are kept sorted by client timestamp (the timestamp the paper's
//! miners use, §4.2) with per-source timestamp indexes built lazily on
//! finalize. All range queries are binary searches returning slices —
//! no copying on the hot mining paths.

use crate::record::LogRecord;
use crate::registry::{NameRegistry, SourceId};
use crate::time::{Millis, TimeRange};
use crate::timeline::Timeline;

/// An in-memory, time-sorted collection of log records plus the name
/// registry they were interned against.
#[derive(Debug, Clone, Default)]
pub struct LogStore {
    records: Vec<LogRecord>,
    /// Per-source sorted client timestamps; built by [`LogStore::finalize`].
    per_source: Vec<Timeline>,
    /// Name registry shared with producers.
    pub registry: NameRegistry,
    finalized: bool,
    /// Set by [`LogStore::merge`]: the next finalize also deduplicates,
    /// making double-ingestion of the same file idempotent.
    pending_dedup: bool,
}

impl LogStore {
    /// Creates an empty store with a fresh registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty store that adopts an existing registry.
    pub fn with_registry(registry: NameRegistry) -> Self {
        Self {
            registry,
            ..Self::default()
        }
    }

    /// Appends one record. Invalidates any previous finalization.
    pub fn push(&mut self, record: LogRecord) {
        self.finalized = false;
        self.records.push(record);
    }

    /// Appends many records.
    pub fn extend(&mut self, records: impl IntoIterator<Item = LogRecord>) {
        self.finalized = false;
        self.records.extend(records);
    }

    /// Sorts by client timestamp and (re)builds the per-source indexes.
    /// Idempotent; must be called before any query. If records arrived
    /// via [`LogStore::merge`], exact duplicates (same client timestamp,
    /// source and message) are removed so that re-consolidating the same
    /// file twice yields the same store as ingesting it once.
    pub fn finalize(&mut self) {
        if self.finalized {
            return;
        }
        self.records
            .sort_by_key(|r| (r.client_ts, r.source, r.server_ts));
        if self.pending_dedup {
            self.dedup_sorted();
            self.pending_dedup = false;
        }
        let n_sources = self.registry.source_count().max(
            self.records
                .iter()
                .map(|r| r.source.index() + 1)
                .max()
                .unwrap_or(0),
        );
        let mut buckets: Vec<Vec<Millis>> = vec![Vec::new(); n_sources];
        for r in &self.records {
            buckets[r.source.index()].push(r.client_ts);
        }
        self.per_source = buckets.into_iter().map(Timeline::from_sorted).collect();
        self.finalized = true;
    }

    /// Finalizes with deduplication forced on (regardless of whether
    /// records arrived via [`LogStore::merge`]) and returns the number
    /// of duplicate records removed. Resilient ingest uses this to
    /// absorb at-least-once delivery from retransmitting shippers.
    pub fn finalize_dedup(&mut self) -> usize {
        let before = self.records.len();
        self.finalized = false;
        self.pending_dedup = true;
        self.finalize();
        before - self.records.len()
    }

    /// Removes exact duplicates — same `(client_ts, source, text)` —
    /// keeping the first occurrence (stable). Requires `records` to be
    /// sorted by `(client_ts, source, server_ts)`: records sharing a
    /// `(client_ts, source)` key form a contiguous run, and runs are
    /// small, so the scan within a run stays cheap.
    fn dedup_sorted(&mut self) {
        let mut out: Vec<LogRecord> = Vec::with_capacity(self.records.len());
        let mut run_start = 0usize;
        for rec in self.records.drain(..) {
            let same_run = out
                .last()
                .is_some_and(|l| (l.client_ts, l.source) == (rec.client_ts, rec.source));
            if !same_run {
                run_start = out.len();
                out.push(rec);
            } else if out
                .get(run_start..)
                .is_some_and(|run| run.iter().any(|r| r.text == rec.text))
            {
                // Exact duplicate within the run: drop it.
            } else {
                out.push(rec);
            }
        }
        self.records = out;
    }

    /// Total number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records, sorted by client timestamp. Panics if not finalized.
    pub fn records(&self) -> &[LogRecord] {
        self.assert_finalized();
        &self.records
    }

    /// Records whose client timestamp lies in `range`.
    pub fn range(&self, range: TimeRange) -> &[LogRecord] {
        self.assert_finalized();
        let lo = self.records.partition_point(|r| r.client_ts < range.start);
        let hi = self.records.partition_point(|r| r.client_ts < range.end);
        &self.records[lo..hi]
    }

    /// The sorted timestamp timeline of one source (empty if the source
    /// has no records).
    pub fn timeline(&self, source: SourceId) -> &Timeline {
        self.assert_finalized();
        static EMPTY: Timeline = Timeline::empty();
        self.per_source.get(source.index()).unwrap_or(&EMPTY)
    }

    /// Number of logs of `source` within `range`.
    pub fn count_in_range(&self, source: SourceId, range: TimeRange) -> usize {
        self.timeline(source).count_in(range)
    }

    /// Sources that emitted at least one record, ascending by id.
    pub fn active_sources(&self) -> Vec<SourceId> {
        self.assert_finalized();
        (0..self.per_source.len())
            .filter(|&i| !self.per_source[i].is_empty())
            .map(|i| SourceId(i as u32))
            .collect()
    }

    /// Per-day record counts over the closed day range covered by the
    /// store (Table 1 of the paper).
    pub fn counts_per_day(&self) -> Vec<(i64, usize)> {
        self.assert_finalized();
        let (Some(first_rec), Some(last_rec)) = (self.records.first(), self.records.last()) else {
            return Vec::new();
        };
        let first = first_rec.client_ts.day_index();
        let last = last_rec.client_ts.day_index();
        (first..=last)
            .map(|d| (d, self.range(TimeRange::day(d)).len()))
            .collect()
    }

    /// Merges another store into this one, translating the other
    /// store's interned ids into this registry — the *consolidation*
    /// step of §5 ("collection of logging data from decentralized
    /// storage locations"). Invalidates finalization; the next
    /// [`LogStore::finalize`] removes exact duplicates so merging the
    /// same stream twice is idempotent.
    pub fn merge(&mut self, other: &LogStore) {
        self.finalized = false;
        self.pending_dedup = true;
        // Dense translation tables, filled lazily.
        let mut src_map: Vec<Option<SourceId>> = vec![None; other.registry.sources.len()];
        let mut user_map: Vec<Option<crate::registry::UserId>> =
            vec![None; other.registry.users.len()];
        let mut host_map: Vec<Option<crate::registry::HostId>> =
            vec![None; other.registry.hosts.len()];
        for r in &other.records {
            let source = *src_map[r.source.index()]
                .get_or_insert_with(|| self.registry.source(other.registry.source_name(r.source)));
            let user = r.user.map(|u| {
                *user_map[u.index()].get_or_insert_with(|| {
                    self.registry
                        .user(other.registry.users.name(u.0).unwrap_or("<unknown-user>"))
                })
            });
            let host = r.host.map(|h| {
                *host_map[h.index()].get_or_insert_with(|| {
                    self.registry
                        .host(other.registry.hosts.name(h.0).unwrap_or("<unknown-host>"))
                })
            });
            self.records.push(LogRecord {
                source,
                user,
                host,
                ..r.clone()
            });
        }
    }

    fn assert_finalized(&self) {
        assert!(self.finalized, "LogStore: call finalize() before querying");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::LogRecord;

    fn store_with(times: &[(u32, i64)]) -> LogStore {
        let mut s = LogStore::new();
        for &(src, t) in times {
            s.push(LogRecord::minimal(SourceId(src), Millis(t)));
        }
        s.finalize();
        s
    }

    #[test]
    fn finalize_sorts_records() {
        let s = store_with(&[(0, 30), (1, 10), (0, 20)]);
        let ts: Vec<i64> = s.records().iter().map(|r| r.client_ts.0).collect();
        assert_eq!(ts, vec![10, 20, 30]);
    }

    #[test]
    fn range_query_half_open() {
        let s = store_with(&[(0, 10), (0, 20), (0, 30), (0, 40)]);
        let r = s.range(TimeRange::new(Millis(20), Millis(40)));
        let ts: Vec<i64> = r.iter().map(|x| x.client_ts.0).collect();
        assert_eq!(ts, vec![20, 30], "end must be exclusive");
        assert!(s.range(TimeRange::new(Millis(100), Millis(200))).is_empty());
    }

    #[test]
    fn per_source_timelines() {
        let s = store_with(&[(0, 10), (1, 15), (0, 30), (2, 5)]);
        assert_eq!(s.timeline(SourceId(0)).len(), 2);
        assert_eq!(s.timeline(SourceId(1)).len(), 1);
        assert_eq!(s.timeline(SourceId(2)).len(), 1);
        assert_eq!(s.timeline(SourceId(9)).len(), 0, "unknown source is empty");
        assert_eq!(
            s.active_sources(),
            vec![SourceId(0), SourceId(1), SourceId(2)]
        );
    }

    #[test]
    fn count_in_range_uses_timeline() {
        let s = store_with(&[(0, 10), (0, 20), (0, 30)]);
        assert_eq!(
            s.count_in_range(SourceId(0), TimeRange::new(Millis(10), Millis(30))),
            2
        );
    }

    #[test]
    fn counts_per_day_covers_gaps() {
        use crate::time::MS_PER_DAY;
        let s = store_with(&[(0, 0), (0, 1), (0, 2 * MS_PER_DAY + 5)]);
        let days = s.counts_per_day();
        assert_eq!(days, vec![(0, 2), (1, 0), (2, 1)]);
    }

    #[test]
    fn refinalization_after_push() {
        let mut s = store_with(&[(0, 10)]);
        s.push(LogRecord::minimal(SourceId(0), Millis(5)));
        s.finalize();
        assert_eq!(s.records()[0].client_ts, Millis(5));
        assert_eq!(s.timeline(SourceId(0)).len(), 2);
    }

    #[test]
    fn merge_translates_registries() {
        let mut a = LogStore::new();
        let app_x = a.registry.source("X");
        a.push(LogRecord::minimal(app_x, Millis(10)));

        let mut b = LogStore::new();
        let app_y = b.registry.source("Y"); // Y gets id 0 in b...
        let app_x2 = b.registry.source("X"); // ...and X id 1
        let u = b.registry.user("alice");
        let h = b.registry.host("ws-1");
        b.push(
            LogRecord::minimal(app_y, Millis(5))
                .with_user(u)
                .with_host(h),
        );
        b.push(LogRecord::minimal(app_x2, Millis(20)));
        b.finalize();

        a.merge(&b);
        a.finalize();
        assert_eq!(a.len(), 3);
        // X must unify: both X records share one source id in `a`.
        let x = a.registry.find_source("X").expect("X registered");
        assert_eq!(a.timeline(x).len(), 2);
        let y = a.registry.find_source("Y").expect("Y registered");
        assert_eq!(a.timeline(y).len(), 1);
        // User/host names survive the translation.
        let first = &a.records()[0];
        assert_eq!(first.client_ts, Millis(5));
        let uname = a.registry.users.name(first.user.expect("user").0);
        assert_eq!(uname, Some("alice"));
    }

    #[test]
    fn double_merge_of_same_store_is_idempotent() {
        let mut src = LogStore::new();
        let app = src.registry.source("App");
        for t in [10, 20, 20, 30] {
            src.push(LogRecord::minimal(app, Millis(t)).with_text(format!("msg@{t}")));
        }
        // Two records genuinely share t=20 but differ in text: keep both.
        src.push(LogRecord::minimal(app, Millis(20)).with_text("other@20"));
        src.finalize();

        let mut once = LogStore::new();
        once.merge(&src);
        once.finalize();

        let mut twice = LogStore::new();
        twice.merge(&src);
        twice.merge(&src); // same file consolidated twice
        twice.finalize();

        assert_eq!(once.len(), twice.len(), "double ingest must not inflate");
        for (a, b) in once.records().iter().zip(twice.records()) {
            assert_eq!(
                (a.client_ts, a.source, &a.text),
                (b.client_ts, b.source, &b.text)
            );
        }
        // Distinct same-timestamp texts survive; msg@20 repeated in the
        // source collapses to one copy per distinct text.
        let texts: Vec<&str> = once
            .records()
            .iter()
            .filter(|r| r.client_ts == Millis(20))
            .map(|r| r.text.as_str())
            .collect();
        assert_eq!(texts, vec!["msg@20", "other@20"]);
    }

    #[test]
    fn plain_push_finalize_keeps_duplicates() {
        // Without merge, identical records are preserved: dedup is a
        // consolidation-time policy, not a storage invariant.
        let mut s = LogStore::new();
        let app = s.registry.source("App");
        s.push(LogRecord::minimal(app, Millis(5)).with_text("same"));
        s.push(LogRecord::minimal(app, Millis(5)).with_text("same"));
        s.finalize();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn finalize_dedup_reports_removed_count() {
        let mut s = LogStore::new();
        let app = s.registry.source("App");
        for _ in 0..3 {
            s.push(LogRecord::minimal(app, Millis(7)).with_text("dup"));
        }
        s.push(LogRecord::minimal(app, Millis(8)).with_text("unique"));
        assert_eq!(s.finalize_dedup(), 2);
        assert_eq!(s.len(), 2);
        // Idempotent: a second pass removes nothing.
        assert_eq!(s.finalize_dedup(), 0);
    }

    #[test]
    fn merge_empty_stores() {
        let mut a = LogStore::new();
        let mut b = LogStore::new();
        b.finalize();
        a.merge(&b);
        a.finalize();
        assert!(a.is_empty());
    }

    #[test]
    #[should_panic(expected = "finalize")]
    fn querying_unfinalized_panics() {
        let mut s = LogStore::new();
        s.push(LogRecord::minimal(SourceId(0), Millis(1)));
        let _ = s.records();
    }

    #[test]
    fn empty_store() {
        let mut s = LogStore::new();
        s.finalize();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(s.counts_per_day().is_empty());
        assert!(s.active_sources().is_empty());
    }
}
