//! A from-scratch Aho–Corasick automaton.
//!
//! Byte-level trie with BFS-computed failure and output links. Matching a
//! message is a single left-to-right pass regardless of how many
//! directory identifiers are registered, which is what keeps technique
//! L3 linear in the number of logs (§5 of the paper).

/// How matches are validated against their surrounding context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatchMode {
    /// Any substring occurrence counts.
    Substring,
    /// The occurrence must not be flanked by alphanumeric (or `_`)
    /// characters, so identifiers only match as whole tokens. This is
    /// the right mode for service-directory ids: without it, a citation
    /// of `UPSRV2` would also fire the pattern `UPSRV`.
    #[default]
    WholeWord,
}

/// One pattern occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Match {
    /// Index of the pattern (in insertion order) that matched.
    pub pattern: usize,
    /// Byte offset of the first matched byte.
    pub start: usize,
    /// Byte offset one past the last matched byte.
    pub end: usize,
}

/// Builder for a [`Matcher`].
#[derive(Debug, Clone)]
pub struct MatcherBuilder {
    patterns: Vec<Vec<u8>>,
    case_insensitive: bool,
    mode: MatchMode,
}

impl Default for MatcherBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl MatcherBuilder {
    /// Creates a builder with default settings: case-insensitive,
    /// whole-word matching (the right defaults for directory ids cited
    /// in hand-written log lines).
    pub fn new() -> Self {
        Self {
            patterns: Vec::new(),
            case_insensitive: true,
            mode: MatchMode::WholeWord,
        }
    }

    /// Adds a pattern; returns its index.
    ///
    /// Empty patterns are rejected with `None`.
    pub fn add(&mut self, pattern: &str) -> Option<usize> {
        if pattern.is_empty() {
            return None;
        }
        let bytes = if self.case_insensitive {
            pattern.bytes().map(|b| b.to_ascii_lowercase()).collect()
        } else {
            pattern.bytes().collect()
        };
        self.patterns.push(bytes);
        Some(self.patterns.len() - 1)
    }

    /// Adds many patterns, ignoring empties.
    pub fn add_all<'a>(&mut self, patterns: impl IntoIterator<Item = &'a str>) -> &mut Self {
        for p in patterns {
            self.add(p);
        }
        self
    }

    /// Sets ASCII case folding (default: on).
    pub fn case_insensitive(&mut self, yes: bool) -> &mut Self {
        assert!(
            self.patterns.is_empty(),
            "set case_insensitive before adding patterns"
        );
        self.case_insensitive = yes;
        self
    }

    /// Sets the match validation mode (default: whole-word).
    pub fn mode(&mut self, mode: MatchMode) -> &mut Self {
        self.mode = mode;
        self
    }

    /// Builds the automaton.
    pub fn build(&self) -> Matcher {
        let mut m = Matcher {
            nodes: vec![Node::default()],
            case_insensitive: self.case_insensitive,
            mode: self.mode,
            pattern_count: self.patterns.len(),
            pattern_lens: self.patterns.iter().map(Vec::len).collect(),
        };
        for (id, pat) in self.patterns.iter().enumerate() {
            m.insert(pat, id);
        }
        m.build_links();
        m
    }
}

/// A trie node. Children are a sparse byte → node map; 256-wide dense
/// tables would be faster but the pattern sets here (tens of directory
/// ids) don't justify the memory.
#[derive(Debug, Clone, Default)]
struct Node {
    children: Vec<(u8, u32)>,
    fail: u32,
    /// Patterns ending exactly at this node.
    output: Vec<u32>,
    /// Next node in the output-link chain (dict suffix), 0 = none.
    dict_link: u32,
}

impl Node {
    fn child(&self, b: u8) -> Option<u32> {
        self.children
            .iter()
            .find_map(|&(cb, n)| (cb == b).then_some(n))
    }
}

/// The compiled multi-pattern automaton.
#[derive(Debug, Clone)]
pub struct Matcher {
    nodes: Vec<Node>,
    case_insensitive: bool,
    mode: MatchMode,
    pattern_count: usize,
    pattern_lens: Vec<usize>,
}

impl Matcher {
    /// Number of registered patterns.
    pub fn pattern_count(&self) -> usize {
        self.pattern_count
    }

    fn insert(&mut self, pattern: &[u8], id: usize) {
        let mut cur = 0u32;
        for &b in pattern {
            cur = match self.nodes[cur as usize].child(b) {
                Some(next) => next,
                None => {
                    let next = self.nodes.len() as u32;
                    self.nodes.push(Node::default());
                    self.nodes[cur as usize].children.push((b, next));
                    next
                }
            };
        }
        self.nodes[cur as usize].output.push(id as u32);
    }

    /// BFS over the trie computing failure and dictionary links.
    fn build_links(&mut self) {
        let mut queue = std::collections::VecDeque::new();
        // Depth-1 nodes fail to the root.
        let root_children: Vec<(u8, u32)> = self.nodes[0].children.clone();
        for (_, n) in root_children {
            self.nodes[n as usize].fail = 0;
            queue.push_back(n);
        }
        while let Some(cur) = queue.pop_front() {
            let children: Vec<(u8, u32)> = self.nodes[cur as usize].children.clone();
            for (b, child) in children {
                // Follow failure links of `cur` until a node with a
                // matching child (or the root).
                let mut f = self.nodes[cur as usize].fail;
                let fail_target = loop {
                    if let Some(t) = self.nodes[f as usize].child(b) {
                        break t;
                    }
                    if f == 0 {
                        break 0;
                    }
                    f = self.nodes[f as usize].fail;
                };
                let fail_target = if fail_target == child { 0 } else { fail_target };
                self.nodes[child as usize].fail = fail_target;
                // Dictionary link: nearest suffix node with output.
                self.nodes[child as usize].dict_link =
                    if !self.nodes[fail_target as usize].output.is_empty() {
                        fail_target
                    } else {
                        self.nodes[fail_target as usize].dict_link
                    };
                queue.push_back(child);
            }
        }
    }

    fn step(&self, mut state: u32, b: u8) -> u32 {
        loop {
            if let Some(next) = self.nodes[state as usize].child(b) {
                return next;
            }
            if state == 0 {
                return 0;
            }
            state = self.nodes[state as usize].fail;
        }
    }

    fn boundary_ok(&self, text: &[u8], start: usize, end: usize) -> bool {
        match self.mode {
            MatchMode::Substring => true,
            MatchMode::WholeWord => {
                let is_word = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
                let left_ok = start == 0 || !is_word(text[start - 1]);
                let right_ok = end == text.len() || !is_word(text[end]);
                left_ok && right_ok
            }
        }
    }

    /// Finds all pattern occurrences in `text`, in end-position order.
    pub fn find_all(&self, text: &str) -> Vec<Match> {
        let bytes = text.as_bytes();
        let mut out = Vec::new();
        let mut state = 0u32;
        for (i, &raw) in bytes.iter().enumerate() {
            let b = if self.case_insensitive {
                raw.to_ascii_lowercase()
            } else {
                raw
            };
            state = self.step(state, b);
            // Emit outputs at this node and along the dict chain.
            let mut node = state;
            while node != 0 {
                for &pid in &self.nodes[node as usize].output {
                    let len = self.pattern_lens[pid as usize];
                    let start = i + 1 - len;
                    if self.boundary_ok(bytes, start, i + 1) {
                        out.push(Match {
                            pattern: pid as usize,
                            start,
                            end: i + 1,
                        });
                    }
                }
                node = self.nodes[node as usize].dict_link;
            }
        }
        out
    }

    /// Distinct pattern ids occurring in `text`, ascending.
    pub fn matched_ids(&self, text: &str) -> Vec<usize> {
        let mut ids: Vec<usize> = self.find_all(text).iter().map(|m| m.pattern).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// True when at least one pattern occurs in `text`.
    pub fn contains_any(&self, text: &str) -> bool {
        !self.find_all(text).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matcher(patterns: &[&str], mode: MatchMode) -> Matcher {
        let mut b = MatcherBuilder::new();
        b.mode(mode).add_all(patterns.iter().copied());
        b.build()
    }

    #[test]
    fn single_pattern_all_occurrences() {
        let m = matcher(&["abc"], MatchMode::Substring);
        let hits = m.find_all("abcXabcabc");
        assert_eq!(hits.len(), 3);
        assert_eq!(
            hits[0],
            Match {
                pattern: 0,
                start: 0,
                end: 3
            }
        );
        assert_eq!(
            hits[2],
            Match {
                pattern: 0,
                start: 7,
                end: 10
            }
        );
    }

    #[test]
    fn overlapping_patterns_all_reported() {
        let m = matcher(&["he", "she", "his", "hers"], MatchMode::Substring);
        let hits = m.find_all("ushers");
        // Classic example: "she" at 1..4, "he" at 2..4, "hers" at 2..6.
        let got: Vec<(usize, usize, usize)> =
            hits.iter().map(|h| (h.pattern, h.start, h.end)).collect();
        assert!(got.contains(&(1, 1, 4)), "she: {got:?}");
        assert!(got.contains(&(0, 2, 4)), "he: {got:?}");
        assert!(got.contains(&(3, 2, 6)), "hers: {got:?}");
        assert_eq!(hits.len(), 3);
    }

    #[test]
    fn case_insensitive_by_default() {
        let mut b = MatcherBuilder::new();
        b.add("DPINotification");
        let m = b.build();
        assert!(m.contains_any("invoke dpinotification now"));
        assert!(m.contains_any("(DPINOTIFICATION) notify( $p )"));
    }

    #[test]
    fn case_sensitive_mode() {
        let mut b = MatcherBuilder::new();
        b.case_insensitive(false);
        b.mode(MatchMode::Substring);
        b.add("ABC");
        let m = b.build();
        assert!(m.contains_any("xxABCxx"));
        assert!(!m.contains_any("xxabcxx"));
    }

    #[test]
    fn whole_word_blocks_id_prefix_hits() {
        // The paper's renamed-service trap: UPSRV must not fire inside
        // UPSRV2, but UPSRV2 must fire.
        let m = matcher(&["UPSRV", "UPSRV2"], MatchMode::WholeWord);
        let ids = m.matched_ids("call (UPSRV2) update()");
        assert_eq!(ids, vec![1]);
        let ids = m.matched_ids("call (UPSRV) update()");
        assert_eq!(ids, vec![0]);
    }

    #[test]
    fn whole_word_boundaries() {
        let m = matcher(&["notify"], MatchMode::WholeWord);
        assert!(m.contains_any("will notify user"));
        assert!(m.contains_any("notify"));
        assert!(m.contains_any("[notify]"));
        assert!(m.contains_any("fct=notify,server=x"));
        assert!(!m.contains_any("notifyAll"));
        assert!(!m.contains_any("renotify"));
        assert!(!m.contains_any("notify_user"));
    }

    #[test]
    fn matched_ids_dedups() {
        let m = matcher(&["a b", "x"], MatchMode::Substring);
        assert_eq!(m.matched_ids("a b a b x x"), vec![0, 1]);
        assert!(m.matched_ids("nothing here... almost").is_empty());
    }

    #[test]
    fn empty_pattern_rejected() {
        let mut b = MatcherBuilder::new();
        assert_eq!(b.add(""), None);
        assert_eq!(b.add("ok"), Some(0));
        assert_eq!(b.build().pattern_count(), 1);
    }

    #[test]
    fn empty_text_and_no_patterns() {
        let m = matcher(&[], MatchMode::WholeWord);
        assert!(!m.contains_any("anything"));
        let m = matcher(&["x"], MatchMode::WholeWord);
        assert!(!m.contains_any(""));
    }

    #[test]
    fn pattern_equal_to_whole_text() {
        let m = matcher(&["exact"], MatchMode::WholeWord);
        let hits = m.find_all("exact");
        assert_eq!(
            hits,
            vec![Match {
                pattern: 0,
                start: 0,
                end: 5
            }]
        );
    }

    #[test]
    fn one_pattern_suffix_of_another() {
        let m = matcher(&["notification", "cation"], MatchMode::Substring);
        let hits = m.find_all("notification");
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn realistic_directory_scan() {
        let ids = [
            "DPINOTIFICATION",
            "DPIPUBLICATION",
            "DPIFORMIDOC",
            "LABRESULTS",
            "UPSRV",
            "UPSRV2",
        ];
        let m = matcher(&ids, MatchMode::WholeWord);
        let text = "Invoke externalService [fct [notify] server \
                    [myserver.hcuge.ch:9999/dpinotification]] ok";
        assert_eq!(m.matched_ids(text), vec![0]);
        let text = "(DPIPUBLICATION) publish(doc) via LABRESULTS gateway";
        assert_eq!(m.matched_ids(text), vec![1, 3]);
    }

    #[test]
    fn non_ascii_text_is_safe() {
        let m = matcher(&["café"], MatchMode::Substring);
        assert!(m.contains_any("au café noir"));
        let m = matcher(&["abc"], MatchMode::WholeWord);
        // Multi-byte char adjacent to the match is a non-word boundary.
        assert!(m.contains_any("é abc é"));
    }
}
