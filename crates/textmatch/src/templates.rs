//! SLCT-style log message clustering.
//!
//! §2.2 of the paper surveys message-classification work (Vaarandi's
//! SLCT, Teiresias) and §5 suggests "classifying log messages of a
//! given application in a preprocessing step" to sharpen the mining.
//! This module implements the core of Vaarandi's Simple Logfile
//! Clustering Tool: find frequent `(position, word)` pairs, then form
//! cluster candidates from each line's frequent words, keeping
//! candidates with enough support. Infrequent positions become `*`
//! wildcards.
//!
//! The output doubles as a *template miner*: run it over an
//! application's messages and the stable invocation formats (the
//! shapes stop patterns are written against) fall out.

use std::collections::HashMap;

/// One discovered message template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Template {
    /// Tokens of the template; `None` is a wildcard position.
    pub tokens: Vec<Option<String>>,
    /// Number of input lines supporting this template.
    pub support: usize,
}

impl Template {
    /// Renders the template with `*` wildcards.
    pub fn render(&self) -> String {
        self.tokens
            .iter()
            .map(|t| t.as_deref().unwrap_or("*"))
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// True when `line` is an instance of this template (same word
    /// count, fixed positions equal).
    pub fn matches(&self, line: &str) -> bool {
        let words: Vec<&str> = line.split_whitespace().collect();
        if words.len() != self.tokens.len() {
            return false;
        }
        self.tokens
            .iter()
            .zip(&words)
            .all(|(t, w)| t.as_deref().is_none_or(|fixed| fixed == *w))
    }
}

/// Parameters of the clustering pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterConfig {
    /// Minimum occurrences for a `(position, word)` pair to be frequent.
    pub word_support: usize,
    /// Minimum lines matching a candidate for it to become a template.
    pub cluster_support: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            word_support: 10,
            cluster_support: 10,
        }
    }
}

/// Clusters `lines` into templates; returns templates sorted by
/// descending support, plus the count of outlier lines that joined no
/// cluster.
pub fn cluster<'a>(
    lines: impl IntoIterator<Item = &'a str> + Clone,
    cfg: &ClusterConfig,
) -> (Vec<Template>, usize) {
    // Pass 1: frequent (position, word) pairs.
    let mut word_counts: HashMap<(usize, &str), usize> = HashMap::new();
    for line in lines.clone() {
        for (pos, word) in line.split_whitespace().enumerate() {
            *word_counts.entry((pos, word)).or_insert(0) += 1;
        }
    }

    // Pass 2: per line, build the candidate (frequent words fixed,
    // infrequent positions wildcarded) and count identical candidates.
    let mut candidates: HashMap<Vec<Option<&str>>, usize> = HashMap::new();
    for line in lines.clone() {
        let words: Vec<&str> = line.split_whitespace().collect();
        if words.is_empty() {
            continue;
        }
        let candidate: Vec<Option<&str>> = words
            .iter()
            .enumerate()
            .map(|(pos, &w)| {
                (word_counts.get(&(pos, w)).copied().unwrap_or(0) >= cfg.word_support).then_some(w)
            })
            .collect();
        *candidates.entry(candidate).or_insert(0) += 1;
    }

    // Pass 3: keep supported candidates; everything else is outliers.
    let mut templates: Vec<Template> = Vec::new();
    let mut outliers = 0usize;
    for (tokens, support) in candidates {
        // A template with no fixed token is vacuous; its lines are
        // outliers too.
        if support >= cfg.cluster_support && tokens.iter().any(Option::is_some) {
            templates.push(Template {
                tokens: tokens.into_iter().map(|t| t.map(str::to_owned)).collect(),
                support,
            });
        } else {
            outliers += support;
        }
    }
    templates.sort_by(|a, b| b.support.cmp(&a.support).then(a.tokens.cmp(&b.tokens)));
    (templates, outliers)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines_vec(templates: &[(&str, usize)]) -> Vec<String> {
        let mut v = Vec::new();
        for (i, &(t, n)) in templates.iter().enumerate() {
            for k in 0..n {
                v.push(t.replace("<N>", &format!("{}", i * 1000 + k)));
            }
        }
        v
    }

    #[test]
    fn recovers_two_templates_with_wildcards() {
        let lines = lines_vec(&[("heartbeat ok seq=<N>", 40), ("queue depth <N>", 30)]);
        let cfg = ClusterConfig {
            word_support: 10,
            cluster_support: 10,
        };
        let (templates, outliers) = cluster(lines.iter().map(String::as_str), &cfg);
        assert_eq!(templates.len(), 2, "{templates:?}");
        assert_eq!(outliers, 0);
        assert_eq!(templates[0].render(), "heartbeat ok *");
        assert_eq!(templates[0].support, 40);
        assert_eq!(templates[1].render(), "queue depth *");
    }

    #[test]
    fn rare_messages_become_outliers() {
        let mut lines = lines_vec(&[("cache purge completed", 50)]);
        lines.push("totally unique crash message xyz".to_owned());
        let (templates, outliers) =
            cluster(lines.iter().map(String::as_str), &ClusterConfig::default());
        assert_eq!(templates.len(), 1);
        assert_eq!(outliers, 1);
    }

    #[test]
    fn template_matching() {
        let lines = lines_vec(&[("call returned rc=0 in <N> ms", 20)]);
        let (templates, _) = cluster(lines.iter().map(String::as_str), &ClusterConfig::default());
        let t = &templates[0];
        assert!(t.matches("call returned rc=0 in 42 ms"));
        assert!(!t.matches("call returned rc=0 in 42 seconds"));
        assert!(!t.matches("call returned rc=0 in ms"));
        assert_eq!(t.render(), "call returned rc=0 in * ms");
    }

    #[test]
    fn shared_prefix_templates_stay_distinct() {
        let lines = lines_vec(&[
            ("user action: open tab <N>", 25),
            ("user action: save form", 25),
        ]);
        let (templates, _) = cluster(lines.iter().map(String::as_str), &ClusterConfig::default());
        assert_eq!(templates.len(), 2);
        let rendered: Vec<String> = templates.iter().map(Template::render).collect();
        assert!(rendered.contains(&"user action: open tab *".to_owned()));
        assert!(rendered.contains(&"user action: save form".to_owned()));
    }

    #[test]
    fn all_unique_lines_are_all_outliers() {
        let lines: Vec<String> = (0..30)
            .map(|i| format!("msg{i} alpha{i} beta{i}"))
            .collect();
        let (templates, outliers) =
            cluster(lines.iter().map(String::as_str), &ClusterConfig::default());
        assert!(templates.is_empty());
        assert_eq!(outliers, 30);
    }

    #[test]
    fn empty_input() {
        let (templates, outliers) = cluster([], &ClusterConfig::default());
        assert!(templates.is_empty());
        assert_eq!(outliers, 0);
    }

    #[test]
    fn supports_sorted_descending() {
        let lines = lines_vec(&[("small cluster item <N>", 12), ("big cluster item <N>", 60)]);
        let (templates, _) = cluster(lines.iter().map(String::as_str), &ClusterConfig::default());
        assert!(templates[0].support >= templates[1].support);
        assert_eq!(templates[0].support, 60);
    }
}
