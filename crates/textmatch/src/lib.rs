//! Multi-pattern text scanning for free-text log analysis.
//!
//! Technique L3 of Steinle et al. (VLDB 2006) scans the unstructured part
//! of every log message for *citations of service-directory entries* —
//! identifiers like `DPINOTIFICATION` — and suppresses server-side logs
//! with *stop patterns*. This crate supplies both primitives, built from
//! scratch:
//!
//! * [`aho`] — an Aho–Corasick automaton matching thousands of directory
//!   identifiers against millions of messages in a single pass per
//!   message, with optional ASCII case folding and whole-word filtering
//!   (so `UPSRV` does not fire inside `UPSRV2`);
//! * [`stop`] — `*`/`?` glob stop patterns applied to the whole message;
//! * [`templates`] — SLCT-style message clustering (Vaarandi), the
//!   preprocessing step §5 of the paper suggests for sharpening the
//!   miners and for discovering stop-pattern shapes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aho;
pub mod stop;
pub mod templates;

pub use aho::{Match, MatchMode, Matcher, MatcherBuilder};
pub use stop::StopPatterns;
pub use templates::{cluster, ClusterConfig, Template};
