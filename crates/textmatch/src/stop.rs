//! Stop patterns: glob filters that suppress misleading logs.
//!
//! §3.3 of the paper: a call from client `C` to server `S` is often
//! logged *by both sides*; the server-side log cites the service group it
//! itself belongs to, which — read naively — inverts the dependency
//! direction. Stop patterns describe those server-side log shapes; any
//! log matching one is ignored by technique L3. The paper uses 10 stop
//! patterns and reports that without them, inverted dependencies rise
//! from 2 to 24 (§4.8).
//!
//! Patterns are globs over the whole message: `*` matches any byte
//! sequence (including empty), `?` any single byte. Matching is ASCII
//! case-insensitive, consistent with the citation matcher.

/// A compiled set of stop patterns.
#[derive(Debug, Clone, Default)]
pub struct StopPatterns {
    patterns: Vec<String>,
}

impl StopPatterns {
    /// Creates an empty set (nothing is stopped).
    pub fn none() -> Self {
        Self::default()
    }

    /// Compiles a set of glob patterns.
    pub fn new<S: AsRef<str>>(patterns: impl IntoIterator<Item = S>) -> Self {
        Self {
            patterns: patterns
                .into_iter()
                .map(|p| p.as_ref().to_ascii_lowercase())
                .collect(),
        }
    }

    /// Adds one more pattern.
    pub fn add(&mut self, pattern: &str) {
        self.patterns.push(pattern.to_ascii_lowercase());
    }

    /// Number of patterns in the set.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// True when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// True when `text` matches at least one stop pattern (the log
    /// should then be ignored by the citation scan).
    pub fn matches(&self, text: &str) -> bool {
        let lower = text.to_ascii_lowercase();
        self.patterns.iter().any(|p| glob_match(p, &lower))
    }
}

/// Iterative glob matcher with `*` backtracking — O(|text|·|pattern|)
/// worst case, linear in practice. Both inputs must already be lowercase.
fn glob_match(pattern: &str, text: &str) -> bool {
    let p = pattern.as_bytes();
    let t = text.as_bytes();
    let (mut pi, mut ti) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None; // (pattern pos after *, text pos)
    while ti < t.len() {
        // The wildcard test must precede the literal test: a text byte
        // that happens to *be* `*` must not consume a pattern `*`.
        if pi < p.len() && p[pi] == b'*' {
            star = Some((pi + 1, ti));
            pi += 1;
        } else if pi < p.len() && (p[pi] == b'?' || p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if let Some((sp, st)) = star {
            // Backtrack: let the last * absorb one more byte.
            pi = sp;
            ti = st + 1;
            star = Some((sp, st + 1));
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == b'*' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_patterns() {
        let s = StopPatterns::new(["exact message"]);
        assert!(s.matches("exact message"));
        assert!(s.matches("EXACT Message"), "case-insensitive");
        assert!(!s.matches("exact message!"), "whole-text match");
        assert!(!s.matches("prefix exact message"));
    }

    #[test]
    fn star_wildcards() {
        let s = StopPatterns::new(["received call*", "*session opened by*"]);
        assert!(s.matches("Received call from client 10.0.0.3"));
        assert!(s.matches("received call"));
        assert!(s.matches("[srv] session opened by alice at 9:00"));
        assert!(!s.matches("calling out"));
    }

    #[test]
    fn question_mark_single_byte() {
        let s = StopPatterns::new(["worker-? started"]);
        assert!(s.matches("worker-3 started"));
        assert!(!s.matches("worker-42 started"));
        assert!(!s.matches("worker- started"));
    }

    #[test]
    fn multiple_stars_backtrack() {
        let s = StopPatterns::new(["*incoming*request*"]);
        assert!(s.matches("2005-12-06 incoming SOAP request id=7"));
        assert!(s.matches("incomingrequest"));
        assert!(!s.matches("request incoming")); // order matters
    }

    #[test]
    fn pathological_star_runs_terminate() {
        let s = StopPatterns::new(["*a*a*a*a*a*a*a*a*b"]);
        let text = "a".repeat(200);
        assert!(!s.matches(&text));
        let good = format!("{}b", "a".repeat(200));
        assert!(s.matches(&good));
    }

    #[test]
    fn empty_pattern_and_empty_text() {
        let s = StopPatterns::new([""]);
        assert!(s.matches(""));
        assert!(!s.matches("x"));
        let star = StopPatterns::new(["*"]);
        assert!(star.matches(""));
        assert!(star.matches("anything at all"));
    }

    #[test]
    fn empty_set_stops_nothing() {
        let s = StopPatterns::none();
        assert!(s.is_empty());
        assert!(!s.matches("served request for DPINOTIFICATION"));
    }

    #[test]
    fn add_and_len() {
        let mut s = StopPatterns::none();
        s.add("Serving *");
        s.add("*handled locally");
        assert_eq!(s.len(), 2);
        assert!(s.matches("serving /notify for client 7"));
        assert!(s.matches("req #88 handled locally"));
    }

    #[test]
    fn realistic_server_side_patterns() {
        // The shapes the HUG-style simulator emits for callee-side logs.
        let s = StopPatterns::new([
            "serving request*",
            "*incoming invocation*",
            "*request received from*",
        ]);
        assert!(s.matches("Serving request [fct [notify] group [DPINOTIFICATION]] for DPIFormidoc"));
        assert!(s.matches("trace: incoming invocation of publish()"));
        assert!(!s.matches("Invoke externalService [fct [notify] server [myserver.hcuge.ch]]"));
    }
}
