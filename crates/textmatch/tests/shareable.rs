//! Compile-time proof that the scan substrates can be shared read-only
//! across `logdep-par` workers.
//!
//! L3 builds one Aho–Corasick [`Matcher`] and one [`StopPatterns`] set
//! per run and hands `&`-references to every pool worker. That is only
//! sound because neither type has interior mutability — which these
//! assertions pin down at compile time: if a future change adds a
//! `Cell`/`RefCell`-style cache, this test stops compiling instead of
//! the scan becoming a data race hazard.

use logdep_textmatch::{Matcher, MatcherBuilder, StopPatterns};

fn assert_send_sync<T: Send + Sync>(_: &T) {}

#[test]
fn matcher_and_stop_patterns_are_send_and_sync() {
    let mut builder = MatcherBuilder::new();
    builder.add_all(["SVCA", "SVCB"]);
    let matcher: Matcher = builder.build();
    assert_send_sync(&matcher);

    let stops = StopPatterns::new(["serving request*"]);
    assert_send_sync(&stops);

    // And shared references themselves cross the scope boundary.
    logdep_par::scope(|s| {
        let h = s.spawn(|| matcher.matched_ids("calling SVCA").len());
        assert_eq!(h.join().unwrap_or(0), 1);
    });
}
