//! Property-based tests of the text-matching substrate.

use logdep_textmatch::{MatchMode, MatcherBuilder, StopPatterns};
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    "[A-Z][A-Z0-9]{2,12}".prop_map(|s| s)
}

proptest! {
    #[test]
    fn matcher_finds_planted_pattern(
        pat in ident(),
        // Whole-word matching (the default) needs non-word flanks.
        prefix in "[ ()\\[\\]{}.,;:!?-]{0,40}",
        suffix in "[ ()\\[\\]{}.,;:!?-]{0,40}",
    ) {
        let mut b = MatcherBuilder::new();
        b.add(&pat);
        let m = b.build();
        let text = format!("{prefix}{pat}{suffix}");
        prop_assert!(m.contains_any(&text), "pattern {pat:?} not found in {text:?}");
    }

    #[test]
    fn substring_mode_is_superset_of_whole_word(
        pats in prop::collection::vec(ident(), 1..6),
        text in "[A-Za-z0-9 ()\\[\\]/._-]{0,120}",
    ) {
        let mut bs = MatcherBuilder::new();
        bs.mode(MatchMode::Substring).add_all(pats.iter().map(String::as_str));
        let mut bw = MatcherBuilder::new();
        bw.mode(MatchMode::WholeWord).add_all(pats.iter().map(String::as_str));
        let sub = bs.build().matched_ids(&text);
        let word = bw.build().matched_ids(&text);
        for id in &word {
            prop_assert!(sub.contains(id), "whole-word hit missing in substring mode");
        }
    }

    #[test]
    fn matches_are_well_formed(
        pats in prop::collection::vec(ident(), 1..5),
        text in ".{0,100}",
    ) {
        let mut b = MatcherBuilder::new();
        b.mode(MatchMode::Substring).add_all(pats.iter().map(String::as_str));
        let m = b.build();
        for hit in m.find_all(&text) {
            prop_assert!(hit.start < hit.end);
            prop_assert!(hit.end <= text.len());
            prop_assert!(hit.pattern < pats.len());
            let slice = &text.as_bytes()[hit.start..hit.end];
            prop_assert!(
                slice.eq_ignore_ascii_case(pats[hit.pattern].as_bytes()),
                "reported span does not match the pattern"
            );
        }
    }

    #[test]
    fn glob_star_absorbs_arbitrary_infix(
        head in "[a-z]{0,10}",
        tail in "[a-z]{0,10}",
        infix in "[a-z0-9 ]{0,30}",
    ) {
        let s = StopPatterns::new([format!("{}*{}", head, tail)]);
        let text = format!("{}{}{}", head, infix, tail);
        prop_assert!(s.matches(&text));
    }

    #[test]
    fn literal_glob_matches_itself_only_case_insensitively(
        text in "[a-zA-Z0-9 .,-]{1,40}",
    ) {
        prop_assume!(!text.contains('*') && !text.contains('?'));
        let s = StopPatterns::new([text.clone()]);
        prop_assert!(s.matches(&text));
        prop_assert!(s.matches(&text.to_ascii_uppercase()));
        let bang = format!("{}!", text);
        prop_assert!(!s.matches(&bang));
    }

    #[test]
    fn star_pattern_matches_everything(text in ".{0,80}") {
        let s = StopPatterns::new(["*"]);
        prop_assert!(s.matches(&text));
    }
}
