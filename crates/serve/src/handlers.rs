//! The request handlers: pure functions from `(&ModelIndex, query)` to
//! a [`Response`].
//!
//! Handlers never touch the filesystem, the durable store, a clock, or
//! the environment — the `blocking-io-in-handler` workspace lint denies
//! any call path from a `handle_*` fn here to `fs::*` or the durable
//! layer, so a slow snapshot load can never ride a request thread.
//! Snapshot loads happen only in [`crate::loader`] on the swap path.
//!
//! Response bodies are rendered from `BTreeMap`-ordered data with no
//! floats (ratios are integer permille), so a body is a pure function
//! of (index generation, request): byte-identical at any worker count.

use crate::http::{Request, Response};
use crate::index::{LayerChurn, ModelIndex};
use logdep::evolution::Churn;
use logdep_logstore::SourceId;
use serde_json::Value;
use std::collections::BTreeMap;

type Query = BTreeMap<String, String>;

/// Routes a parsed request against the index. Returns `None` for paths
/// the pure layer does not own (server-level endpoints like
/// `/v1/metrics` and `/admin/reload`).
pub fn handle_request(index: &ModelIndex, req: &Request) -> Option<Response> {
    if req.method != "GET" {
        return Some(Response::error(405, "only GET is supported"));
    }
    match req.path.as_str() {
        "/v1/pair" => Some(handle_pair(index, &req.query)),
        "/v1/impact" => Some(handle_impact(index, &req.query)),
        "/v1/diff" => Some(handle_diff(index, &req.query)),
        "/v1/churn" => Some(handle_churn(index, &req.query)),
        "/v1/model" => Some(handle_model(index)),
        "/v1/report" => Some(handle_report(index)),
        "/healthz" => Some(Response::text(200, "ok\n")),
        _ => None,
    }
}

/// `GET /v1/pair?src=A&dst=B` — per-detector evidence for one pair.
pub fn handle_pair(index: &ModelIndex, query: &Query) -> Response {
    let (Some(src), Some(dst)) = (query.get("src"), query.get("dst")) else {
        return Response::error(400, "need src and dst query parameters");
    };
    let Some(ev) = index.pair_evidence(src, dst) else {
        return Response::error(404, "unknown src");
    };
    json_ok(Value::Object(vec![
        ("generation".into(), Value::U64(index.generation())),
        ("src".into(), Value::Str(src.clone())),
        ("dst".into(), Value::Str(dst.clone())),
        (
            "detectors".into(),
            Value::Object(vec![
                ("l1".into(), Value::Bool(ev.l1)),
                ("l2".into(), Value::Bool(ev.l2)),
                ("l3".into(), Value::Bool(ev.l3)),
            ]),
        ),
        ("detected".into(), Value::Bool(ev.detected())),
        (
            "days_seen".into(),
            Value::Array(ev.days_seen.iter().map(|&d| Value::I64(d)).collect()),
        ),
    ]))
}

/// `GET /v1/impact?app=A&depth=k` — transitive dependents BFS.
pub fn handle_impact(index: &ModelIndex, query: &Query) -> Response {
    let Some(app) = query.get("app") else {
        return Response::error(400, "need app query parameter");
    };
    let depth = match parse_or(query, "depth", 8usize) {
        Ok(d) if d >= 1 => d,
        Ok(_) => return Response::error(400, "depth must be >= 1"),
        Err(r) => return r,
    };
    if !index.knows(app) {
        return Response::error(404, "unknown app");
    }
    let impacted = index.impact(app, depth);
    json_ok(Value::Object(vec![
        ("generation".into(), Value::U64(index.generation())),
        ("app".into(), Value::Str(app.clone())),
        ("depth".into(), Value::U64(depth as u64)),
        (
            "dependencies".into(),
            Value::Array(
                index
                    .dependencies(app)
                    .into_iter()
                    .map(Value::Str)
                    .collect(),
            ),
        ),
        (
            "impacted".into(),
            Value::Array(
                impacted
                    .iter()
                    .map(|(name, dist)| {
                        Value::Object(vec![
                            ("name".into(), Value::Str(name.clone())),
                            ("distance".into(), Value::U64(*dist as u64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("count".into(), Value::U64(impacted.len() as u64)),
    ]))
}

/// `GET /v1/diff?from=dayN&to=dayM` — per-layer churn between two
/// mined snapshots (built on `evolution::{pair_churn, app_service_churn}`).
pub fn handle_diff(index: &ModelIndex, query: &Query) -> Response {
    let (Some(from_raw), Some(to_raw)) = (query.get("from"), query.get("to")) else {
        return Response::error(400, "need from and to query parameters");
    };
    let (Some(from), Some(to)) = (parse_day(from_raw), parse_day(to_raw)) else {
        return Response::error(400, "from/to must be day numbers like 3 or day3");
    };
    let Some(churn) = index.churn_between(from, to) else {
        return Response::error(404, "one or both days were not mined");
    };
    json_ok(Value::Object(vec![
        ("generation".into(), Value::U64(index.generation())),
        ("from".into(), Value::I64(from)),
        ("to".into(), Value::I64(to)),
        ("l1".into(), pair_churn_value(index, &churn.l1)),
        ("l2".into(), pair_churn_value(index, &churn.l2)),
        ("l3".into(), l3_churn_value(index, &churn)),
    ]))
}

/// `GET /v1/churn?top=K` — adjacent-day transitions ranked by movement.
pub fn handle_churn(index: &ModelIndex, query: &Query) -> Response {
    let top = match parse_or(query, "top", 5usize) {
        Ok(t) => t,
        Err(r) => return r,
    };
    let transitions = index.top_churn(top);
    json_ok(Value::Object(vec![
        ("generation".into(), Value::U64(index.generation())),
        ("top".into(), Value::U64(top as u64)),
        (
            "transitions".into(),
            Value::Array(
                transitions
                    .iter()
                    .map(|t| {
                        Value::Object(vec![
                            ("from".into(), Value::I64(t.from)),
                            ("to".into(), Value::I64(t.to)),
                            ("n_changes".into(), Value::U64(t.n_changes as u64)),
                            ("n_stable".into(), Value::U64(t.n_stable as u64)),
                            (
                                "stability_permille".into(),
                                Value::U64(t.stability_permille),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]))
}

/// `GET /v1/model` — summary of the live index.
pub fn handle_model(index: &ModelIndex) -> Response {
    let latest = index.latest();
    json_ok(Value::Object(vec![
        ("generation".into(), Value::U64(index.generation())),
        ("sources".into(), Value::U64(index.n_sources() as u64)),
        (
            "services".into(),
            Value::U64(index.service_ids().len() as u64),
        ),
        (
            "days".into(),
            Value::Array(index.days().map(|d| Value::I64(d.day)).collect()),
        ),
        (
            "latest".into(),
            match latest {
                None => Value::Null,
                Some(d) => Value::Object(vec![
                    ("day".into(), Value::I64(d.day)),
                    ("end_day".into(), Value::I64(d.end_day)),
                    ("l1_pairs".into(), Value::U64(d.l1.len() as u64)),
                    ("l2_pairs".into(), Value::U64(d.l2.len() as u64)),
                    ("l3_deps".into(), Value::U64(d.l3.len() as u64)),
                ]),
            },
        ),
    ]))
}

/// `GET /v1/report` — the `logdep-obs` RunReport captured when this
/// index generation was built.
pub fn handle_report(index: &ModelIndex) -> Response {
    Response::json(200, index.report_json().to_owned())
}

fn pair_churn_value(index: &ModelIndex, churn: &Churn<(SourceId, SourceId)>) -> Value {
    let edges = |set: &[(SourceId, SourceId)]| {
        Value::Array(
            set.iter()
                .map(|&(a, b)| {
                    Value::Array(vec![
                        Value::Str(index.source_label(a)),
                        Value::Str(index.source_label(b)),
                    ])
                })
                .collect(),
        )
    };
    churn_value(
        edges(&churn.appeared),
        edges(&churn.disappeared),
        churn.stable.len(),
        churn.n_changes(),
    )
}

fn l3_churn_value(index: &ModelIndex, churn: &LayerChurn) -> Value {
    let edges = |set: &[(SourceId, usize)]| {
        Value::Array(
            set.iter()
                .map(|&(app, svc)| {
                    Value::Array(vec![
                        Value::Str(index.source_label(app)),
                        Value::Str(index.service_label(svc)),
                    ])
                })
                .collect(),
        )
    };
    churn_value(
        edges(&churn.l3.appeared),
        edges(&churn.l3.disappeared),
        churn.l3.stable.len(),
        churn.l3.n_changes(),
    )
}

fn churn_value(appeared: Value, disappeared: Value, stable: usize, changes: usize) -> Value {
    Value::Object(vec![
        ("appeared".into(), appeared),
        ("disappeared".into(), disappeared),
        ("stable_count".into(), Value::U64(stable as u64)),
        (
            "stability_permille".into(),
            Value::U64(crate::index::permille(stable, stable + changes)),
        ),
    ])
}

/// Accepts `7`, `day7`, or `-2` (windows may start before the epoch).
fn parse_day(raw: &str) -> Option<i64> {
    raw.strip_prefix("day").unwrap_or(raw).parse().ok()
}

fn parse_or<T: std::str::FromStr>(query: &Query, key: &str, default: T) -> Result<T, Response> {
    match query.get(key) {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| Response::error(400, &format!("bad value for {key}"))),
    }
}

fn json_ok(value: Value) -> Response {
    match serde_json::to_string(&value) {
        Ok(body) => Response::json(200, body),
        Err(_) => Response::error(500, "response rendering failed"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(path: &str, query: &[(&str, &str)]) -> Request {
        Request {
            method: "GET".into(),
            path: path.into(),
            query: query
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            keep_alive: true,
        }
    }

    #[test]
    fn unknown_path_is_not_ours() {
        let idx = ModelIndex::empty(1);
        assert!(handle_request(&idx, &get("/v1/nope", &[])).is_none());
    }

    #[test]
    fn pair_requires_params() {
        let idx = ModelIndex::empty(1);
        let resp = handle_pair(&idx, &get("/v1/pair", &[]).query);
        assert_eq!(resp.status, 400);
        let resp = handle_pair(&idx, &get("/v1/pair", &[("src", "a"), ("dst", "b")]).query);
        assert_eq!(resp.status, 404);
    }

    #[test]
    fn model_summary_on_empty_index() {
        let idx = ModelIndex::empty(3);
        let resp = handle_model(&idx);
        assert_eq!(resp.status, 200);
        let body = String::from_utf8(resp.body).expect("utf8");
        assert!(body.contains("\"generation\":3"));
        assert!(body.contains("\"latest\":null"));
    }

    #[test]
    fn day_prefix_is_tolerated() {
        assert_eq!(parse_day("7"), Some(7));
        assert_eq!(parse_day("day7"), Some(7));
        assert_eq!(parse_day("-2"), Some(-2));
        assert_eq!(parse_day("dayX"), None);
    }
}
