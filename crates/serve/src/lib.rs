//! Always-on dependency-model query serving.
//!
//! The paper's landscape *moves*: models mined yesterday are consulted
//! today while tomorrow's window is already being mined (§1, §4.7).
//! This crate turns the mined `PairModel`/`AppServiceModel` snapshots
//! into something that can answer questions without re-running the
//! pipeline:
//!
//! * [`index::ModelIndex`] — an embeddable, immutable query engine over
//!   a sequence of per-day snapshots, with precomputed forward/reverse
//!   adjacency for impact analysis and [`logdep::evolution`] churn
//!   between any two mined days.
//! * [`server`] — a zero-external-dep HTTP/1.1 loopback server on
//!   `std::net::TcpListener` with a bounded `logdep-par` worker pool.
//!   The live index is an `Arc<ModelIndex>` behind an `RwLock`; readers
//!   clone the `Arc` and never block on a reload, and the swap is a
//!   single pointer store, so a response is always computed against
//!   exactly one generation — no torn reads.
//! * [`loader`] — the only module allowed to touch the filesystem at
//!   serve time. Reloads re-ingest the log export, warm the evidence
//!   cache from the durable store, and build a fresh index which the
//!   server swaps in atomically (`blocking-io-in-handler` denies any
//!   other path from a request handler to `fs`/`durable`).
//!
//! Determinism contract: with no injected clock the server performs no
//! wall-clock reads, no environment reads, and no hash-ordered
//! iteration, so every response body is a pure function of (index
//! generation, request) — byte-identical at any worker count. The
//! conformance suite in `tests/tests/serve_conformance.rs` asserts
//! exactly that, across a mid-test hot swap.

pub mod client;
pub mod handlers;
pub mod http;
pub mod index;
pub mod loader;
pub mod server;

pub use client::HttpClient;
pub use index::{DayModels, IndexPlan, ModelIndex};
pub use loader::{run_reload, SnapshotSource};
pub use server::{run_server, ServeConfig, Server, ServerHandle};

/// Errors surfaced by the serving layer.
#[derive(Debug)]
pub enum ServeError {
    /// Socket setup or I/O failed.
    Io(String),
    /// Snapshot ingest or mining failed during an index build.
    Build(String),
    /// A client-side protocol violation (used by [`client`]).
    Protocol(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(m) => write!(f, "io: {m}"),
            ServeError::Build(m) => write!(f, "build: {m}"),
            ServeError::Protocol(m) => write!(f, "protocol: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e.to_string())
    }
}
