//! A deliberately small HTTP/1.1 subset: enough to parse a GET request
//! line + headers off a socket and render a response with a
//! `Content-Length`, with hard caps so a hostile or broken client can
//! never make the server allocate without bound or hang forever.
//!
//! No external dependency and no wall-clock read: timeouts are enforced
//! by the socket read/write deadlines the server installs, and surface
//! here as [`HttpError::TimedOut`].

use std::collections::BTreeMap;
use std::io::Read;

/// Cap on the request head (request line + all headers). A head that
/// grows past this is answered `431` and the connection dropped.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Cap on the request line alone (method + target + version).
pub const MAX_REQUEST_LINE: usize = 8 * 1024;

/// Why a request could not be read or parsed.
#[derive(Debug, PartialEq, Eq)]
pub enum HttpError {
    /// Clean EOF before the first byte: the client closed an idle
    /// keep-alive connection. Not an error on the wire.
    Closed,
    /// EOF in the middle of the head (truncated request).
    Truncated,
    /// The head exceeded [`MAX_HEAD_BYTES`] or the request line
    /// exceeded [`MAX_REQUEST_LINE`].
    TooLarge,
    /// The socket read deadline expired mid-head (slowloris).
    TimedOut,
    /// The bytes were complete but not a parseable request.
    Malformed(String),
    /// Any other socket error; the connection is just dropped.
    Io(String),
}

impl HttpError {
    /// The status code to answer with, if answering is useful at all.
    pub fn status(&self) -> Option<u16> {
        match self {
            HttpError::Closed | HttpError::Io(_) => None,
            HttpError::Truncated | HttpError::Malformed(_) => Some(400),
            HttpError::TooLarge => Some(431),
            HttpError::TimedOut => Some(408),
        }
    }
}

/// A parsed request head.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, ...).
    pub method: String,
    /// Decoded path component, without the query string.
    pub path: String,
    /// Decoded query parameters in key order (duplicates: last wins).
    pub query: BTreeMap<String, String>,
    /// Whether the connection may serve another request afterwards.
    pub keep_alive: bool,
}

/// Reads one request head (through the blank line) from `stream`.
///
/// Returns the raw head bytes. Body bytes are neither read nor
/// supported; a request advertising a body forces `Connection: close`
/// downstream so the framing can never desynchronise.
pub fn read_head(stream: &mut dyn Read, max_bytes: usize) -> Result<Vec<u8>, HttpError> {
    let mut head: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 512];
    loop {
        if let Some(end) = find_head_end(&head) {
            head.truncate(end);
            return Ok(head);
        }
        if head.len() > max_bytes {
            return Err(HttpError::TooLarge);
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                return if head.is_empty() {
                    Err(HttpError::Closed)
                } else {
                    Err(HttpError::Truncated)
                };
            }
            Ok(n) => head.extend_from_slice(chunk.get(..n).unwrap_or(&[])),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Err(HttpError::TimedOut);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(HttpError::Io(e.to_string())),
        }
    }
}

/// Byte offset just past the `\r\n\r\n` (or lenient `\n\n`) head
/// terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|p| p + 4)
        .or_else(|| buf.windows(2).position(|w| w == b"\n\n").map(|p| p + 2))
}

/// Parses a complete request head into a [`Request`].
pub fn parse_request(head: &[u8]) -> Result<Request, HttpError> {
    let text = std::str::from_utf8(head)
        .map_err(|_| HttpError::Malformed("head is not valid UTF-8".into()))?;
    let mut lines = text.split("\r\n").flat_map(|l| l.split('\n'));
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::Malformed("empty head".into()))?;
    if request_line.len() > MAX_REQUEST_LINE {
        return Err(HttpError::TooLarge);
    }
    let mut parts = request_line.split_ascii_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing method".into()))?;
    let target = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing request target".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing HTTP version".into()))?;
    if parts.next().is_some() {
        return Err(HttpError::Malformed("extra tokens in request line".into()));
    }
    if !method.bytes().all(|b| b.is_ascii_uppercase()) || method.is_empty() {
        return Err(HttpError::Malformed(format!("bad method {method:?}")));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err(HttpError::Malformed(format!("bad version {version:?}"))),
    };

    let mut connection: Option<String> = None;
    let mut has_body = false;
    for line in lines {
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed(format!("bad header line {line:?}")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "connection" => connection = Some(value.to_ascii_lowercase()),
            "content-length" => {
                has_body = value.parse::<u64>().map(|n| n > 0).unwrap_or(true);
            }
            "transfer-encoding" => has_body = true,
            _ => {}
        }
    }

    let keep_alive = !has_body
        && match connection.as_deref() {
            Some(c) => {
                !c.split(',').any(|t| t.trim() == "close") && (http11 || c.contains("keep-alive"))
            }
            None => http11,
        };

    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let mut query = BTreeMap::new();
    for pair in query_str.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        query.insert(percent_decode(k), percent_decode(v));
    }

    Ok(Request {
        method: method.to_owned(),
        path: percent_decode(path),
        query,
        keep_alive,
    })
}

/// Decodes `%XX` escapes and `+`-as-space. Invalid escapes pass
/// through literally rather than failing the whole request.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while let Some(&b) = bytes.get(i) {
        match b {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => match (hex_val(bytes.get(i + 1)), hex_val(bytes.get(i + 2))) {
                (Some(hi), Some(lo)) => {
                    out.push(hi * 16 + lo);
                    i += 3;
                }
                _ => {
                    out.push(b'%');
                    i += 1;
                }
            },
            other => {
                out.push(other);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn hex_val(b: Option<&u8>) -> Option<u8> {
    match b {
        Some(&c @ b'0'..=b'9') => Some(c - b'0'),
        Some(&c @ b'a'..=b'f') => Some(c - b'a' + 10),
        Some(&c @ b'A'..=b'F') => Some(c - b'A' + 10),
        _ => None,
    }
}

/// An HTTP response ready to serialise.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: &str) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.as_bytes().to_vec(),
        }
    }

    /// A JSON error body `{"error": ...}` with the given status.
    pub fn error(status: u16, message: &str) -> Self {
        let escaped: String = message
            .chars()
            .flat_map(|c| match c {
                '"' => vec!['\\', '"'],
                '\\' => vec!['\\', '\\'],
                '\n' => vec!['\\', 'n'],
                c if (c as u32) < 0x20 => vec![' '],
                c => vec![c],
            })
            .collect();
        Self::json(status, format!("{{\"error\": \"{escaped}\"}}"))
    }

    /// Serialises status line, headers and body to wire bytes.
    pub fn to_bytes(&self, keep_alive: bool) -> Vec<u8> {
        let mut out = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        )
        .into_bytes();
        out.extend_from_slice(&self.body);
        out
    }
}

/// Canonical reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Request, HttpError> {
        parse_request(s.as_bytes())
    }

    #[test]
    fn parses_get_with_query() {
        let req =
            parse("GET /v1/pair?src=App%20A&dst=B+C HTTP/1.1\r\nHost: x\r\n\r\n").expect("parses");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/pair");
        assert_eq!(req.query.get("src").map(String::as_str), Some("App A"));
        assert_eq!(req.query.get("dst").map(String::as_str), Some("B C"));
        assert!(req.keep_alive);
    }

    #[test]
    fn connection_close_and_http10() {
        let req = parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").expect("parses");
        assert!(!req.keep_alive);
        let req = parse("GET / HTTP/1.0\r\n\r\n").expect("parses");
        assert!(!req.keep_alive);
        let req = parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").expect("parses");
        assert!(req.keep_alive);
    }

    #[test]
    fn body_forces_close() {
        let req = parse("POST / HTTP/1.1\r\nContent-Length: 3\r\n\r\n").expect("parses");
        assert!(!req.keep_alive);
    }

    #[test]
    fn malformed_heads_are_rejected() {
        assert!(matches!(parse("\r\n\r\n"), Err(HttpError::Malformed(_))));
        assert!(matches!(
            parse("GET HTTP/1.1\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / SPDY/9\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nbroken header\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn read_head_respects_caps_and_eof() {
        let mut tiny: &[u8] = b"GET / HT";
        assert_eq!(read_head(&mut tiny, 64), Err(HttpError::Truncated));
        let mut empty: &[u8] = b"";
        assert_eq!(read_head(&mut empty, 64), Err(HttpError::Closed));
        let big = vec![b'a'; 200];
        let mut slice: &[u8] = &big;
        assert_eq!(read_head(&mut slice, 64), Err(HttpError::TooLarge));
    }

    #[test]
    fn percent_decode_is_lenient() {
        assert_eq!(percent_decode("a%2Fb"), "a/b");
        assert_eq!(percent_decode("a%ZZb"), "a%ZZb");
        assert_eq!(percent_decode("a%2"), "a%2");
    }

    #[test]
    fn response_bytes_have_content_length() {
        let r = Response::json(200, "{}".to_owned());
        let s = String::from_utf8(r.to_bytes(true)).expect("utf8");
        assert!(s.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(s.contains("Content-Length: 2\r\n"));
        assert!(s.contains("Connection: keep-alive\r\n"));
        assert!(s.ends_with("\r\n\r\n{}"));
    }
}
