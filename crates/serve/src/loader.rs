//! The swap path: the only serve-time module allowed to touch the
//! filesystem or the durable store.
//!
//! A reload re-ingests the log export(s), re-reads the service
//! directory, warms the evidence cache from the durable store mined by
//! `logdep daily` (when one is given), and builds a fresh
//! [`ModelIndex`]. The server's orchestrator thread is the only caller
//! at serve time; request handlers are denied any path into this
//! module by the `blocking-io-in-handler` workspace lint.

use crate::index::{IndexPlan, ModelIndex};
use crate::ServeError;
use logdep::{DurableStore, EvidenceCache, NoopPolicy, PipelineConfig};
use logdep_logstore::{read_store_resilient, IngestPolicy, LogStore};
use logdep_obs::{record, Field};
use logdep_sim::ServiceDirectory;
use std::io::BufReader;
use std::path::PathBuf;

/// Where and how to (re)build the index from disk.
#[derive(Debug, Clone)]
pub struct SnapshotSource {
    /// Comma-separated TSV log export paths (resilient ingest).
    pub logs: String,
    /// Service-directory XML path, or `None` to skip L3.
    pub directory: Option<String>,
    /// Durable evidence store to warm the cache from, if present.
    pub store: Option<PathBuf>,
    /// The window schedule to mine.
    pub plan: IndexPlan,
    /// Detector configuration.
    pub cfg: PipelineConfig,
}

/// Loads everything from disk and builds index `generation`.
///
/// Emits a `reload` span pair (begin before the first byte is read,
/// end with the mined day count) so a traced serve run shows every
/// swap; the per-window spans land in the index's own captured report.
pub fn run_reload(source: &SnapshotSource, generation: u64) -> Result<ModelIndex, ServeError> {
    record(|r| r.span_begin("reload", &[("generation", Field::from(generation))]));
    let result = reload_inner(source, generation);
    let days = result.as_ref().map(|idx| idx.days().count()).unwrap_or(0);
    record(|r| {
        r.span_end(
            "reload",
            &[
                ("generation", Field::from(generation)),
                ("days", Field::from(days)),
                ("ok", Field::from(result.is_ok())),
            ],
        );
    });
    result
}

fn reload_inner(source: &SnapshotSource, generation: u64) -> Result<ModelIndex, ServeError> {
    let store = load_logs(&source.logs)?;
    let ids = match &source.directory {
        Some(path) => directory_ids(path)?,
        None => Vec::new(),
    };
    let mut cache = warm_cache(source);
    ModelIndex::from_store(
        &store,
        &ids,
        &source.cfg,
        &source.plan,
        &mut cache,
        generation,
    )
}

/// Resilient multi-file ingest, mirroring the CLI's loader.
fn load_logs(paths: &str) -> Result<LogStore, ServeError> {
    let policy = IngestPolicy::default();
    let mut merged: Option<LogStore> = None;
    for path in paths.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        let file = std::fs::File::open(path)
            .map_err(|e| ServeError::Build(format!("open {path:?}: {e}")))?;
        let (store, _report) = read_store_resilient(BufReader::new(file), &policy)
            .map_err(|e| ServeError::Build(format!("ingest {path}: {e}")))?;
        match merged.as_mut() {
            None => merged = Some(store),
            Some(m) => m.merge(&store),
        }
    }
    let mut store = merged.ok_or_else(|| ServeError::Build("no log files given".into()))?;
    store.finalize();
    Ok(store)
}

fn directory_ids(path: &str) -> Result<Vec<String>, ServeError> {
    let xml = std::fs::read_to_string(path)
        .map_err(|e| ServeError::Build(format!("open {path:?}: {e}")))?;
    let dir = ServiceDirectory::from_xml(&xml)
        .map_err(|e| ServeError::Build(format!("directory {path}: {e}")))?;
    Ok(dir.ids().iter().map(|s| s.to_string()).collect())
}

/// Clones the evidence cache out of the durable store, if one exists.
/// A missing or unreadable store degrades to a cold cache — serving
/// must come up even when mining state is damaged (repair is `logdep
/// cache repair`'s job, not the server's).
fn warm_cache(source: &SnapshotSource) -> EvidenceCache {
    let Some(path) = &source.store else {
        return EvidenceCache::new();
    };
    if !path.exists() {
        return EvidenceCache::new();
    }
    match DurableStore::open_existing(path, &mut NoopPolicy) {
        Ok(store) => store.cache().clone(),
        Err(_) => EvidenceCache::new(),
    }
}
