//! The loopback HTTP server: a bounded `logdep-par` worker pool
//! accepting on a shared non-blocking listener, an `RwLock<Arc<_>>`
//! snapshot slot whose swap is a single pointer store, and a
//! `MetricsRegistry` of request counters behind a mutex.
//!
//! Threading stays inside `logdep_par::scope` — the one sanctioned
//! threading entry point in the workspace (`raw-thread-spawn` denies
//! bare `thread::spawn`). Workers poll `accept` with a short sleep so
//! a shutdown or reload request is observed within milliseconds without
//! any wall-clock read; per-request deadlines are socket read/write
//! timeouts, also clock-free from the server's point of view.

use crate::handlers;
use crate::http::{self, HttpError, Request, Response};
use crate::index::ModelIndex;
use crate::loader::{run_reload, SnapshotSource};
use crate::ServeError;
use logdep_obs::{record, Field, MetricsRegistry};
use serde_json::Value;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

/// Server tuning knobs. All defaults are loopback-friendly.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Worker threads accepting and serving connections.
    pub workers: usize,
    /// Maximum concurrently served connections; excess get `503`.
    pub max_conns: usize,
    /// Socket read/write deadline per request, in milliseconds.
    pub request_timeout_ms: u64,
    /// Optional microsecond clock for latency histograms. `None` (the
    /// default) keeps the server wall-clock-free so `/v1/metrics` is
    /// byte-deterministic; the CLI injects a real clock on request.
    pub clock_us: Option<fn() -> u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            workers: 1,
            max_conns: 64,
            request_timeout_ms: 2_000,
            clock_us: None,
        }
    }
}

/// State shared between workers, the orchestrator, and handles.
struct Shared {
    index: RwLock<Arc<ModelIndex>>,
    metrics: Mutex<MetricsRegistry>,
    generation: AtomicU64,
    shutdown: AtomicBool,
    reload: AtomicBool,
    active: AtomicUsize,
}

impl Shared {
    fn current_index(&self) -> Arc<ModelIndex> {
        match self.index.read() {
            Ok(guard) => Arc::clone(&guard),
            Err(poisoned) => Arc::clone(&poisoned.into_inner()),
        }
    }

    fn install(&self, index: ModelIndex) {
        let generation = index.generation();
        let next = Arc::new(index);
        match self.index.write() {
            Ok(mut guard) => *guard = next,
            Err(poisoned) => *poisoned.into_inner() = next,
        }
        self.generation.store(generation, Ordering::SeqCst);
        self.with_metrics(|m| {
            m.counter_add("serve.swaps", 1);
            m.gauge_set("serve.generation", generation as i64);
        });
    }

    fn with_metrics<T>(&self, f: impl FnOnce(&mut MetricsRegistry) -> T) -> T {
        match self.metrics.lock() {
            Ok(mut guard) => f(&mut guard),
            Err(poisoned) => f(&mut poisoned.into_inner()),
        }
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    cfg: ServeConfig,
}

/// A cloneable control handle: shut the server down, request or apply
/// a snapshot swap, and read the bound address from any thread.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
}

impl ServerHandle {
    /// The actual bound address (resolves `:0` to the chosen port).
    pub fn addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Asks the serve loop to exit; it drains within its poll interval.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Schedules a reload through the server's [`SnapshotSource`]
    /// (same effect as `GET /admin/reload`).
    pub fn request_reload(&self) {
        self.shared.reload.store(true, Ordering::SeqCst);
    }

    /// Atomically swaps in an already-built index. In-flight requests
    /// finish against the generation they started with; new requests
    /// see the new one. Never blocks readers.
    pub fn install(&self, index: ModelIndex) {
        self.shared.install(index);
    }

    /// Generation of the live index.
    pub fn generation(&self) -> u64 {
        self.shared.generation.load(Ordering::SeqCst)
    }

    /// A rendering of the server metrics (for tests).
    pub fn metrics_json(&self) -> String {
        self.shared.with_metrics(|m| render_metrics(m))
    }
}

impl Server {
    /// Binds the listener and installs the initial index.
    pub fn bind(cfg: ServeConfig, index: ModelIndex) -> Result<Self, ServeError> {
        let listener = TcpListener::bind(&cfg.addr)
            .map_err(|e| ServeError::Io(format!("bind {}: {e}", cfg.addr)))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| ServeError::Io(format!("set_nonblocking: {e}")))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| ServeError::Io(format!("local_addr: {e}")))?;
        let generation = index.generation();
        let shared = Arc::new(Shared {
            index: RwLock::new(Arc::new(index)),
            metrics: Mutex::new(MetricsRegistry::new()),
            generation: AtomicU64::new(generation),
            shutdown: AtomicBool::new(false),
            reload: AtomicBool::new(false),
            active: AtomicUsize::new(0),
        });
        shared.with_metrics(|m| m.gauge_set("serve.generation", generation as i64));
        Ok(Self {
            listener,
            local_addr,
            shared,
            cfg,
        })
    }

    /// A control handle usable from other threads.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
            local_addr: self.local_addr,
        }
    }
}

/// Runs the server until [`ServerHandle::shutdown`] is called.
///
/// Workers run on a `logdep_par` scope; the calling thread becomes the
/// orchestrator, which is the only thread allowed to perform snapshot
/// reloads (via `source`) and the only thread that records trace spans
/// — exactly the emission discipline the rest of the workspace uses.
pub fn run_server(server: Server, source: Option<&SnapshotSource>) -> Result<(), ServeError> {
    let Server {
        listener,
        local_addr: _,
        shared,
        cfg,
    } = server;
    let workers = cfg.workers.max(1);
    record(|r| {
        r.span_begin(
            "serve",
            &[
                ("workers", Field::from(workers)),
                (
                    "generation",
                    Field::from(shared.generation.load(Ordering::SeqCst)),
                ),
            ],
        );
    });
    logdep_par::scope(|s| {
        for _ in 0..workers {
            let listener = &listener;
            let shared = &shared;
            let cfg = &cfg;
            s.spawn(move || worker_loop(listener, shared, cfg));
        }
        orchestrate(&shared, source);
    });
    record(|r| {
        r.span_end(
            "serve",
            &[(
                "generation",
                Field::from(shared.generation.load(Ordering::SeqCst)),
            )],
        );
    });
    Ok(())
}

/// The orchestrator loop: watches the shutdown and reload flags.
fn orchestrate(shared: &Shared, source: Option<&SnapshotSource>) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if shared.reload.swap(false, Ordering::SeqCst) {
            match source {
                None => shared.with_metrics(|m| m.counter_add("serve.reload_errors", 1)),
                Some(src) => {
                    let next_gen = shared.generation.load(Ordering::SeqCst) + 1;
                    match run_reload(src, next_gen) {
                        Ok(index) => shared.install(index),
                        Err(_) => {
                            shared.with_metrics(|m| m.counter_add("serve.reload_errors", 1));
                        }
                    }
                }
            }
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// One worker: accept, enforce the connection limit, serve.
fn worker_loop(listener: &TcpListener, shared: &Shared, cfg: &ServeConfig) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let active = shared.active.fetch_add(1, Ordering::SeqCst) + 1;
                shared.with_metrics(|m| m.counter_add("serve.conns", 1));
                if active > cfg.max_conns {
                    shared.with_metrics(|m| m.counter_add("serve.conns_rejected", 1));
                    reject_over_limit(stream, cfg);
                } else {
                    serve_connection(stream, shared, cfg);
                }
                shared.active.fetch_sub(1, Ordering::SeqCst);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
}

fn reject_over_limit(stream: TcpStream, cfg: &ServeConfig) {
    let mut stream = stream;
    let _ready = prepare_stream(&stream, cfg);
    let resp = Response::error(503, "connection limit reached");
    if stream.write_all(&resp.to_bytes(false)).is_err() {
        return;
    }
    let _flush = stream.flush();
}

fn prepare_stream(stream: &TcpStream, cfg: &ServeConfig) -> bool {
    let timeout = Duration::from_millis(cfg.request_timeout_ms.max(1));
    stream.set_nonblocking(false).is_ok()
        && stream.set_read_timeout(Some(timeout)).is_ok()
        && stream.set_write_timeout(Some(timeout)).is_ok()
}

/// Serves requests off one connection until close, error, or timeout.
fn serve_connection(mut stream: TcpStream, shared: &Shared, cfg: &ServeConfig) {
    if !prepare_stream(&stream, cfg) {
        return;
    }
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let head = match http::read_head(&mut stream, http::MAX_HEAD_BYTES) {
            Ok(head) => head,
            Err(err) => {
                answer_error(&mut stream, shared, &err);
                return;
            }
        };
        let req = match http::parse_request(&head) {
            Ok(req) => req,
            Err(err) => {
                answer_error(&mut stream, shared, &err);
                return;
            }
        };
        let started_us = cfg.clock_us.map(|clock| clock());
        let resp = route(shared, &req);
        if let (Some(clock), Some(t0)) = (cfg.clock_us, started_us) {
            let elapsed = clock().saturating_sub(t0);
            shared.with_metrics(|m| m.observe_us("serve.request_us", elapsed));
        }
        let keep = req.keep_alive && resp.status < 500;
        shared.with_metrics(|m| {
            m.counter_add("serve.requests", 1);
            m.counter_add(&format!("serve.status.{}", resp.status), 1);
        });
        if stream.write_all(&resp.to_bytes(keep)).is_err() {
            return;
        }
        if !keep {
            return;
        }
    }
}

fn answer_error(stream: &mut TcpStream, shared: &Shared, err: &HttpError) {
    let Some(status) = err.status() else {
        return; // clean close or raw I/O failure: nothing to say
    };
    shared.with_metrics(|m| {
        m.counter_add("serve.http_errors", 1);
        m.counter_add(&format!("serve.status.{status}"), 1);
    });
    let resp = Response::error(status, &format!("{err:?}"));
    if stream.write_all(&resp.to_bytes(false)).is_err() {
        return;
    }
    let _flush = stream.flush();
}

/// Full routing: server-owned endpoints first, then the pure handlers.
fn route(shared: &Shared, req: &Request) -> Response {
    match req.path.as_str() {
        "/v1/metrics" => {
            if req.method != "GET" {
                return Response::error(405, "only GET is supported");
            }
            Response::json(200, shared.with_metrics(|m| render_metrics(m)))
        }
        "/admin/reload" => {
            shared.reload.store(true, Ordering::SeqCst);
            Response::json(202, "{\"reload\":\"scheduled\"}".to_owned())
        }
        _ => {
            let index = shared.current_index();
            handlers::handle_request(&index, req)
                .unwrap_or_else(|| Response::error(404, "no such endpoint"))
        }
    }
}

/// Renders the registry as JSON: counters and gauges always, histogram
/// summaries only when a clock was injected (they stay absent —
/// and the body deterministic — in the default clock-free mode).
fn render_metrics(metrics: &MetricsRegistry) -> String {
    let value = Value::Object(vec![
        (
            "counters".into(),
            Value::Object(
                metrics
                    .counters()
                    .map(|(name, v)| (name.to_owned(), Value::U64(v)))
                    .collect(),
            ),
        ),
        (
            "gauges".into(),
            Value::Object(
                metrics
                    .gauges()
                    .map(|(name, v)| (name.to_owned(), Value::I64(v)))
                    .collect(),
            ),
        ),
        (
            "histograms".into(),
            Value::Object(
                metrics
                    .histograms()
                    .map(|(name, h)| {
                        (
                            name.to_owned(),
                            Value::Object(vec![
                                ("count".into(), Value::U64(h.count())),
                                ("sum_us".into(), Value::U64(h.sum_us())),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ),
    ]);
    serde_json::to_string(&value).unwrap_or_else(|_| "{}".to_owned())
}
