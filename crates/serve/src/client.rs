//! A minimal blocking HTTP/1.1 client for the conformance suite and
//! the throughput bench: keep-alive GETs against a loopback server,
//! strict `Content-Length` framing, no external dependency.

use crate::ServeError;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A keep-alive connection to one server.
pub struct HttpClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl HttpClient {
    /// Connects with the given socket deadlines.
    pub fn connect(addr: SocketAddr, timeout_ms: u64) -> Result<Self, ServeError> {
        let stream =
            TcpStream::connect(addr).map_err(|e| ServeError::Io(format!("connect {addr}: {e}")))?;
        let timeout = Duration::from_millis(timeout_ms.max(1));
        stream
            .set_read_timeout(Some(timeout))
            .map_err(|e| ServeError::Io(format!("read timeout: {e}")))?;
        stream
            .set_write_timeout(Some(timeout))
            .map_err(|e| ServeError::Io(format!("write timeout: {e}")))?;
        Ok(Self {
            stream,
            buf: Vec::new(),
        })
    }

    /// Issues `GET path` and returns `(status, body)`. The connection
    /// stays usable for the next request unless the server closed it.
    pub fn get(&mut self, path: &str) -> Result<(u16, String), ServeError> {
        let req = format!("GET {path} HTTP/1.1\r\nHost: logdep\r\n\r\n");
        self.stream
            .write_all(req.as_bytes())
            .map_err(|e| ServeError::Io(format!("send: {e}")))?;
        self.read_response()
    }

    /// Direct access for tests that need to write partial or malformed
    /// bytes on the wire.
    pub fn stream(&mut self) -> &mut TcpStream {
        &mut self.stream
    }

    fn read_response(&mut self) -> Result<(u16, String), ServeError> {
        // Accumulate until the head terminator.
        let head_end = loop {
            if let Some(p) = find_blank(&self.buf) {
                break p;
            }
            self.fill()?;
        };
        let head = String::from_utf8_lossy(self.buf.get(..head_end).unwrap_or(&[])).into_owned();
        let status = parse_status(&head)?;
        let content_length = parse_content_length(&head)?;
        let body_start = head_end;
        while self.buf.len() < body_start + content_length {
            self.fill()?;
        }
        let body = String::from_utf8_lossy(
            self.buf
                .get(body_start..body_start + content_length)
                .unwrap_or(&[]),
        )
        .into_owned();
        // Keep any pipelined surplus for the next call.
        self.buf.drain(..body_start + content_length);
        Ok((status, body))
    }

    fn fill(&mut self) -> Result<(), ServeError> {
        let mut chunk = [0u8; 1024];
        match self.stream.read(&mut chunk) {
            Ok(0) => Err(ServeError::Protocol("server closed the connection".into())),
            Ok(n) => {
                self.buf.extend_from_slice(chunk.get(..n).unwrap_or(&[]));
                Ok(())
            }
            Err(e) => Err(ServeError::Io(format!("recv: {e}"))),
        }
    }
}

fn find_blank(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

fn parse_status(head: &str) -> Result<u16, ServeError> {
    head.lines()
        .next()
        .and_then(|line| line.split_ascii_whitespace().nth(1))
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| ServeError::Protocol(format!("bad status line in {head:?}")))
}

fn parse_content_length(head: &str) -> Result<usize, ServeError> {
    for line in head.lines().skip(1) {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                return value
                    .trim()
                    .parse()
                    .map_err(|_| ServeError::Protocol(format!("bad content-length {value:?}")));
            }
        }
    }
    Err(ServeError::Protocol("missing content-length".into()))
}
