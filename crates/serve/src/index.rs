//! The embeddable query engine: an immutable, precomputed index over a
//! sequence of mined per-day model snapshots.
//!
//! A [`ModelIndex`] is built once (per reload) from a `LogStore` by
//! running the cached window pipeline over a [`IndexPlan`] of sliding
//! windows, then frozen. Everything a request handler needs — name
//! lookups, per-detector pair evidence, forward/reverse adjacency for
//! impact BFS, per-layer churn between any two days, and the build's
//! `RunReport` — is computed here, so handlers are pure functions over
//! `&ModelIndex` and the hot-swap is a single `Arc` pointer store.
//!
//! All containers are `BTreeMap`/`BTreeSet` and all floats are avoided
//! (ratios are reported in integer permille), so every rendering of the
//! index is deterministic.

use crate::ServeError;
use logdep::evolution::{app_service_churn, pair_churn, Churn};
use logdep::obs;
use logdep::{AppServiceModel, EvidenceCache, PairModel, PipelineConfig};
use logdep_logstore::time::{TimeRange, MS_PER_DAY};
use logdep_logstore::{LogStore, Millis, SourceId};
use std::collections::{BTreeMap, BTreeSet};

/// The sliding-window schedule an index build mines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexPlan {
    /// First window starts at this day.
    pub start_day: i64,
    /// Width of each window in days.
    pub window_days: i64,
    /// Days the window advances between snapshots.
    pub advance_days: i64,
    /// Number of snapshots to mine.
    pub steps: u64,
}

impl Default for IndexPlan {
    fn default() -> Self {
        Self {
            start_day: 0,
            window_days: 1,
            advance_days: 1,
            steps: 1,
        }
    }
}

impl IndexPlan {
    /// The day the `step`-th window starts.
    pub fn day(&self, step: u64) -> i64 {
        self.start_day + (step as i64) * self.advance_days
    }

    /// The `step`-th window as a time range.
    pub fn window(&self, step: u64) -> TimeRange {
        let start = Millis::from_days(self.day(step));
        TimeRange::new(start, Millis(start.0 + self.window_days * MS_PER_DAY))
    }
}

/// One mined snapshot: the three detector models for one window.
#[derive(Debug, Clone, Default)]
pub struct DayModels {
    /// Day the window started.
    pub day: i64,
    /// Day the window ended (exclusive).
    pub end_day: i64,
    /// L1 timing-correlation pairs (empty when L1 was disabled).
    pub l1: PairModel,
    /// L2 session-bigram pairs (empty when L2 was disabled).
    pub l2: PairModel,
    /// L3 app → service-directory citations (empty when disabled).
    pub l3: AppServiceModel,
}

/// Per-layer churn between two snapshots of the same index.
#[derive(Debug)]
pub struct LayerChurn {
    /// Churn of the L1 pair model.
    pub l1: Churn<(SourceId, SourceId)>,
    /// Churn of the L2 pair model.
    pub l2: Churn<(SourceId, SourceId)>,
    /// Churn of the L3 app-service model.
    pub l3: Churn<(SourceId, usize)>,
}

/// One day-to-day transition ranked by how much the landscape moved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransitionChurn {
    /// Start day of the earlier window.
    pub from: i64,
    /// Start day of the later window.
    pub to: i64,
    /// Total appeared+disappeared edges across all three layers.
    pub n_changes: usize,
    /// Total stable edges across all three layers.
    pub n_stable: usize,
    /// Integer-permille Jaccard stability over the union of layers.
    pub stability_permille: u64,
}

/// The frozen query engine. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct ModelIndex {
    generation: u64,
    source_names: Vec<String>,
    name_to_source: BTreeMap<String, SourceId>,
    service_ids: Vec<String>,
    days: BTreeMap<i64, DayModels>,
    fwd: BTreeMap<String, BTreeSet<String>>,
    rev: BTreeMap<String, BTreeSet<String>>,
    report_json: String,
}

impl ModelIndex {
    /// An index with no snapshots (the server's state before the first
    /// successful load). Every lookup answers "unknown".
    pub fn empty(generation: u64) -> Self {
        Self {
            generation,
            ..Self::default()
        }
    }

    /// Mines `plan`'s windows of `store` through the evidence cache and
    /// freezes the results into an index.
    ///
    /// The build runs under its own [`obs::Recorder`] so the per-window
    /// span events and cache counters land in this index's
    /// [`ModelIndex::report_json`] rather than any ambient trace; the
    /// previously installed recorder (if any) is restored afterwards.
    /// The recorder is clock-free, so the captured report is
    /// deterministic.
    pub fn from_store(
        store: &LogStore,
        service_ids: &[String],
        cfg: &PipelineConfig,
        plan: &IndexPlan,
        cache: &mut EvidenceCache,
        generation: u64,
    ) -> Result<Self, ServeError> {
        let previous = obs::set_recorder(obs::Recorder::new());
        let mined = mine_days(store, service_ids, cfg, plan, cache);
        let recorder = obs::take_recorder().unwrap_or_default();
        if let Some(prev) = previous {
            obs::set_recorder(prev);
        }
        let days = mined?;
        let report_json = recorder.report().render_json();

        let source_names: Vec<String> = (0..store.registry.source_count())
            .map(|i| store.registry.source_name(SourceId(i as u32)).to_owned())
            .collect();
        let name_to_source: BTreeMap<String, SourceId> = source_names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), SourceId(i as u32)))
            .collect();

        let mut index = Self {
            generation,
            source_names,
            name_to_source,
            service_ids: service_ids.to_vec(),
            days,
            fwd: BTreeMap::new(),
            rev: BTreeMap::new(),
            report_json,
        };
        index.build_adjacency();
        Ok(index)
    }

    /// Precomputes forward (dependencies) and reverse (dependents)
    /// adjacency over the latest snapshot. Pair evidence is undirected,
    /// so a pair edge appears in both maps in both directions; an L3
    /// citation is directed app → service.
    fn build_adjacency(&mut self) {
        let Some(latest) = self.days.values().next_back() else {
            return;
        };
        let mut fwd: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        let mut rev: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for (a, b) in latest.l1.iter().chain(latest.l2.iter()) {
            let (na, nb) = (self.source_label(a), self.source_label(b));
            fwd.entry(na.clone()).or_default().insert(nb.clone());
            fwd.entry(nb.clone()).or_default().insert(na.clone());
            rev.entry(na.clone()).or_default().insert(nb.clone());
            rev.entry(nb).or_default().insert(na);
        }
        for (app, svc) in latest.l3.iter() {
            let (na, ns) = (self.source_label(app), self.service_label(svc));
            fwd.entry(na.clone()).or_default().insert(ns.clone());
            rev.entry(ns).or_default().insert(na);
        }
        self.fwd = fwd;
        self.rev = rev;
    }

    /// This index's build generation (monotonic across hot swaps).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The mined snapshots in day order.
    pub fn days(&self) -> impl Iterator<Item = &DayModels> {
        self.days.values()
    }

    /// The snapshot whose window starts at `day`, if mined.
    pub fn day(&self, day: i64) -> Option<&DayModels> {
        self.days.get(&day)
    }

    /// The most recent snapshot, if any.
    pub fn latest(&self) -> Option<&DayModels> {
        self.days.values().next_back()
    }

    /// Number of interned sources.
    pub fn n_sources(&self) -> usize {
        self.source_names.len()
    }

    /// The service-directory ids the L3 detector mined against.
    pub fn service_ids(&self) -> &[String] {
        &self.service_ids
    }

    /// The captured build report (deterministic JSON).
    pub fn report_json(&self) -> &str {
        &self.report_json
    }

    /// Display name of a source id.
    pub fn source_label(&self, id: SourceId) -> String {
        self.source_names
            .get(id.index())
            .cloned()
            .unwrap_or_else(|| format!("source#{}", id.0))
    }

    /// Display label of a service index.
    pub fn service_label(&self, idx: usize) -> String {
        self.service_ids
            .get(idx)
            .cloned()
            .unwrap_or_else(|| format!("service#{idx}"))
    }

    /// Resolves a source name to its id.
    pub fn find_source(&self, name: &str) -> Option<SourceId> {
        self.name_to_source.get(name).copied()
    }

    /// Whether `name` is a known node (source or service id).
    pub fn knows(&self, name: &str) -> bool {
        self.name_to_source.contains_key(name) || self.service_ids.iter().any(|s| s == name)
    }

    /// Per-detector evidence for the pair `(src, dst)` on the latest
    /// snapshot, plus the start days of every snapshot where any
    /// detector saw the pair. `None` when `src` is unknown.
    pub fn pair_evidence(&self, src: &str, dst: &str) -> Option<PairEvidence> {
        let sid = self.find_source(src)?;
        let did = self.find_source(dst);
        let svc_idx = self.service_ids.iter().position(|s| s == dst);
        let rev_sid = self.find_source(dst);
        let rev_svc = self.service_ids.iter().position(|s| s == src);
        let layer_hits = |d: &DayModels| {
            let l1 = matches!(did, Some(d2) if d.l1.contains(sid, d2));
            let l2 = matches!(did, Some(d2) if d.l2.contains(sid, d2));
            let l3 = matches!(svc_idx, Some(i) if d.l3.contains(sid, i))
                || matches!((rev_sid, rev_svc), (Some(r), Some(i)) if d.l3.contains(r, i));
            (l1, l2, l3)
        };
        let (l1, l2, l3) = self
            .latest()
            .map(layer_hits)
            .unwrap_or((false, false, false));
        let days_seen: Vec<i64> = self
            .days
            .values()
            .filter(|d| {
                let (a, b, c) = layer_hits(d);
                a || b || c
            })
            .map(|d| d.day)
            .collect();
        Some(PairEvidence {
            l1,
            l2,
            l3,
            days_seen,
        })
    }

    /// Transitive dependents of `node` (reverse-adjacency BFS) up to
    /// `depth` hops, as `(name, distance)` in (distance, name) order.
    pub fn impact(&self, node: &str, depth: usize) -> Vec<(String, usize)> {
        let mut dist: BTreeMap<&str, usize> = BTreeMap::new();
        let mut frontier: BTreeSet<&str> = BTreeSet::new();
        frontier.insert(node);
        let mut out = Vec::new();
        for d in 1..=depth {
            let mut next: BTreeSet<&str> = BTreeSet::new();
            for cur in &frontier {
                let Some(dependents) = self.rev.get(*cur) else {
                    continue;
                };
                for dep in dependents {
                    if dep.as_str() != node && !dist.contains_key(dep.as_str()) {
                        dist.insert(dep, d);
                        next.insert(dep);
                    }
                }
            }
            for name in &next {
                out.push(((*name).to_owned(), d));
            }
            if next.is_empty() {
                break;
            }
            frontier = next;
        }
        out
    }

    /// Direct dependencies of `node` on the latest snapshot.
    pub fn dependencies(&self, node: &str) -> Vec<String> {
        self.fwd
            .get(node)
            .map(|s| s.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Per-layer churn between the snapshots starting at `from` and
    /// `to`. `None` when either day was not mined.
    pub fn churn_between(&self, from: i64, to: i64) -> Option<LayerChurn> {
        let a = self.days.get(&from)?;
        let b = self.days.get(&to)?;
        Some(LayerChurn {
            l1: pair_churn(&a.l1, &b.l1),
            l2: pair_churn(&a.l2, &b.l2),
            l3: app_service_churn(&a.l3, &b.l3),
        })
    }

    /// Every adjacent-day transition ranked most-churned first
    /// (ties broken by earlier `from` day), truncated to `top`.
    pub fn top_churn(&self, top: usize) -> Vec<TransitionChurn> {
        let days: Vec<i64> = self.days.keys().copied().collect();
        let mut out: Vec<TransitionChurn> = days
            .windows(2)
            .filter_map(|w| {
                let (&from, &to) = (w.first()?, w.get(1)?);
                let c = self.churn_between(from, to)?;
                let n_changes = c.l1.n_changes() + c.l2.n_changes() + c.l3.n_changes();
                let n_stable = c.l1.stable.len() + c.l2.stable.len() + c.l3.stable.len();
                Some(TransitionChurn {
                    from,
                    to,
                    n_changes,
                    n_stable,
                    stability_permille: permille(n_stable, n_stable + n_changes),
                })
            })
            .collect();
        out.sort_by(|a, b| b.n_changes.cmp(&a.n_changes).then(a.from.cmp(&b.from)));
        out.truncate(top);
        out
    }
}

/// Per-detector evidence for one queried pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairEvidence {
    /// L1 declared the pair dependent on the latest snapshot.
    pub l1: bool,
    /// L2 declared the pair dependent on the latest snapshot.
    pub l2: bool,
    /// L3 cited the pair (either direction app → service).
    pub l3: bool,
    /// Window-start days where any detector saw the pair.
    pub days_seen: Vec<i64>,
}

impl PairEvidence {
    /// Whether any detector saw the pair on the latest snapshot.
    pub fn detected(&self) -> bool {
        self.l1 || self.l2 || self.l3
    }
}

/// Rounded integer permille of `part / whole`; an empty whole is a
/// perfectly stable (1000‰) transition, matching `Churn::stability`.
pub fn permille(part: usize, whole: usize) -> u64 {
    if whole == 0 {
        return 1000;
    }
    ((part as u64) * 1000 + (whole as u64) / 2) / (whole as u64)
}

fn mine_days(
    store: &LogStore,
    service_ids: &[String],
    cfg: &PipelineConfig,
    plan: &IndexPlan,
    cache: &mut EvidenceCache,
) -> Result<BTreeMap<i64, DayModels>, ServeError> {
    let mut days = BTreeMap::new();
    for step in 0..plan.steps {
        let window = plan.window(step);
        let outcome = logdep::run_window_cached(store, window, service_ids, cfg, cache)
            .map_err(|e| ServeError::Build(format!("window step {step}: {e}")))?;
        let day = plan.day(step);
        days.insert(
            day,
            DayModels {
                day,
                end_day: day + plan.window_days,
                l1: outcome.l1.map(|r| r.detected).unwrap_or_default(),
                l2: outcome.l2.map(|r| r.detected).unwrap_or_default(),
                l3: outcome.l3.map(|r| r.detected).unwrap_or_default(),
            },
        );
    }
    Ok(days)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permille_edges() {
        assert_eq!(permille(0, 0), 1000);
        assert_eq!(permille(0, 5), 0);
        assert_eq!(permille(5, 5), 1000);
        assert_eq!(permille(1, 3), 333);
        assert_eq!(permille(2, 3), 667);
    }

    #[test]
    fn empty_index_answers_unknown() {
        let idx = ModelIndex::empty(7);
        assert_eq!(idx.generation(), 7);
        assert!(idx.latest().is_none());
        assert!(!idx.knows("App00"));
        assert!(idx.pair_evidence("a", "b").is_none());
        assert!(idx.impact("a", 4).is_empty());
        assert!(idx.top_churn(3).is_empty());
    }
}
