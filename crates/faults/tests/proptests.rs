//! Determinism properties of the fault injector: the transform is a
//! pure function of `(store, config)`. Same seed + same config must
//! produce a byte-identical stream and an identical ledger, regardless
//! of how hostile the input records are; a different seed at nonzero
//! intensity must (in practice) diverge; and intensity 0 must be the
//! identity for any input.

use logdep_faults::{inject, inject_records, FaultConfig};
use logdep_logstore::record::{LogRecord, Severity};
use logdep_logstore::store::LogStore;
use logdep_logstore::time::Millis;
use proptest::prelude::*;

fn severity(tag: u8) -> Severity {
    match tag % 4 {
        0 => Severity::Debug,
        1 => Severity::Info,
        2 => Severity::Warning,
        _ => Severity::Error,
    }
}

/// Builds a finalized store from proptest-generated raw rows.
fn build_store(rows: &[(u8, i64, u8, String)]) -> LogStore {
    let mut store = LogStore::new();
    for (src, ts, sev, text) in rows {
        let source = store.registry.source(&format!("App{}", src % 8));
        store.push(
            LogRecord::minimal(source, Millis(*ts))
                .with_severity(severity(*sev))
                .with_text(text.clone()),
        );
    }
    store.finalize();
    store
}

fn rows() -> impl Strategy<Value = Vec<(u8, i64, u8, String)>> {
    proptest::collection::vec(
        (any::<u8>(), 0..86_400_000i64, any::<u8>(), "[ -~\t]{0,40}"),
        0..120,
    )
}

proptest! {
    #[test]
    fn same_seed_and_config_is_deterministic(
        raw in rows(),
        seed in any::<u64>(),
        intensity in 0.0..1.0f64,
    ) {
        let store = build_store(&raw);
        let cfg = FaultConfig::at_intensity(seed, intensity);
        let a = inject(&store, &cfg);
        let b = inject(&store, &cfg);
        prop_assert_eq!(&a.tsv, &b.tsv, "stream must be byte-identical");
        prop_assert_eq!(a.ledger, b.ledger, "ledger must be identical");
    }

    #[test]
    fn intensity_zero_is_identity_for_any_input(
        raw in rows(),
        seed in any::<u64>(),
    ) {
        let store = build_store(&raw);
        let inj = inject(&store, &FaultConfig::off(seed));
        prop_assert_eq!(inj.ledger.input_records, store.len());
        prop_assert_eq!(inj.ledger.output_records, store.len());
        prop_assert_eq!(inj.ledger.total_lost(), 0);
        prop_assert_eq!(inj.ledger.duplicated, 0);
        prop_assert_eq!(inj.ledger.reordered, 0);
        prop_assert_eq!(inj.ledger.jittered, 0);
        prop_assert_eq!(inj.ledger.corruption.total(), 0);
        prop_assert!(inj.ledger.skew_applied_ms.is_empty());
        // Delivered records equal the store's records, in order.
        let (delivered, _) = inject_records(&store, &FaultConfig::off(seed));
        prop_assert_eq!(delivered.as_slice(), store.records());
    }

    #[test]
    fn ledger_record_accounting_balances(
        raw in rows(),
        seed in any::<u64>(),
        intensity in 0.0..1.0f64,
    ) {
        let store = build_store(&raw);
        let cfg = FaultConfig::at_intensity(seed, intensity);
        let (delivered, ledger) = inject_records(&store, &cfg);
        // in + duplicated == delivered + dropped + blackout-dropped
        prop_assert_eq!(
            ledger.input_records + ledger.duplicated,
            delivered.len() + ledger.dropped + ledger.blackout_dropped
        );
        prop_assert_eq!(ledger.output_records, delivered.len());
        prop_assert_eq!(
            ledger.blackout_dropped,
            ledger.blackouts.iter().map(|w| w.dropped).sum::<usize>()
        );
    }

    #[test]
    fn tsv_line_count_matches_ledger(
        raw in rows(),
        seed in any::<u64>(),
        intensity in 0.0..1.0f64,
    ) {
        let store = build_store(&raw);
        let inj = inject(&store, &FaultConfig::at_intensity(seed, intensity));
        let nonempty = inj.tsv.lines().filter(|l| !l.is_empty()).count();
        prop_assert_eq!(nonempty, inj.ledger.output_lines);
    }
}
