//! Byte-level corruption primitives and the crash-point counter for
//! durability testing.
//!
//! The other modules of this crate damage *log streams*; this one
//! damages *persisted state*. A process killed mid-write leaves one of
//! three observable wrecks behind: a torn file (only a prefix landed),
//! a truncated file (the tail never made it to the platter), or a
//! bit-flipped file (sector damage, or a buffer written from a
//! corrupted page). [`corrupt_bytes`] reproduces each deterministically
//! from a seed, and [`CrashPoint`] counts durable writes so a harness
//! can abort "at the Kth write" and sweep every K.
//!
//! ```
//! use logdep_faults::crash::{corrupt_bytes, CrashPoint, Corruption};
//!
//! let original = b"SEG 0 5 42\nhello\n".to_vec();
//! let torn = corrupt_bytes(&original, Corruption::TornPrefix, 7);
//! assert!(torn.len() < original.len(), "a torn write is a strict prefix");
//! assert_eq!(&original[..torn.len()], &torn[..]);
//!
//! // Same seed, same damage — the whole point.
//! assert_eq!(torn, corrupt_bytes(&original, Corruption::TornPrefix, 7));
//!
//! let mut crash = CrashPoint::at(2);
//! assert!(!crash.strike(), "first write proceeds");
//! assert!(crash.strike(), "second write is the crash");
//! assert!(!crash.strike(), "later writes never fire again");
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The ways a durable write can be damaged by a crash or by storage rot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corruption {
    /// Only a strict prefix of the bytes landed (a torn write).
    TornPrefix,
    /// One bit of the payload flipped (sector/page damage).
    BitFlip,
    /// Between one byte and the whole tail was cut off.
    TruncateTail,
}

impl Corruption {
    /// Every corruption mode, for exhaustive sweeps.
    pub const ALL: [Corruption; 3] = [
        Corruption::TornPrefix,
        Corruption::BitFlip,
        Corruption::TruncateTail,
    ];

    /// Stable name for reports and ledgers.
    pub fn name(self) -> &'static str {
        match self {
            Corruption::TornPrefix => "torn-prefix",
            Corruption::BitFlip => "bit-flip",
            Corruption::TruncateTail => "truncate-tail",
        }
    }
}

impl std::fmt::Display for Corruption {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// SplitMix64 finalizer — decorrelates seed/stage pairs (same idiom as
/// the stream injector's staging).
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn rng_for(seed: u64, stage: u64) -> StdRng {
    StdRng::seed_from_u64(splitmix(seed ^ splitmix(stage)))
}

/// Applies one deterministic corruption to `bytes`. Every mode is
/// guaranteed to return something *different* from the input (the
/// contract the "every corruption is detected" proptests rely on),
/// except on empty input, which is returned unchanged — there is
/// nothing to damage.
pub fn corrupt_bytes(bytes: &[u8], kind: Corruption, seed: u64) -> Vec<u8> {
    if bytes.is_empty() {
        return Vec::new();
    }
    let mut rng = rng_for(
        seed,
        match kind {
            Corruption::TornPrefix => 101,
            Corruption::BitFlip => 102,
            Corruption::TruncateTail => 103,
        },
    );
    match kind {
        Corruption::TornPrefix => {
            // Keep a strict prefix: anywhere from nothing to all-but-one.
            let keep = rng.gen_range(0..bytes.len());
            bytes.get(..keep).map(<[u8]>::to_vec).unwrap_or_default()
        }
        Corruption::BitFlip => {
            let mut out = bytes.to_vec();
            let pos = rng.gen_range(0..out.len());
            let bit = rng.gen_range(0..8u32);
            if let Some(b) = out.get_mut(pos) {
                *b ^= 1u8 << bit;
            }
            out
        }
        Corruption::TruncateTail => {
            let cut = rng.gen_range(1..=bytes.len());
            let keep = bytes.len() - cut;
            bytes.get(..keep).map(<[u8]>::to_vec).unwrap_or_default()
        }
    }
}

/// Counts durable writes and fires exactly once, at the Kth one —
/// the deterministic "kill -9 at write K" a crash-recovery sweep
/// iterates over. Write indices are 1-based; `CrashPoint::at(0)`
/// never fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPoint {
    target: u64,
    seen: u64,
}

impl CrashPoint {
    /// A crash scheduled at the `k`th durable write (1-based).
    pub fn at(k: u64) -> Self {
        Self { target: k, seen: 0 }
    }

    /// Records one durable write; returns `true` exactly when this
    /// write is the scheduled crash.
    pub fn strike(&mut self) -> bool {
        self.seen = self.seen.saturating_add(1);
        self.target != 0 && self.seen == self.target
    }

    /// Number of durable writes observed so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corruption_is_deterministic_and_always_differs() {
        let bytes: Vec<u8> = (0u8..=255).cycle().take(4_000).collect();
        for kind in Corruption::ALL {
            for seed in 0..50u64 {
                let a = corrupt_bytes(&bytes, kind, seed);
                let b = corrupt_bytes(&bytes, kind, seed);
                assert_eq!(a, b, "{kind} seed {seed} not deterministic");
                assert_ne!(a, bytes, "{kind} seed {seed} left the bytes intact");
            }
        }
    }

    #[test]
    fn torn_and_truncated_outputs_are_strict_prefixes() {
        let bytes = b"0123456789abcdef".to_vec();
        for seed in 0..64u64 {
            for kind in [Corruption::TornPrefix, Corruption::TruncateTail] {
                let out = corrupt_bytes(&bytes, kind, seed);
                assert!(out.len() < bytes.len(), "{kind}: not shorter");
                assert_eq!(&bytes[..out.len()], &out[..], "{kind}: not a prefix");
            }
        }
    }

    #[test]
    fn bit_flip_changes_exactly_one_bit() {
        let bytes = vec![0u8; 257];
        for seed in 0..64u64 {
            let out = corrupt_bytes(&bytes, Corruption::BitFlip, seed);
            assert_eq!(out.len(), bytes.len());
            let flipped: u32 = out
                .iter()
                .zip(&bytes)
                .map(|(a, b)| (a ^ b).count_ones())
                .sum();
            assert_eq!(flipped, 1, "seed {seed}");
        }
    }

    #[test]
    fn empty_input_is_untouched() {
        for kind in Corruption::ALL {
            assert!(corrupt_bytes(&[], kind, 9).is_empty());
        }
    }

    #[test]
    fn crash_point_fires_exactly_once() {
        let mut c = CrashPoint::at(3);
        let fired: Vec<bool> = (0..6).map(|_| c.strike()).collect();
        assert_eq!(fired, vec![false, false, true, false, false, false]);
        assert_eq!(c.seen(), 6);
        let mut never = CrashPoint::at(0);
        assert!((0..10).all(|_| !never.strike()));
    }

    #[test]
    fn display_names_are_stable() {
        assert_eq!(Corruption::TornPrefix.to_string(), "torn-prefix");
        assert_eq!(Corruption::BitFlip.to_string(), "bit-flip");
        assert_eq!(Corruption::TruncateTail.to_string(), "truncate-tail");
    }
}
