//! The injector: record-level faults, delivery reordering, and
//! line-level corruption, all deterministic in the config seed.

use crate::config::FaultConfig;
use crate::ledger::{BlackoutWindow, CorruptionCounts, FaultLedger};
use logdep_logstore::codec::write_record;
use logdep_logstore::{LogRecord, LogStore, Millis};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A faulted stream: the TSV text a consolidation job would receive,
/// plus the ledger of everything that was done to it.
#[derive(Debug, Clone, PartialEq)]
pub struct Injection {
    /// The delivery stream as TSV lines (newline-terminated).
    pub tsv: String,
    /// What was injected.
    pub ledger: FaultLedger,
}

/// SplitMix64 step, used to derive independent per-stage seeds so that
/// adding records to one stage never perturbs another.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn rng_for(seed: u64, stage: u64) -> StdRng {
    StdRng::seed_from_u64(splitmix(seed ^ splitmix(stage)))
}

/// Small-λ Poisson sample (Knuth), for blackout counts.
fn sample_count(rng: &mut StdRng, lambda: f64) -> usize {
    if lambda <= 0.0 {
        return 0;
    }
    let limit = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    while p > limit && k < 1_000 {
        p *= rng.gen_range(0.0..1.0_f64);
        k += 1;
    }
    k.saturating_sub(1)
}

/// Applies the record-level fault classes (skew, jitter, drops,
/// blackouts, duplication, delivery reordering) and returns the
/// delivered records in delivery order. The store must be finalized.
///
/// Line-level corruption is not applied here — use [`inject`] for the
/// full transform down to TSV text.
pub fn inject_records(store: &LogStore, cfg: &FaultConfig) -> (Vec<LogRecord>, FaultLedger) {
    let mut ledger = FaultLedger {
        input_records: store.len(),
        ..FaultLedger::default()
    };

    // --- Per-source clock skew offsets (stage 1).
    let mut skew_rng = rng_for(cfg.seed, 1);
    let n_sources = store.registry.source_count();
    let mut skew = vec![0i64; n_sources];
    for (idx, offset) in skew.iter_mut().enumerate() {
        if cfg.skew_ms > 0 {
            *offset = skew_rng.gen_range(-cfg.skew_ms..=cfg.skew_ms);
        }
        if *offset != 0 {
            if let Some(name) = store.registry.sources.name(idx as u32) {
                ledger.skew_applied_ms.insert(name.to_owned(), *offset);
            }
        }
    }

    // --- Blackout windows (stage 2), placed over the true time span.
    let mut blackout_rng = rng_for(cfg.seed, 2);
    let span = store
        .records()
        .first()
        .zip(store.records().last())
        .map(|(a, b)| (a.client_ts.as_millis(), b.client_ts.as_millis()));
    if let Some((lo, hi)) = span {
        if cfg.blackouts_per_source > 0.0 && cfg.blackout_ms > 0 && hi > lo {
            for idx in 0..n_sources {
                let n = sample_count(&mut blackout_rng, cfg.blackouts_per_source);
                for _ in 0..n {
                    let start = blackout_rng.gen_range(lo..hi.max(lo + 1));
                    if let Some(name) = store.registry.sources.name(idx as u32) {
                        ledger.blackouts.push(BlackoutWindow {
                            source: name.to_owned(),
                            start_ms: start,
                            end_ms: start + cfg.blackout_ms,
                            dropped: 0,
                        });
                    }
                }
            }
        }
    }

    // --- Record pass (stage 3): blackout, drop, skew+jitter, duplicate.
    let mut rec_rng = rng_for(cfg.seed, 3);
    let mut delivered: Vec<LogRecord> = Vec::with_capacity(store.len());
    for rec in store.records() {
        let t = rec.client_ts.as_millis();
        let source_name = store.registry.source_name(rec.source);
        if let Some(window) = ledger
            .blackouts
            .iter_mut()
            .find(|w| w.source == source_name && w.start_ms <= t && t < w.end_ms)
        {
            window.dropped += 1;
            ledger.blackout_dropped += 1;
            continue;
        }
        if cfg.drop_prob > 0.0 && rec_rng.gen_bool(cfg.drop_prob.clamp(0.0, 1.0)) {
            ledger.dropped += 1;
            continue;
        }
        let jitter = if cfg.jitter_ms > 0 {
            rec_rng.gen_range(-cfg.jitter_ms..=cfg.jitter_ms)
        } else {
            0
        };
        if jitter != 0 {
            ledger.jittered += 1;
        }
        let mut out = rec.clone();
        let offset = skew.get(out.source.index()).copied().unwrap_or(0);
        out.client_ts = Millis(t + offset + jitter);
        let duplicate =
            cfg.duplicate_prob > 0.0 && rec_rng.gen_bool(cfg.duplicate_prob.clamp(0.0, 1.0));
        if duplicate {
            ledger.duplicated += 1;
            delivered.push(out.clone());
        }
        delivered.push(out);
    }

    // --- Delivery reordering (stage 4): bounded forward displacement.
    let mut reorder_rng = rng_for(cfg.seed, 4);
    if cfg.reorder_prob > 0.0 && cfg.reorder_window > 0 {
        let n = delivered.len();
        for i in 0..n {
            if !reorder_rng.gen_bool(cfg.reorder_prob.clamp(0.0, 1.0)) {
                continue;
            }
            let j = (i + reorder_rng.gen_range(1..=cfg.reorder_window)).min(n - 1);
            if j != i {
                delivered.swap(i, j);
                ledger.reordered += 1;
            }
        }
    }

    ledger.output_records = delivered.len();
    (delivered, ledger)
}

/// Runs the full transform: record-level faults, TSV serialization, and
/// line-level corruption. The store must be finalized.
pub fn inject(store: &LogStore, cfg: &FaultConfig) -> Injection {
    let (records, mut ledger) = inject_records(store, cfg);

    let mut corrupt_rng = rng_for(cfg.seed, 5);
    let mut tsv = String::new();
    let mut corruption = CorruptionCounts::default();
    let mut output_lines = 0usize;
    for rec in &records {
        let mut buf: Vec<u8> = Vec::with_capacity(rec.text.len() + 48);
        if write_record(&mut buf, rec, &store.registry).is_err() {
            // Writing into a Vec cannot fail; guard instead of panicking.
            continue;
        }
        let line_full = String::from_utf8_lossy(&buf);
        let mut line = line_full.trim_end_matches('\n').to_owned();
        if cfg.corrupt_prob > 0.0 && corrupt_rng.gen_bool(cfg.corrupt_prob.clamp(0.0, 1.0)) {
            line = corrupt_line(&line, &mut corruption, &mut corrupt_rng);
        }
        if !line.is_empty() {
            output_lines += 1;
        }
        tsv.push_str(&line);
        tsv.push('\n');
    }
    ledger.corruption = corruption;
    ledger.output_lines = output_lines;
    Injection { tsv, ledger }
}

/// Garbage characters a failing shipper smears into a line.
const GARBAGE: &[char] = &['#', '$', '%', '&', '@', '^', '~', '?', '*', '\u{fffd}'];

/// Applies one corruption kind to a line, recording it in `counts`.
fn corrupt_line(line: &str, counts: &mut CorruptionCounts, rng: &mut StdRng) -> String {
    match rng.gen_range(0..3u8) {
        0 => {
            // Truncation: the collector died mid-write.
            counts.truncated += 1;
            let mut cut = rng.gen_range(0..=line.len());
            while cut > 0 && !line.is_char_boundary(cut) {
                cut -= 1;
            }
            line.get(..cut).unwrap_or("").to_owned()
        }
        1 => {
            // Garbage bytes: a span overwritten in transit.
            counts.garbage += 1;
            let chars: Vec<char> = line.chars().collect();
            if chars.is_empty() {
                return GARBAGE.iter().collect();
            }
            let start = rng.gen_range(0..chars.len());
            let len = rng.gen_range(1..=12usize).min(chars.len() - start);
            let mut out: String = chars[..start].iter().collect();
            for _ in 0..len {
                out.push(GARBAGE[rng.gen_range(0..GARBAGE.len())]);
            }
            out.extend(chars[start + len..].iter());
            out
        }
        _ => {
            // Mangled timestamp: a locale-formatted or hex-prefixed
            // client timestamp the parser must reject.
            counts.mangled_timestamp += 1;
            match line.split_once('\t') {
                Some((ts, rest)) => {
                    let mangled = if rng.gen_bool(0.5) {
                        format!("{}:{:02}", ts, rng.gen_range(0..60u8))
                    } else {
                        format!("0x{ts}")
                    };
                    format!("{mangled}\t{rest}")
                }
                None => format!("0x{line}"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logdep_logstore::codec::read_store;
    use logdep_logstore::registry::SourceId;

    fn store(n: usize) -> LogStore {
        let mut s = LogStore::new();
        let a = s.registry.source("AppA");
        let b = s.registry.source("AppB");
        for i in 0..n {
            let src = if i % 2 == 0 { a } else { b };
            s.push(
                LogRecord::minimal(src, Millis(i as i64 * 500)).with_text(format!("record {i}")),
            );
        }
        s.finalize();
        s
    }

    #[test]
    fn identity_round_trips_exactly() {
        let s = store(200);
        let inj = inject(&s, &FaultConfig::off(9));
        assert_eq!(inj.ledger.input_records, 200);
        assert_eq!(inj.ledger.output_records, 200);
        assert_eq!(inj.ledger.output_lines, 200);
        assert_eq!(inj.ledger.total_lost(), 0);
        assert_eq!(inj.ledger.corruption.total(), 0);
        assert!(inj.ledger.skew_applied_ms.is_empty());
        let (parsed, errors) = read_store(inj.tsv.as_bytes()).expect("read back");
        assert!(errors.is_empty());
        assert_eq!(parsed.len(), s.len());
        for (x, y) in s.records().iter().zip(parsed.records()) {
            assert_eq!(x.client_ts, y.client_ts);
            assert_eq!(x.text, y.text);
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let s = store(300);
        let cfg = FaultConfig::at_intensity(17, 0.7);
        let a = inject(&s, &cfg);
        let b = inject(&s, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let s = store(300);
        let a = inject(&s, &FaultConfig::at_intensity(1, 0.7));
        let b = inject(&s, &FaultConfig::at_intensity(2, 0.7));
        assert_ne!(a.tsv, b.tsv);
    }

    #[test]
    fn ledger_accounts_for_every_record() {
        let s = store(1_000);
        let (delivered, ledger) = inject_records(&s, &FaultConfig::at_intensity(5, 0.8));
        assert_eq!(
            ledger.input_records + ledger.duplicated,
            delivered.len() + ledger.dropped + ledger.blackout_dropped,
        );
        assert!(ledger.dropped > 0, "0.8 intensity should drop records");
        assert!(ledger.duplicated > 0);
        assert_eq!(
            ledger.blackout_dropped,
            ledger.blackouts.iter().map(|w| w.dropped).sum::<usize>()
        );
    }

    #[test]
    fn corruption_produces_parse_errors() {
        let s = store(1_000);
        let inj = inject(&s, &FaultConfig::at_intensity(5, 0.9));
        assert!(inj.ledger.corruption.total() > 0);
        let (_, errors) = read_store(inj.tsv.as_bytes()).expect("read back");
        assert!(
            !errors.is_empty(),
            "corrupted lines should fail to parse: {:?}",
            inj.ledger.corruption
        );
    }

    #[test]
    fn skew_moves_whole_sources() {
        let mut cfg = FaultConfig::off(33);
        cfg.skew_ms = 60_000;
        let s = store(50);
        let (delivered, ledger) = inject_records(&s, &cfg);
        assert!(!ledger.skew_applied_ms.is_empty());
        // Every record of a skewed source is offset by the same amount.
        let offset = ledger.skew_applied_ms.get("AppA").copied();
        if let Some(off) = offset {
            for (orig, out) in s.records().iter().zip(&delivered) {
                if orig.source == SourceId(0) {
                    assert_eq!(out.client_ts.as_millis(), orig.client_ts.as_millis() + off);
                }
            }
        }
    }

    #[test]
    fn empty_store_is_harmless() {
        let mut s = LogStore::new();
        s.finalize();
        let inj = inject(&s, &FaultConfig::at_intensity(3, 1.0));
        assert_eq!(inj.tsv, "");
        assert_eq!(inj.ledger.input_records, 0);
        assert_eq!(inj.ledger.output_records, 0);
    }
}
