//! Deterministic fault injection for log streams.
//!
//! The paper mines *messy* production logs; the simulator emits pristine
//! ones. This crate closes the gap: it takes a finalized
//! [`LogStore`](logdep_logstore::LogStore) and re-emits it as the hostile
//! TSV stream a real consolidation job would receive — with per-source
//! clock skew and per-record jitter, out-of-order delivery, record
//! duplication, lossy drops, per-source blackout windows (log-rotation
//! gaps) and line-level corruption (truncation, garbage bytes, mangled
//! timestamps). Every fault class has an intensity knob in
//! [`FaultConfig`], everything derives deterministically from one seed,
//! and a machine-readable [`FaultLedger`] records exactly what was
//! injected, so robustness experiments can correlate observed pipeline
//! degradation with injected damage.
//!
//! ```
//! use logdep_faults::{inject, FaultConfig};
//! use logdep_logstore::{LogRecord, LogStore, Millis};
//!
//! let mut store = LogStore::new();
//! let app = store.registry.source("AppA");
//! for t in 0..50 {
//!     store.push(LogRecord::minimal(app, Millis(t * 1_000)).with_text("tick"));
//! }
//! store.finalize();
//!
//! // Intensity 0 is the identity transform...
//! let clean = inject(&store, &FaultConfig::at_intensity(7, 0.0));
//! assert_eq!(clean.ledger.dropped, 0);
//! assert_eq!(clean.ledger.output_lines, 50);
//!
//! // ...and the same seed + config always produces the same stream.
//! let a = inject(&store, &FaultConfig::at_intensity(7, 0.8));
//! let b = inject(&store, &FaultConfig::at_intensity(7, 0.8));
//! assert_eq!(a.tsv, b.tsv);
//! assert_eq!(a.ledger, b.ledger);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod crash;
pub mod inject;
pub mod ledger;

pub use config::FaultConfig;
pub use crash::{corrupt_bytes, Corruption, CrashPoint};
pub use inject::{inject, inject_records, Injection};
pub use ledger::{BlackoutWindow, CorruptionCounts, FaultLedger};
