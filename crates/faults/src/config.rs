//! Fault-injection configuration.

use serde::{Deserialize, Serialize};

/// All fault knobs, each independently tunable. [`FaultConfig::off`] is
/// the identity transform; [`FaultConfig::at_intensity`] scales every
/// knob linearly between `off` and a calibrated worst-case profile so a
/// sweep needs only one parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Master seed. Same seed + same config ⇒ identical output stream
    /// and ledger.
    pub seed: u64,
    /// Maximum per-source clock-skew magnitude, ms. Each source draws a
    /// fixed offset uniformly from `[-skew_ms, skew_ms]` applied to all
    /// of its client timestamps (NT-domain drift, §4.2 of the paper).
    pub skew_ms: i64,
    /// Maximum per-record timestamp jitter, ms (uniform, symmetric).
    pub jitter_ms: i64,
    /// Probability that a record is displaced in delivery order.
    pub reorder_prob: f64,
    /// Maximum displacement distance, in records, for a reordered record.
    pub reorder_window: usize,
    /// Probability that a record is delivered twice (at-least-once
    /// shippers retransmitting on unacknowledged batches).
    pub duplicate_prob: f64,
    /// Probability that a record is silently lost.
    pub drop_prob: f64,
    /// Expected number of blackout windows per source over the whole
    /// stream (log-rotation gaps: the file is mid-rotation and nothing
    /// of that source reaches the collector).
    pub blackouts_per_source: f64,
    /// Length of one blackout window, ms.
    pub blackout_ms: i64,
    /// Probability that a serialized TSV line is corrupted (truncated,
    /// overwritten with garbage bytes, or given a mangled timestamp).
    pub corrupt_prob: f64,
}

/// Worst-case profile at intensity 1.0: two minutes of skew, heavy
/// reordering, and roughly a quarter of the stream damaged or lost.
const MAX_SKEW_MS: f64 = 120_000.0;
const MAX_JITTER_MS: f64 = 2_000.0;
const MAX_REORDER_PROB: f64 = 0.25;
const MAX_DUPLICATE_PROB: f64 = 0.12;
const MAX_DROP_PROB: f64 = 0.12;
const MAX_BLACKOUTS_PER_SOURCE: f64 = 2.0;
const MAX_CORRUPT_PROB: f64 = 0.10;

impl FaultConfig {
    /// The identity transform: no fault class is active.
    pub fn off(seed: u64) -> Self {
        Self::at_intensity(seed, 0.0)
    }

    /// Scales every knob linearly with `intensity` in `[0, 1]` (values
    /// outside are clamped). Intensity 0 is the identity; intensity 1
    /// is the calibrated worst-case profile.
    pub fn at_intensity(seed: u64, intensity: f64) -> Self {
        let x = intensity.clamp(0.0, 1.0);
        Self {
            seed,
            skew_ms: (x * MAX_SKEW_MS) as i64,
            jitter_ms: (x * MAX_JITTER_MS) as i64,
            reorder_prob: x * MAX_REORDER_PROB,
            reorder_window: 64,
            duplicate_prob: x * MAX_DUPLICATE_PROB,
            drop_prob: x * MAX_DROP_PROB,
            blackouts_per_source: x * MAX_BLACKOUTS_PER_SOURCE,
            blackout_ms: 10 * 60 * 1_000,
            corrupt_prob: x * MAX_CORRUPT_PROB,
        }
    }

    /// True when every fault class is inactive (the identity transform).
    pub fn is_identity(&self) -> bool {
        self.skew_ms == 0
            && self.jitter_ms == 0
            && self.reorder_prob <= 0.0
            && self.duplicate_prob <= 0.0
            && self.drop_prob <= 0.0
            && self.blackouts_per_source <= 0.0
            && self.corrupt_prob <= 0.0
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self::at_intensity(0, 0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intensity_zero_is_identity() {
        let c = FaultConfig::at_intensity(3, 0.0);
        assert!(c.is_identity());
        assert_eq!(c, FaultConfig::off(3));
    }

    #[test]
    fn intensity_scales_monotonically() {
        let lo = FaultConfig::at_intensity(0, 0.2);
        let hi = FaultConfig::at_intensity(0, 0.9);
        assert!(lo.skew_ms < hi.skew_ms);
        assert!(lo.drop_prob < hi.drop_prob);
        assert!(lo.corrupt_prob < hi.corrupt_prob);
        assert!(!hi.is_identity());
    }

    #[test]
    fn intensity_is_clamped() {
        assert_eq!(
            FaultConfig::at_intensity(1, -3.0),
            FaultConfig::at_intensity(1, 0.0)
        );
        assert_eq!(
            FaultConfig::at_intensity(1, 7.0),
            FaultConfig::at_intensity(1, 1.0)
        );
    }
}
