//! The machine-readable record of what a fault run injected.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One per-source blackout window (a log-rotation gap).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlackoutWindow {
    /// Source (application) name the window applies to.
    pub source: String,
    /// Window start, ms since the scenario epoch (inclusive).
    pub start_ms: i64,
    /// Window end, ms (exclusive).
    pub end_ms: i64,
    /// Records of the source that fell inside and were lost.
    pub dropped: usize,
}

/// Per-kind line-corruption counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CorruptionCounts {
    /// Lines cut short mid-record.
    pub truncated: usize,
    /// Lines with a span overwritten by garbage bytes.
    pub garbage: usize,
    /// Lines whose timestamp field was mangled into a non-integer.
    pub mangled_timestamp: usize,
}

impl CorruptionCounts {
    /// Total corrupted lines.
    pub fn total(&self) -> usize {
        self.truncated + self.garbage + self.mangled_timestamp
    }
}

/// Everything one injection run did, in machine-readable form. Written
/// alongside the faulty stream so experiments can correlate observed
/// pipeline degradation with injected damage — and so tests can assert
/// byte-exact determinism.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultLedger {
    /// Records in the input store.
    pub input_records: usize,
    /// Records delivered (after drops and duplication, before line
    /// corruption — corrupted lines are still delivered, just damaged).
    pub output_records: usize,
    /// Non-empty TSV lines in the output stream.
    pub output_lines: usize,
    /// Fixed clock-skew offset applied per source, ms (only sources
    /// with a non-zero offset appear).
    pub skew_applied_ms: BTreeMap<String, i64>,
    /// Records whose timestamp received non-zero jitter.
    pub jittered: usize,
    /// Records displaced from their arrival position.
    pub reordered: usize,
    /// Records delivered twice.
    pub duplicated: usize,
    /// Records lost to random drops (excludes blackout losses).
    pub dropped: usize,
    /// Records lost inside blackout windows.
    pub blackout_dropped: usize,
    /// The blackout windows drawn, with per-window loss counts.
    pub blackouts: Vec<BlackoutWindow>,
    /// Line-corruption counts by kind.
    pub corruption: CorruptionCounts,
}

impl FaultLedger {
    /// Total records lost (random drops + blackouts).
    pub fn total_lost(&self) -> usize {
        self.dropped + self.blackout_dropped
    }

    /// Fraction of input records that were lost.
    pub fn loss_fraction(&self) -> f64 {
        if self.input_records == 0 {
            0.0
        } else {
            self.total_lost() as f64 / self.input_records as f64
        }
    }

    /// One-line human summary for CLI output.
    pub fn summary(&self) -> String {
        format!(
            "{} in -> {} delivered ({} dropped, {} blackout-lost, {} duplicated, \
             {} reordered, {} corrupted, {} skewed sources)",
            self.input_records,
            self.output_records,
            self.dropped,
            self.blackout_dropped,
            self.duplicated,
            self.reordered,
            self.corruption.total(),
            self.skew_applied_ms.len(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_fractions() {
        let mut l = FaultLedger {
            input_records: 100,
            dropped: 5,
            blackout_dropped: 15,
            ..FaultLedger::default()
        };
        assert_eq!(l.total_lost(), 20);
        assert!((l.loss_fraction() - 0.2).abs() < 1e-12);
        l.input_records = 0;
        assert_eq!(l.loss_fraction(), 0.0);
    }

    #[test]
    fn corruption_total() {
        let c = CorruptionCounts {
            truncated: 1,
            garbage: 2,
            mangled_timestamp: 3,
        };
        assert_eq!(c.total(), 6);
    }

    #[test]
    fn summary_mentions_key_counts() {
        let l = FaultLedger {
            input_records: 10,
            output_records: 9,
            dropped: 1,
            ..FaultLedger::default()
        };
        let s = l.summary();
        assert!(s.contains("10 in"));
        assert!(s.contains("9 delivered"));
        assert!(s.contains("1 dropped"));
    }
}
