//! Minimal command-line argument parsing.
//!
//! `--key value` flags plus one leading subcommand; no external parser
//! crate, per the workspace's thin-dependency policy.

use std::collections::BTreeMap;

/// A parsed command line: subcommand plus `--key value` flags.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Args {
    /// The leading subcommand.
    pub command: String,
    /// Flag values by name (without the leading dashes).
    pub flags: BTreeMap<String, String>,
}

/// Errors from parsing or flag lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// No subcommand was supplied.
    NoCommand,
    /// A flag was given without a value.
    MissingValue(String),
    /// A positional argument appeared where a flag was expected.
    UnexpectedPositional(String),
    /// A required flag is absent.
    Required(&'static str),
    /// A flag value failed to parse.
    BadValue(&'static str, String),
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::NoCommand => write!(f, "no subcommand given (try `logdep help`)"),
            ArgError::MissingValue(k) => write!(f, "flag --{k} needs a value"),
            ArgError::UnexpectedPositional(v) => {
                write!(f, "unexpected positional argument {v:?}")
            }
            ArgError::Required(k) => write!(f, "missing required flag --{k}"),
            ArgError::BadValue(k, v) => write!(f, "flag --{k}: cannot parse {v:?}"),
        }
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses `argv` (without the program name). A flag followed by
    /// another `--flag` (or by nothing) is a boolean switch and gets
    /// the value `"true"`, so `--resume` needs no explicit operand.
    pub fn parse(argv: &[String]) -> Result<Self, ArgError> {
        let mut it = argv.iter().peekable();
        let command = it.next().ok_or(ArgError::NoCommand)?.clone();
        let mut flags = BTreeMap::new();
        while let Some(token) = it.next() {
            let key = token
                .strip_prefix("--")
                .ok_or_else(|| ArgError::UnexpectedPositional(token.clone()))?;
            let value = match it.peek() {
                Some(next) if !next.starts_with("--") => it.next().cloned().unwrap_or_default(),
                _ => "true".to_owned(),
            };
            flags.insert(key.to_owned(), value);
        }
        Ok(Self { command, flags })
    }

    /// A required string flag.
    pub fn required(&self, key: &'static str) -> Result<&str, ArgError> {
        self.flags
            .get(key)
            .map(String::as_str)
            .ok_or(ArgError::Required(key))
    }

    /// An optional string flag.
    pub fn optional(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// An optional parsed flag with a default.
    pub fn parsed_or<T: std::str::FromStr>(
        &self,
        key: &'static str,
        default: T,
    ) -> Result<T, ArgError> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::BadValue(key, v.clone())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_command_and_flags() {
        let a = Args::parse(&argv(&["l3", "--logs", "x.tsv", "--directory", "d.xml"])).unwrap();
        assert_eq!(a.command, "l3");
        assert_eq!(a.required("logs").unwrap(), "x.tsv");
        assert_eq!(a.optional("directory"), Some("d.xml"));
        assert_eq!(a.optional("absent"), None);
    }

    #[test]
    fn parsed_with_defaults() {
        let a = Args::parse(&argv(&["l2", "--timeout", "500"])).unwrap();
        assert_eq!(a.parsed_or::<i64>("timeout", 1000).unwrap(), 500);
        assert_eq!(a.parsed_or::<i64>("minlogs", 25).unwrap(), 25);
        let a = Args::parse(&argv(&["l2", "--timeout", "abc"])).unwrap();
        assert!(matches!(
            a.parsed_or::<i64>("timeout", 1000),
            Err(ArgError::BadValue("timeout", _))
        ));
    }

    #[test]
    fn error_cases() {
        assert_eq!(Args::parse(&[]), Err(ArgError::NoCommand));
        assert!(matches!(
            Args::parse(&argv(&["l3", "oops"])),
            Err(ArgError::UnexpectedPositional(_))
        ));
        let a = Args::parse(&argv(&["l3"])).unwrap();
        assert!(matches!(
            a.required("logs"),
            Err(ArgError::Required("logs"))
        ));
    }

    #[test]
    fn boolean_switches_need_no_operand() {
        // Trailing switch.
        let a = Args::parse(&argv(&["daily", "--steps", "2", "--resume"])).unwrap();
        assert_eq!(a.optional("resume"), Some("true"));
        assert!(a.parsed_or("resume", false).unwrap());
        // Switch followed by another flag.
        let a = Args::parse(&argv(&["daily", "--resume", "--steps", "2"])).unwrap();
        assert_eq!(a.optional("resume"), Some("true"));
        assert_eq!(a.parsed_or::<i64>("steps", 1).unwrap(), 2);
        // An explicit operand still wins.
        let a = Args::parse(&argv(&["daily", "--resume", "false"])).unwrap();
        assert!(!a.parsed_or("resume", true).unwrap());
        // A value-bearing flag left dangling degrades to "true", which
        // then fails the flag's own parse, not the whole command line.
        let a = Args::parse(&argv(&["l3", "--logs"])).unwrap();
        assert_eq!(a.optional("logs"), Some("true"));
    }

    #[test]
    fn display_messages() {
        assert!(ArgError::NoCommand.to_string().contains("help"));
        assert!(ArgError::Required("logs").to_string().contains("--logs"));
        assert!(ArgError::BadValue("n", "x".into())
            .to_string()
            .contains("parse"));
    }
}
