//! The CLI subcommands.

use crate::args::Args;
use logdep::cache::EvidenceCache;
use logdep::durable::{
    persist_atomic, repair_store, run_daily_durable, verify_store, DailyPlan, NoopPolicy,
    RecoveryEvent,
};
use logdep::evolution::{app_service_churn, pair_churn};
use logdep::graph::DependencyGraph;
use logdep::health::PipelineConfig;
use logdep::l1::{run_l1_pool, L1Config};
use logdep::l2::{run_l2_pool, L2Config};
use logdep::l3::{run_l3, run_l3_pool, L3Config};
use logdep::window::{run_window_cached, WindowOutcome};
use logdep::AppServiceModel;
use logdep_faults::{inject as inject_faults, FaultConfig};
use logdep_logstore::codec::write_store;
use logdep_logstore::ingest::{read_store_resilient, IngestPolicy};
use logdep_logstore::time::{TimeRange, MS_PER_DAY};
use logdep_logstore::{LogStore, Millis};
use logdep_par::ParConfig;
use logdep_serve::{run_server, IndexPlan, ServeConfig, Server, SnapshotSource};
use logdep_sessions::{reconstruct, SessionConfig};
use logdep_sim::textgen::standard_stop_patterns;
use logdep_sim::{simulate as run_sim, ServiceDirectory, SimConfig};
use logdep_textmatch::{cluster, ClusterConfig};
use std::error::Error;
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};

/// Help text shown by `logdep help`.
pub const HELP: &str = "\
logdep — dependency models mined from logs (Steinle et al., VLDB 2006)

commands:
  simulate  --out LOGS.tsv --directory DIR.xml [--days N --seed N --scale X]
  l1        --logs LOGS.tsv [--minlogs N --days N --threads N]
  l2        --logs LOGS.tsv [--timeout MS --days N --threads N]
  l3        --logs LOGS.tsv --directory DIR.xml [--stop-patterns FILE --days N
            --threads N]
  daily     --logs LOGS.tsv [--directory DIR.xml --window-days N --start-day N
            --advance-days N --steps N --cache CACHE.ck --resume --minlogs N
            --threads N --trace TRACE.jsonl --metrics --format text|json
            --wall-clock]
  cache     verify --cache CACHE.ck | repair --cache CACHE.ck
  sessions  --logs LOGS.tsv
  templates --logs LOGS.tsv --source APP [--support N]
  churn     --before A.tsv --after B.tsv [--layers l1,l2,l3]
            [--directory DIR.xml (required with l3)]
  serve     --logs LOGS.tsv [--addr HOST:PORT --directory DIR.xml
            --store CACHE.ck --workers N --max-conns N
            --request-timeout-ms MS --window-days N --steps N]
  impact    --logs LOGS.tsv --directory DIR.xml --owners OWNERS.tsv
            [--app NAME | --symptoms \"A,B,C\"]
  inject    --logs LOGS.tsv --out FAULTY.tsv [--intensity X --seed N
            --ledger LEDGER.json]
  ingest    --logs LOGS.tsv [--max-error-fraction X --dedup BOOL
            --report REPORT.json]
  help

--threads N sets the mining worker-pool width (1 = the serial path;
results are identical at every width). Without the flag the
LOGDEP_THREADS environment variable decides, then the hardware.

With --cache the daily advance is crash-safe: every completed step is
journaled, the checkpoint is replaced atomically, and --resume picks a
killed run up from its last completed step. `cache verify` checks every
checksum read-only (exit 1 on corruption); `cache repair` quarantines
damage and rewrites a clean checkpoint.

Observability: `daily --trace T.jsonl` writes the structured run events
as JSON lines with logical sequence numbers — byte-identical across
runs and thread widths. `--metrics` prints a run report (per-detector
counts and timings, cache hit ratios, degraded-mode flags) as text or,
with `--format json`, as one JSON object. `--wall-clock` additionally
stamps every trace event with wall-clock microseconds, deliberately
giving up the trace's reproducibility.

`serve` mines the export into per-window snapshots and answers queries
over loopback HTTP: /v1/pair, /v1/impact, /v1/diff, /v1/churn,
/v1/model, /v1/report, /v1/metrics, /healthz. GET /admin/reload
re-mines from disk and hot-swaps the new snapshot generation in
without blocking in-flight requests.";

type CmdResult = Result<(), Box<dyn Error>>;

/// Loads one TSV export, or several (comma-separated paths) merged —
/// the consolidation step of §5, for logs collected from decentralized
/// storage locations. Uses the resilient ingest path: malformed lines
/// are quarantined (up to the error budget), duplicates absorbed and
/// out-of-order delivery repaired, with a warning summarizing any
/// damage found.
fn load_logs(paths: &str) -> Result<LogStore, Box<dyn Error>> {
    let policy = IngestPolicy::default();
    let mut merged: Option<LogStore> = None;
    for path in paths.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        let file = File::open(path).map_err(|e| format!("open {path:?}: {e}"))?;
        let (store, report) = read_store_resilient(BufReader::new(file), &policy)
            .map_err(|e| format!("ingest {path}: {e}"))?;
        if report.quarantined > 0 || report.deduped > 0 {
            eprintln!("warning: {path}: {}", report.summary());
        }
        match merged.as_mut() {
            None => merged = Some(store),
            Some(m) => m.merge(&store),
        }
    }
    let mut store = merged.ok_or("no log files given")?;
    store.finalize();
    Ok(store)
}

fn load_directory(path: &str) -> Result<Vec<String>, Box<dyn Error>> {
    let xml = std::fs::read_to_string(path).map_err(|e| format!("open {path:?}: {e}"))?;
    let dir = ServiceDirectory::from_xml(&xml)?;
    Ok(dir.ids().iter().map(|s| s.to_string()).collect())
}

fn full_range(args: &Args) -> Result<TimeRange, Box<dyn Error>> {
    let days: i64 = args.parsed_or("days", 365)?;
    Ok(TimeRange::new(Millis(0), Millis::from_days(days)))
}

/// Pool width for the mining commands: `--threads N` wins, else the
/// `LOGDEP_THREADS` environment variable, else the hardware. `--threads
/// 0` is rejected (the serial path is `--threads 1`).
fn par_config(args: &Args) -> Result<ParConfig, Box<dyn Error>> {
    match args.optional("threads") {
        None => Ok(ParConfig::default()),
        Some(v) => {
            let n: usize = v
                .parse()
                .map_err(|_| format!("flag --threads: cannot parse {v:?}"))?;
            ParConfig::with_threads(n).map_err(|e| format!("flag --threads: {e}").into())
        }
    }
}

/// `logdep simulate` — generate a synthetic week as TSV + directory XML.
pub fn simulate(args: &Args, out: &mut dyn Write) -> CmdResult {
    let logs_path = args.required("out")?;
    let dir_path = args.required("directory")?;
    let mut cfg =
        SimConfig::paper_week(args.parsed_or("seed", 42)?, args.parsed_or("scale", 0.25)?);
    cfg.days = args.parsed_or("days", 7)?;
    let sim = run_sim(&cfg);

    let file = File::create(logs_path).map_err(|e| format!("create {logs_path:?}: {e}"))?;
    let mut w = BufWriter::new(file);
    write_store(&mut w, &sim.store)?;
    w.flush()?;
    std::fs::write(dir_path, sim.directory.to_xml())?;

    // Ground truth alongside, for scoring.
    let truth_path = format!("{logs_path}.truth.json");
    std::fs::write(&truth_path, serde_json::to_string_pretty(&sim.truth)?)?;

    // Owner map (service id → implementing application), the operational
    // knowledge the `impact` command needs.
    let owners_path = format!("{dir_path}.owners.tsv");
    let mut owners = String::new();
    for svc in &sim.topology.services {
        owners.push_str(&format!(
            "{}\t{}\n",
            svc.id, sim.topology.apps[svc.owner].name
        ));
    }
    std::fs::write(&owners_path, owners)?;

    writeln!(
        out,
        "wrote {} logs to {logs_path}, {} directory entries to {dir_path}, \
         truth to {truth_path}, owners to {owners_path}",
        sim.store.len(),
        sim.directory.len()
    )?;
    Ok(())
}

/// `logdep l1` — activity-correlation mining.
pub fn l1(args: &Args, out: &mut dyn Write) -> CmdResult {
    let store = load_logs(args.required("logs")?)?;
    let cfg = L1Config {
        minlogs: args.parsed_or("minlogs", 25)?,
        seed: args.parsed_or("seed", 7)?,
        ..L1Config::default()
    };
    let sources = store.active_sources();
    let res = run_l1_pool(
        &store,
        full_range(args)?,
        &sources,
        &cfg,
        &par_config(args)?,
    )?;
    writeln!(out, "L1: {} dependent pairs", res.detected.len())?;
    for (a, b) in res.detected.iter() {
        writeln!(
            out,
            "  {} <-> {}",
            store.registry.source_name(a),
            store.registry.source_name(b)
        )?;
    }
    Ok(())
}

/// `logdep l2` — session co-occurrence mining.
pub fn l2(args: &Args, out: &mut dyn Write) -> CmdResult {
    let store = load_logs(args.required("logs")?)?;
    let timeout: i64 = args.parsed_or("timeout", 1_000)?;
    let cfg = L2Config {
        timeout_ms: (timeout > 0).then_some(timeout),
        ..L2Config::default()
    };
    let res = run_l2_pool(&store, full_range(args)?, &cfg, &par_config(args)?)?;
    writeln!(
        out,
        "L2: {} sessions, {} bigrams, {} dependent pairs",
        res.session_stats.n_sessions,
        res.bigrams.total,
        res.detected.len()
    )?;
    for (a, b) in res.detected.iter() {
        writeln!(
            out,
            "  {} <-> {}",
            store.registry.source_name(a),
            store.registry.source_name(b)
        )?;
    }
    Ok(())
}

fn l3_config(args: &Args) -> Result<L3Config, Box<dyn Error>> {
    Ok(match args.optional("stop-patterns") {
        Some("standard") => L3Config::with_stop_patterns(standard_stop_patterns()),
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("open {path:?}: {e}"))?;
            L3Config::with_stop_patterns(text.lines().filter(|l| !l.trim().is_empty()))
        }
        None => L3Config::default(),
    })
}

/// `logdep l3` — directory-citation mining.
pub fn l3(args: &Args, out: &mut dyn Write) -> CmdResult {
    let store = load_logs(args.required("logs")?)?;
    let ids = load_directory(args.required("directory")?)?;
    let cfg = l3_config(args)?;
    let res = run_l3_pool(&store, full_range(args)?, &ids, &cfg, &par_config(args)?)?;
    writeln!(
        out,
        "L3: {} dependencies ({} logs stopped by {} patterns)",
        res.detected.len(),
        res.stopped_logs,
        cfg.stop_patterns.len()
    )?;
    for (app, svc) in res.detected.iter() {
        writeln!(out, "  {} -> {}", store.registry.source_name(app), ids[svc])?;
    }
    Ok(())
}

/// One advance step's summary line, shared by the in-memory and the
/// durable `daily` paths (tests parse this shape).
fn window_line(day_start: i64, day_end: i64, outcome: &WindowOutcome) -> String {
    format!(
        "window days {day_start}..{day_end}: L1 {} pairs, L2 {} pairs, L3 {} deps \
         (cache: {} hits, {} misses)",
        outcome.l1.as_ref().map_or(0, |r| r.detected.len()),
        outcome.l2.as_ref().map_or(0, |r| r.detected.len()),
        outcome.l3.as_ref().map_or(0, |r| r.detected.len()),
        outcome.stats.hits(),
        outcome.stats.misses()
    )
}

/// Renders recovery events: corruption as a warning, the rest as notes.
fn write_events(out: &mut dyn Write, path: &str, events: &[RecoveryEvent]) -> CmdResult {
    for e in events {
        if e.corruption {
            writeln!(out, "warning: cache {path}: {}: {}", e.code, e.detail)?;
        } else {
            writeln!(out, "cache {path}: {}: {}", e.code, e.detail)?;
        }
    }
    Ok(())
}

/// Wall-clock microseconds since the Unix epoch — the clock injected
/// into the event sink under `--wall-clock`, and the only wall-clock
/// read anywhere in the observability path. It lives in the CLI, not
/// in `logdep-obs`, so the library layer stays provably clock-free.
fn wall_clock_us() -> u64 {
    use std::time::{SystemTime, UNIX_EPOCH};
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX))
}

/// `logdep daily` — the "around the clock" operation of §1.2: mine a
/// sliding window, advance it, and let the persistent evidence cache
/// skip everything the slide left unchanged. With `--cache FILE` the
/// cache survives process restarts (the nightly-cron deployment)
/// crash-safely: completed steps are journaled, the checkpoint is
/// replaced atomically, a damaged file degrades to a (partial) cold
/// start instead of failing the run, and `--resume` continues a killed
/// run from its last completed step. Without `--cache` the advance
/// steps still share the in-memory cache.
///
/// `--trace PATH` and `--metrics` install a [`logdep::obs::Recorder`]
/// around the run: the trace is written as JSON lines after the run
/// completes, and the metrics summary is printed as text or JSON.
pub fn daily(args: &Args, out: &mut dyn Write) -> CmdResult {
    let trace_path = args.optional("trace").map(str::to_owned);
    let metrics: bool = args.parsed_or("metrics", false)?;
    let wall_clock: bool = args.parsed_or("wall-clock", false)?;
    let format = args.optional("format").unwrap_or("text");
    if !matches!(format, "text" | "json") {
        return Err(format!("flag --format: expected text or json, got {format:?}").into());
    }
    if !(trace_path.is_some() || metrics) {
        return daily_inner(args, out);
    }

    let recorder = if wall_clock {
        logdep::obs::Recorder::with_clock(wall_clock_us)
    } else {
        logdep::obs::Recorder::new()
    };
    logdep::obs::set_recorder(recorder);
    let result = daily_inner(args, out);
    // Always drain the thread-local, even on error, so an aborted run
    // can never leak events into a later in-process invocation.
    let recorder = logdep::obs::take_recorder().unwrap_or_default();
    if result.is_ok() {
        if let Some(path) = &trace_path {
            std::fs::write(path, recorder.sink.render_jsonl())
                .map_err(|e| format!("write {path:?}: {e}"))?;
            writeln!(out, "wrote trace {path} ({} events)", recorder.sink.len())?;
        }
        if metrics {
            let report = recorder.report();
            match format {
                "json" => writeln!(out, "{}", report.render_json())?,
                _ => write!(out, "{}", report.render_text())?,
            }
        }
    }
    result
}

fn daily_inner(args: &Args, out: &mut dyn Write) -> CmdResult {
    let store = load_logs(args.required("logs")?)?;
    let window_days: i64 = args.parsed_or("window-days", 7)?;
    let start_day: i64 = args.parsed_or("start-day", 0)?;
    let advance_days: i64 = args.parsed_or("advance-days", 1)?;
    let steps: i64 = args.parsed_or("steps", 1)?;
    if window_days <= 0 || advance_days <= 0 || steps <= 0 {
        return Err("--window-days, --advance-days and --steps must be positive".into());
    }
    let resume: bool = args.parsed_or("resume", false)?;

    let ids = match args.optional("directory") {
        Some(path) => load_directory(path)?,
        None => Vec::new(),
    };
    let cfg = PipelineConfig {
        l1: Some(L1Config {
            minlogs: args.parsed_or("minlogs", 25)?,
            seed: args.parsed_or("seed", 7)?,
            ..L1Config::default()
        }),
        l2: Some(L2Config::default()),
        l3: if ids.is_empty() {
            None
        } else {
            Some(l3_config(args)?)
        },
        par: par_config(args)?,
    };

    let Some(cache_path) = args.optional("cache").map(str::to_owned) else {
        if resume {
            return Err("--resume needs --cache (nothing persists without one)".into());
        }
        let mut cache = EvidenceCache::new();
        for step in 0..steps {
            let start = Millis::from_days(start_day + step * advance_days);
            let window = TimeRange::new(start, Millis(start.0 + window_days * MS_PER_DAY));
            let outcome = run_window_cached(&store, window, &ids, &cfg, &mut cache)?;
            let d0 = start_day + step * advance_days;
            writeln!(out, "{}", window_line(d0, d0 + window_days, &outcome))?;
        }
        return Ok(());
    };

    let plan = DailyPlan {
        start_day,
        window_days,
        advance_days,
        steps: u64::try_from(steps).unwrap_or(1),
    };
    let path = std::path::Path::new(&cache_path);
    let existed = path.exists();
    let mut step_lines: Vec<String> = Vec::new();
    let report = run_daily_durable(
        &store,
        &ids,
        &cfg,
        &plan,
        path,
        resume,
        &mut NoopPolicy,
        &mut |step, outcome| {
            let w = plan.window(step);
            step_lines.push(window_line(
                w.start.0.div_euclid(MS_PER_DAY),
                w.end.0.div_euclid(MS_PER_DAY),
                outcome,
            ));
        },
    )
    .map_err(|e| format!("cache {cache_path}: {e}"))?;

    write_events(out, &cache_path, &report.events)?;
    if existed {
        writeln!(
            out,
            "loaded cache {cache_path} ({} entries)",
            report.loaded_entries
        )?;
    }
    if report.resumed_from > 0 {
        writeln!(
            out,
            "resumed from step {} of {}",
            report.resumed_from, plan.steps
        )?;
    }
    for line in &step_lines {
        writeln!(out, "{line}")?;
    }
    if report.steps_run == 0 {
        // Fully resumed: the final window was recomputed from cache
        // hits for the report; show it so the run is never silent.
        let w = plan.window(plan.steps);
        writeln!(
            out,
            "{}",
            window_line(
                w.start.0.div_euclid(MS_PER_DAY),
                w.end.0.div_euclid(MS_PER_DAY),
                &report.final_outcome
            )
        )?;
    }
    if report.checkpointed {
        writeln!(
            out,
            "saved cache {cache_path} ({} entries)",
            report.cache_entries
        )?;
    } else {
        writeln!(
            out,
            "cache {cache_path} up to date ({} entries)",
            report.cache_entries
        )?;
    }
    Ok(())
}

/// `logdep cache verify` — read-only checksum verification of a durable
/// evidence store; exits non-zero when any corruption is detected.
pub fn cache_verify(args: &Args, out: &mut dyn Write) -> CmdResult {
    let cache_path = args.required("cache")?;
    let report = verify_store(std::path::Path::new(cache_path))?;
    write_events(out, cache_path, &report.events)?;
    writeln!(
        out,
        "cache {cache_path}: {} entries, completed step {}, {} journal records",
        report.cache_entries, report.completed, report.journal_records
    )?;
    if report.clean() {
        writeln!(out, "verify: clean")?;
        Ok(())
    } else {
        Err(format!(
            "verify: corruption detected in {cache_path} \
             (run `logdep cache repair --cache {cache_path}`)"
        )
        .into())
    }
}

/// `logdep cache repair` — quarantine damaged regions, replay the
/// journal's intact prefix, and rewrite a clean checkpoint atomically.
pub fn cache_repair(args: &Args, out: &mut dyn Write) -> CmdResult {
    let cache_path = args.required("cache")?;
    let report = repair_store(std::path::Path::new(cache_path))?;
    write_events(out, cache_path, &report.events)?;
    writeln!(
        out,
        "repaired cache {cache_path}: {} entries, completed step {}",
        report.cache_entries, report.completed
    )?;
    Ok(())
}

/// `logdep sessions` — reconstruction statistics.
pub fn sessions(args: &Args, out: &mut dyn Write) -> CmdResult {
    let store = load_logs(args.required("logs")?)?;
    let set = reconstruct(&store, &SessionConfig::default());
    writeln!(
        out,
        "{} sessions from {} logs ({:.1}% assignable, {} discarded as too short)",
        set.stats.n_sessions,
        set.stats.total_logs,
        100.0 * set.stats.assigned_fraction(),
        set.stats.discarded_sessions
    )?;
    let mut lengths: Vec<usize> = set.sessions.iter().map(|s| s.len()).collect();
    lengths.sort_unstable();
    if !lengths.is_empty() {
        writeln!(
            out,
            "session length min/median/max: {}/{}/{}",
            lengths[0],
            lengths[lengths.len() / 2],
            lengths[lengths.len() - 1]
        )?;
    }
    Ok(())
}

/// `logdep templates` — SLCT message clustering for one source.
pub fn templates(args: &Args, out: &mut dyn Write) -> CmdResult {
    let store = load_logs(args.required("logs")?)?;
    let source_name = args.required("source")?;
    let source = store
        .registry
        .find_source(source_name)
        .ok_or_else(|| format!("unknown source {source_name:?}"))?;
    let texts: Vec<&str> = store
        .records()
        .iter()
        .filter(|r| r.source == source)
        .map(|r| r.text.as_str())
        .collect();
    let support = args.parsed_or("support", 10)?;
    let cfg = ClusterConfig {
        word_support: support,
        cluster_support: support,
    };
    let (templates, outliers) = cluster(texts.iter().copied(), &cfg);
    writeln!(
        out,
        "{} templates over {} messages of {source_name} ({} outliers):",
        templates.len(),
        texts.len(),
        outliers
    )?;
    for t in templates.iter().take(30) {
        writeln!(out, "  {:>6}×  {}", t.support, t.render())?;
    }
    Ok(())
}

/// `logdep impact` — mine with L3, build the dependency graph, answer
/// the §1.1 operator questions.
pub fn impact(args: &Args, out: &mut dyn Write) -> CmdResult {
    let store = load_logs(args.required("logs")?)?;
    let ids = load_directory(args.required("directory")?)?;
    let owners_path = args.required("owners")?;
    let owners_text =
        std::fs::read_to_string(owners_path).map_err(|e| format!("open {owners_path:?}: {e}"))?;
    let mut owner_of = std::collections::HashMap::new();
    for line in owners_text.lines().filter(|l| !l.trim().is_empty()) {
        let (id, app) = line
            .split_once('\t')
            .ok_or_else(|| format!("owners file: bad line {line:?}"))?;
        owner_of.insert(id.to_owned(), app.to_owned());
    }
    let owners: Vec<_> = ids
        .iter()
        .map(|id| {
            owner_of
                .get(id)
                .and_then(|app| store.registry.find_source(app))
                .ok_or_else(|| format!("no owner application known for service {id}"))
        })
        .collect::<Result<_, _>>()?;

    let cfg = l3_config(args)?;
    let res = run_l3(&store, full_range(args)?, &ids, &cfg)?;
    let graph = DependencyGraph::from_app_service(&res.detected, &owners);
    writeln!(
        out,
        "graph: {} applications, {} dependencies",
        graph.nodes().count(),
        graph.n_edges()
    )?;

    if let Some(app_name) = args.optional("app") {
        let app = store
            .registry
            .find_source(app_name)
            .ok_or_else(|| format!("unknown application {app_name:?}"))?;
        let impact = graph.impact_set(app);
        writeln!(
            out,
            "impact of {app_name} degrading: {} applications",
            impact.len()
        )?;
        for a in impact {
            writeln!(out, "  {}", store.registry.source_name(a))?;
        }
    } else if let Some(symptoms) = args.optional("symptoms") {
        let apps: Vec<_> = symptoms
            .split(',')
            .map(|n| {
                store
                    .registry
                    .find_source(n.trim())
                    .ok_or_else(|| format!("unknown application {n:?}"))
            })
            .collect::<Result<_, _>>()?;
        writeln!(out, "root-cause candidates (fewest collateral first):")?;
        for (cand, collateral) in graph.root_candidates(&apps).into_iter().take(10) {
            writeln!(
                out,
                "  {} (+{collateral})",
                store.registry.source_name(cand)
            )?;
        }
    } else {
        writeln!(out, "most critical applications:")?;
        for (app, n) in graph.criticality().into_iter().take(10) {
            writeln!(out, "  {:>6}  {}", n, store.registry.source_name(app))?;
        }
    }
    Ok(())
}

/// `logdep inject` — re-emit a TSV export as a faulted stream, for
/// robustness experiments and ingest hardening tests.
pub fn inject(args: &Args, out: &mut dyn Write) -> CmdResult {
    let store = load_logs(args.required("logs")?)?;
    let out_path = args.required("out")?;
    let intensity: f64 = args.parsed_or("intensity", 0.5)?;
    let seed: u64 = args.parsed_or("seed", 42)?;
    let cfg = FaultConfig::at_intensity(seed, intensity);
    let injection = inject_faults(&store, &cfg);
    std::fs::write(out_path, &injection.tsv).map_err(|e| format!("write {out_path:?}: {e}"))?;
    if let Some(ledger_path) = args.optional("ledger") {
        persist_atomic(
            std::path::Path::new(ledger_path),
            serde_json::to_string_pretty(&injection.ledger)?.as_bytes(),
        )
        .map_err(|e| format!("write {ledger_path:?}: {e}"))?;
    }
    writeln!(
        out,
        "injected at intensity {intensity} (seed {seed}): {}",
        injection.ledger.summary()
    )?;
    Ok(())
}

/// `logdep ingest` — resilient consolidation of one TSV export, with a
/// machine-readable quarantine/repair report.
pub fn ingest(args: &Args, out: &mut dyn Write) -> CmdResult {
    let path = args.required("logs")?;
    let policy = IngestPolicy {
        max_error_fraction: args.parsed_or("max-error-fraction", 0.5)?,
        dedup: args.parsed_or("dedup", true)?,
        ..IngestPolicy::default()
    };
    let file = File::open(path).map_err(|e| format!("open {path:?}: {e}"))?;
    let (store, report) = read_store_resilient(BufReader::new(file), &policy)
        .map_err(|e| format!("ingest {path}: {e}"))?;
    if let Some(report_path) = args.optional("report") {
        std::fs::write(report_path, serde_json::to_string_pretty(&report)?)
            .map_err(|e| format!("write {report_path:?}: {e}"))?;
    }
    writeln!(out, "ingest: {}", report.summary())?;
    writeln!(
        out,
        "store: {} records from {} sources",
        store.len(),
        store.active_sources().len()
    )?;
    for (source, skew) in &report.per_source_skew_ms {
        writeln!(out, "  clock skew {source}: {skew:+} ms")?;
    }
    for (lineno, error) in report.quarantine_samples.iter().take(5) {
        writeln!(out, "  quarantined line {lineno}: {error}")?;
    }
    Ok(())
}

/// `logdep churn` — L3 on two log exports, diffed.
pub fn churn(args: &Args, out: &mut dyn Write) -> CmdResult {
    let layers_raw = args.optional("layers").unwrap_or("l3");
    let mut layers: Vec<&str> = Vec::new();
    for layer in layers_raw
        .split(',')
        .map(str::trim)
        .filter(|l| !l.is_empty())
    {
        if !matches!(layer, "l1" | "l2" | "l3") {
            return Err(format!("flag --layers: expected l1, l2 or l3, got {layer:?}").into());
        }
        if !layers.contains(&layer) {
            layers.push(layer);
        }
    }
    if layers.is_empty() {
        return Err("flag --layers: need at least one of l1,l2,l3".into());
    }
    // The bare L3 invocation keeps its historical un-tagged output.
    let tagged = layers.as_slice() != ["l3"];
    let range = full_range(args)?;
    let store_a = load_logs(args.required("before")?)?;
    let store_b = load_logs(args.required("after")?)?;
    let par = par_config(args)?;

    for layer in &layers {
        let tag = if tagged {
            format!("churn[{layer}]")
        } else {
            "churn".to_owned()
        };
        match *layer {
            "l1" => {
                let cfg = L1Config {
                    minlogs: args.parsed_or("minlogs", 25)?,
                    seed: args.parsed_or("seed", 7)?,
                    ..L1Config::default()
                };
                let before =
                    run_l1_pool(&store_a, range, &store_a.active_sources(), &cfg, &par)?.detected;
                let after =
                    run_l1_pool(&store_b, range, &store_b.active_sources(), &cfg, &par)?.detected;
                pair_churn_lines(out, &tag, &store_a, &store_b, &before, &after)?;
            }
            "l2" => {
                let timeout: i64 = args.parsed_or("timeout", 1_000)?;
                let cfg = L2Config {
                    timeout_ms: (timeout > 0).then_some(timeout),
                    ..L2Config::default()
                };
                let before = run_l2_pool(&store_a, range, &cfg, &par)?.detected;
                let after = run_l2_pool(&store_b, range, &cfg, &par)?.detected;
                pair_churn_lines(out, &tag, &store_a, &store_b, &before, &after)?;
            }
            _ => {
                let ids = load_directory(args.required("directory")?)?;
                let cfg = l3_config(args)?;
                let before = run_l3(&store_a, range, &ids, &cfg)?.detected;
                let after = run_l3(&store_b, range, &ids, &cfg)?.detected;
                l3_churn_lines(out, &tag, &store_a, &store_b, &ids, &before, &after)?;
            }
        }
    }
    Ok(())
}

/// Diffs two pair models mined from different exports. Models are
/// diffed by name, re-resolved into the AFTER registry (mirroring the
/// L3 path's `app_service_churn` re-resolution), so the two exports
/// may intern sources in different orders; pairs naming a source the
/// AFTER export never saw are dropped from the comparison.
fn pair_churn_lines(
    out: &mut dyn Write,
    tag: &str,
    store_a: &LogStore,
    store_b: &LogStore,
    before: &logdep::PairModel,
    after: &logdep::PairModel,
) -> CmdResult {
    let before_named: Vec<(String, String)> = before
        .iter()
        .map(|(a, b)| {
            (
                store_a.registry.source_name(a).to_owned(),
                store_a.registry.source_name(b).to_owned(),
            )
        })
        .collect();
    let before_in_b = logdep::PairModel::from_names(
        &store_b.registry,
        before_named
            .iter()
            .filter(|(a, b)| {
                store_b.registry.find_source(a).is_some()
                    && store_b.registry.find_source(b).is_some()
            })
            .map(|(a, b)| (a.as_str(), b.as_str())),
    )?;
    let c = pair_churn(&before_in_b, after);
    writeln!(
        out,
        "{tag}: {} appeared, {} disappeared, {} stable (stability {:.2})",
        c.appeared.len(),
        c.disappeared.len(),
        c.stable.len(),
        c.stability()
    )?;
    for &(a, b) in c.appeared.iter().take(20) {
        writeln!(
            out,
            "  + {} <-> {}",
            store_b.registry.source_name(a),
            store_b.registry.source_name(b)
        )?;
    }
    for &(a, b) in c.disappeared.iter().take(20) {
        writeln!(
            out,
            "  - {} <-> {}",
            store_b.registry.source_name(a),
            store_b.registry.source_name(b)
        )?;
    }
    Ok(())
}

fn l3_churn_lines(
    out: &mut dyn Write,
    tag: &str,
    store_a: &LogStore,
    store_b: &LogStore,
    ids: &[String],
    before: &AppServiceModel,
    after: &AppServiceModel,
) -> CmdResult {
    // Models are diffed by name, re-resolved into the AFTER registry,
    // so the two exports may intern sources in different orders.
    let before_named: Vec<(String, String)> = before
        .iter()
        .map(|(app, svc)| {
            (
                store_a.registry.source_name(app).to_owned(),
                ids[svc].clone(),
            )
        })
        .collect();
    let before_in_b = AppServiceModel::from_names(
        &store_b.registry,
        ids,
        before_named
            .iter()
            .filter(|(app, _)| store_b.registry.find_source(app).is_some())
            .map(|(a, s)| (a.as_str(), s.as_str())),
    )?;
    let c = app_service_churn(&before_in_b, after);
    writeln!(
        out,
        "{tag}: {} appeared, {} disappeared, {} stable (stability {:.2})",
        c.appeared.len(),
        c.disappeared.len(),
        c.stable.len(),
        c.stability()
    )?;
    for &(app, svc) in c.appeared.iter().take(20) {
        writeln!(
            out,
            "  + {} -> {}",
            store_b.registry.source_name(app),
            ids[svc]
        )?;
    }
    for &(app, svc) in c.disappeared.iter().take(20) {
        writeln!(
            out,
            "  - {} -> {}",
            store_b.registry.source_name(app),
            ids[svc]
        )?;
    }
    Ok(())
}

/// Mines an initial index and serves it over loopback HTTP until the
/// process is killed. `--store` warms the evidence cache from a
/// durable store written by `daily --cache`; `GET /admin/reload`
/// re-ingests everything and hot-swaps the next generation in without
/// blocking readers.
pub fn serve(args: &Args, out: &mut dyn Write) -> CmdResult {
    let addr = args.optional("addr").unwrap_or("127.0.0.1:7878");
    let workers: usize = args.parsed_or("workers", 2)?;
    let max_conns: usize = args.parsed_or("max-conns", 64)?;
    let request_timeout_ms: u64 = args.parsed_or("request-timeout-ms", 2_000)?;
    let wall_clock: bool = args.parsed_or("wall-clock", false)?;
    if workers == 0 || max_conns == 0 || request_timeout_ms == 0 {
        return Err("--workers, --max-conns and --request-timeout-ms must be positive".into());
    }

    let window_days: i64 = args.parsed_or("window-days", 7)?;
    let start_day: i64 = args.parsed_or("start-day", 0)?;
    let advance_days: i64 = args.parsed_or("advance-days", 1)?;
    let steps: i64 = args.parsed_or("steps", 1)?;
    if window_days <= 0 || advance_days <= 0 || steps <= 0 {
        return Err("--window-days, --advance-days and --steps must be positive".into());
    }
    let ids_given = args.optional("directory").is_some();
    let source = SnapshotSource {
        logs: args.required("logs")?.to_owned(),
        directory: args.optional("directory").map(str::to_owned),
        store: args.optional("store").map(std::path::PathBuf::from),
        plan: IndexPlan {
            start_day,
            window_days,
            advance_days,
            steps: u64::try_from(steps).unwrap_or(1),
        },
        cfg: PipelineConfig {
            l1: Some(L1Config {
                minlogs: args.parsed_or("minlogs", 25)?,
                seed: args.parsed_or("seed", 7)?,
                ..L1Config::default()
            }),
            l2: Some(L2Config::default()),
            l3: if ids_given {
                Some(l3_config(args)?)
            } else {
                None
            },
            par: par_config(args)?,
        },
    };

    let index = logdep_serve::run_reload(&source, 1)?;
    let days = index.days().count();
    let cfg = ServeConfig {
        addr: addr.to_owned(),
        workers,
        max_conns,
        request_timeout_ms,
        clock_us: if wall_clock {
            Some(wall_clock_us as fn() -> u64)
        } else {
            None
        },
    };
    let server = Server::bind(cfg, index)?;
    writeln!(
        out,
        "serving {days} mined day(s), generation 1, on http://{} ({workers} workers, {max_conns} max conns)",
        server.handle().addr()
    )?;
    out.flush()?;
    run_server(server, Some(&source))?;
    Ok(())
}
