//! Binary entry point; all logic lives in the library for testability.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut out = std::io::stdout().lock();
    std::process::exit(logdep_cli::run(&argv, &mut out));
}
