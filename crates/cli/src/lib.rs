//! The `logdep` command-line dependency miner.
//!
//! Runs the paper's three techniques over a TSV log export and a
//! service-directory XML document — the nightly-cron interface a
//! deployment like HUG's would actually operate. Every command writes
//! human-readable text to the supplied writer, so the whole tool is
//! testable in-process.
//!
//! ```text
//! logdep simulate --out logs.tsv --directory dir.xml --days 2
//! logdep l3 --logs logs.tsv --directory dir.xml [--stop-patterns p.txt]
//! logdep l2 --logs logs.tsv [--timeout 1000]
//! logdep l1 --logs logs.tsv [--minlogs 25]
//! logdep daily --logs logs.tsv --cache cache.ck [--window-days 7 --steps 2 --resume]
//! logdep cache verify --cache cache.ck
//! logdep cache repair --cache cache.ck
//! logdep sessions --logs logs.tsv
//! logdep templates --logs logs.tsv --source AppName
//! logdep churn --before a.tsv --after b.tsv [--layers l1,l2,l3] [--directory dir.xml]
//! logdep serve --logs logs.tsv --directory dir.xml --addr 127.0.0.1:7878
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;

use args::Args;
use std::io::Write;

/// Runs the CLI against parsed argv; returns the process exit code.
pub fn run(argv: &[String], out: &mut dyn Write) -> i32 {
    // `cache verify` / `cache repair` are two-token subcommands; fold
    // the pair into one token before parsing.
    let folded: Vec<String>;
    let argv = match (argv.first(), argv.get(1)) {
        (Some(cmd), Some(sub)) if cmd.as_str() == "cache" && !sub.starts_with("--") => {
            let mut v = vec![format!("cache-{sub}")];
            v.extend(argv.iter().skip(2).cloned());
            folded = v;
            folded.as_slice()
        }
        _ => argv,
    };
    let args = match Args::parse(argv) {
        Ok(a) => a,
        Err(e) => {
            let _ = writeln!(out, "error: {e}");
            return 2;
        }
    };
    let result = match args.command.as_str() {
        "simulate" => commands::simulate(&args, out),
        "l1" => commands::l1(&args, out),
        "l2" => commands::l2(&args, out),
        "l3" => commands::l3(&args, out),
        "daily" => commands::daily(&args, out),
        "sessions" => commands::sessions(&args, out),
        "templates" => commands::templates(&args, out),
        "churn" => commands::churn(&args, out),
        "serve" => commands::serve(&args, out),
        "impact" => commands::impact(&args, out),
        "inject" => commands::inject(&args, out),
        "ingest" => commands::ingest(&args, out),
        "cache-verify" => commands::cache_verify(&args, out),
        "cache-repair" => commands::cache_repair(&args, out),
        "help" | "--help" | "-h" => {
            let _ = writeln!(out, "{}", commands::HELP);
            Ok(())
        }
        other => {
            let _ = writeln!(out, "error: unknown command {other:?}\n{}", commands::HELP);
            return 2;
        }
    };
    match result {
        Ok(()) => 0,
        Err(e) => {
            let _ = writeln!(out, "error: {e}");
            1
        }
    }
}
