//! In-process integration tests of the CLI: simulate into a temp dir,
//! then mine it back through every subcommand.

use std::path::PathBuf;

fn run(args: &[&str]) -> (i32, String) {
    let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut out = Vec::new();
    let code = logdep_cli::run(&argv, &mut out);
    (code, String::from_utf8(out).expect("utf8 output"))
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("logdep-cli-test-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }
    fn path(&self, name: &str) -> String {
        self.0.join(name).to_string_lossy().into_owned()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn simulated(dir: &TempDir) -> (String, String) {
    let logs = dir.path("logs.tsv");
    let directory = dir.path("dir.xml");
    let (code, out) = run(&[
        "simulate",
        "--out",
        &logs,
        "--directory",
        &directory,
        "--days",
        "1",
        "--seed",
        "5",
        "--scale",
        "0.15",
    ]);
    assert_eq!(code, 0, "simulate failed: {out}");
    assert!(out.contains("wrote"));
    (logs, directory)
}

#[test]
fn help_and_unknown_command() {
    let (code, out) = run(&["help"]);
    assert_eq!(code, 0);
    assert!(out.contains("simulate"));
    let (code, out) = run(&["frobnicate"]);
    assert_eq!(code, 2);
    assert!(out.contains("unknown command"));
    let (code, _) = run(&[]);
    assert_eq!(code, 2);
}

#[test]
fn missing_flags_and_files_fail_cleanly() {
    let (code, out) = run(&["l3", "--logs", "nope.tsv"]);
    assert_eq!(code, 1);
    assert!(out.contains("--directory") || out.contains("error"));
    let (code, out) = run(&["l2", "--logs", "/definitely/not/here.tsv"]);
    assert_eq!(code, 1);
    assert!(out.contains("error"));
}

#[test]
fn full_pipeline_over_a_simulated_day() {
    let dir = TempDir::new("pipeline");
    let (logs, directory) = simulated(&dir);

    // L3 with the standard stop patterns.
    let (code, out) = run(&[
        "l3",
        "--logs",
        &logs,
        "--directory",
        &directory,
        "--stop-patterns",
        "standard",
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("L3:"), "{out}");
    assert!(out.lines().count() > 50, "L3 should find many deps: {out}");

    // L2.
    let (code, out) = run(&["l2", "--logs", &logs, "--timeout", "1000"]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("sessions"));
    assert!(out.lines().count() > 5);

    // Sessions.
    let (code, out) = run(&["sessions", "--logs", &logs]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("assignable"));

    // Templates for a known client app.
    let (code, out) = run(&["templates", "--logs", &logs, "--source", "DPIFormidoc"]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("templates"), "{out}");
}

#[test]
fn l1_runs_on_simulated_logs() {
    let dir = TempDir::new("l1");
    let (logs, _) = simulated(&dir);
    let (code, out) = run(&["l1", "--logs", &logs, "--minlogs", "12"]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("L1:"), "{out}");
}

#[test]
fn threads_flag_changes_nothing_but_zero_is_rejected() {
    let dir = TempDir::new("threads");
    let (logs, directory) = simulated(&dir);

    // Same mining output at every pool width, across all three techniques.
    let (code, serial) = run(&["l1", "--logs", &logs, "--minlogs", "12", "--threads", "1"]);
    assert_eq!(code, 0, "{serial}");
    let (code, wide) = run(&["l1", "--logs", &logs, "--minlogs", "12", "--threads", "3"]);
    assert_eq!(code, 0, "{wide}");
    assert_eq!(serial, wide, "L1 output must not depend on --threads");

    let (code, serial) = run(&["l2", "--logs", &logs, "--threads", "1"]);
    assert_eq!(code, 0, "{serial}");
    let (code, wide) = run(&["l2", "--logs", &logs, "--threads", "4"]);
    assert_eq!(code, 0, "{wide}");
    assert_eq!(serial, wide, "L2 output must not depend on --threads");

    let l3_run = |n: &str| {
        run(&[
            "l3",
            "--logs",
            &logs,
            "--directory",
            &directory,
            "--stop-patterns",
            "standard",
            "--threads",
            n,
        ])
    };
    let (code, serial) = l3_run("1");
    assert_eq!(code, 0, "{serial}");
    let (code, wide) = l3_run("2");
    assert_eq!(code, 0, "{wide}");
    assert_eq!(serial, wide, "L3 output must not depend on --threads");

    // Zero threads is a clean usage error on every mining command.
    for cmd in ["l1", "l2"] {
        let (code, out) = run(&[cmd, "--logs", &logs, "--threads", "0"]);
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("--threads"), "{out}");
    }
    let (code, out) = l3_run("0");
    assert_eq!(code, 1, "{out}");
    assert!(out.contains("--threads"), "{out}");

    // And so is a non-numeric value.
    let (code, out) = run(&["l1", "--logs", &logs, "--threads", "many"]);
    assert_eq!(code, 1, "{out}");
    assert!(out.contains("--threads"), "{out}");
}

#[test]
fn churn_between_two_exports() {
    let dir = TempDir::new("churn");
    let (logs_a, directory) = simulated(&dir);
    // Second export: different seed, same landscape shape.
    let logs_b = dir.path("logs-b.tsv");
    let dir_b = dir.path("dir-b.xml");
    let (code, _) = run(&[
        "simulate",
        "--out",
        &logs_b,
        "--directory",
        &dir_b,
        "--days",
        "1",
        "--seed",
        "5",
        "--scale",
        "0.1",
    ]);
    assert_eq!(code, 0);
    let (code, out) = run(&[
        "churn",
        "--before",
        &logs_a,
        "--after",
        &logs_b,
        "--directory",
        &directory,
        "--stop-patterns",
        "standard",
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("stability"), "{out}");
}

#[test]
fn bad_stop_pattern_file_is_an_error() {
    let dir = TempDir::new("stops");
    let (logs, directory) = simulated(&dir);
    let (code, out) = run(&[
        "l3",
        "--logs",
        &logs,
        "--directory",
        &directory,
        "--stop-patterns",
        "/no/such/file.txt",
    ]);
    assert_eq!(code, 1);
    assert!(out.contains("error"));
}

#[test]
fn impact_command_answers_operator_questions() {
    let dir = TempDir::new("impact");
    let (logs, directory) = simulated(&dir);
    let owners = format!("{directory}.owners.tsv");

    // Criticality ranking (default mode).
    let (code, out) = run(&[
        "impact",
        "--logs",
        &logs,
        "--directory",
        &directory,
        "--owners",
        &owners,
        "--stop-patterns",
        "standard",
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("most critical"), "{out}");

    // Impact of a named app: pick the first critical one from the output.
    let critical = out
        .lines()
        .find(|l| {
            l.trim_start()
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_digit())
        })
        .and_then(|l| l.split_whitespace().nth(1))
        .expect("a ranked app")
        .to_owned();
    let (code, out) = run(&[
        "impact",
        "--logs",
        &logs,
        "--directory",
        &directory,
        "--owners",
        &owners,
        "--stop-patterns",
        "standard",
        "--app",
        &critical,
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("impact of"), "{out}");
}

#[test]
fn inject_then_ingest_round_trip() {
    let dir = TempDir::new("inject");
    let (logs, _) = simulated(&dir);
    let faulty = dir.path("faulty.tsv");
    let ledger = dir.path("ledger.json");

    let (code, out) = run(&[
        "inject",
        "--logs",
        &logs,
        "--out",
        &faulty,
        "--intensity",
        "0.6",
        "--seed",
        "9",
        "--ledger",
        &ledger,
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("delivered"), "{out}");
    let ledger_json = std::fs::read_to_string(&ledger).expect("ledger written");
    assert!(ledger_json.contains("\"dropped\""), "{ledger_json}");

    // The faulted stream ingests with a report showing damage.
    let report = dir.path("report.json");
    let (code, out) = run(&["ingest", "--logs", &faulty, "--report", &report]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("quarantined"), "{out}");
    assert!(out.contains("store:"), "{out}");
    let report_json = std::fs::read_to_string(&report).expect("report written");
    assert!(report_json.contains("\"quarantined\""), "{report_json}");

    // Mining still runs over the faulted stream (resilient load path).
    let (code, out) = run(&["sessions", "--logs", &faulty]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("sessions"));
}

#[test]
fn ingest_rejects_garbage_past_error_budget() {
    let dir = TempDir::new("budget");
    let garbage = dir.path("garbage.tsv");
    std::fs::write(&garbage, "not a log\nstill not a log\nnope\n").expect("write");
    let (code, out) = run(&["ingest", "--logs", &garbage]);
    assert_eq!(code, 1, "{out}");
    assert!(out.contains("error budget"), "{out}");
    // A lenient budget lets it through as pure quarantine.
    let (code, out) = run(&["ingest", "--logs", &garbage, "--max-error-fraction", "1.0"]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("3 quarantined"), "{out}");
}

#[test]
fn comma_separated_logs_are_consolidated() {
    let dir = TempDir::new("merge");
    let (logs_a, directory) = simulated(&dir);
    let logs_b = dir.path("logs-b.tsv");
    let dir_b = dir.path("dir-b.xml");
    let (code, _) = run(&[
        "simulate",
        "--out",
        &logs_b,
        "--directory",
        &dir_b,
        "--days",
        "1",
        "--seed",
        "6",
        "--scale",
        "0.1",
    ]);
    assert_eq!(code, 0);

    let both = format!("{logs_a},{logs_b}");
    let (code, merged_out) = run(&["sessions", "--logs", &both]);
    assert_eq!(code, 0, "{merged_out}");
    let (code, single_out) = run(&["sessions", "--logs", &logs_a]);
    assert_eq!(code, 0);
    let count = |s: &str| -> usize {
        s.split_whitespace()
            .nth(3)
            .and_then(|w| w.parse().ok())
            .unwrap_or(0)
    };
    // "<N> sessions from <M> logs ..." — merged M exceeds single M.
    assert!(
        count(&merged_out) > count(&single_out),
        "{merged_out} vs {single_out}"
    );

    // L3 over the consolidated pair still works.
    let (code, out) = run(&[
        "l3",
        "--logs",
        &both,
        "--directory",
        &directory,
        "--stop-patterns",
        "standard",
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("L3:"));
}

#[test]
fn daily_window_advances_with_a_persistent_cache() {
    let dir = TempDir::new("daily");
    let logs = dir.path("logs.tsv");
    let directory = dir.path("dir.xml");
    let (code, out) = run(&[
        "simulate",
        "--out",
        &logs,
        "--directory",
        &directory,
        "--days",
        "2",
        "--seed",
        "5",
        "--scale",
        "0.15",
    ]);
    assert_eq!(code, 0, "simulate failed: {out}");

    // Cold run: nothing can hit, and the cache file is written.
    let cache = dir.path("cache.json");
    let daily = |extra: &[&str]| {
        let mut args = vec![
            "daily",
            "--logs",
            &logs,
            "--directory",
            &directory,
            "--window-days",
            "2",
            "--cache",
            &cache,
        ];
        args.extend_from_slice(extra);
        run(&args)
    };
    let (code, cold) = daily(&[]);
    assert_eq!(code, 0, "{cold}");
    assert!(cold.contains("cache: 0 hits"), "{cold}");
    assert!(cold.contains("saved cache"), "{cold}");

    // Warm run in a fresh "process": everything hits from the file.
    let (code, warm) = daily(&[]);
    assert_eq!(code, 0, "{warm}");
    assert!(warm.contains("loaded cache"), "{warm}");
    assert!(warm.contains("0 misses"), "{warm}");

    // The mined model sizes must match between cold and warm.
    let summary = |s: &str| {
        s.lines()
            .find(|l| l.contains("window days"))
            .expect("summary line")
            .to_owned()
    };
    let cold_line = summary(&cold);
    let warm_line = summary(&warm);
    let models = |l: &str| l.split("(cache:").next().expect("prefix").to_owned();
    assert_eq!(models(&cold_line), models(&warm_line));

    // Invalid geometry is rejected cleanly.
    let (code, out) = daily(&["--steps", "0"]);
    assert_eq!(code, 1);
    assert!(out.contains("positive"), "{out}");
}

#[test]
fn corrupt_cache_file_degrades_to_cold_start() {
    let dir = TempDir::new("corrupt-cache");
    let (logs, directory) = simulated(&dir);
    let cache = dir.path("cache.ck");
    // Garbage where the checkpoint should be (e.g. a pre-durable-format
    // JSON dump, or torn storage) must not fail the run.
    std::fs::write(&cache, b"{\"not\": \"a checkpoint\"}").expect("plant garbage");
    let (code, out) = run(&[
        "daily",
        "--logs",
        &logs,
        "--directory",
        &directory,
        "--window-days",
        "1",
        "--cache",
        &cache,
    ]);
    assert_eq!(code, 0, "corrupt cache failed the run: {out}");
    assert!(out.contains("warning:"), "no corruption warning: {out}");
    assert!(out.contains("cache: 0 hits"), "not a cold start: {out}");
    assert!(out.contains("saved cache"), "{out}");
    // The damage is ledgered and the wreck quarantined for forensics.
    let ledger = std::fs::read_to_string(format!("{cache}.ledger")).expect("ledger written");
    assert!(ledger.contains("\"corruption\":true"), "{ledger}");
    assert!(
        std::fs::metadata(format!("{cache}.quarantine")).is_ok(),
        "no quarantine file"
    );
    // And the freshly saved cache is clean again.
    let (code, out) = run(&["cache", "verify", "--cache", &cache]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("verify: clean"), "{out}");
}

#[test]
fn cache_verify_then_repair_heals_a_damaged_checkpoint() {
    let dir = TempDir::new("verify-repair");
    let (logs, directory) = simulated(&dir);
    let cache = dir.path("cache.ck");
    let (code, out) = run(&[
        "daily",
        "--logs",
        &logs,
        "--directory",
        &directory,
        "--window-days",
        "1",
        "--cache",
        &cache,
    ]);
    assert_eq!(code, 0, "{out}");

    // Flip one byte in the middle of the checkpoint.
    let mut bytes = std::fs::read(&cache).expect("checkpoint bytes");
    let mid = bytes.len() / 2;
    if let Some(b) = bytes.get_mut(mid) {
        *b ^= 0x40;
    }
    std::fs::write(&cache, &bytes).expect("plant damage");

    let (code, out) = run(&["cache", "verify", "--cache", &cache]);
    assert_eq!(code, 1, "verify missed the damage: {out}");
    assert!(out.contains("corruption detected"), "{out}");

    let (code, out) = run(&["cache", "repair", "--cache", &cache]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("repaired cache"), "{out}");

    let (code, out) = run(&["cache", "verify", "--cache", &cache]);
    assert_eq!(code, 0, "repair left corruption behind: {out}");
    assert!(out.contains("verify: clean"), "{out}");
}

#[test]
fn daily_resume_skips_completed_steps() {
    let dir = TempDir::new("resume");
    let logs = dir.path("logs.tsv");
    let directory = dir.path("dir.xml");
    let (code, out) = run(&[
        "simulate",
        "--out",
        &logs,
        "--directory",
        &directory,
        "--days",
        "2",
        "--seed",
        "5",
        "--scale",
        "0.15",
    ]);
    assert_eq!(code, 0, "simulate failed: {out}");

    let cache = dir.path("cache.ck");
    let daily = |extra: &[&str]| {
        let mut args = vec![
            "daily",
            "--logs",
            &logs,
            "--directory",
            &directory,
            "--window-days",
            "1",
            "--steps",
            "2",
            "--cache",
            &cache,
        ];
        args.extend_from_slice(extra);
        run(&args)
    };
    let (code, first) = daily(&[]);
    assert_eq!(code, 0, "{first}");
    assert!(first.contains("saved cache"), "{first}");
    let before = std::fs::read(&cache).expect("checkpoint");

    // A completed run resumed is a no-op: nothing re-runs, nothing is
    // rewritten, but the final window is still reported.
    let (code, resumed) = daily(&["--resume"]);
    assert_eq!(code, 0, "{resumed}");
    assert!(resumed.contains("resumed from step 2 of 2"), "{resumed}");
    assert!(resumed.contains("window days"), "{resumed}");
    assert!(resumed.contains("up to date"), "{resumed}");
    assert_eq!(
        std::fs::read(&cache).expect("checkpoint"),
        before,
        "a fully-resumed run rewrote the checkpoint"
    );

    // --resume without --cache is a usage error.
    let (code, out) = run(&["daily", "--logs", &logs, "--resume"]);
    assert_eq!(code, 1, "{out}");
    assert!(out.contains("--cache"), "{out}");
}

#[test]
fn daily_trace_is_byte_identical_across_thread_widths() {
    let dir = TempDir::new("trace-threads");
    let logs = dir.path("logs.tsv");
    let directory = dir.path("dir.xml");
    let (code, out) = run(&[
        "simulate",
        "--out",
        &logs,
        "--directory",
        &directory,
        "--days",
        "2",
        "--seed",
        "5",
        "--scale",
        "0.15",
    ]);
    assert_eq!(code, 0, "simulate failed: {out}");

    // Each run gets a fresh cache file so every trace sees the same
    // cold-start hit/miss pattern.
    let traced = |tag: &str, threads: &str| {
        let cache = dir.path(&format!("cache-{tag}.ck"));
        let trace = dir.path(&format!("trace-{tag}.jsonl"));
        let (code, out) = run(&[
            "daily",
            "--logs",
            &logs,
            "--directory",
            &directory,
            "--window-days",
            "1",
            "--steps",
            "2",
            "--cache",
            &cache,
            "--threads",
            threads,
            "--trace",
            &trace,
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("wrote trace"), "{out}");
        std::fs::read(&trace).expect("trace written")
    };
    let serial = traced("serial", "1");
    let wide = traced("wide", "4");
    assert_eq!(serial, wide, "trace must not depend on --threads");
    // And across two consecutive runs at the same width.
    let again = traced("again", "1");
    assert_eq!(serial, again, "trace must be stable across runs");

    // The trace is deterministic: logical seqnos, no wall-clock field.
    let text = String::from_utf8(serial).expect("utf8 trace");
    assert!(text.lines().count() > 4, "{text}");
    assert!(text.starts_with("{\"seq\":0,"), "{text}");
    assert!(!text.contains("wall_us"), "{text}");
    assert!(text.contains("\"name\":\"daily\""), "{text}");
    assert!(text.contains("\"name\":\"daily.step\""), "{text}");
    assert!(text.contains("\"name\":\"window\""), "{text}");
    // The daily path mines through the cached window functions, so the
    // only detector-health span is the durable store's own.
    assert!(text.contains("\"name\":\"detector.store\""), "{text}");
}

#[test]
fn daily_metrics_summarize_the_run() {
    let dir = TempDir::new("metrics");
    let (logs, directory) = simulated(&dir);
    let cache = dir.path("cache.ck");
    let daily = |extra: &[&str]| {
        let mut args = vec![
            "daily",
            "--logs",
            &logs,
            "--directory",
            &directory,
            "--window-days",
            "1",
            "--cache",
            &cache,
        ];
        args.extend_from_slice(extra);
        run(&args)
    };

    // Text report: detector and cache lines.
    let (code, out) = daily(&["--metrics"]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("detector store:"), "{out}");
    assert!(out.contains("cache l1:"), "{out}");

    // JSON report on the now-warm cache shows hits and zero misses.
    let (code, out) = daily(&["--metrics", "--format", "json"]);
    assert_eq!(code, 0, "{out}");
    let json = out
        .lines()
        .find(|l| l.starts_with('{'))
        .expect("a JSON report line");
    assert!(json.contains("\"detectors\":"), "{json}");
    assert!(json.contains("\"caches\":"), "{json}");
    assert!(json.contains("\"misses\":0"), "{json}");

    // An unknown format is a clean usage error.
    let (code, out) = daily(&["--metrics", "--format", "xml"]);
    assert_eq!(code, 1, "{out}");
    assert!(out.contains("--format"), "{out}");
}

#[test]
fn wall_clock_flag_stamps_the_trace() {
    let dir = TempDir::new("wall-clock");
    let (logs, directory) = simulated(&dir);
    let trace = dir.path("trace.jsonl");
    let (code, out) = run(&[
        "daily",
        "--logs",
        &logs,
        "--directory",
        &directory,
        "--window-days",
        "1",
        "--trace",
        &trace,
        "--wall-clock",
    ]);
    assert_eq!(code, 0, "{out}");
    let text = std::fs::read_to_string(&trace).expect("trace written");
    assert!(text.contains("\"wall_us\":"), "{text}");
}
