//! Property tests of the observability invariants the golden-trace
//! suite builds on: histogram bucket counts sum to the observation
//! count, counters are monotone, per-worker registries merged in chunk
//! order equal the serial registry, and begin/end events always nest
//! and balance when emitted in well-formed order.

use logdep_obs::{
    is_recording, set_recorder, take_recorder, EventSink, Histogram, MetricsRegistry, Recorder,
    N_BUCKETS,
};
use logdep_par::{par_chunks_fold, ParConfig};
use proptest::prelude::*;

proptest! {
    #[test]
    fn histogram_buckets_sum_to_observation_count(
        observations in prop::collection::vec(0u64..3_000_000, 0..300),
    ) {
        let mut h = Histogram::new();
        for &us in &observations {
            h.observe(us);
        }
        prop_assert_eq!(h.count(), observations.len() as u64);
        prop_assert_eq!(h.buckets().iter().sum::<u64>(), observations.len() as u64);
        prop_assert_eq!(h.buckets().len(), N_BUCKETS);
        prop_assert_eq!(h.sum_us(), observations.iter().sum::<u64>());
    }

    #[test]
    fn counters_are_monotone(
        deltas in prop::collection::vec(0u64..10_000, 0..200),
    ) {
        let mut m = MetricsRegistry::new();
        let mut previous = 0u64;
        for &d in &deltas {
            m.counter_add("c", d);
            let now = m.counter("c");
            prop_assert!(now >= previous, "counter went backwards: {} -> {}", previous, now);
            prop_assert_eq!(now, previous + d);
            previous = now;
        }
    }

    #[test]
    fn merged_worker_registries_equal_serial(
        observations in prop::collection::vec((0u64..8, 0u64..2_000_000), 1..300),
        threads in 1usize..9,
    ) {
        // The worker seam: each shard folds observations into a fresh
        // registry; the shard registries merge left-to-right in chunk
        // order. The result must equal one serial registry.
        let record = |m: &mut MetricsRegistry, (k, us): &(u64, u64)| {
            m.counter_add(&format!("worker.counter.{k}"), *us % 17);
            m.observe_us(&format!("worker.us.{k}"), *us);
            m.gauge_set("worker.last", *us as i64);
        };
        let mut serial = MetricsRegistry::new();
        for obs in &observations {
            record(&mut serial, obs);
        }
        let cfg = ParConfig::with_threads(threads).expect("threads >= 1");
        let merged = par_chunks_fold(
            &cfg,
            &observations,
            MetricsRegistry::new,
            |mut acc, obs| {
                record(&mut acc, obs);
                acc
            },
            |mut a, b| {
                a.merge(&b);
                a
            },
        );
        prop_assert_eq!(merged, serial);
    }

    #[test]
    fn well_formed_spans_nest_and_balance(
        script in prop::collection::vec((0u8..5, any::<bool>()), 0..200),
    ) {
        // Drive the sink with a script that is balanced by
        // construction: `true` opens a span, `false` closes the
        // innermost open one; leftovers are closed at the end.
        let mut sink = EventSink::new();
        let mut open: Vec<String> = Vec::new();
        for &(name_id, begin) in &script {
            let name = format!("span.{name_id}");
            if begin {
                sink.span_begin(&name, &[]);
                open.push(name);
            } else if let Some(inner) = open.pop() {
                sink.span_end(&inner, &[]);
            } else {
                sink.point(&name, &[]);
            }
        }
        while let Some(inner) = open.pop() {
            sink.span_end(&inner, &[]);
        }
        prop_assert!(sink.check_balanced().is_ok());

        // Sequence numbers are dense and ordered.
        for (i, e) in sink.events().iter().enumerate() {
            prop_assert_eq!(e.seq, i as u64);
        }

        // One stray end (or one span left open) must be rejected.
        if !sink.is_empty() {
            let mut broken = EventSink::new();
            for e in sink.events() {
                match e.phase {
                    logdep_obs::Phase::Begin => broken.span_begin(&e.name, &[]),
                    logdep_obs::Phase::End => broken.span_end(&e.name, &[]),
                    logdep_obs::Phase::Point => broken.point(&e.name, &[]),
                }
            }
            broken.span_end("span.stray", &[]);
            prop_assert!(broken.check_balanced().is_err());
        }
    }
}

#[test]
fn worker_threads_see_no_recorder() {
    // The determinism seam: a recorder installed on the orchestration
    // thread is invisible to spawned workers, so only the caller
    // thread ever emits events.
    assert!(set_recorder(Recorder::new()).is_none());
    let saw = logdep_par::scope(|s| {
        let t = s.spawn(is_recording);
        t.join().expect("worker join")
    });
    assert!(!saw, "worker thread must not inherit the recorder");
    assert!(take_recorder().is_some());
}
