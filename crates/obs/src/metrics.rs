//! Named counters, gauges, and fixed-bucket microsecond histograms.
//!
//! The registry is a plain value, not a global: the parallel engine's
//! determinism contract (results identical at any thread width) is met
//! by giving each worker its own registry and folding them together in
//! chunk order with [`MetricsRegistry::merge`], exactly the seam
//! `logdep-par`'s sharded folds already provide. Counters add, gauges
//! are last-writer-wins (chunk order == serial order), and histogram
//! buckets add, so the merged result equals the serial registry.

use std::collections::BTreeMap;

/// Upper bounds (inclusive) of the histogram buckets, in microseconds.
///
/// A fixed ladder shared by every histogram keeps merges trivially
/// well-defined and the JSON rendering schema-free: observations above
/// the last bound land in one overflow bucket.
pub const BUCKET_BOUNDS_US: [u64; 12] = [
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 1_000_000,
];

/// Number of buckets: one per bound plus the overflow bucket.
pub const N_BUCKETS: usize = BUCKET_BOUNDS_US.len() + 1;

/// A fixed-bucket histogram of integer microsecond observations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; N_BUCKETS],
    count: u64,
    sum_us: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation of `us` microseconds.
    pub fn observe(&mut self, us: u64) {
        let idx = BUCKET_BOUNDS_US
            .iter()
            .position(|&bound| us <= bound)
            .unwrap_or(BUCKET_BOUNDS_US.len());
        // lint:allow(unchecked-indexing) — idx ≤ BUCKET_BOUNDS_US.len() < N_BUCKETS by construction
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_us = self.sum_us.saturating_add(us);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations in microseconds (saturating).
    pub fn sum_us(&self) -> u64 {
        self.sum_us
    }

    /// Per-bucket observation counts (last entry is the overflow).
    pub fn buckets(&self) -> &[u64; N_BUCKETS] {
        &self.buckets
    }

    /// Adds another histogram's observations into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += *theirs;
        }
        self.count += other.count;
        self.sum_us = self.sum_us.saturating_add(other.sum_us);
    }
}

/// A registry of named counters, gauges, and histograms.
///
/// Names are dotted paths (`cache.l1.hits`, `detector.l3.us`); the
/// `BTreeMap` keys make every iteration order — and therefore every
/// rendering — deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the named counter (created at zero).
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += delta;
    }

    /// Current value of the named counter (zero when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets the named gauge.
    pub fn gauge_set(&mut self, name: &str, value: i64) {
        self.gauges.insert(name.to_owned(), value);
    }

    /// Current value of the named gauge, if ever set.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// Records a microsecond observation into the named histogram.
    pub fn observe_us(&mut self, name: &str, us: u64) {
        self.histograms
            .entry(name.to_owned())
            .or_default()
            .observe(us);
    }

    /// The named histogram, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, i64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// True when nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Folds another registry into this one.
    ///
    /// Counters and histogram buckets add; gauges take the other
    /// registry's value (last writer wins). Folding per-worker
    /// registries in chunk order therefore reproduces the registry a
    /// serial run would have built.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += *v;
        }
        for (name, v) in &other.gauges {
            self.gauges.insert(name.clone(), *v);
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let mut m = MetricsRegistry::new();
        assert_eq!(m.counter("x"), 0);
        m.counter_add("x", 2);
        m.counter_add("x", 3);
        assert_eq!(m.counter("x"), 5);
        assert_eq!(m.gauge("g"), None);
        m.gauge_set("g", -7);
        assert_eq!(m.gauge("g"), Some(-7));
    }

    #[test]
    fn histogram_buckets_sum_to_count() {
        let mut h = Histogram::new();
        for us in [0, 100, 101, 999, 5_000, 2_000_000] {
            h.observe(us);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.buckets().iter().sum::<u64>(), 6);
        // Overflow bucket caught the 2s observation.
        assert_eq!(h.buckets()[N_BUCKETS - 1], 1);
        assert_eq!(h.sum_us(), 2_006_200);
    }

    #[test]
    fn merge_matches_serial() {
        let mut serial = MetricsRegistry::new();
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        for (i, part) in [(1u64, &mut a), (2, &mut b)] {
            part.counter_add("c", i);
            part.observe_us("h", i * 100);
            part.gauge_set("g", i as i64);
        }
        for i in 1u64..=2 {
            serial.counter_add("c", i);
            serial.observe_us("h", i * 100);
            serial.gauge_set("g", i as i64);
        }
        let mut merged = MetricsRegistry::new();
        merged.merge(&a);
        merged.merge(&b);
        assert_eq!(merged, serial);
    }
}
