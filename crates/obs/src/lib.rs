//! Deterministic observability for the dependency miner.
//!
//! After the parallel engine (PR 4), the incremental cache (PR 5) and
//! crash-safe resume (PR 7), the pipeline had no way to show its work:
//! no counters, no stage timings, no machine-readable event stream.
//! This crate supplies all three without touching the workspace's two
//! hardest invariants:
//!
//! * **Determinism** — events carry logical sequence numbers, never
//!   timestamps, so a trace is byte-identical across runs and across
//!   `LOGDEP_THREADS` widths. The crate itself contains no wall-clock
//!   read at all; a caller that truly wants timestamps must inject a
//!   clock function explicitly (the CLI's `--wall-clock` flag).
//! * **Zero dependencies** — JSON lines are rendered by hand, like the
//!   worker pool in `logdep-par` is hand-rolled over `std::thread`.
//!
//! Instrumentation reaches the pipeline through a thread-local
//! [`Recorder`] installed with [`set_recorder`] and drained with
//! [`take_recorder`]; library code calls [`record`], which is a no-op
//! when no recorder is installed, so uninstrumented runs pay one
//! thread-local probe per site and no signature anywhere changes.
//! Orchestration functions only ever emit from the thread that
//! installed the recorder — worker threads see no recorder and record
//! nothing — which is what keeps the stream identical at any width.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod metrics;
pub mod report;

pub use event::{Event, EventSink, Field, Phase};
pub use metrics::{Histogram, MetricsRegistry, BUCKET_BOUNDS_US, N_BUCKETS};
pub use report::{CacheSummary, DetectorSummary, RunReport};

use std::cell::RefCell;

/// A trace sink and a metrics registry, recorded together.
#[derive(Debug, Default)]
pub struct Recorder {
    /// The structured event stream.
    pub sink: EventSink,
    /// The named counters / gauges / histograms.
    pub metrics: MetricsRegistry,
}

impl Recorder {
    /// A recorder with no clock: fully deterministic output.
    pub fn new() -> Self {
        Self::default()
    }

    /// A recorder whose events are stamped with `clock()` micros.
    ///
    /// This deliberately breaks trace byte-identity; only an explicit
    /// operator request (`--wall-clock`) should ever construct one.
    pub fn with_clock(clock: fn() -> u64) -> Self {
        Self {
            sink: EventSink::with_clock(clock),
            metrics: MetricsRegistry::new(),
        }
    }

    /// Emits a span-opening event.
    pub fn span_begin(&mut self, name: &str, fields: &[(&str, Field)]) {
        self.sink.span_begin(name, fields);
    }

    /// Emits a span-closing event.
    pub fn span_end(&mut self, name: &str, fields: &[(&str, Field)]) {
        self.sink.span_end(name, fields);
    }

    /// Emits a standalone point event.
    pub fn point(&mut self, name: &str, fields: &[(&str, Field)]) {
        self.sink.point(name, fields);
    }

    /// Adds to a named counter.
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        self.metrics.counter_add(name, delta);
    }

    /// Sets a named gauge.
    pub fn gauge_set(&mut self, name: &str, value: i64) {
        self.metrics.gauge_set(name, value);
    }

    /// Records a microsecond observation into a named histogram.
    pub fn observe_us(&mut self, name: &str, us: u64) {
        self.metrics.observe_us(name, us);
    }

    /// Summarizes the recorded run.
    pub fn report(&self) -> RunReport {
        RunReport::from_metrics(&self.metrics, self.sink.len() as u64)
    }
}

thread_local! {
    static RECORDER: RefCell<Option<Recorder>> = const { RefCell::new(None) };
}

/// Installs a recorder on the current thread, returning any recorder
/// that was already installed.
pub fn set_recorder(recorder: Recorder) -> Option<Recorder> {
    RECORDER.with(|slot| slot.borrow_mut().replace(recorder))
}

/// Removes and returns the current thread's recorder, if any.
pub fn take_recorder() -> Option<Recorder> {
    RECORDER.with(|slot| slot.borrow_mut().take())
}

/// True when a recorder is installed on the current thread.
pub fn is_recording() -> bool {
    RECORDER.with(|slot| slot.borrow().is_some())
}

/// Runs `f` against the current thread's recorder; a no-op when none
/// is installed. This is the single hook library code calls, so an
/// uninstrumented run costs one thread-local probe per site.
pub fn record<F: FnOnce(&mut Recorder)>(f: F) {
    RECORDER.with(|slot| {
        if let Some(recorder) = slot.borrow_mut().as_mut() {
            f(recorder);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_is_noop_without_recorder() {
        assert!(take_recorder().is_none());
        assert!(!is_recording());
        let mut ran = false;
        record(|_| ran = true);
        assert!(!ran);
    }

    #[test]
    fn install_record_drain() {
        assert!(set_recorder(Recorder::new()).is_none());
        assert!(is_recording());
        record(|r| {
            r.span_begin("pipeline", &[("day", Field::from(0i64))]);
            r.counter_add("cache.l1.hits", 3);
            r.span_end("pipeline", &[]);
        });
        let rec = take_recorder().expect("recorder installed above");
        assert!(!is_recording());
        assert_eq!(rec.sink.len(), 2);
        assert_eq!(rec.metrics.counter("cache.l1.hits"), 3);
        assert!(rec.sink.check_balanced().is_ok());
    }

    #[test]
    fn report_counts_events() {
        let mut rec = Recorder::new();
        rec.point("x", &[]);
        rec.gauge_set("detector.l1.enabled", 1);
        rec.gauge_set("detector.l1.ok", 1);
        let report = rec.report();
        assert_eq!(report.events, 1);
        assert_eq!(report.detectors.len(), 1);
    }
}
