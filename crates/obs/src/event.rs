//! Structured span events with logical sequence numbers.
//!
//! The trace is the observability contract: every event carries a
//! logical sequence number assigned at emission, never a timestamp, so
//! two runs of the same pipeline produce byte-identical streams at any
//! thread width. Wall-clock microseconds appear only when the caller
//! injects a clock explicitly (the CLI's `--wall-clock` flag) and are
//! understood to break byte-identity for that run alone.

/// A field value attached to an event.
///
/// Only integers, strings and booleans — no floats — so the JSON
/// rendering is trivially deterministic and never subject to shortest
/// round-trip formatting drift.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Field {
    /// An unsigned count (hits, misses, detected pairs, …).
    U64(u64),
    /// A signed quantity (day indices, window bounds in ms).
    I64(i64),
    /// A short label (event codes, detector names).
    Str(String),
    /// A flag (enabled, ok, resume).
    Bool(bool),
}

impl From<u64> for Field {
    fn from(v: u64) -> Self {
        Field::U64(v)
    }
}

impl From<usize> for Field {
    fn from(v: usize) -> Self {
        Field::U64(v as u64)
    }
}

impl From<u32> for Field {
    fn from(v: u32) -> Self {
        Field::U64(u64::from(v))
    }
}

impl From<i64> for Field {
    fn from(v: i64) -> Self {
        Field::I64(v)
    }
}

impl From<&str> for Field {
    fn from(v: &str) -> Self {
        Field::Str(v.to_owned())
    }
}

impl From<String> for Field {
    fn from(v: String) -> Self {
        Field::Str(v)
    }
}

impl From<bool> for Field {
    fn from(v: bool) -> Self {
        Field::Bool(v)
    }
}

impl Field {
    /// Renders the value as a JSON literal.
    fn render(&self, out: &mut String) {
        match self {
            Field::U64(v) => out.push_str(&v.to_string()),
            Field::I64(v) => out.push_str(&v.to_string()),
            Field::Str(s) => {
                out.push('"');
                escape_into(s, out);
                out.push('"');
            }
            Field::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        }
    }
}

/// Escapes a string for inclusion in a JSON string literal.
pub(crate) fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Whether an event opens a span, closes one, or stands alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Opens a span.
    Begin,
    /// Closes the innermost open span of the same name.
    End,
    /// A standalone instantaneous event.
    Point,
}

impl Phase {
    /// The phase's wire name (the `"ev"` JSON key).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Begin => "begin",
            Phase::End => "end",
            Phase::Point => "point",
        }
    }
}

/// One structured trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Logical sequence number, assigned in emission order from 0.
    pub seq: u64,
    /// Begin / end / point.
    pub phase: Phase,
    /// Dotted event name (`pipeline`, `detector.l1`, `daily.step`, …).
    pub name: String,
    /// Ordered key/value payload; order is the emission order.
    pub fields: Vec<(String, Field)>,
    /// Wall-clock microseconds, present only under an injected clock.
    pub wall_us: Option<u64>,
}

impl Event {
    /// Renders the event as one JSON object (no trailing newline).
    ///
    /// Key order is fixed — `seq`, `ev`, `name`, then payload fields in
    /// emission order, then `wall_us` if present — so the line is a
    /// deterministic function of the event alone.
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(64);
        s.push_str("{\"seq\":");
        s.push_str(&self.seq.to_string());
        s.push_str(",\"ev\":\"");
        s.push_str(self.phase.name());
        s.push_str("\",\"name\":\"");
        escape_into(&self.name, &mut s);
        s.push('"');
        for (k, v) in &self.fields {
            s.push_str(",\"");
            escape_into(k, &mut s);
            s.push_str("\":");
            v.render(&mut s);
        }
        if let Some(us) = self.wall_us {
            s.push_str(",\"wall_us\":");
            s.push_str(&us.to_string());
        }
        s.push('}');
        s
    }
}

/// An ordered stream of events with monotonically increasing logical
/// sequence numbers.
#[derive(Debug, Default)]
pub struct EventSink {
    events: Vec<Event>,
    next_seq: u64,
    clock: Option<fn() -> u64>,
}

impl EventSink {
    /// An empty sink with no clock: events carry sequence numbers only.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty sink that stamps every event with `clock()` micros.
    ///
    /// Injecting a clock makes the stream non-reproducible; only the
    /// CLI's explicit `--wall-clock` flag should ever supply one.
    pub fn with_clock(clock: fn() -> u64) -> Self {
        Self {
            clock: Some(clock),
            ..Self::default()
        }
    }

    fn push(&mut self, phase: Phase, name: &str, fields: &[(&str, Field)]) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.events.push(Event {
            seq,
            phase,
            name: name.to_owned(),
            fields: fields
                .iter()
                .map(|(k, v)| ((*k).to_owned(), v.clone()))
                .collect(),
            wall_us: self.clock.map(|c| c()),
        });
    }

    /// Emits a span-opening event.
    pub fn span_begin(&mut self, name: &str, fields: &[(&str, Field)]) {
        self.push(Phase::Begin, name, fields);
    }

    /// Emits a span-closing event.
    pub fn span_end(&mut self, name: &str, fields: &[(&str, Field)]) {
        self.push(Phase::End, name, fields);
    }

    /// Emits a standalone point event.
    pub fn point(&mut self, name: &str, fields: &[(&str, Field)]) {
        self.push(Phase::Point, name, fields);
    }

    /// All events emitted so far, in sequence order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of events emitted.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no event has been emitted.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Renders the whole stream as JSON lines (one event per line,
    /// trailing newline after the last event when non-empty).
    pub fn render_jsonl(&self) -> String {
        let mut s = String::new();
        for e in &self.events {
            s.push_str(&e.to_json_line());
            s.push('\n');
        }
        s
    }

    /// Checks that begin/end events nest and balance: every `end`
    /// closes the innermost open `begin` of the same name and nothing
    /// is left open at the end of the stream.
    pub fn check_balanced(&self) -> Result<(), String> {
        let mut stack: Vec<&str> = Vec::new();
        for e in &self.events {
            match e.phase {
                Phase::Begin => stack.push(&e.name),
                Phase::End => match stack.pop() {
                    Some(open) if open == e.name => {}
                    Some(open) => {
                        return Err(format!(
                            "seq {}: end of {:?} closes open span {:?}",
                            e.seq, e.name, open
                        ));
                    }
                    None => {
                        return Err(format!(
                            "seq {}: end of {:?} with no open span",
                            e.seq, e.name
                        ));
                    }
                },
                Phase::Point => {}
            }
        }
        if let Some(open) = stack.pop() {
            return Err(format!("span {open:?} still open at end of stream"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_lines_are_stable_and_escaped() {
        let mut sink = EventSink::new();
        sink.span_begin("pipeline", &[("day", Field::from(3i64))]);
        sink.point("note", &[("msg", Field::from("a\"b\\c\nd"))]);
        sink.span_end("pipeline", &[("ok", Field::from(true))]);
        assert_eq!(
            sink.render_jsonl(),
            "{\"seq\":0,\"ev\":\"begin\",\"name\":\"pipeline\",\"day\":3}\n\
             {\"seq\":1,\"ev\":\"point\",\"name\":\"note\",\"msg\":\"a\\\"b\\\\c\\nd\"}\n\
             {\"seq\":2,\"ev\":\"end\",\"name\":\"pipeline\",\"ok\":true}\n"
        );
        assert!(sink.check_balanced().is_ok());
    }

    #[test]
    fn imbalance_is_detected() {
        let mut sink = EventSink::new();
        sink.span_begin("a", &[]);
        sink.span_begin("b", &[]);
        sink.span_end("a", &[]);
        assert!(sink.check_balanced().is_err());

        let mut sink = EventSink::new();
        sink.span_end("a", &[]);
        assert!(sink.check_balanced().is_err());

        let mut sink = EventSink::new();
        sink.span_begin("a", &[]);
        assert!(sink.check_balanced().is_err());
    }

    #[test]
    fn no_clock_means_no_wall_us() {
        let mut sink = EventSink::new();
        sink.point("x", &[]);
        assert_eq!(sink.events()[0].wall_us, None);
        assert!(!sink.events()[0].to_json_line().contains("wall_us"));
    }

    #[test]
    fn injected_clock_stamps_events() {
        fn fixed() -> u64 {
            42
        }
        let mut sink = EventSink::with_clock(fixed);
        sink.point("x", &[]);
        assert_eq!(sink.events()[0].wall_us, Some(42));
        assert!(sink.events()[0]
            .to_json_line()
            .ends_with(",\"wall_us\":42}"));
    }
}
