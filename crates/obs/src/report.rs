//! End-of-run summaries built from the metrics registry.
//!
//! A [`RunReport`] reads the well-known metric names the pipeline
//! records (see DESIGN.md §14 for the full table) and renders them as
//! an operator-facing text block or a JSON object. Timing fields come
//! from detector health rows and are observational: they vary run to
//! run, which is why the report — unlike the event trace — is never
//! asserted byte-identical.

use crate::event::escape_into;
use crate::metrics::MetricsRegistry;

/// Per-detector summary row (`detector.<name>.*` metrics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetectorSummary {
    /// Detector name (`l1`, `l2`, `l3`, `store`).
    pub name: String,
    /// Whether the detector was enabled for the run.
    pub enabled: bool,
    /// Whether it completed without error.
    pub ok: bool,
    /// Dependencies / pairs detected.
    pub detected: u64,
    /// Total wall time attributed to the detector, in microseconds.
    pub elapsed_us: u64,
}

/// Per-layer cache traffic row (`cache.<layer>.hits` / `.misses`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheSummary {
    /// Cache layer (`l1`, `l2`, `l3`).
    pub layer: String,
    /// Evidence-cache hits.
    pub hits: u64,
    /// Evidence-cache misses (recomputations).
    pub misses: u64,
}

impl CacheSummary {
    /// Hit rate in permille (integer, so rendering stays float-free).
    pub fn hit_permille(&self) -> u64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0
        } else {
            self.hits * 1000 / total
        }
    }
}

/// Summary of one observed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// Detector rows, in the registry's name order.
    pub detectors: Vec<DetectorSummary>,
    /// Cache layers that saw any traffic, in name order.
    pub caches: Vec<CacheSummary>,
    /// Every counter not folded into the rows above, in name order.
    pub counters: Vec<(String, u64)>,
    /// Total events emitted to the trace.
    pub events: u64,
    /// True when any enabled detector failed (degraded-mode run).
    pub degraded: bool,
}

/// The detector names the pipeline records metrics under.
const DETECTORS: [&str; 4] = ["l1", "l2", "l3", "store"];

/// The cache layers the windowed pipeline records traffic for.
const CACHE_LAYERS: [&str; 3] = ["l1", "l2", "l3"];

impl RunReport {
    /// Builds a report from a recorded registry and the trace length.
    pub fn from_metrics(metrics: &MetricsRegistry, events: u64) -> Self {
        let mut detectors = Vec::new();
        for name in DETECTORS {
            let enabled = metrics.gauge(&format!("detector.{name}.enabled"));
            let ok = metrics.gauge(&format!("detector.{name}.ok"));
            if enabled.is_none() && ok.is_none() {
                continue;
            }
            detectors.push(DetectorSummary {
                name: name.to_owned(),
                enabled: enabled.unwrap_or(0) != 0,
                ok: ok.unwrap_or(0) != 0,
                detected: metrics.counter(&format!("detector.{name}.detected")),
                elapsed_us: metrics
                    .histogram(&format!("detector.{name}.us"))
                    .map_or(0, |h| h.sum_us()),
            });
        }
        let mut caches = Vec::new();
        for layer in CACHE_LAYERS {
            let hits = metrics.counter(&format!("cache.{layer}.hits"));
            let misses = metrics.counter(&format!("cache.{layer}.misses"));
            if hits + misses > 0 {
                caches.push(CacheSummary {
                    layer: layer.to_owned(),
                    hits,
                    misses,
                });
            }
        }
        let absorbed = |name: &str| {
            (name.starts_with("detector.") && name.ends_with(".detected"))
                || (name.starts_with("cache.")
                    && (name.ends_with(".hits") || name.ends_with(".misses")))
        };
        let counters = metrics
            .counters()
            .filter(|(name, _)| !absorbed(name))
            .map(|(name, v)| (name.to_owned(), v))
            .collect();
        let degraded = detectors.iter().any(|d| d.enabled && !d.ok);
        Self {
            detectors,
            caches,
            counters,
            events,
            degraded,
        }
    }

    /// Renders the report as an operator-facing text block.
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "run report: {} detector(s), {} event(s){}\n",
            self.detectors.len(),
            self.events,
            if self.degraded { ", DEGRADED" } else { "" }
        ));
        for d in &self.detectors {
            let status = match (d.enabled, d.ok) {
                (false, _) => "disabled".to_owned(),
                (true, true) => format!("ok, {} detected, {} us", d.detected, d.elapsed_us),
                (true, false) => "FAILED".to_owned(),
            };
            s.push_str(&format!("  detector {}: {status}\n", d.name));
        }
        for c in &self.caches {
            s.push_str(&format!(
                "  cache {}: {} hits, {} misses ({}.{}% hit rate)\n",
                c.layer,
                c.hits,
                c.misses,
                c.hit_permille() / 10,
                c.hit_permille() % 10
            ));
        }
        for (name, v) in &self.counters {
            s.push_str(&format!("  {name}: {v}\n"));
        }
        s
    }

    /// Renders the report as one JSON object (hand-rolled — the crate
    /// has no serializer dependency by design).
    pub fn render_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str(&format!("\"events\":{},", self.events));
        s.push_str(&format!("\"degraded\":{},", self.degraded));
        s.push_str("\"detectors\":[");
        for (i, d) in self.detectors.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"name\":\"");
            escape_into(&d.name, &mut s);
            s.push_str(&format!(
                "\",\"enabled\":{},\"ok\":{},\"detected\":{},\"elapsed_us\":{}}}",
                d.enabled, d.ok, d.detected, d.elapsed_us
            ));
        }
        s.push_str("],\"caches\":[");
        for (i, c) in self.caches.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"layer\":\"");
            escape_into(&c.layer, &mut s);
            s.push_str(&format!(
                "\",\"hits\":{},\"misses\":{},\"hit_permille\":{}}}",
                c.hits,
                c.misses,
                c.hit_permille()
            ));
        }
        s.push_str("],\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('"');
            escape_into(name, &mut s);
            s.push_str(&format!("\":{v}"));
        }
        s.push_str("}}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsRegistry {
        let mut m = MetricsRegistry::new();
        m.gauge_set("detector.l1.enabled", 1);
        m.gauge_set("detector.l1.ok", 1);
        m.counter_add("detector.l1.detected", 4);
        m.observe_us("detector.l1.us", 1500);
        m.gauge_set("detector.l3.enabled", 1);
        m.gauge_set("detector.l3.ok", 0);
        m.counter_add("cache.l1.hits", 9);
        m.counter_add("cache.l1.misses", 1);
        m.counter_add("durable.steps", 7);
        m
    }

    #[test]
    fn report_reads_well_known_names() {
        let r = RunReport::from_metrics(&sample(), 42);
        assert_eq!(r.events, 42);
        assert!(r.degraded, "failed l3 must flag the run degraded");
        assert_eq!(r.detectors.len(), 2);
        assert_eq!(r.detectors[0].name, "l1");
        assert_eq!(r.detectors[0].detected, 4);
        assert_eq!(r.detectors[0].elapsed_us, 1500);
        assert_eq!(r.caches.len(), 1);
        assert_eq!(r.caches[0].hit_permille(), 900);
        assert_eq!(r.counters, vec![("durable.steps".to_owned(), 7)]);
    }

    #[test]
    fn text_and_json_render() {
        let r = RunReport::from_metrics(&sample(), 42);
        let text = r.render_text();
        assert!(text.contains("DEGRADED"));
        assert!(text.contains("detector l1: ok, 4 detected, 1500 us"));
        assert!(text.contains("cache l1: 9 hits, 1 misses (90.0% hit rate)"));
        assert!(text.contains("durable.steps: 7"));
        let json = r.render_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"degraded\":true"));
        assert!(json.contains("\"hit_permille\":900"));
    }

    #[test]
    fn empty_registry_gives_empty_report() {
        let r = RunReport::from_metrics(&MetricsRegistry::new(), 0);
        assert!(r.detectors.is_empty());
        assert!(r.caches.is_empty());
        assert!(!r.degraded);
    }
}
