//! Ground truth exported by the simulator.
//!
//! The paper validates against an expert-curated reference model; here
//! the reference model is exact by construction (see DESIGN.md §2). The
//! truth is expressed in *names* so the mining side can resolve them
//! against its own registry without coupling the crates' id spaces.

use crate::topology::{CitationStyle, FreqTier, Topology};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// The two reference models of §4.3, by name.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct GroundTruth {
    /// Unordered application interaction pairs, each stored with the
    /// lexicographically smaller name first.
    pub app_pairs: BTreeSet<(String, String)>,
    /// `(application name, service directory id)` dependencies.
    pub app_service: BTreeSet<(String, String)>,
    /// Names of applications participating in the models.
    pub app_names: Vec<String>,
    /// Published directory ids.
    pub service_ids: Vec<String>,
    /// Subset of `app_service` whose edges are dormant ("used extremely
    /// seldom") — §4.8 reclassifies their misses as true negatives.
    pub dormant: BTreeSet<(String, String)>,
    /// Subset of `app_service` whose invocations are never cited in the
    /// caller's logs (unlogged + renamed + wrong-id), i.e. undetectable
    /// by any log-based technique.
    pub uncited: BTreeSet<(String, String)>,
    /// Names of applications that do not log all of their invocations
    /// (excluded from the §4.9 load experiment).
    pub incomplete_loggers: Vec<String>,
}

impl GroundTruth {
    /// Builds the ground truth from a generated topology.
    pub fn from_topology(topology: &Topology) -> Self {
        let name = |a: usize| topology.apps[a].name.clone();
        let app_pairs = topology
            .app_pairs()
            .into_iter()
            .map(|(a, b)| order(name(a), name(b)))
            .collect();
        let app_service = topology
            .app_service_pairs()
            .into_iter()
            .map(|(a, s)| (name(a), topology.services[s].id.clone()))
            .collect();
        let mut dormant = BTreeSet::new();
        let mut uncited = BTreeSet::new();
        let mut incomplete: BTreeSet<String> = BTreeSet::new();
        for e in &topology.edges {
            let key = (name(e.caller), topology.services[e.service].id.clone());
            if e.freq == FreqTier::Dormant {
                dormant.insert(key.clone());
            }
            match e.citation {
                CitationStyle::Correct => {}
                CitationStyle::Unlogged => {
                    incomplete.insert(name(e.caller));
                    uncited.insert(key);
                }
                CitationStyle::Renamed | CitationStyle::WrongId(_) => {
                    uncited.insert(key);
                }
            }
        }
        Self {
            app_pairs,
            app_service,
            app_names: topology.apps.iter().map(|a| a.name.clone()).collect(),
            service_ids: topology.services.iter().map(|s| s.id.clone()).collect(),
            dormant,
            uncited,
            incomplete_loggers: incomplete.into_iter().collect(),
        }
    }

    /// Number of dependent application pairs (paper: 178).
    pub fn n_app_pairs(&self) -> usize {
        self.app_pairs.len()
    }

    /// Number of app→service dependencies (paper: 177).
    pub fn n_app_service(&self) -> usize {
        self.app_service.len()
    }

    /// Total number of unordered app pairs, dependent or not
    /// (paper: (54² − 54)/2 = 1431).
    pub fn n_possible_app_pairs(&self) -> usize {
        let n = self.app_names.len();
        n * (n - 1) / 2
    }

    /// True when the unordered pair `{a, b}` is a known dependency.
    pub fn is_dependent_pair(&self, a: &str, b: &str) -> bool {
        self.app_pairs.contains(&order(a.to_owned(), b.to_owned()))
    }

    /// True when `(app, service)` is a known dependency.
    pub fn is_app_service_dep(&self, app: &str, service: &str) -> bool {
        self.app_service
            .contains(&(app.to_owned(), service.to_owned()))
    }
}

/// Normalizes an unordered pair.
pub fn order(a: String, b: String) -> (String, String) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{NoiseConfig, TopologyConfig};

    fn truth() -> GroundTruth {
        let t = Topology::generate(
            &TopologyConfig::hug_like(),
            &NoiseConfig::paper_taxonomy(),
            7,
        );
        GroundTruth::from_topology(&t)
    }

    #[test]
    fn counts_are_paper_scale() {
        let g = truth();
        assert_eq!(g.app_names.len(), 54);
        assert_eq!(g.service_ids.len(), 47);
        assert_eq!(g.n_possible_app_pairs(), 1431);
        assert!(
            (130..=230).contains(&g.n_app_pairs()),
            "{}",
            g.n_app_pairs()
        );
        assert!(
            (130..=230).contains(&g.n_app_service()),
            "{}",
            g.n_app_service()
        );
    }

    #[test]
    fn pairs_are_normalized() {
        let g = truth();
        for (a, b) in &g.app_pairs {
            assert!(a < b, "unnormalized or self pair: {a} / {b}");
        }
        // Membership query works in both orders.
        let (a, b) = g.app_pairs.iter().next().expect("non-empty").clone();
        assert!(g.is_dependent_pair(&a, &b));
        assert!(g.is_dependent_pair(&b, &a));
        assert!(!g.is_dependent_pair(&a, &a));
    }

    #[test]
    fn taxonomy_subsets_are_subsets() {
        let g = truth();
        for k in g.dormant.iter().chain(g.uncited.iter()) {
            assert!(
                g.app_service.contains(k),
                "taxonomy entry not in model: {k:?}"
            );
        }
        // 7 unlogged + 3 renamed + 5 wrong-id.
        assert_eq!(g.uncited.len(), 15);
        assert_eq!(g.incomplete_loggers.len(), 4);
    }

    #[test]
    fn app_service_query() {
        let g = truth();
        let (app, svc) = g.app_service.iter().next().expect("non-empty").clone();
        assert!(g.is_app_service_dep(&app, &svc));
        assert!(!g.is_app_service_dep(&app, "NOT_A_SERVICE"));
    }

    #[test]
    fn order_helper() {
        assert_eq!(
            order("b".into(), "a".into()),
            ("a".to_owned(), "b".to_owned())
        );
        assert_eq!(
            order("a".into(), "b".into()),
            ("a".to_owned(), "b".to_owned())
        );
    }
}
