//! Simulation configuration.
//!
//! Every knob that shapes the synthetic environment lives here, so one
//! struct pins down an entire reproducible week. The defaults are
//! calibrated to the HUG environment of the paper, scaled down ~100×
//! (the paper's week is 56.8 million logs; the default here is a few
//! hundred thousand, which runs the full evaluation on a laptop).

use serde::{Deserialize, Serialize};

/// Complete simulation configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Master seed; every stream of randomness derives from it.
    pub seed: u64,
    /// Number of days to simulate.
    pub days: u32,
    /// Topology shape.
    pub topology: TopologyConfig,
    /// Workload intensity.
    pub workload: WorkloadConfig,
    /// Fault/noise injection (the §4.8 error taxonomy).
    pub noise: NoiseConfig,
}

impl SimConfig {
    /// The paper's observation week: 7 days starting Tuesday 2005-12-06,
    /// days 4 and 5 (Sat/Sun) at weekend load, HUG-like topology,
    /// noise calibrated to the §4.8 taxonomy. `scale` multiplies all
    /// traffic volumes; `1.0` is the ~100×-reduced laptop default.
    pub fn paper_week(seed: u64, scale: f64) -> Self {
        Self {
            seed,
            days: 7,
            topology: TopologyConfig::hug_like(),
            workload: WorkloadConfig::hug_like(scale),
            noise: NoiseConfig::paper_taxonomy(),
        }
    }

    /// A deliberately small configuration for fast unit tests: one day,
    /// a dozen applications, reduced traffic.
    pub fn small_test(seed: u64) -> Self {
        Self {
            seed,
            days: 1,
            topology: TopologyConfig::small(),
            workload: WorkloadConfig::hug_like(0.5),
            noise: NoiseConfig::paper_taxonomy(),
        }
    }
}

/// Shape of the application/service topology.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopologyConfig {
    /// Front-end (GUI / lightweight client) applications that drive
    /// user sessions.
    pub n_client_apps: usize,
    /// Mid-tier service applications.
    pub n_mid_apps: usize,
    /// Backend applications (databases, archives, notification cores).
    pub n_backend_apps: usize,
    /// Service-directory entries. Must not exceed the number of mid +
    /// backend apps × 2 (owners are drawn from those tiers).
    pub n_services: usize,
    /// Mean number of service dependencies per client app.
    pub client_fanout: f64,
    /// Mean number of service dependencies per mid-tier app.
    pub mid_fanout: f64,
    /// Probability that a backend app has one service dependency.
    pub backend_edge_prob: f64,
    /// Fraction of edges communicating asynchronously.
    pub async_edge_fraction: f64,
}

impl TopologyConfig {
    /// The HUG-like shape of the paper's reference model: 54 apps,
    /// 47 service entries, ≈177 dependencies.
    pub fn hug_like() -> Self {
        Self {
            n_client_apps: 12,
            n_mid_apps: 30,
            n_backend_apps: 12,
            n_services: 47,
            client_fanout: 9.5,
            mid_fanout: 2.9,
            backend_edge_prob: 0.5,
            async_edge_fraction: 0.3,
        }
    }

    /// Miniature topology for unit tests.
    pub fn small() -> Self {
        Self {
            n_client_apps: 3,
            n_mid_apps: 6,
            n_backend_apps: 3,
            n_services: 8,
            client_fanout: 3.0,
            mid_fanout: 1.5,
            backend_edge_prob: 0.3,
            async_edge_fraction: 0.3,
        }
    }

    /// Total number of applications.
    pub fn n_apps(&self) -> usize {
        self.n_client_apps + self.n_mid_apps + self.n_backend_apps
    }
}

/// Traffic intensity parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Global volume multiplier.
    pub scale: f64,
    /// Mean user sessions per weekday (before diurnal shaping).
    pub sessions_per_weekday: f64,
    /// Mean user actions per session.
    pub actions_per_session: f64,
    /// Mean think time between session actions, seconds.
    pub think_time_secs: f64,
    /// Mean background (non-session) logs per app per weekday.
    pub background_logs_per_app_day: f64,
    /// Mean system-triggered (non-session) invocations per dependency
    /// edge per weekday — batch jobs, push notifications, timers. These
    /// keep activity correlation alive around the clock.
    pub system_invocations_per_edge_day: f64,
    /// Per-day load multipliers, indexed day 0.. (the paper's week runs
    /// Tue..Mon with the weekend on days 4 and 5). Ratios follow
    /// Table 1: 10.3, 9.4, 9.4, 9.9, 3.7, 3.4, 10.7 million logs.
    pub day_multipliers: Vec<f64>,
    /// Number of users in the population.
    pub n_users: usize,
    /// Number of client machines.
    pub n_hosts: usize,
}

impl WorkloadConfig {
    /// HUG-like diurnal, weekly-shaped workload at the given scale.
    pub fn hug_like(scale: f64) -> Self {
        Self {
            scale,
            sessions_per_weekday: 600.0,
            actions_per_session: 8.0,
            think_time_secs: 18.0,
            background_logs_per_app_day: 150.0,
            system_invocations_per_edge_day: 15.0,
            day_multipliers: vec![1.00, 0.91, 0.91, 0.96, 0.36, 0.33, 1.04],
            n_users: 140,
            n_hosts: 90,
        }
    }

    /// Load multiplier for `day` (cycles if more days than multipliers).
    pub fn day_multiplier(&self, day: u32) -> f64 {
        if self.day_multipliers.is_empty() {
            1.0
        } else {
            self.day_multipliers[day as usize % self.day_multipliers.len()]
        }
    }

    /// Diurnal intensity shape: fraction of a day's traffic falling in
    /// `hour` (0..24). Hospitals run around the clock but office hours
    /// dominate (§3.1 of the paper: "there is still much more activity
    /// at usual office hours").
    pub fn diurnal_weight(hour: u8) -> f64 {
        // Piecewise curve: night trough, morning ramp, office plateau,
        // evening decline. Sums to 1 over 24 hours.
        // Hospitals never sleep: the night trough stays near a third of
        // the office peak ("never less than 200 records accessed each
        // hour", §1.2), which is what keeps all three techniques fed
        // around the clock.
        const W: [f64; 24] = [
            0.024, 0.022, 0.021, 0.021, 0.022, 0.025, // 00-05
            0.032, 0.046, 0.060, 0.061, 0.061, 0.060, // 06-11
            0.059, 0.060, 0.061, 0.061, 0.059, 0.054, // 12-17
            0.042, 0.036, 0.031, 0.028, 0.026, 0.028, // 18-23
        ];
        W[hour as usize % 24]
    }
}

/// Fault-injection knobs reproducing the paper's §4.8 error taxonomy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NoiseConfig {
    /// Number of caller apps that do not log (some of) their
    /// invocations. The paper found 4 such applications covering 7
    /// unlogged interactions.
    pub unlogged_apps: usize,
    /// Total dependency edges whose invocations are never cited in logs.
    pub unlogged_edges: usize,
    /// Edges whose citations use an outdated directory id (`UPSRV` for
    /// `UPSRV2`); 3 in the paper.
    pub renamed_edges: usize,
    /// Edges whose citations use a similar but wrong existing id;
    /// 5 in the paper.
    pub wrong_id_edges: usize,
    /// Number of (app, service) coincidence pairs — free text that cites
    /// a directory id by accident (a patient sharing a service's name);
    /// 7 in the paper.
    pub coincidence_pairs: usize,
    /// Mean coincidence logs emitted per pair per day.
    pub coincidence_rate_per_day: f64,
    /// Number of flaky nested-call chains whose failures make the
    /// top-level caller log an exception stack trace citing the
    /// transitive service; 5 in the paper.
    pub stacktrace_chains: usize,
    /// Probability that an invocation along a flaky chain fails.
    pub stacktrace_failure_prob: f64,
    /// Fraction of service owners whose callee-side logs cite their own
    /// group id at all (the rest log without citation). Governs how many
    /// inverted dependencies appear *without* stop patterns (24 in the
    /// paper).
    pub server_citing_fraction: f64,
    /// Number of service owners using a callee-log template *not*
    /// covered by the standard stop patterns — the residual inverted
    /// dependencies (2 in the paper).
    pub leaky_server_templates: usize,
    /// Maximum absolute clock skew of NT-domain hosts, milliseconds
    /// (§4.2: "less than 1 sec"). Unix servers stay within ±1 ms.
    pub nt_skew_ms: i64,
    /// Mean client-side buffering delay added to the *server* timestamp,
    /// milliseconds.
    pub buffer_delay_ms: f64,
    /// Number of collection interruptions per day — windows in which
    /// the central log collector records nothing (§5 of the paper
    /// notes collection "can be interrupted in periods of high load").
    /// Zero by default; used by robustness studies.
    pub collection_gaps_per_day: usize,
    /// Length of each collection gap, minutes.
    pub collection_gap_minutes: u32,
    /// Probability that a client app's session-driven log carries the
    /// user/host context (even front ends do not stamp every line).
    pub client_session_context_prob: f64,
    /// Probability that a mid-tier app's session-driven log carries the
    /// user/host context.
    pub mid_session_context_prob: f64,
    /// Probability that a backend app's session-driven log carries the
    /// user/host context.
    pub backend_session_context_prob: f64,
}

impl NoiseConfig {
    /// Calibration matching the counts reported in §4.8 of the paper.
    pub fn paper_taxonomy() -> Self {
        Self {
            unlogged_apps: 4,
            unlogged_edges: 7,
            renamed_edges: 3,
            wrong_id_edges: 5,
            coincidence_pairs: 7,
            coincidence_rate_per_day: 0.35,
            stacktrace_chains: 5,
            stacktrace_failure_prob: 0.05,
            server_citing_fraction: 0.55,
            leaky_server_templates: 2,
            nt_skew_ms: 900,
            buffer_delay_ms: 1_500.0,
            collection_gaps_per_day: 0,
            collection_gap_minutes: 10,
            client_session_context_prob: 0.30,
            mid_session_context_prob: 0.35,
            backend_session_context_prob: 0.06,
        }
    }

    /// A clean system: no injected faults at all. Useful for testing
    /// that the miners reach perfect precision when nothing misleads
    /// them.
    pub fn clean() -> Self {
        Self {
            unlogged_apps: 0,
            unlogged_edges: 0,
            renamed_edges: 0,
            wrong_id_edges: 0,
            coincidence_pairs: 0,
            coincidence_rate_per_day: 0.0,
            stacktrace_chains: 0,
            stacktrace_failure_prob: 0.0,
            server_citing_fraction: 0.5,
            leaky_server_templates: 0,
            nt_skew_ms: 0,
            buffer_delay_ms: 0.0,
            collection_gaps_per_day: 0,
            collection_gap_minutes: 10,
            client_session_context_prob: 0.30,
            mid_session_context_prob: 0.35,
            backend_session_context_prob: 0.06,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_consistent() {
        let c = SimConfig::paper_week(1, 1.0);
        assert_eq!(c.days, 7);
        assert_eq!(c.topology.n_apps(), 54);
        assert_eq!(c.topology.n_services, 47);
        assert_eq!(c.workload.day_multipliers.len(), 7);

        let s = SimConfig::small_test(1);
        assert_eq!(s.topology.n_apps(), 12);
    }

    #[test]
    fn diurnal_weights_sum_to_one() {
        let total: f64 = (0..24).map(WorkloadConfig::diurnal_weight).sum();
        assert!((total - 1.0).abs() < 1e-9, "sum = {total}");
    }

    #[test]
    fn office_hours_dominate_night() {
        assert!(WorkloadConfig::diurnal_weight(10) > 2.0 * WorkloadConfig::diurnal_weight(3));
    }

    #[test]
    fn weekend_multipliers_reflect_table1() {
        let w = WorkloadConfig::hug_like(1.0);
        // Days 4 and 5 are the weekend: roughly a third of weekday load.
        assert!(w.day_multiplier(4) < 0.5 * w.day_multiplier(0));
        assert!(w.day_multiplier(5) < 0.5 * w.day_multiplier(3));
        // Cycling beyond the configured week.
        assert_eq!(w.day_multiplier(7), w.day_multiplier(0));
    }

    #[test]
    fn paper_taxonomy_counts() {
        let n = NoiseConfig::paper_taxonomy();
        assert_eq!(n.unlogged_edges, 7);
        assert_eq!(n.renamed_edges, 3);
        assert_eq!(n.wrong_id_edges, 5);
        assert_eq!(n.coincidence_pairs, 7);
        assert_eq!(n.stacktrace_chains, 5);
        assert_eq!(n.leaky_server_templates, 2);
    }

    #[test]
    fn clean_config_disables_faults() {
        let n = NoiseConfig::clean();
        assert_eq!(n.unlogged_edges + n.renamed_edges + n.wrong_id_edges, 0);
        assert_eq!(n.coincidence_pairs + n.stacktrace_chains, 0);
        assert_eq!(n.nt_skew_ms, 0);
    }

    #[test]
    fn serde_round_trip() {
        let c = SimConfig::paper_week(42, 2.0);
        let json = serde_json::to_string(&c).unwrap();
        let back: SimConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
