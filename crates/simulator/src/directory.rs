//! The service directory.
//!
//! At HUG the directory is "basically an XML file indicating the root URL
//! of groups of functionally related services", with an identifier and
//! replication information per group (§3.3). This module renders the
//! generated topology's services into exactly that artifact and parses it
//! back, so technique L3 can be driven from the *directory document*
//! rather than from simulator internals — the same interface a real
//! deployment would have.

use crate::topology::Topology;
use serde::{Deserialize, Serialize};

/// One service-group entry of the directory.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DirectoryEntry {
    /// Group identifier, e.g. `DPINOTIFICATION`.
    pub id: String,
    /// Root URL of the group.
    pub url: String,
    /// Whether the group is replicated.
    pub replicated: bool,
}

/// The service directory: the list of published groups.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ServiceDirectory {
    /// Published entries, in directory order.
    pub entries: Vec<DirectoryEntry>,
}

impl ServiceDirectory {
    /// Extracts the published directory from a topology.
    pub fn from_topology(topology: &Topology) -> Self {
        Self {
            entries: topology
                .services
                .iter()
                .map(|s| DirectoryEntry {
                    id: s.id.clone(),
                    url: s.url.clone(),
                    replicated: s.replicated,
                })
                .collect(),
        }
    }

    /// All group identifiers, directory order.
    pub fn ids(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.id.as_str()).collect()
    }

    /// Finds an entry index by id.
    pub fn find(&self, id: &str) -> Option<usize> {
        self.entries.iter().position(|e| e.id == id)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Renders the directory as the HUG-style XML document.
    pub fn to_xml(&self) -> String {
        let mut out = String::from("<serviceDirectory>\n");
        for e in &self.entries {
            out.push_str(&format!(
                "  <group id=\"{}\" url=\"{}\" replicated=\"{}\"/>\n",
                xml_escape(&e.id),
                xml_escape(&e.url),
                e.replicated
            ));
        }
        out.push_str("</serviceDirectory>\n");
        out
    }

    /// Parses the HUG-style XML document produced by [`Self::to_xml`].
    ///
    /// This is a purpose-built parser for that fixed shape, not a
    /// general XML library: it accepts `<group .../>` elements with
    /// `id`, `url` and `replicated` attributes in any order.
    pub fn from_xml(xml: &str) -> Result<Self, DirectoryParseError> {
        let mut entries = Vec::new();
        for (lineno, line) in xml.lines().enumerate() {
            let line = line.trim();
            if !line.starts_with("<group") {
                continue;
            }
            let id = attr(line, "id").ok_or(DirectoryParseError::MissingAttr(lineno + 1, "id"))?;
            let url =
                attr(line, "url").ok_or(DirectoryParseError::MissingAttr(lineno + 1, "url"))?;
            let replicated = attr(line, "replicated")
                .map(|v| v == "true")
                .unwrap_or(false);
            entries.push(DirectoryEntry {
                id: xml_unescape(&id),
                url: xml_unescape(&url),
                replicated,
            });
        }
        Ok(Self { entries })
    }
}

/// Parse failures for the directory document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirectoryParseError {
    /// A `<group>` element lacked a required attribute (line, name).
    MissingAttr(usize, &'static str),
}

impl std::fmt::Display for DirectoryParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DirectoryParseError::MissingAttr(line, name) => {
                write!(f, "line {line}: <group> missing attribute {name:?}")
            }
        }
    }
}

impl std::error::Error for DirectoryParseError {}

fn attr(line: &str, name: &str) -> Option<String> {
    let marker = format!("{name}=\"");
    let start = line.find(&marker)? + marker.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_owned())
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('"', "&quot;")
}

fn xml_unescape(s: &str) -> String {
    s.replace("&quot;", "\"")
        .replace("&lt;", "<")
        .replace("&amp;", "&")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{NoiseConfig, TopologyConfig};
    use crate::topology::Topology;

    fn directory() -> ServiceDirectory {
        let t = Topology::generate(
            &TopologyConfig::hug_like(),
            &NoiseConfig::paper_taxonomy(),
            7,
        );
        ServiceDirectory::from_topology(&t)
    }

    #[test]
    fn from_topology_covers_all_services() {
        let d = directory();
        assert_eq!(d.len(), 47);
        assert!(!d.is_empty());
        assert!(d.ids().iter().all(|id| !id.is_empty()));
    }

    #[test]
    fn xml_round_trip() {
        let d = directory();
        let xml = d.to_xml();
        let back = ServiceDirectory::from_xml(&xml).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn xml_shape_is_hug_like() {
        let d = directory();
        let xml = d.to_xml();
        assert!(xml.starts_with("<serviceDirectory>"));
        assert!(xml.contains("<group id=\""));
        assert!(xml.contains("replicated=\""));
        assert!(xml.trim_end().ends_with("</serviceDirectory>"));
    }

    #[test]
    fn find_by_id() {
        let d = directory();
        let first = d.entries[0].id.clone();
        assert_eq!(d.find(&first), Some(0));
        assert_eq!(d.find("NO_SUCH_GROUP"), None);
    }

    #[test]
    fn parse_rejects_missing_attrs() {
        let bad = "<serviceDirectory>\n<group url=\"http://x\"/>\n</serviceDirectory>";
        assert!(matches!(
            ServiceDirectory::from_xml(bad),
            Err(DirectoryParseError::MissingAttr(2, "id"))
        ));
    }

    #[test]
    fn parse_tolerates_attribute_order_and_noise() {
        let xml = "<serviceDirectory>\n\
                   <!-- generated -->\n\
                   <group url=\"http://a\" replicated=\"true\" id=\"SVC1\"/>\n\
                   <group id=\"SVC2\" url=\"http://b\"/>\n\
                   </serviceDirectory>";
        let d = ServiceDirectory::from_xml(xml).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.entries[0].id, "SVC1");
        assert!(d.entries[0].replicated);
        assert!(!d.entries[1].replicated, "replicated defaults to false");
    }

    #[test]
    fn escaping_round_trip() {
        let d = ServiceDirectory {
            entries: vec![DirectoryEntry {
                id: "A&B<C\"D".to_owned(),
                url: "http://x?a=1&b=2".to_owned(),
                replicated: false,
            }],
        };
        let back = ServiceDirectory::from_xml(&d.to_xml()).unwrap();
        assert_eq!(d, back);
    }
}
