//! The simulation engine: turns a [`SimConfig`] into a week of logs.
//!
//! Generation is direct sampling rather than a discrete-event queue: for
//! every day and hour we draw user sessions, system-triggered
//! invocations, background chatter and injected noise, and emit log
//! records through the same causal mechanisms the paper describes —
//! caller logs flanking each invocation, callee logs at the serving
//! application, context propagation that thins out toward the backend,
//! per-host clock skew and client-side buffering.
//!
//! Everything derives deterministically from the master seed.

use crate::config::{SimConfig, WorkloadConfig};
use crate::directory::ServiceDirectory;
use crate::population::Population;
use crate::textgen::{self, CallerStyle};
use crate::topology::{sample_poisson, CitationStyle, HostOs, Tier, Topology};
use crate::truth::GroundTruth;
use logdep_logstore::{
    time::{MS_PER_HOUR, MS_PER_SEC},
    HostId, LogRecord, LogStore, Millis, Severity, SourceId, UserId,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Everything a simulation run produces.
#[derive(Debug)]
pub struct SimOutput {
    /// The finalized log store (the miners' only real input).
    pub store: LogStore,
    /// Exact ground truth for evaluation.
    pub truth: GroundTruth,
    /// The published service directory (input to technique L3).
    pub directory: ServiceDirectory,
    /// The generated topology (for white-box inspection and tests).
    pub topology: Topology,
    /// The user/machine population.
    pub population: Population,
    /// Generation statistics.
    pub stats: SimStats,
}

/// Aggregate statistics of a run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimStats {
    /// Total records emitted.
    pub total_logs: usize,
    /// User sessions generated, per day.
    pub sessions_per_day: Vec<usize>,
    /// Logs emitted by session activity (any context).
    pub session_logs: usize,
    /// Logs carrying both user and host (assignable to a session).
    pub context_logs: usize,
    /// Background chatter records.
    pub background_logs: usize,
    /// Records from system-triggered (non-session) invocations.
    pub system_call_logs: usize,
    /// Injected coincidence records.
    pub coincidence_logs: usize,
    /// Injected exception stack-trace records.
    pub stacktrace_logs: usize,
    /// Records lost to collection interruptions.
    pub dropped_logs: usize,
    /// `realized[day][edge]` = number of invocations of that edge.
    pub realized: Vec<Vec<u32>>,
}

impl SimStats {
    /// Fraction of all logs that carry session context.
    pub fn context_fraction(&self) -> f64 {
        if self.total_logs == 0 {
            0.0
        } else {
            self.context_logs as f64 / self.total_logs as f64
        }
    }

    /// Edges realized at least once on `day`.
    pub fn realized_edges_on(&self, day: usize) -> usize {
        self.realized
            .get(day)
            .map(|v| v.iter().filter(|&&c| c > 0).count())
            .unwrap_or(0)
    }
}

/// Runs the simulation, generating the topology from the config.
pub fn simulate(cfg: &SimConfig) -> SimOutput {
    let topology = Topology::generate(&cfg.topology, &cfg.noise, cfg.seed);
    simulate_with(cfg, topology)
}

/// Runs the simulation against an explicit topology — the entry point
/// for landscape-evolution studies, where a mutated topology is
/// re-simulated under the same workload (see [`Topology::evolve`]).
pub fn simulate_with(cfg: &SimConfig, topology: Topology) -> SimOutput {
    let mut pop_rng = rng_for(cfg.seed, 0x9090);
    let population = Population::generate(cfg.workload.n_users, cfg.workload.n_hosts, &mut pop_rng);
    let directory = ServiceDirectory::from_topology(&topology);
    let truth = GroundTruth::from_topology(&topology);

    let mut engine = Engine::new(cfg, &topology, &population);
    for day in 0..cfg.days {
        engine.simulate_day(day);
    }
    let (store, stats) = engine.finish();

    SimOutput {
        store,
        truth,
        directory,
        topology: topology.clone(),
        population,
        stats,
    }
}

/// SplitMix64 step, used to derive independent stream seeds.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn rng_for(seed: u64, tag: u64) -> StdRng {
    StdRng::seed_from_u64(splitmix(seed ^ splitmix(tag)))
}

/// Exponential sample with the given mean.
fn sample_exp(rng: &mut StdRng, mean: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -mean * u.ln()
}

/// Session context being propagated along a call tree.
#[derive(Debug, Clone, Copy)]
struct Ctx {
    user: UserId,
    host: HostId,
}

struct Engine<'a> {
    cfg: &'a SimConfig,
    topo: &'a Topology,
    pop: &'a Population,
    by_caller: Vec<Vec<usize>>,
    /// Fixed per-client action workflows (ordered edge lists). Real GUI
    /// views combine the same services every time ("laboratory results
    /// and administrative patient history", §4.5) — this consistent
    /// concurrent use is what produces L1/L2's transitive/concurrent
    /// false positives.
    workflows: Vec<Vec<Vec<usize>>>,
    flaky_by_top: HashMap<usize, usize>,
    app_source: Vec<SourceId>,
    user_ids: Vec<UserId>,
    host_ids: Vec<HostId>,
    /// Server-side clock skew per app, ms.
    app_skew: Vec<i64>,
    /// Client machine clock skew, ms.
    host_skew: Vec<i64>,
    /// Collection-interruption windows (true start, true end), ms.
    collection_gaps: Vec<(i64, i64)>,
    store: LogStore,
    stats: SimStats,
}

impl<'a> Engine<'a> {
    fn new(cfg: &'a SimConfig, topo: &'a Topology, pop: &'a Population) -> Self {
        let mut store = LogStore::new();
        let app_source: Vec<SourceId> = topo
            .apps
            .iter()
            .map(|a| store.registry.source(&a.name))
            .collect();
        let user_ids: Vec<UserId> = pop
            .users
            .iter()
            .map(|u| store.registry.user(&u.name))
            .collect();
        let host_ids: Vec<HostId> = pop
            .hosts
            .iter()
            .map(|h| store.registry.host(&h.name))
            .collect();

        let mut skew_rng = rng_for(cfg.seed, 0x5e_e3);
        let nt = cfg.noise.nt_skew_ms;
        let nt_skew = |rng: &mut StdRng| -> i64 {
            if nt == 0 {
                0
            } else if rng.gen_bool(0.7) {
                rng.gen_range(-nt.min(100)..=nt.min(100))
            } else {
                rng.gen_range(-nt..=nt)
            }
        };
        let app_skew: Vec<i64> = topo
            .apps
            .iter()
            .map(|a| match a.host_os {
                HostOs::Unix => skew_rng.gen_range(-1..=1),
                HostOs::Nt => nt_skew(&mut skew_rng),
            })
            .collect();
        let host_skew: Vec<i64> = (0..pop.hosts.len())
            .map(|_| nt_skew(&mut skew_rng))
            .collect();

        let flaky_by_top = topo
            .flaky_chains
            .iter()
            .map(|c| (c.top_edge, c.deep_edge))
            .collect();

        let by_caller = topo.edges_by_caller();
        let mut workflows: Vec<Vec<Vec<usize>>> = vec![Vec::new(); topo.apps.len()];
        for (i, app) in topo.apps.iter().enumerate() {
            if app.tier != Tier::Client {
                continue;
            }
            // Dormant edges ("used extremely seldom", §4.8) must never
            // enter a routine workflow — that is what keeps them dormant.
            let mut edges: Vec<usize> = by_caller[i]
                .iter()
                .copied()
                .filter(|&e| topo.edges[e].freq.weight() > 0.0)
                .collect();
            edges.sort_by(|&a, &b| {
                topo.edges[b]
                    .freq
                    .weight()
                    .total_cmp(&topo.edges[a].freq.weight())
            });
            let e = |k: usize| edges.get(k).copied();
            let mut combos: Vec<Vec<usize>> = Vec::new();
            if let Some(a) = e(0) {
                combos.push(vec![a]);
            }
            if let (Some(a), Some(b)) = (e(0), e(1)) {
                combos.push(vec![a, b]);
            }
            if let (Some(a), Some(b)) = (e(1), e(2)) {
                combos.push(vec![a, b]);
            }
            if let (Some(a), Some(b), Some(c)) = (e(0), e(2), e(3)) {
                combos.push(vec![a, b, c]);
            }
            workflows[i] = combos;
        }

        Self {
            cfg,
            topo,
            pop,
            by_caller,
            workflows,
            flaky_by_top,
            app_source,
            user_ids,
            host_ids,
            app_skew,
            host_skew,
            collection_gaps: Vec::new(),
            store,
            stats: SimStats::default(),
        }
    }

    fn finish(mut self) -> (LogStore, SimStats) {
        self.store.finalize();
        self.stats.total_logs = self.store.len();
        (self.store, self.stats)
    }

    /// Emits one record at true time `t` (ms), applying clock skew and
    /// buffering.
    #[allow(clippy::too_many_arguments)]
    fn emit(
        &mut self,
        app: usize,
        t: i64,
        skew: i64,
        ctx: Option<Ctx>,
        severity: Severity,
        text: String,
        rng: &mut StdRng,
    ) {
        if self.collection_gaps.iter().any(|&(s, e)| t >= s && t < e) {
            self.stats.dropped_logs += 1;
            return; // the collector was interrupted; the log is lost
        }
        let jitter = rng.gen_range(0..3);
        let buffer = sample_exp(rng, self.cfg.noise.buffer_delay_ms.max(0.001)) as i64;
        let mut rec = LogRecord {
            client_ts: Millis(t + skew + jitter),
            server_ts: Millis(t + buffer),
            source: self.app_source[app],
            user: None,
            host: None,
            severity,
            text,
        };
        if let Some(c) = ctx {
            rec.user = Some(c.user);
            rec.host = Some(c.host);
            self.stats.context_logs += 1;
        }
        self.store.push(rec);
    }

    /// Clock skew for a log of `app` emitted within session context on
    /// client machine `host` (client-tier apps run on the PC; services
    /// run on their servers).
    fn skew_for(&self, app: usize, ctx: Option<Ctx>) -> i64 {
        if self.topo.apps[app].tier == Tier::Client {
            if let Some(c) = ctx {
                return self.host_skew[c.host.index()];
            }
        }
        self.app_skew[app]
    }

    /// Propagates context with the tier-dependent probability.
    fn maybe_ctx(&self, app: usize, ctx: Option<Ctx>, rng: &mut StdRng) -> Option<Ctx> {
        let ctx = ctx?;
        let p = match self.topo.apps[app].tier {
            Tier::Client => self.cfg.noise.client_session_context_prob,
            Tier::Mid => self.cfg.noise.mid_session_context_prob,
            Tier::Backend => self.cfg.noise.backend_session_context_prob,
        };
        rng.gen_bool(p.clamp(0.0, 1.0)).then_some(ctx)
    }

    /// Load-dependent latency multiplier: 1 at dead of night, growing
    /// with the instantaneous traffic intensity toward weekday peaks.
    fn queue_factor(&self, t: i64) -> f64 {
        let day = (t.div_euclid(24 * MS_PER_HOUR)).max(0) as u32;
        let hour = (t.div_euclid(MS_PER_HOUR).rem_euclid(24)) as u8;
        let intensity =
            WorkloadConfig::diurnal_weight(hour) * self.cfg.workload.day_multiplier(day);
        // Weekday office peak is ~0.076; normalize and stretch.
        1.0 + 1.2 * (intensity / 0.061).min(1.5)
    }

    /// Generates the logs of one invocation of `edge_idx` starting at
    /// true time `t`; recurses into nested calls. Returns the true time
    /// at which the caller observed completion.
    fn generate_call(
        &mut self,
        day: usize,
        edge_idx: usize,
        t: i64,
        ctx: Option<Ctx>,
        depth: u32,
        rng: &mut StdRng,
    ) -> i64 {
        self.stats.realized[day][edge_idx] += 1;
        let edge = self.topo.edges[edge_idx];
        let svc = &self.topo.services[edge.service];
        let owner = svc.owner;
        let caller = edge.caller;
        let caller_name = self.topo.apps[caller].name.clone();
        let fct = textgen::pick_fct(rng);
        // Queueing: service latency stretches with the instantaneous
        // system load — this is what makes L1's activity-correlation
        // analysis degrade in busy hours (§4.9 of the paper).
        let q = self.queue_factor(t);
        let latency = ((90.0 + sample_exp(rng, 150.0)) * q).min(12_000.0) as i64;

        // Caller "before" log.
        let caller_skew = self.skew_for(caller, ctx);
        let caller_ctx = self.maybe_ctx(caller, ctx, rng);
        let before_text = match edge.citation {
            CitationStyle::Correct => caller_invoke_text(caller, &svc.id, &svc.host, fct, rng),
            CitationStyle::Renamed => {
                let old = svc.old_id.as_deref().unwrap_or(&svc.id);
                caller_invoke_text(caller, old, &svc.host, fct, rng)
            }
            CitationStyle::WrongId(w) => {
                let wrong = &self.topo.services[w];
                caller_invoke_text(caller, &wrong.id, &svc.host, fct, rng)
            }
            CitationStyle::Unlogged => textgen::caller_uncited(fct),
        };
        self.emit(
            caller,
            t,
            caller_skew,
            caller_ctx,
            Severity::Info,
            before_text,
            rng,
        );

        // Callee activity.
        let activity_t = if edge.asynchronous {
            t + (rng.gen_range(800..6_000) as f64 * q) as i64
        } else {
            t + (latency as f64 * rng.gen_range(0.4..0.8)) as i64
        };
        let owner_spec = &self.topo.apps[owner];
        let n_callee = rng.gen_range(2..=3);
        for k in 0..n_callee {
            let text = textgen::callee_log(
                owner_spec.server_template_covered,
                owner_spec.server_cites_group,
                &svc.id,
                fct,
                &caller_name,
                rng,
            );
            let callee_ctx = self.maybe_ctx(owner, ctx, rng);
            let skew = self.app_skew[owner];
            self.emit(
                owner,
                activity_t + k * rng.gen_range(3..40),
                skew,
                callee_ctx,
                Severity::Info,
                text,
                rng,
            );
        }

        // Trailing callee log: completion/audit lines land seconds after
        // the request and drift further under load (batched flushes,
        // queued cleanup). They are what blurs the owner's activity
        // correlation in busy hours — the §4.9 load effect — while the
        // immediate callee log above keeps session bigrams tight.
        if rng.gen_bool(0.8) {
            let trail_q = 1.0 + 3.0 * (self.queue_factor(t) - 1.0);
            let trail_delay = ((1_500.0 + sample_exp(rng, 3_000.0)) * trail_q) as i64;
            let text = textgen::background(rng);
            let skew = self.app_skew[owner];
            self.emit(
                owner,
                activity_t + trail_delay,
                skew,
                None,
                Severity::Debug,
                text,
                rng,
            );
        }

        // Nested (transitive) call from the owner.
        let mut completion = if edge.asynchronous {
            t + rng.gen_range(3..12)
        } else {
            t + latency
        };
        if depth < 3 {
            let flaky_deep = self.flaky_by_top.get(&edge_idx).copied();
            let failing_chain = flaky_deep
                .filter(|_| rng.gen_bool(self.cfg.noise.stacktrace_failure_prob.clamp(0.0, 1.0)));
            if let Some(deep_idx) = failing_chain {
                self.generate_call(day, deep_idx, activity_t + 2, ctx, depth + 1, rng);
                // The failure propagates: the *top* caller logs the
                // exception trace citing the deep service (§4.8).
                let deep_svc = &self.topo.services[self.topo.edges[deep_idx].service];
                let trace = textgen::stacktrace(&deep_svc.id, &self.topo.apps[owner].name, fct);
                self.emit(
                    caller,
                    t + latency + rng.gen_range(1..20),
                    caller_skew,
                    caller_ctx,
                    Severity::Error,
                    trace,
                    rng,
                );
                self.stats.stacktrace_logs += 1;
                completion += 25;
            } else if rng.gen_bool(0.45) {
                if let Some(nested_idx) = self.pick_edge(owner, rng) {
                    self.generate_call(day, nested_idx, activity_t + 2, ctx, depth + 1, rng);
                }
            }
        }

        // Caller "after" log (unlogged apps stay silent).
        if edge.citation != CitationStyle::Unlogged {
            let after_t = completion + rng.gen_range(1..6);
            self.emit(
                caller,
                after_t,
                caller_skew,
                caller_ctx,
                Severity::Info,
                textgen::caller_return(fct, latency),
                rng,
            );
            completion = after_t;
        }
        completion
    }

    /// Picks an outgoing edge of `app`, weighted by frequency tier.
    fn pick_edge(&self, app: usize, rng: &mut StdRng) -> Option<usize> {
        let edges = &self.by_caller[app];
        let total: f64 = edges
            .iter()
            .map(|&i| self.topo.edges[i].freq.weight())
            .sum();
        if total <= 0.0 {
            return None;
        }
        let mut x = rng.gen_range(0.0..total);
        for &i in edges {
            x -= self.topo.edges[i].freq.weight();
            if x <= 0.0 {
                return Some(i);
            }
        }
        edges.last().copied()
    }

    /// Samples an hour with a half-flat, half-diurnal profile (system
    /// and background traffic runs around the clock).
    fn sample_system_hour(rng: &mut StdRng) -> u8 {
        if rng.gen_bool(0.15) {
            rng.gen_range(0..24)
        } else {
            Self::sample_hour(rng)
        }
    }

    /// Samples an hour of the day according to the diurnal curve.
    fn sample_hour(rng: &mut StdRng) -> u8 {
        let mut x = rng.gen_range(0.0..1.0_f64);
        for h in 0..24u8 {
            x -= WorkloadConfig::diurnal_weight(h);
            if x <= 0.0 {
                return h;
            }
        }
        23
    }

    fn simulate_day(&mut self, day: u32) {
        let w = &self.cfg.workload;
        let day_mult = w.day_multiplier(day) * w.scale;
        let day_start = day as i64 * 24 * MS_PER_HOUR;
        let d = day as usize;
        while self.stats.realized.len() <= d {
            self.stats.realized.push(vec![0; self.topo.edges.len()]);
        }
        while self.stats.sessions_per_day.len() <= d {
            self.stats.sessions_per_day.push(0);
        }

        // --- Collection interruptions for this day (drawn first so
        // every traffic class is affected equally).
        let mut rng = rng_for(self.cfg.seed, 0x6a70_0000 + day as u64);
        self.collection_gaps.clear();
        let gap_len = self.cfg.noise.collection_gap_minutes as i64 * 60_000;
        for _ in 0..self.cfg.noise.collection_gaps_per_day {
            // Interruptions cluster in busy hours, as §5 describes.
            let hour = Self::sample_hour(&mut rng) as i64;
            let start = day_start + hour * MS_PER_HOUR + rng.gen_range(0..MS_PER_HOUR);
            self.collection_gaps.push((start, start + gap_len));
        }

        // --- User sessions. Counts come from a dedicated stream with
        // low-variance rounding: at this reduced scale, plain Poisson
        // session counts would inject ±4% day-to-day volume noise —
        // enough to mask Table 1's mild mid-week profile.
        let mut count_rng = rng_for(self.cfg.seed, 0x5e55_c000 + day as u64);
        let mut rng = rng_for(self.cfg.seed, 0x5e55_0000 + day as u64);
        let clients: Vec<usize> = self
            .topo
            .apps
            .iter()
            .enumerate()
            .filter(|(_, a)| a.tier == Tier::Client)
            .map(|(i, _)| i)
            .collect();
        for hour in 0..24u8 {
            let lambda = w.sessions_per_weekday * day_mult * WorkloadConfig::diurnal_weight(hour);
            let n_sessions = lambda.floor() as usize
                + usize::from(count_rng.gen_range(0.0..1.0) < lambda.fract());
            for _ in 0..n_sessions {
                self.simulate_session(d, day_start, hour, &clients, &mut rng);
            }
        }

        // --- System-triggered invocations per edge. Batch jobs and
        // notification timers run around the clock: their hour-of-day
        // profile is half flat, half diurnal (sample_system_hour), so
        // nights and weekends keep a steady, highly pair-correlated
        // traffic floor — the regime where L1 shines.
        let mut rng = rng_for(self.cfg.seed, 0x5c4a_0000 + day as u64);
        for edge_idx in 0..self.topo.edges.len() {
            let weight = self.topo.edges[edge_idx].freq.weight();
            if weight <= 0.0 {
                continue;
            }
            let lambda = w.system_invocations_per_edge_day * weight * day_mult;
            let n = sample_poisson(&mut rng, lambda);
            let before = self.store.len();
            for _ in 0..n {
                let hour = Self::sample_system_hour(&mut rng) as i64;
                let t = day_start + hour * MS_PER_HOUR + rng.gen_range(0..MS_PER_HOUR);
                self.generate_call(d, edge_idx, t, None, 1, &mut rng);
            }
            self.stats.system_call_logs += self.store.len() - before;
        }

        // --- Background chatter.
        let mut rng = rng_for(self.cfg.seed, 0xbac0_0000u64 + day as u64);
        for app in 0..self.topo.apps.len() {
            let lambda =
                w.background_logs_per_app_day * self.topo.apps[app].background_weight * day_mult;
            let n = sample_poisson(&mut rng, lambda);
            for _ in 0..n {
                let hour = Self::sample_hour(&mut rng) as i64;
                let t = day_start + hour * MS_PER_HOUR + rng.gen_range(0..MS_PER_HOUR);
                let text = textgen::background(&mut rng);
                let skew = self.app_skew[app];
                self.emit(app, t, skew, None, Severity::Debug, text, &mut rng);
                self.stats.background_logs += 1;
            }
        }

        // --- Coincidence citations.
        let mut rng = rng_for(self.cfg.seed, 0xc01c_0000 + day as u64);
        let pairs = self.topo.coincidence_pairs.clone();
        for (app, svc) in pairs {
            let lambda = self.cfg.noise.coincidence_rate_per_day * w.day_multiplier(day);
            let n = sample_poisson(&mut rng, lambda);
            for _ in 0..n {
                let hour = Self::sample_hour(&mut rng) as i64;
                let t = day_start + hour * MS_PER_HOUR + rng.gen_range(0..MS_PER_HOUR);
                let text = textgen::coincidence(&self.topo.services[svc].id, &mut rng);
                let ctx = if rng.gen_bool(0.5) && !self.user_ids.is_empty() {
                    Some(Ctx {
                        user: self.user_ids[rng.gen_range(0..self.user_ids.len())],
                        host: self.host_ids[rng.gen_range(0..self.host_ids.len())],
                    })
                } else {
                    None
                };
                let skew = self.skew_for(app, ctx);
                self.emit(app, t, skew, ctx, Severity::Info, text, &mut rng);
                self.stats.coincidence_logs += 1;
            }
        }
    }

    fn simulate_session(
        &mut self,
        day: usize,
        day_start: i64,
        hour: u8,
        clients: &[usize],
        rng: &mut StdRng,
    ) {
        if clients.is_empty() || self.pop.users.is_empty() {
            return;
        }
        let user = rng.gen_range(0..self.pop.users.len());
        let host = self.pop.session_host(user, rng);
        let ctx = Ctx {
            user: self.user_ids[user],
            host: self.host_ids[host],
        };
        // Preferred client app with occasional variety.
        let preferred = clients[user % clients.len()];
        let app = if rng.gen_bool(0.8) {
            preferred
        } else {
            clients[rng.gen_range(0..clients.len())]
        };

        let before_len = self.store.len();
        let mut t = day_start + hour as i64 * MS_PER_HOUR + rng.gen_range(0..MS_PER_HOUR);
        let n_actions = 1 + sample_poisson(rng, self.cfg.workload.actions_per_session);
        for _ in 0..n_actions {
            // UI action log from the client app.
            let skew = self.skew_for(app, Some(ctx));
            let ui_ctx = self.maybe_ctx(app, Some(ctx), rng);
            self.emit(
                app,
                t,
                skew,
                ui_ctx,
                Severity::Info,
                textgen::ui_action(rng),
                rng,
            );
            t += rng.gen_range(30..250);
            // Mostly a fixed workflow (consistent concurrent service
            // use); sometimes an ad-hoc weighted pick for variety.
            let combo: Vec<usize> = if !self.workflows[app].is_empty() && rng.gen_bool(0.7) {
                let w = &self.workflows[app];
                w[rng.gen_range(0..w.len())].clone()
            } else {
                self.pick_edge(app, rng).into_iter().collect()
            };
            for edge_idx in combo {
                let done = self.generate_call(day, edge_idx, t, Some(ctx), 0, rng);
                t = done + rng.gen_range(20..200);
            }
            // Think time until the next action.
            t += (sample_exp(rng, self.cfg.workload.think_time_secs) * MS_PER_SEC as f64) as i64
                + 500;
        }
        self.stats.sessions_per_day[day] += 1;
        self.stats.session_logs += self.store.len() - before_len;
    }
}

/// Invocation text in the caller's own developer style.
fn caller_invoke_text(app: usize, id: &str, host: &str, fct: &str, rng: &mut StdRng) -> String {
    textgen::caller_invoke(CallerStyle::for_app(app), id, host, fct, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::topology::FreqTier;

    fn small() -> SimOutput {
        simulate(&SimConfig::small_test(11))
    }

    #[test]
    fn simulation_is_deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.store.len(), b.store.len());
        assert_eq!(a.stats, b.stats);
        for (x, y) in a.store.records().iter().zip(b.store.records()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn produces_meaningful_volume() {
        let out = small();
        assert!(
            out.store.len() > 5_000,
            "only {} logs generated",
            out.store.len()
        );
        assert_eq!(out.stats.total_logs, out.store.len());
        assert!(out.stats.sessions_per_day[0] > 5);
        assert!(out.stats.background_logs > 0);
        assert!(out.stats.system_call_logs > 0);
    }

    #[test]
    fn context_fraction_in_paper_band() {
        let out = simulate(&SimConfig::paper_week(3, 0.25));
        let f = out.stats.context_fraction();
        assert!(
            (0.04..=0.20).contains(&f),
            "context fraction {f} outside plausible band"
        );
    }

    #[test]
    fn weekend_days_are_quieter() {
        let out = simulate(&SimConfig::paper_week(5, 0.15));
        let days = out.store.counts_per_day();
        assert_eq!(days.len(), 7);
        let weekday_avg: f64 = [0usize, 1, 2, 3, 6]
            .iter()
            .map(|&d| days[d].1 as f64)
            .sum::<f64>()
            / 5.0;
        for &d in &[4usize, 5] {
            assert!(
                (days[d].1 as f64) < 0.6 * weekday_avg,
                "day {d} not quiet: {} vs avg {weekday_avg}",
                days[d].1
            );
        }
    }

    #[test]
    fn dormant_edges_never_realize() {
        let out = small();
        for (i, e) in out.topology.edges.iter().enumerate() {
            if e.freq == FreqTier::Dormant {
                for day in &out.stats.realized {
                    assert_eq!(day[i], 0, "dormant edge {i} realized");
                }
            }
        }
    }

    #[test]
    fn most_active_edges_realize_daily() {
        let out = small();
        let active: Vec<usize> = out
            .topology
            .edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.freq >= FreqTier::Common)
            .map(|(i, _)| i)
            .collect();
        let realized = active
            .iter()
            .filter(|&&i| out.stats.realized[0][i] > 0)
            .count();
        assert!(
            realized * 10 >= active.len() * 9,
            "{realized}/{} common+ edges realized",
            active.len()
        );
    }

    #[test]
    fn citations_present_in_free_text() {
        let out = small();
        let ids = out.directory.ids();
        let cited = out
            .store
            .records()
            .iter()
            .filter(|r| {
                let lower = r.text.to_ascii_lowercase();
                ids.iter()
                    .any(|id| lower.contains(&id.to_ascii_lowercase()))
            })
            .count();
        assert!(cited > 100, "only {cited} citing logs");
    }

    #[test]
    fn timestamps_lie_within_simulated_days() {
        let out = small();
        let span_ms = 24 * MS_PER_HOUR;
        for r in out.store.records() {
            // Allow skew/think-time spill past midnight.
            assert!(r.client_ts.as_millis() > -2_000);
            assert!(r.client_ts.as_millis() < span_ms + 10 * 60 * 1000);
            assert!(r.server_ts.as_millis() >= r.client_ts.as_millis() - 2_000);
        }
    }

    #[test]
    fn stacktraces_and_coincidences_injected() {
        let out = simulate(&SimConfig::paper_week(9, 0.15));
        assert!(out.stats.stacktrace_logs > 0, "no stack traces");
        assert!(out.stats.coincidence_logs > 0, "no coincidences");
    }
}
