//! A hospital-style SOA environment simulator.
//!
//! The paper evaluates its mining techniques on the production logging
//! system of the Geneva University Hospitals — 10 million logs per day
//! from a landscape of ~54 applications and ~47 service-directory
//! entries. That environment is obviously not available; this crate is
//! the substitution (see DESIGN.md §2): a seeded, configurable simulator
//! that reproduces the *causal mechanisms* connecting dependencies to
//! log lines, including every noise category of the paper's §4.8 error
//! taxonomy:
//!
//! * caller logs flanking each invocation, citing directory elements in
//!   per-developer styles; callee logs at the serving application;
//! * applications that do not log their invocations, outdated ids
//!   (`UPSRV` vs `UPSRV2`), similar-but-wrong ids;
//! * coincidental citations (a patient named like a service), exception
//!   stack traces citing transitive services, server-side logs that
//!   invert dependency directions;
//! * diurnal and weekday/weekend load, user sessions over shared and
//!   roaming machines, asynchronous calls, clock skew (NTP vs NT
//!   domains) and client-side buffering.
//!
//! The entry point is [`engine::simulate`], which returns the finalized
//! log store, the exact ground truth, and the published service
//! directory.
//!
//! ```
//! use logdep_sim::{engine::simulate, SimConfig};
//!
//! let out = simulate(&SimConfig::small_test(7));
//! assert!(out.store.len() > 1_000);
//! assert!(!out.truth.app_pairs.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod directory;
pub mod engine;
pub mod population;
pub mod textgen;
pub mod topology;
pub mod truth;

pub use config::{NoiseConfig, SimConfig, TopologyConfig, WorkloadConfig};
pub use directory::ServiceDirectory;
pub use engine::{simulate, simulate_with, SimOutput, SimStats};
pub use population::Population;
pub use topology::Topology;
pub use truth::GroundTruth;
