//! Application/service topology generation.
//!
//! Generates a HUG-like landscape: front-end client applications driving
//! user sessions, mid-tier service applications, backend systems, a
//! service directory of ~47 entries, and a dependency graph of ~177
//! `app → service` edges whose derived `app ↔ app` interaction pairs
//! form the paper's first reference model. All noise roles (unlogged,
//! renamed, wrong-id edges; flaky chains; leaky servers) are assigned
//! here so the ground truth and the fault injection come from a single
//! seeded construction.

use crate::config::{NoiseConfig, TopologyConfig};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Index of an application in [`Topology::apps`].
pub type AppIdx = usize;
/// Index of a service in [`Topology::services`].
pub type ServiceIdx = usize;

/// Architectural tier of an application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Tier {
    /// Front-end GUI / lightweight client; drives user sessions.
    Client,
    /// Mid-tier service application.
    Mid,
    /// Backend system (database front, archive, notification core).
    Backend,
}

/// Operating-system class of the host an application runs on; governs
/// clock synchronization quality (§4.2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HostOs {
    /// NTP-synchronized Unix server: skew below 1 ms.
    Unix,
    /// Windows NT domain member: skew below ~1 s.
    Nt,
}

/// How invocations along an edge are cited in the caller's logs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CitationStyle {
    /// The caller cites the correct directory id.
    Correct,
    /// The caller cites the service's *previous* id (not in the current
    /// directory) — the paper's `UPSRV` vs `UPSRV2` case.
    Renamed,
    /// The caller cites a similar but wrong *existing* id.
    WrongId(ServiceIdx),
    /// The caller does not cite (or log) its invocations at all.
    Unlogged,
}

/// Usage-frequency tier of a dependency edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FreqTier {
    /// Effectively never exercised during an observation week ("used
    /// extremely seldom" in §4.8 — in the reference model, invisible in
    /// logs).
    Dormant,
    /// A handful of invocations per day; may be missed on quiet days.
    Rare,
    /// Regular traffic.
    Common,
    /// High-traffic edge.
    Frequent,
}

impl FreqTier {
    /// Relative invocation weight of this tier.
    pub fn weight(self) -> f64 {
        match self {
            FreqTier::Dormant => 0.0,
            FreqTier::Rare => 0.12,
            FreqTier::Common => 1.0,
            FreqTier::Frequent => 8.0,
        }
    }
}

/// An application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppSpec {
    /// Unique name; also the log-source name.
    pub name: String,
    /// Architectural tier.
    pub tier: Tier,
    /// Host OS class (clock quality).
    pub host_os: HostOs,
    /// Services this application implements (serves).
    pub owns: Vec<ServiceIdx>,
    /// Relative weight of this app's background (non-session) chatter.
    pub background_weight: f64,
    /// Whether the app's *callee-side* logs cite its own group id.
    pub server_cites_group: bool,
    /// Whether the app's callee-side logs use a template covered by the
    /// standard stop patterns (false = "leaky", producing residual
    /// inverted dependencies).
    pub server_template_covered: bool,
}

/// A service-directory entry plus its implementation owner.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceSpec {
    /// Directory id, e.g. `DPINOTIFICATION`.
    pub id: String,
    /// Previous id if the service was renamed (`UPSRV` for `UPSRV2`).
    pub old_id: Option<String>,
    /// The application implementing this service.
    pub owner: AppIdx,
    /// Root URL as published in the directory.
    pub url: String,
    /// Server host name.
    pub host: String,
    /// Whether the directory marks the service as replicated.
    pub replicated: bool,
}

/// A dependency edge: `caller` invokes `service`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EdgeSpec {
    /// The invoking application.
    pub caller: AppIdx,
    /// The invoked service.
    pub service: ServiceIdx,
    /// Usage frequency tier.
    pub freq: FreqTier,
    /// Asynchronous (fire-and-forget / notification) communication.
    pub asynchronous: bool,
    /// How the caller cites this edge in its logs.
    pub citation: CitationStyle,
}

/// A flaky two-hop chain `top → mid_service`, whose owner calls
/// `deep_service`; failures of the deep call surface as exception stack
/// traces in the *top* caller's log, citing `deep_service` (§4.8's
/// transitive false positives).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlakyChain {
    /// Index (into [`Topology::edges`]) of the top-level edge.
    pub top_edge: usize,
    /// Index of the nested edge (caller = owner of the top edge's
    /// service).
    pub deep_edge: usize,
}

/// The complete generated landscape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    /// Applications, index = [`AppIdx`].
    pub apps: Vec<AppSpec>,
    /// Services, index = [`ServiceIdx`].
    pub services: Vec<ServiceSpec>,
    /// Dependency edges.
    pub edges: Vec<EdgeSpec>,
    /// Flaky chains for stack-trace injection.
    pub flaky_chains: Vec<FlakyChain>,
    /// Coincidence pairs `(app, service)` whose free text accidentally
    /// cites the service id.
    pub coincidence_pairs: Vec<(AppIdx, ServiceIdx)>,
}

/// Name fragments for generated applications, echoing HUG's landscape.
const CLIENT_STEMS: [&str; 14] = [
    "Formidoc",
    "Viewer",
    "Orders",
    "Triage",
    "Rounds",
    "Admission",
    "Billing",
    "Pharma",
    "Planning",
    "Archive",
    "Consult",
    "Imaging",
    "Nursing",
    "Registry",
];
const MID_STEMS: [&str; 32] = [
    "Publication",
    "Notification",
    "Documents",
    "LabResults",
    "RadReports",
    "Prescription",
    "Scheduling",
    "PatientIndex",
    "Coding",
    "Transfers",
    "Alerts",
    "Vitals",
    "Protocols",
    "Referrals",
    "Messaging",
    "Directory",
    "Audit",
    "Consent",
    "Allergy",
    "Diet",
    "Pathology",
    "Microbio",
    "BloodBank",
    "Surgery",
    "Anesthesia",
    "Radiology",
    "Cardiology",
    "Oncology",
    "Maternity",
    "Psychiatry",
    "Emergency",
    "Outpatient",
];
const BACKEND_STEMS: [&str; 13] = [
    "RecordStore",
    "UserStore",
    "TermServer",
    "HL7Gateway",
    "PACSCore",
    "LabCore",
    "BillingCore",
    "StatWarehouse",
    "EventBus",
    "PrintSpool",
    "SecGateway",
    "TimeSeries",
    "DicomStore",
];
const PREFIXES: [&str; 4] = ["DPI", "HUG", "MED", "SYS"];

impl Topology {
    /// Generates a topology from the shape config, then assigns noise
    /// roles per the noise config. Fully determined by `seed`.
    pub fn generate(cfg: &TopologyConfig, noise: &NoiseConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0070_9077_ab10_c0de);
        let mut apps = Vec::with_capacity(cfg.n_apps());

        let make_apps = |tier: Tier, n: usize, stems: &[&str], apps: &mut Vec<AppSpec>| {
            for i in 0..n {
                let stem = stems[i % stems.len()];
                let prefix = PREFIXES[(i / stems.len()) % PREFIXES.len()];
                let name = if i < stems.len() {
                    format!("{prefix}{stem}")
                } else {
                    format!("{prefix}{stem}{}", i / stems.len() + 1)
                };
                let host_os = match tier {
                    Tier::Client => HostOs::Nt,
                    Tier::Mid => {
                        if i % 3 == 0 {
                            HostOs::Nt
                        } else {
                            HostOs::Unix
                        }
                    }
                    Tier::Backend => HostOs::Unix,
                };
                apps.push(AppSpec {
                    name,
                    tier,
                    host_os,
                    owns: Vec::new(),
                    background_weight: match tier {
                        Tier::Client => 0.5,
                        Tier::Mid => 1.0,
                        Tier::Backend => 1.6,
                    },
                    server_cites_group: false,
                    server_template_covered: true,
                });
            }
        };
        make_apps(Tier::Client, cfg.n_client_apps, &CLIENT_STEMS, &mut apps);
        make_apps(Tier::Mid, cfg.n_mid_apps, &MID_STEMS, &mut apps);
        make_apps(Tier::Backend, cfg.n_backend_apps, &BACKEND_STEMS, &mut apps);

        // --- Services: owned by mid and backend apps, round-robin with
        // some double owners so counts like 47 services / 42 owners work.
        let owner_pool: Vec<AppIdx> = apps
            .iter()
            .enumerate()
            .filter(|(_, a)| a.tier != Tier::Client)
            .map(|(i, _)| i)
            .collect();
        let mut services = Vec::with_capacity(cfg.n_services);
        for s in 0..cfg.n_services {
            let owner = owner_pool[s % owner_pool.len()];
            let base = apps[owner].name.to_ascii_uppercase();
            let id = if s < owner_pool.len() {
                base
            } else {
                format!("{base}{}", s / owner_pool.len() + 1)
            };
            let host = format!(
                "srv{:02}.{}",
                s % 20 + 1,
                if apps[owner].host_os == HostOs::Unix {
                    "hcuge.ch"
                } else {
                    "nt.hcuge.ch"
                }
            );
            services.push(ServiceSpec {
                id: id.clone(),
                old_id: None,
                owner,
                url: format!("http://{host}:9999/{}", id.to_ascii_lowercase()),
                host,
                replicated: rng.gen_bool(0.25),
            });
            apps[owner].owns.push(s);
        }

        // --- Edges.
        let mut edges: Vec<EdgeSpec> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        let add_edge =
            |caller: AppIdx,
             service: ServiceIdx,
             rng: &mut StdRng,
             edges: &mut Vec<EdgeSpec>,
             seen: &mut std::collections::HashSet<(usize, usize)>| {
                // Reject self-dependencies and duplicates.
                if services[service].owner == caller || !seen.insert((caller, service)) {
                    return;
                }
                let freq = match rng.gen_range(0..100) {
                    0..=19 => FreqTier::Frequent,
                    20..=64 => FreqTier::Common,
                    65..=95 => FreqTier::Rare,
                    _ => FreqTier::Dormant,
                };
                edges.push(EdgeSpec {
                    caller,
                    service,
                    freq,
                    asynchronous: rng.gen_bool(cfg.async_edge_fraction),
                    citation: CitationStyle::Correct,
                });
            };

        let n_services = services.len();
        for (i, app) in apps.iter().enumerate() {
            let fanout = match app.tier {
                Tier::Client => cfg.client_fanout,
                Tier::Mid => cfg.mid_fanout,
                Tier::Backend => {
                    if rng.gen_bool(cfg.backend_edge_prob) {
                        1.0
                    } else {
                        0.0
                    }
                }
            };
            let k = sample_poisson(&mut rng, fanout).max(if fanout > 0.0 { 1 } else { 0 });
            for _ in 0..k {
                let service = rng.gen_range(0..n_services);
                add_edge(i, service, &mut rng, &mut edges, &mut seen);
            }
        }

        // --- Noise-role assignment (deterministic given the rng state).
        // Dormant edges already exist via the frequency tiers.

        // Unlogged: pick `unlogged_apps` client/mid callers and mark
        // `unlogged_edges` of their edges.
        let mut caller_pool: Vec<AppIdx> = edges.iter().map(|e| e.caller).collect();
        caller_pool.sort_unstable();
        caller_pool.dedup();
        caller_pool.shuffle(&mut rng);
        let unlogged_apps: Vec<AppIdx> = caller_pool
            .iter()
            .copied()
            .take(noise.unlogged_apps)
            .collect();
        // Round-robin so all chosen apps really are incomplete loggers
        // (the paper: 4 applications, 7 unlogged interactions).
        let mut marked = 0usize;
        'rounds: while marked < noise.unlogged_edges {
            let mut any = false;
            for &app in &unlogged_apps {
                let candidate = edges.iter_mut().find(|e| {
                    e.caller == app
                        && e.freq != FreqTier::Dormant
                        && e.citation == CitationStyle::Correct
                });
                if let Some(e) = candidate {
                    e.citation = CitationStyle::Unlogged;
                    marked += 1;
                    any = true;
                    if marked >= noise.unlogged_edges {
                        break 'rounds;
                    }
                }
            }
            if !any {
                break;
            }
        }

        // Renamed: pick active, correctly-cited edges; rename the
        // service id to `<ID>2` and record the old id, which the caller
        // keeps citing.
        let mut candidates: Vec<usize> = (0..edges.len())
            .filter(|&i| {
                edges[i].citation == CitationStyle::Correct && edges[i].freq != FreqTier::Dormant
            })
            .collect();
        candidates.shuffle(&mut rng);
        let mut renamed_services = std::collections::HashSet::new();
        let mut taken = 0;
        for &ei in candidates.iter() {
            if taken >= noise.renamed_edges {
                break;
            }
            let svc = edges[ei].service;
            if !renamed_services.insert(svc) {
                continue; // one rename per service
            }
            let old = services[svc].id.clone();
            let renamed = format!("{old}2");
            if services.iter().any(|s| s.id == renamed) {
                continue; // the suffix scheme already minted this id
            }
            services[svc].id = renamed;
            services[svc].old_id = Some(old);
            edges[ei].citation = CitationStyle::Renamed;
            taken += 1;
        }

        // Wrong-id: caller cites another existing service's id.
        let mut candidates: Vec<usize> = (0..edges.len())
            .filter(|&i| {
                edges[i].citation == CitationStyle::Correct && edges[i].freq != FreqTier::Dormant
            })
            .collect();
        candidates.shuffle(&mut rng);
        let mut taken = 0;
        for &ei in candidates.iter() {
            if taken >= noise.wrong_id_edges {
                break;
            }
            // A "similar" id: any other service not already depended on
            // by this caller (so the citation is a real false positive).
            let caller = edges[ei].caller;
            let depended: std::collections::HashSet<ServiceIdx> = edges
                .iter()
                .filter(|e| e.caller == caller)
                .map(|e| e.service)
                .collect();
            let options: Vec<ServiceIdx> = (0..n_services)
                .filter(|s| !depended.contains(s) && services[*s].owner != caller)
                .collect();
            if let Some(&wrong) = options.as_slice().choose(&mut rng) {
                edges[ei].citation = CitationStyle::WrongId(wrong);
                taken += 1;
            }
        }

        // Server-side citation behaviour per owner app.
        let mut owners: Vec<AppIdx> = services.iter().map(|s| s.owner).collect();
        owners.sort_unstable();
        owners.dedup();
        let n_citing = ((owners.len() as f64) * noise.server_citing_fraction).round() as usize;
        let mut owner_order = owners.clone();
        owner_order.shuffle(&mut rng);
        for &o in owner_order.iter().take(n_citing) {
            apps[o].server_cites_group = true;
        }
        // Leaky templates among the citing owners.
        let citing: Vec<AppIdx> = owner_order.iter().copied().take(n_citing).collect();
        for &o in citing.iter().take(noise.leaky_server_templates) {
            apps[o].server_template_covered = false;
        }

        // Flaky chains: top edge (client → svc) whose owner has an
        // outgoing edge (the deep edge); failures cite the deep service.
        let mut flaky_chains = Vec::new();
        let mut chain_candidates: Vec<(usize, usize)> = Vec::new();
        for (ti, te) in edges.iter().enumerate() {
            if te.freq == FreqTier::Dormant || te.citation == CitationStyle::Unlogged {
                continue;
            }
            let mid_owner = services[te.service].owner;
            for (di, de) in edges.iter().enumerate() {
                if de.caller == mid_owner && de.freq != FreqTier::Dormant {
                    // The transitive citation is a *false* positive only
                    // if the top caller doesn't itself depend on the
                    // deep service.
                    let top_deps: bool = edges
                        .iter()
                        .any(|e| e.caller == te.caller && e.service == de.service);
                    if !top_deps {
                        chain_candidates.push((ti, di));
                    }
                }
            }
        }
        chain_candidates.shuffle(&mut rng);
        let mut seen_pairs = std::collections::HashSet::new();
        for (ti, di) in chain_candidates {
            if flaky_chains.len() >= noise.stacktrace_chains {
                break;
            }
            let key = (edges[ti].caller, edges[di].service);
            if seen_pairs.insert(key) {
                flaky_chains.push(FlakyChain {
                    top_edge: ti,
                    deep_edge: di,
                });
            }
        }

        // Coincidence pairs: (app, service) not in the reference model.
        let mut coincidence_pairs = Vec::new();
        let mut tries = 0;
        while coincidence_pairs.len() < noise.coincidence_pairs && tries < 10_000 {
            tries += 1;
            let app = rng.gen_range(0..apps.len());
            let svc = rng.gen_range(0..n_services);
            let is_dep = edges.iter().any(|e| e.caller == app && e.service == svc);
            let flagged = coincidence_pairs.contains(&(app, svc));
            if !is_dep && !flagged && services[svc].owner != app {
                coincidence_pairs.push((app, svc));
            }
        }

        Topology {
            apps,
            services,
            edges,
            flaky_chains,
            coincidence_pairs,
        }
    }

    /// All ground-truth `(caller app, service)` dependencies — the
    /// paper's second reference model (52 apps × 47 entries, 177 deps).
    pub fn app_service_pairs(&self) -> Vec<(AppIdx, ServiceIdx)> {
        let mut v: Vec<_> = self.edges.iter().map(|e| (e.caller, e.service)).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// All ground-truth unordered `app ↔ app` interaction pairs — the
    /// paper's first reference model (54 apps, 178 dependent pairs).
    pub fn app_pairs(&self) -> Vec<(AppIdx, AppIdx)> {
        let mut v: Vec<(AppIdx, AppIdx)> = self
            .edges
            .iter()
            .map(|e| {
                let owner = self.services[e.service].owner;
                (e.caller.min(owner), e.caller.max(owner))
            })
            .filter(|(a, b)| a != b)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Directory ids currently published (the citation pattern set for
    /// technique L3).
    pub fn directory_ids(&self) -> Vec<&str> {
        self.services.iter().map(|s| s.id.as_str()).collect()
    }

    /// Evolves the landscape: removes `remove_edges` existing
    /// dependencies and wires `add_edges` new ones — the "constantly
    /// moving landscape" of the paper's introduction, for week-over-week
    /// change-tracking studies. Apps and services are preserved; noise
    /// roles of surviving edges are untouched. Deterministic in `seed`.
    pub fn evolve(&self, add_edges: usize, remove_edges: usize, seed: u64) -> Topology {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x3701_7e4e);
        let mut next = self.clone();

        // Remove: prefer plain correct edges so the §4.8 taxonomy roles
        // survive for the noise-calibration bins.
        let mut removable: Vec<usize> = (0..next.edges.len())
            .filter(|&i| next.edges[i].citation == CitationStyle::Correct)
            .collect();
        removable.shuffle(&mut rng);
        let mut to_remove: Vec<usize> = removable.into_iter().take(remove_edges).collect();
        to_remove.sort_unstable_by(|a, b| b.cmp(a));
        for i in &to_remove {
            next.edges.remove(*i);
        }
        // Edge indexes shifted: rebuild flaky chains that survived.
        next.flaky_chains
            .retain(|c| !to_remove.contains(&c.top_edge) && !to_remove.contains(&c.deep_edge));
        for c in &mut next.flaky_chains {
            c.top_edge -= to_remove.iter().filter(|&&r| r < c.top_edge).count();
            c.deep_edge -= to_remove.iter().filter(|&&r| r < c.deep_edge).count();
        }

        // Add: fresh correct edges between existing apps and services.
        let mut existing: std::collections::HashSet<(usize, usize)> =
            next.edges.iter().map(|e| (e.caller, e.service)).collect();
        let mut added = 0;
        let mut guard = 0;
        while added < add_edges && guard < 10_000 {
            guard += 1;
            let caller = rng.gen_range(0..next.apps.len());
            let service = rng.gen_range(0..next.services.len());
            if next.services[service].owner == caller || !existing.insert((caller, service)) {
                continue;
            }
            next.edges.push(EdgeSpec {
                caller,
                service,
                freq: if rng.gen_bool(0.4) {
                    FreqTier::Frequent
                } else {
                    FreqTier::Common
                },
                asynchronous: rng.gen_bool(0.3),
                citation: CitationStyle::Correct,
            });
            added += 1;
        }
        next
    }

    /// Edges indexed by caller, for the engine's workflow sampling.
    pub fn edges_by_caller(&self) -> Vec<Vec<usize>> {
        let mut by_caller = vec![Vec::new(); self.apps.len()];
        for (i, e) in self.edges.iter().enumerate() {
            by_caller[e.caller].push(i);
        }
        by_caller
    }
}

/// Small-λ Poisson sampler (Knuth's method); adequate for fanouts.
pub(crate) fn sample_poisson(rng: &mut StdRng, lambda: f64) -> usize {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda > 30.0 {
        // Normal approximation for large λ.
        let z: f64 = {
            // Box–Muller from two uniforms.
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        };
        return (lambda + z * lambda.sqrt()).round().max(0.0) as usize;
    }
    let l = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.gen_range(0.0..1.0_f64);
        if p <= l {
            return k;
        }
        k += 1;
        if k > 10_000 {
            return k; // theoretical safety net
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{NoiseConfig, TopologyConfig};

    fn hug() -> Topology {
        Topology::generate(
            &TopologyConfig::hug_like(),
            &NoiseConfig::paper_taxonomy(),
            7,
        )
    }

    #[test]
    fn deterministic_for_seed() {
        let a = hug();
        let b = hug();
        assert_eq!(a, b);
        let c = Topology::generate(
            &TopologyConfig::hug_like(),
            &NoiseConfig::paper_taxonomy(),
            8,
        );
        assert_ne!(a.edges, c.edges);
    }

    #[test]
    fn hug_shape_matches_paper_scale() {
        let t = hug();
        assert_eq!(t.apps.len(), 54);
        assert_eq!(t.services.len(), 47);
        let n_edges = t.app_service_pairs().len();
        assert!(
            (130..=230).contains(&n_edges),
            "edges = {n_edges}, want ≈177"
        );
        let n_pairs = t.app_pairs().len();
        assert!(
            (120..=230).contains(&n_pairs),
            "pairs = {n_pairs}, want ≈178"
        );
    }

    #[test]
    fn names_and_ids_unique() {
        let t = hug();
        let mut names: Vec<&str> = t.apps.iter().map(|a| a.name.as_str()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate app names");
        let mut ids: Vec<&str> = t.directory_ids();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before, "duplicate service ids");
    }

    #[test]
    fn no_self_dependencies() {
        let t = hug();
        for e in &t.edges {
            assert_ne!(
                t.services[e.service].owner, e.caller,
                "app depends on its own service"
            );
        }
        for (a, b) in t.app_pairs() {
            assert_ne!(a, b);
        }
    }

    #[test]
    fn clients_own_no_services() {
        let t = hug();
        for app in t.apps.iter().filter(|a| a.tier == Tier::Client) {
            assert!(app.owns.is_empty());
        }
        for s in &t.services {
            assert_ne!(t.apps[s.owner].tier, Tier::Client);
        }
    }

    #[test]
    fn noise_roles_assigned_with_paper_counts() {
        let t = hug();
        let renamed = t
            .edges
            .iter()
            .filter(|e| e.citation == CitationStyle::Renamed)
            .count();
        assert_eq!(renamed, 3);
        let wrong = t
            .edges
            .iter()
            .filter(|e| matches!(e.citation, CitationStyle::WrongId(_)))
            .count();
        assert_eq!(wrong, 5);
        let unlogged = t
            .edges
            .iter()
            .filter(|e| e.citation == CitationStyle::Unlogged)
            .count();
        assert_eq!(unlogged, 7);
        assert_eq!(t.flaky_chains.len(), 5);
        assert_eq!(t.coincidence_pairs.len(), 7);
        let leaky = t.apps.iter().filter(|a| !a.server_template_covered).count();
        assert_eq!(leaky, 2);
    }

    #[test]
    fn renamed_services_keep_old_id_prefix() {
        let t = hug();
        for s in t.services.iter().filter(|s| s.old_id.is_some()) {
            let old = s.old_id.as_ref().expect("filtered");
            assert_eq!(&s.id, &format!("{old}2"));
        }
        let n = t.services.iter().filter(|s| s.old_id.is_some()).count();
        assert_eq!(n, 3);
    }

    #[test]
    fn wrong_id_targets_are_not_real_dependencies() {
        let t = hug();
        for e in &t.edges {
            if let CitationStyle::WrongId(w) = e.citation {
                assert!(
                    !t.edges
                        .iter()
                        .any(|x| x.caller == e.caller && x.service == w),
                    "wrong-id citation points at an actual dependency"
                );
                assert_ne!(w, e.service);
            }
        }
    }

    #[test]
    fn flaky_chains_are_transitive_non_deps() {
        let t = hug();
        for c in &t.flaky_chains {
            let top = &t.edges[c.top_edge];
            let deep = &t.edges[c.deep_edge];
            assert_eq!(
                t.services[top.service].owner, deep.caller,
                "chain must pass through the mid owner"
            );
            assert!(
                !t.edges
                    .iter()
                    .any(|e| e.caller == top.caller && e.service == deep.service),
                "deep service must not be a real dependency of the top caller"
            );
        }
    }

    #[test]
    fn coincidence_pairs_are_non_deps() {
        let t = hug();
        for &(app, svc) in &t.coincidence_pairs {
            assert!(!t.edges.iter().any(|e| e.caller == app && e.service == svc));
            assert_ne!(t.services[svc].owner, app);
        }
    }

    #[test]
    fn small_topology_generates() {
        let t = Topology::generate(&TopologyConfig::small(), &NoiseConfig::paper_taxonomy(), 3);
        assert_eq!(t.apps.len(), 12);
        assert_eq!(t.services.len(), 8);
        assert!(!t.edges.is_empty());
    }

    #[test]
    fn edges_by_caller_partition() {
        let t = hug();
        let by_caller = t.edges_by_caller();
        let total: usize = by_caller.iter().map(Vec::len).sum();
        assert_eq!(total, t.edges.len());
        for (caller, idxs) in by_caller.iter().enumerate() {
            for &i in idxs {
                assert_eq!(t.edges[i].caller, caller);
            }
        }
    }

    #[test]
    fn evolve_adds_and_removes_edges() {
        let t = hug();
        let before = t.app_service_pairs().len();
        let evolved = t.evolve(10, 6, 99);
        let after = evolved.app_service_pairs().len();
        assert_eq!(after, before + 10 - 6);
        assert_eq!(evolved.apps, t.apps);
        assert_eq!(evolved.services, t.services);
        // No self-dependencies or duplicates slipped in.
        let mut seen = std::collections::HashSet::new();
        for e in &evolved.edges {
            assert_ne!(evolved.services[e.service].owner, e.caller);
            assert!(seen.insert((e.caller, e.service)));
        }
        // Deterministic.
        assert_eq!(evolved, t.evolve(10, 6, 99));
        assert_ne!(evolved.edges, t.evolve(10, 6, 100).edges);
    }

    #[test]
    fn evolve_keeps_noise_roles_consistent() {
        let t = hug();
        let evolved = t.evolve(5, 8, 7);
        for c in &evolved.flaky_chains {
            let top = &evolved.edges[c.top_edge];
            let deep = &evolved.edges[c.deep_edge];
            assert_eq!(
                evolved.services[top.service].owner, deep.caller,
                "flaky chain broken by reindexing"
            );
        }
        let renamed = evolved
            .edges
            .iter()
            .filter(|e| e.citation == CitationStyle::Renamed)
            .count();
        assert_eq!(renamed, 3, "renamed edges must survive evolution");
    }

    #[test]
    fn poisson_sampler_mean() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 3000;
        let total: usize = (0..n).map(|_| sample_poisson(&mut rng, 4.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 4.0).abs() < 0.2, "mean = {mean}");
        assert_eq!(sample_poisson(&mut rng, 0.0), 0);
        // Large-λ branch.
        let big: usize = sample_poisson(&mut rng, 100.0);
        assert!((50..200).contains(&big));
    }
}
