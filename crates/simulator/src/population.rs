//! The user and machine population.
//!
//! Session reconstruction (technique L2) is hard precisely because "a
//! machine can be shared by different users, and a user might be active
//! on different machines" (§3.2). The population model reproduces both:
//! every user has a home machine, some users roam across wards, and
//! shared ward machines serve many users.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A user of the clinical system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserSpec {
    /// Login name, e.g. `u042`.
    pub name: String,
    /// Home machine index.
    pub home_host: usize,
    /// Probability that a given session happens away from the home
    /// machine (roaming clinicians).
    pub roam_prob: f64,
}

/// A client machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostSpec {
    /// Machine name, e.g. `ws-017`.
    pub name: String,
    /// Whether this is a shared ward machine (more users, more churn).
    pub shared: bool,
}

/// The generated population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Population {
    /// Users, index = user id in the simulation.
    pub users: Vec<UserSpec>,
    /// Machines, index = host id in the simulation.
    pub hosts: Vec<HostSpec>,
}

impl Population {
    /// Generates `n_users` users over `n_hosts` machines. About a third
    /// of the machines are shared ward machines.
    pub fn generate(n_users: usize, n_hosts: usize, rng: &mut StdRng) -> Self {
        assert!(n_hosts > 0, "need at least one host");
        let hosts: Vec<HostSpec> = (0..n_hosts)
            .map(|i| HostSpec {
                name: format!("ws-{i:03}"),
                shared: i % 3 == 0,
            })
            .collect();
        let users = (0..n_users)
            .map(|i| UserSpec {
                name: format!("u{i:03}"),
                home_host: rng.gen_range(0..n_hosts),
                roam_prob: if rng.gen_bool(0.25) { 0.5 } else { 0.08 },
            })
            .collect();
        Self { users, hosts }
    }

    /// Picks the machine for a new session of `user`: usually the home
    /// machine, sometimes (per the user's roaming probability) another —
    /// preferentially a shared ward machine.
    pub fn session_host(&self, user: usize, rng: &mut StdRng) -> usize {
        let spec = &self.users[user];
        if !rng.gen_bool(spec.roam_prob) {
            return spec.home_host;
        }
        // Roaming: prefer shared machines.
        for _ in 0..8 {
            let h = rng.gen_range(0..self.hosts.len());
            if self.hosts[h].shared && h != spec.home_host {
                return h;
            }
        }
        rng.gen_range(0..self.hosts.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn pop(seed: u64) -> (Population, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = Population::generate(60, 20, &mut rng);
        (p, rng)
    }

    #[test]
    fn generation_is_deterministic() {
        let (a, _) = pop(3);
        let (b, _) = pop(3);
        assert_eq!(a, b);
    }

    #[test]
    fn shapes() {
        let (p, _) = pop(1);
        assert_eq!(p.users.len(), 60);
        assert_eq!(p.hosts.len(), 20);
        let shared = p.hosts.iter().filter(|h| h.shared).count();
        assert!(shared >= 6, "about a third shared, got {shared}");
        for u in &p.users {
            assert!(u.home_host < p.hosts.len());
            assert!(u.roam_prob > 0.0 && u.roam_prob < 1.0);
        }
    }

    #[test]
    fn names_unique() {
        let (p, _) = pop(2);
        let mut names: Vec<&str> = p.users.iter().map(|u| u.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 60);
    }

    #[test]
    fn sessions_mostly_on_home_machine() {
        let (p, mut rng) = pop(4);
        let user = 0;
        let home = p.users[user].home_host;
        let trials = 300;
        let at_home = (0..trials)
            .filter(|_| p.session_host(user, &mut rng) == home)
            .count();
        // roam_prob is at most 0.5, so at least ~half the sessions are
        // at home; for the common 0.08 case nearly all are.
        assert!(at_home > trials / 3, "at_home = {at_home}");
    }

    #[test]
    fn roaming_happens() {
        let (p, mut rng) = pop(5);
        // Find a roamer (roam_prob = 0.5).
        let roamer = p
            .users
            .iter()
            .position(|u| u.roam_prob > 0.4)
            .expect("population contains roamers");
        let home = p.users[roamer].home_host;
        let away = (0..300)
            .filter(|_| p.session_host(roamer, &mut rng) != home)
            .count();
        assert!(away > 50, "roamer never roamed: {away}");
    }

    #[test]
    #[should_panic(expected = "at least one host")]
    fn zero_hosts_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        Population::generate(5, 0, &mut rng);
    }
}
