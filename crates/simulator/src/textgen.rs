//! Free-text log message generation.
//!
//! Technique L3 lives or dies by the *shape* of the message text, so the
//! templates here reproduce the paper's observations faithfully:
//!
//! * invocation logs are "peculiar to each piece of code" — every caller
//!   application has one of several developer styles, but all of them
//!   mention some element provided by the service directory (§3.3);
//! * callee-side logs also cite the group, which is what the paper's
//!   *stop patterns* exist to suppress;
//! * background chatter, UI actions and the occasional patient who
//!   shares a name with a service id complete the noise floor.
//!
//! [`standard_stop_patterns`] is the simulated counterpart of the 10
//! stop patterns the paper's deployment used.

use rand::rngs::StdRng;
use rand::Rng;

/// Developer style of invocation logging, fixed per application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallerStyle {
    /// `Invoke externalService [fct [notify] server [srv03.hcuge.ch:9999/dpinotification]]`
    Bracketed,
    /// `(DPINOTIFICATION) notify( $params )`
    Parenthesized,
    /// `calling DPINOTIFICATION.notify for record 1234`
    Prose,
}

impl CallerStyle {
    /// Deterministic style for an application index.
    pub fn for_app(app: usize) -> Self {
        match app % 3 {
            0 => CallerStyle::Bracketed,
            1 => CallerStyle::Parenthesized,
            _ => CallerStyle::Prose,
        }
    }
}

/// Remote function names used in invocation texts.
const FCTS: [&str; 8] = [
    "notify", "publish", "query", "update", "fetch", "submit", "archive", "validate",
];

/// Picks a plausible remote function name.
pub fn pick_fct(rng: &mut StdRng) -> &'static str {
    FCTS[rng.gen_range(0..FCTS.len())]
}

/// Caller-side "before invocation" log text citing the directory
/// element `cited_id` of a service whose published URL path/host are
/// given. `cited_id` may deliberately be a wrong or outdated id.
pub fn caller_invoke(
    style: CallerStyle,
    cited_id: &str,
    host: &str,
    fct: &str,
    rng: &mut StdRng,
) -> String {
    match style {
        CallerStyle::Bracketed => format!(
            "Invoke externalService [fct [{fct}] server [{host}:9999/{}]]",
            cited_id.to_ascii_lowercase()
        ),
        CallerStyle::Parenthesized => format!("({cited_id}) {fct}( $params )"),
        CallerStyle::Prose => format!(
            "calling {cited_id}.{fct} for record {}",
            rng.gen_range(1000..99999)
        ),
    }
}

/// Caller-side "invocation returned" log text (cites nothing).
pub fn caller_return(fct: &str, latency_ms: i64) -> String {
    format!("call returned [fct [{fct}]] rc=0 in {latency_ms} ms")
}

/// Caller-side log of an application that does *not* cite its
/// invocations (the §4.8 "interactions not logged" category).
pub fn caller_uncited(fct: &str) -> String {
    format!("processing step {fct} completed")
}

/// Callee-side log text. `covered` selects a template matched by the
/// standard stop patterns; the uncovered ("leaky") template is the one
/// producing the paper's residual inverted dependencies. `cites` controls
/// whether the group id appears at all.
pub fn callee_log(
    covered: bool,
    cites: bool,
    group_id: &str,
    fct: &str,
    caller_name: &str,
    rng: &mut StdRng,
) -> String {
    if !cites {
        return format!("handled {fct} in {} ms", rng.gen_range(2..300));
    }
    if covered {
        match rng.gen_range(0..3) {
            0 => format!("Serving request [fct [{fct}] group [{group_id}]] for {caller_name}"),
            1 => format!("incoming invocation {fct} on {group_id}"),
            _ => format!("request received from {caller_name} [group {group_id}]"),
        }
    } else {
        // Deliberately *not* matched by the standard stop patterns.
        format!(
            "done [{group_id}] unit completed in {} ms",
            rng.gen_range(2..300)
        )
    }
}

/// Exception stack-trace text logged by the *top-level* caller when a
/// nested (transitive) invocation fails; cites the deep service id.
pub fn stacktrace(deep_id: &str, mid_app: &str, fct: &str) -> String {
    format!(
        "Unhandled exception RemoteFault: {fct} failed; cause: timeout contacting ({deep_id}) \
         | trace: handler.invoke -> {mid_app}.dispatch -> remote.call({deep_id})"
    )
}

/// Background chatter (no citations, no session context).
pub fn background(rng: &mut StdRng) -> String {
    match rng.gen_range(0..6) {
        0 => format!("heartbeat ok seq={}", rng.gen_range(0..1_000_000)),
        1 => format!("queue depth {}", rng.gen_range(0..500)),
        2 => "cache purge completed".to_owned(),
        3 => format!("scheduled task {} finished", rng.gen_range(1..40)),
        4 => format!("gc pause {} ms", rng.gen_range(1..80)),
        _ => format!("connection pool size {}", rng.gen_range(1..64)),
    }
}

/// Client UI action log (session context, no citations).
pub fn ui_action(rng: &mut StdRng) -> String {
    match rng.gen_range(0..4) {
        0 => format!("user action: open tab {}", rng.gen_range(1..12)),
        1 => "user action: save form".to_owned(),
        2 => format!("view rendered in {} ms", rng.gen_range(20..900)),
        _ => "user action: search".to_owned(),
    }
}

/// The coincidence text: a patient record whose name collides with a
/// service-directory id (§4.8: 7 false positives "due to coincidence").
/// Must not match any stop pattern.
pub fn coincidence(service_id: &str, rng: &mut StdRng) -> String {
    format!(
        "opened record for patient {} {service_id} (dob {}.{}.19{})",
        ["Mr", "Mrs", "Dr"][rng.gen_range(0..3)],
        rng.gen_range(1..28),
        rng.gen_range(1..12),
        rng.gen_range(30..99),
    )
}

/// The standard stop-pattern set — the simulated counterpart of the 10
/// patterns the paper's HUG deployment used (§4.8). They cover every
/// covered callee template above plus common server-side shapes that a
/// deployment would accumulate.
pub fn standard_stop_patterns() -> Vec<&'static str> {
    vec![
        "serving request*",
        "*incoming invocation*",
        "*request received from*",
        "handled * in * ms",
        "dispatching * to local handler*",
        "*session opened by*",
        "*auth check for request*",
        "worker * accepted job*",
        "replication sync * applied",
        "*listener bound on port*",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn caller_styles_cite_the_id() {
        let mut r = rng();
        for style in [
            CallerStyle::Bracketed,
            CallerStyle::Parenthesized,
            CallerStyle::Prose,
        ] {
            let text = caller_invoke(style, "DPINOTIFICATION", "srv01.hcuge.ch", "notify", &mut r);
            assert!(
                text.to_ascii_lowercase().contains("dpinotification"),
                "style {style:?} lost the citation: {text}"
            );
        }
    }

    #[test]
    fn style_is_deterministic_per_app() {
        assert_eq!(CallerStyle::for_app(0), CallerStyle::Bracketed);
        assert_eq!(CallerStyle::for_app(1), CallerStyle::Parenthesized);
        assert_eq!(CallerStyle::for_app(2), CallerStyle::Prose);
        assert_eq!(CallerStyle::for_app(3), CallerStyle::Bracketed);
    }

    #[test]
    fn covered_callee_templates_match_stop_patterns() {
        use logdep_textmatch::StopPatterns;
        let stops = StopPatterns::new(standard_stop_patterns());
        let mut r = rng();
        for _ in 0..50 {
            let t = callee_log(true, true, "LABCORE", "query", "DPIViewer", &mut r);
            assert!(stops.matches(&t), "covered template escaped: {t}");
            let t = callee_log(true, false, "LABCORE", "query", "DPIViewer", &mut r);
            assert!(stops.matches(&t), "non-citing template escaped: {t}");
        }
    }

    #[test]
    fn leaky_callee_template_evades_stop_patterns_but_cites() {
        use logdep_textmatch::StopPatterns;
        let stops = StopPatterns::new(standard_stop_patterns());
        let mut r = rng();
        let t = callee_log(false, true, "LABCORE", "query", "DPIViewer", &mut r);
        assert!(!stops.matches(&t), "leaky template was stopped: {t}");
        assert!(t.contains("LABCORE"));
    }

    #[test]
    fn stacktrace_cites_deep_service_as_whole_word() {
        use logdep_textmatch::{MatchMode, MatcherBuilder};
        let t = stacktrace("HL7GATEWAY", "MEDTransfers", "submit");
        let mut b = MatcherBuilder::new();
        b.mode(MatchMode::WholeWord).add("HL7GATEWAY");
        assert!(b.build().contains_any(&t), "no whole-word citation: {t}");
    }

    #[test]
    fn background_and_ui_texts_never_cite_or_stop() {
        use logdep_textmatch::StopPatterns;
        let stops = StopPatterns::new(standard_stop_patterns());
        let mut r = rng();
        for _ in 0..100 {
            let t = background(&mut r);
            assert!(!stops.matches(&t), "background text stopped: {t}");
            let t = ui_action(&mut r);
            assert!(!stops.matches(&t), "ui text stopped: {t}");
        }
    }

    #[test]
    fn coincidence_cites_id_and_evades_stops() {
        use logdep_textmatch::{MatcherBuilder, StopPatterns};
        let stops = StopPatterns::new(standard_stop_patterns());
        let mut r = rng();
        let t = coincidence("STATWAREHOUSE", &mut r);
        assert!(!stops.matches(&t));
        let mut b = MatcherBuilder::new();
        b.add("STATWAREHOUSE");
        assert!(b.build().contains_any(&t));
    }

    #[test]
    fn uncited_caller_text_contains_no_bracket_citation() {
        let t = caller_uncited("publish");
        assert!(!t.contains('('));
        assert!(!t.contains('['));
    }

    #[test]
    fn ten_stop_patterns_like_the_paper() {
        assert_eq!(standard_stop_patterns().len(), 10);
    }
}
