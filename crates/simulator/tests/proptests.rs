//! Property-based tests of the simulator: structural invariants that
//! must hold for *any* configuration, not just the calibrated presets.

use logdep_sim::topology::{CitationStyle, FreqTier, Topology};
use logdep_sim::{simulate, NoiseConfig, SimConfig, TopologyConfig, WorkloadConfig};
use proptest::prelude::*;

fn arb_topology_config() -> impl Strategy<Value = TopologyConfig> {
    (2usize..6, 3usize..10, 2usize..5, 4usize..14).prop_map(
        |(clients, mids, backends, services)| TopologyConfig {
            n_client_apps: clients,
            n_mid_apps: mids,
            n_backend_apps: backends,
            n_services: services,
            client_fanout: 3.0,
            mid_fanout: 1.5,
            backend_edge_prob: 0.4,
            async_edge_fraction: 0.3,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn topology_invariants_hold_for_any_shape(
        cfg in arb_topology_config(),
        seed in 0u64..10_000,
    ) {
        let topo = Topology::generate(&cfg, &NoiseConfig::paper_taxonomy(), seed);
        prop_assert_eq!(topo.apps.len(), cfg.n_apps());
        prop_assert_eq!(topo.services.len(), cfg.n_services);
        // No duplicate edges, no self-dependencies.
        let mut seen = std::collections::HashSet::new();
        for e in &topo.edges {
            prop_assert!(seen.insert((e.caller, e.service)));
            prop_assert!(topo.services[e.service].owner != e.caller);
            prop_assert!(e.caller < topo.apps.len());
            prop_assert!(e.service < topo.services.len());
        }
        // Ownership lists agree with the service table.
        for (i, svc) in topo.services.iter().enumerate() {
            prop_assert!(topo.apps[svc.owner].owns.contains(&i));
        }
        // Wrong-id citations never point at a real dependency.
        for e in &topo.edges {
            if let CitationStyle::WrongId(w) = e.citation {
                prop_assert!(!topo
                    .edges
                    .iter()
                    .any(|x| x.caller == e.caller && x.service == w));
            }
        }
    }

    #[test]
    fn evolution_preserves_invariants(
        seed in 0u64..5_000,
        add in 0usize..12,
        remove in 0usize..12,
    ) {
        let topo = Topology::generate(
            &TopologyConfig::small(),
            &NoiseConfig::paper_taxonomy(),
            seed,
        );
        let next = topo.evolve(add, remove, seed ^ 0xabc);
        let mut seen = std::collections::HashSet::new();
        for e in &next.edges {
            prop_assert!(seen.insert((e.caller, e.service)));
            prop_assert!(next.services[e.service].owner != e.caller);
        }
        for c in &next.flaky_chains {
            prop_assert!(c.top_edge < next.edges.len());
            prop_assert!(c.deep_edge < next.edges.len());
            let top = &next.edges[c.top_edge];
            let deep = &next.edges[c.deep_edge];
            prop_assert_eq!(next.services[top.service].owner, deep.caller);
        }
    }

    #[test]
    fn simulation_structural_invariants(seed in 0u64..1_000) {
        let mut cfg = SimConfig::small_test(seed);
        cfg.workload = WorkloadConfig {
            scale: 0.15,
            ..WorkloadConfig::hug_like(0.15)
        };
        let out = simulate(&cfg);
        // Store is sorted and every record's source resolves to a name.
        let records = out.store.records();
        for w in records.windows(2) {
            prop_assert!(w[0].client_ts <= w[1].client_ts);
        }
        for r in records.iter().step_by(97) {
            prop_assert!(!out.store.registry.source_name(r.source).starts_with('<'));
        }
        // Dormant edges never realize; realized counts only for edges.
        for day in &out.stats.realized {
            prop_assert_eq!(day.len(), out.topology.edges.len());
            for (i, e) in out.topology.edges.iter().enumerate() {
                if e.freq == FreqTier::Dormant {
                    prop_assert_eq!(day[i], 0);
                }
            }
        }
        // Stats add up.
        prop_assert_eq!(out.stats.total_logs, out.store.len());
        prop_assert!(out.stats.context_logs <= out.stats.total_logs);
    }
}
