//! Robustness properties enforced by the `no-panic-in-lib` lint: every
//! degenerate input — NaN, empty samples, unsorted data, all-tied
//! values, zero-margin or overflowing tables — must surface as a
//! `StatsError`, never as a panic. Each property here deliberately feeds
//! the nastiest `any::<f64>()` stream (NaN, ±inf, signed zero, huge and
//! tiny magnitudes) through the public entry points.

use logdep_stats::contingency::Table2x2;
use logdep_stats::order_stats::{median_ci, quantile_ci, quantile_ci_sorted};
use logdep_stats::wilcoxon::{signed_rank, Alternative};
use logdep_stats::StatsError;
use proptest::prelude::*;

fn arbitrary_sample() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(any::<f64>(), 0..60)
}

proptest! {
    #[test]
    fn quantile_ci_never_panics(xs in arbitrary_sample(), q in any::<f64>(), level in any::<f64>()) {
        match quantile_ci(&xs, q, level) {
            Ok(ci) => {
                prop_assert!(ci.lower <= ci.upper);
                prop_assert!(!xs.is_empty());
                prop_assert!(xs.iter().all(|x| !x.is_nan()));
            }
            Err(_) => {}
        }
    }

    #[test]
    fn quantile_ci_rejects_nan_and_empty(xs in arbitrary_sample()) {
        let r = quantile_ci(&xs, 0.5, 0.95);
        if xs.is_empty() {
            prop_assert!(r.is_err());
        }
        if xs.iter().any(|x| x.is_nan()) {
            prop_assert_eq!(r.unwrap_err(), StatsError::NanInput);
        }
    }

    #[test]
    fn quantile_ci_sorted_rejects_unsorted_without_panicking(
        xs in arbitrary_sample(),
        q in 0.01..0.99f64,
    ) {
        let sorted = {
            let mut s = xs.clone();
            s.sort_by(|a, b| a.total_cmp(b));
            s
        };
        let is_sorted = xs.windows(2).all(|w| w[0] <= w[1]);
        let r = quantile_ci_sorted(&xs, q, 0.9);
        // Unsorted finite data must be rejected, not silently accepted.
        if !xs.is_empty() && xs.iter().all(|x| !x.is_nan()) && !is_sorted {
            prop_assert!(r.is_err());
        }
        // The sorted copy of finite data must be accepted.
        if !xs.is_empty() && xs.iter().all(|x| !x.is_nan()) {
            prop_assert!(quantile_ci_sorted(&sorted, q, 0.9).is_ok());
        }
    }

    #[test]
    fn median_ci_handles_all_tied_samples(v in any::<f64>(), n in 1usize..80) {
        let xs = vec![v; n];
        let r = median_ci(&xs, 0.95);
        if v.is_nan() {
            prop_assert_eq!(r.unwrap_err(), StatsError::NanInput);
        } else {
            let ci = r.unwrap();
            prop_assert_eq!(ci.lower, v);
            prop_assert_eq!(ci.upper, v);
        }
    }

    #[test]
    fn contingency_never_panics_on_any_counts(
        o11 in any::<u64>(),
        o12 in any::<u64>(),
        o21 in any::<u64>(),
        o22 in any::<u64>(),
    ) {
        let t = Table2x2::new(o11, o12, o21, o22);
        // Saturating margins, never an overflow panic.
        let _ = t.n();
        let _ = t.row_sums();
        let _ = t.col_sums();
        match t.expected() {
            Ok(e) => prop_assert!(e.iter().all(|x| x.is_finite())),
            Err(err) => prop_assert_eq!(err, StatsError::DegenerateTable),
        }
        let _ = t.g2();
        let _ = t.pearson_x2();
    }

    #[test]
    fn zero_margin_tables_are_degenerate_errors(a in any::<u64>(), b in any::<u64>()) {
        // Zero row margin and zero column margin respectively.
        for t in [Table2x2::new(0, 0, a, b), Table2x2::new(0, a, 0, b)] {
            prop_assert_eq!(t.expected().unwrap_err(), StatsError::DegenerateTable);
            prop_assert!(t.g2().is_err());
            prop_assert!(t.pearson_x2().is_err());
        }
    }

    #[test]
    fn from_marginals_rejects_inconsistent_or_overflowing(
        f in any::<u64>(),
        f1 in any::<u64>(),
        f2 in any::<u64>(),
        n in any::<u64>(),
    ) {
        // Must never panic — huge marginals overflow-check instead.
        if let Ok(t) = Table2x2::from_marginals(f, f1, f2, n) {
            prop_assert!(f <= f1 && f <= f2);
            prop_assert_eq!(t.n(), n);
        }
    }

    #[test]
    fn signed_rank_never_panics(diffs in arbitrary_sample()) {
        match signed_rank(&diffs, Alternative::TwoSided) {
            Ok(r) => {
                prop_assert!((0.0..=1.0).contains(&r.p_value));
                prop_assert!(diffs.iter().all(|d| !d.is_nan()));
            }
            Err(_) => {}
        }
    }

    #[test]
    fn signed_rank_rejects_nan_and_all_zero(diffs in arbitrary_sample()) {
        if diffs.iter().any(|d| d.is_nan()) {
            prop_assert_eq!(
                signed_rank(&diffs, Alternative::Greater).unwrap_err(),
                StatsError::NanInput
            );
        }
        let zeros = vec![0.0; diffs.len().max(1)];
        prop_assert_eq!(
            signed_rank(&zeros, Alternative::Less).unwrap_err(),
            StatsError::EmptySample
        );
    }
}
