//! Property-based tests of the statistics substrate.

use logdep_stats::contingency::Table2x2;
use logdep_stats::order_stats::{median_ci, quantile_ci};
use logdep_stats::wilcoxon::{signed_rank, Alternative};
use logdep_stats::{binomial, chi2, descriptive, normal, regression, tdist};
use proptest::prelude::*;

fn finite_sample() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6..1e6f64, 1..200)
}

proptest! {
    #[test]
    fn median_ci_brackets_the_sample_median(xs in finite_sample(), level in 0.5..0.999f64) {
        let ci = median_ci(&xs, level).unwrap();
        let med = descriptive::median(&xs).unwrap();
        prop_assert!(ci.lower <= med + 1e-9);
        prop_assert!(med <= ci.upper + 1e-9);
        prop_assert!(ci.lower <= ci.upper);
        // Coverage can legitimately be 0 for tiny samples (n = 1: the
        // interval [x, x] has zero probability of containing the true
        // median of a continuous distribution).
        prop_assert!(ci.achieved_level >= 0.0 && ci.achieved_level <= 1.0);
    }

    #[test]
    fn quantile_ci_bounds_are_sample_elements(
        xs in finite_sample(),
        q in 0.01..0.99f64,
    ) {
        let ci = quantile_ci(&xs, q, 0.9).unwrap();
        prop_assert!(xs.contains(&ci.lower));
        prop_assert!(xs.contains(&ci.upper));
        prop_assert!(ci.lower_rank >= 1 && ci.upper_rank <= xs.len());
    }

    #[test]
    fn wider_level_never_narrows_the_ci(xs in prop::collection::vec(-1e3..1e3f64, 5..100)) {
        let narrow = median_ci(&xs, 0.80).unwrap();
        let wide = median_ci(&xs, 0.99).unwrap();
        prop_assert!(wide.lower <= narrow.lower + 1e-12);
        prop_assert!(wide.upper >= narrow.upper - 1e-12);
    }

    #[test]
    fn binomial_cdf_is_monotone(n in 1u64..500, p in 0.0..1.0f64) {
        let mut prev = 0.0;
        for k in 0..=n.min(60) {
            let c = binomial::cdf(n, p, k).unwrap();
            prop_assert!(c >= prev - 1e-12);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&c));
            prev = c;
        }
    }

    #[test]
    fn binomial_quantile_inverts_cdf(n in 1u64..300, p in 0.01..0.99f64, q in 0.01..0.99f64) {
        let k = binomial::quantile(n, p, q).unwrap();
        prop_assert!(binomial::cdf(n, p, k).unwrap() >= q - 1e-12);
        if k > 0 {
            prop_assert!(binomial::cdf(n, p, k - 1).unwrap() < q + 1e-9);
        }
    }

    #[test]
    fn normal_quantile_round_trips(p in 1e-6..0.999999f64) {
        let x = normal::quantile(p).unwrap();
        prop_assert!((normal::cdf(x) - p).abs() < 1e-9);
    }

    #[test]
    fn chi2_cdf_sf_complement(x in 0.0..200.0f64, df in 0.5..50.0f64) {
        let c = chi2::cdf(x, df).unwrap();
        let s = chi2::sf(x, df).unwrap();
        prop_assert!((c + s - 1.0).abs() < 1e-9);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&c));
    }

    #[test]
    fn tdist_symmetry(t in -30.0..30.0f64, df in 1.0..100.0f64) {
        let a = tdist::cdf(t, df).unwrap();
        let b = tdist::cdf(-t, df).unwrap();
        prop_assert!((a + b - 1.0).abs() < 1e-9);
    }

    #[test]
    fn g2_and_x2_nonnegative_and_zero_iff_independent(
        o11 in 1u64..500, o12 in 1u64..500, o21 in 1u64..500, o22 in 1u64..500,
    ) {
        let t = Table2x2::new(o11, o12, o21, o22);
        let g2 = t.g2().unwrap();
        let x2 = t.pearson_x2().unwrap();
        prop_assert!(g2 >= -1e-9);
        prop_assert!(x2 >= -1e-9);
        // Proportional tables have statistic ~0.
        let prop_table = Table2x2::new(o11, o12, o11 * 3, o12 * 3);
        prop_assert!(prop_table.g2().unwrap() < 1e-6);
    }

    #[test]
    fn from_marginals_round_trips(
        o11 in 0u64..200, o12 in 0u64..200, o21 in 0u64..200, o22 in 0u64..200,
    ) {
        let t = Table2x2::new(o11, o12, o21, o22);
        if t.n() > 0 {
            let back = Table2x2::from_marginals(
                t.o11,
                t.col_sums().0,
                t.row_sums().0,
                t.n(),
            ).unwrap();
            prop_assert_eq!(t, back);
        }
    }

    #[test]
    fn wilcoxon_p_in_unit_interval_and_sign_symmetric(
        d in prop::collection::vec(-100.0..100.0f64, 1..40),
    ) {
        prop_assume!(d.iter().any(|&x| x != 0.0));
        let p = signed_rank(&d, Alternative::TwoSided).unwrap().p_value;
        prop_assert!(p > 0.0 && p <= 1.0);
        let neg: Vec<f64> = d.iter().map(|x| -x).collect();
        let pn = signed_rank(&neg, Alternative::TwoSided).unwrap().p_value;
        prop_assert!((p - pn).abs() < 1e-9, "two-sided p must be sign-symmetric");
    }

    #[test]
    fn regression_residuals_orthogonal_to_x(
        pts in prop::collection::vec((-100.0..100.0f64, -100.0..100.0f64), 3..80),
    ) {
        let x: Vec<f64> = pts.iter().map(|p| p.0).collect();
        let y: Vec<f64> = pts.iter().map(|p| p.1).collect();
        prop_assume!(x.windows(2).any(|w| (w[0] - w[1]).abs() > 1e-6));
        let fit = regression::linear_fit(&x, &y).unwrap();
        let dot: f64 = fit.residuals.iter().zip(&x).map(|(r, xi)| r * xi).sum();
        let scale: f64 = x.iter().map(|v| v * v).sum::<f64>().max(1.0);
        prop_assert!(dot.abs() / scale < 1e-6, "residuals not orthogonal: {dot}");
    }
}
