//! Student's t distribution, used for regression slope confidence
//! intervals in the load-influence experiment (Figure 9).

use crate::special::beta_inc;
use crate::{Result, StatsError};

fn check_df(df: f64) -> Result<()> {
    if !(df > 0.0) || df.is_nan() {
        return Err(StatsError::InvalidParameter {
            name: "df",
            value: df,
        });
    }
    Ok(())
}

/// CDF of Student's t with `df` degrees of freedom.
pub fn cdf(t: f64, df: f64) -> Result<f64> {
    check_df(df)?;
    if t == 0.0 {
        return Ok(0.5);
    }
    let x = df / (df + t * t);
    let p = 0.5 * beta_inc(df / 2.0, 0.5, x);
    Ok(if t > 0.0 { 1.0 - p } else { p })
}

/// Quantile function of Student's t, by bisection on the CDF.
pub fn quantile(p: f64, df: f64) -> Result<f64> {
    check_df(df)?;
    if !(p > 0.0 && p < 1.0) {
        return Err(StatsError::InvalidLevel(p));
    }
    if (p - 0.5).abs() < 1e-16 {
        return Ok(0.0);
    }
    let mut lo = -1.0_f64;
    let mut hi = 1.0_f64;
    while cdf(lo, df)? > p {
        lo *= 2.0;
        if lo < -1e10 {
            return Err(StatsError::NoConvergence("tdist::quantile bracket"));
        }
    }
    while cdf(hi, df)? < p {
        hi *= 2.0;
        if hi > 1e10 {
            return Err(StatsError::NoConvergence("tdist::quantile bracket"));
        }
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if cdf(mid, df)? < p {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-12 * (1.0 + hi.abs()) {
            break;
        }
    }
    Ok(0.5 * (lo + hi))
}

/// Two-sided critical value `t*` with `P(|T| ≤ t*) = level`.
pub fn two_sided_t(level: f64, df: f64) -> Result<f64> {
    if !(level > 0.0 && level < 1.0) {
        return Err(StatsError::InvalidLevel(level));
    }
    quantile(0.5 + level / 2.0, df)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_symmetry() {
        for &df in &[1.0, 5.0, 30.0] {
            for &t in &[0.5, 1.0, 2.5] {
                let a = cdf(t, df).unwrap();
                let b = cdf(-t, df).unwrap();
                assert!((a + b - 1.0).abs() < 1e-12, "df={df} t={t}");
            }
        }
        assert_eq!(cdf(0.0, 7.0).unwrap(), 0.5);
    }

    #[test]
    fn cdf_df1_is_cauchy() {
        // t with 1 df is standard Cauchy: CDF(t) = 1/2 + atan(t)/π.
        for &t in &[-3.0_f64, -1.0, 0.5, 2.0] {
            let expect = 0.5 + t.atan() / std::f64::consts::PI;
            assert!((cdf(t, 1.0).unwrap() - expect).abs() < 1e-10);
        }
    }

    #[test]
    fn quantile_reference_values() {
        // Classical table: t₀.₉₇₅ with 10 df = 2.228, with 5 df = 2.571.
        assert!((quantile(0.975, 10.0).unwrap() - 2.228_138_85).abs() < 1e-6);
        assert!((quantile(0.975, 5.0).unwrap() - 2.570_581_84).abs() < 1e-6);
        assert!((two_sided_t(0.95, 10.0).unwrap() - 2.228_138_85).abs() < 1e-6);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for &df in &[2.0, 12.0, 100.0] {
            for &p in &[0.01, 0.2, 0.5, 0.8, 0.99] {
                let t = quantile(p, df).unwrap();
                assert!((cdf(t, df).unwrap() - p).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn large_df_approaches_normal() {
        let t = quantile(0.975, 1e6).unwrap();
        assert!((t - 1.96).abs() < 0.001);
    }

    #[test]
    fn error_cases() {
        assert!(cdf(0.0, 0.0).is_err());
        assert!(quantile(1.2, 5.0).is_err());
        assert!(two_sided_t(0.0, 5.0).is_err());
    }
}
