//! The chi-square (χ²) distribution.
//!
//! Technique L2's association gate compares Dunning's G² (and optionally
//! Pearson's X²) statistic against χ² critical values with one degree of
//! freedom.

use crate::special::{gamma_p, gamma_q};
use crate::{Result, StatsError};

fn check_df(df: f64) -> Result<()> {
    if !(df > 0.0) || df.is_nan() {
        return Err(StatsError::InvalidParameter {
            name: "df",
            value: df,
        });
    }
    Ok(())
}

/// CDF of the χ² distribution with `df` degrees of freedom.
pub fn cdf(x: f64, df: f64) -> Result<f64> {
    check_df(df)?;
    if x <= 0.0 {
        return Ok(0.0);
    }
    Ok(gamma_p(df / 2.0, x / 2.0))
}

/// Survival function `P(X > x)`, accurate in the far tail (where p-values
/// live).
pub fn sf(x: f64, df: f64) -> Result<f64> {
    check_df(df)?;
    if x <= 0.0 {
        return Ok(1.0);
    }
    Ok(gamma_q(df / 2.0, x / 2.0))
}

/// Quantile function: smallest `x` with `CDF(x) ≥ p`, by bisection.
pub fn quantile(p: f64, df: f64) -> Result<f64> {
    check_df(df)?;
    if !(p > 0.0 && p < 1.0) {
        return Err(StatsError::InvalidLevel(p));
    }
    // Bracket: the mean is df, variance 2·df; go wide then bisect.
    let mut lo = 0.0_f64;
    let mut hi = df + 10.0 * (2.0 * df).sqrt() + 10.0;
    while cdf(hi, df)? < p {
        hi *= 2.0;
        if hi > 1e12 {
            return Err(StatsError::NoConvergence("chi2::quantile bracket"));
        }
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if cdf(mid, df)? < p {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-12 * (1.0 + hi) {
            break;
        }
    }
    Ok(0.5 * (lo + hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_known_values_df1() {
        // χ²₁ critical values: P(X > 3.841) = 0.05, P(X > 6.635) = 0.01.
        assert!((sf(3.841_458_820_694_124, 1.0).unwrap() - 0.05).abs() < 1e-9);
        assert!((sf(6.634_896_601_021_213, 1.0).unwrap() - 0.01).abs() < 1e-9);
    }

    #[test]
    fn cdf_known_values_df2() {
        // χ²₂ is Exponential(1/2): CDF(x) = 1 − e^{−x/2}.
        for &x in &[0.5, 1.0, 4.0, 10.0] {
            assert!((cdf(x, 2.0).unwrap() - (1.0 - (-x / 2.0).exp())).abs() < 1e-12);
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        for &df in &[1.0, 2.0, 5.0, 30.0] {
            for &p in &[0.01, 0.05, 0.5, 0.95, 0.99, 0.999] {
                let x = quantile(p, df).unwrap();
                assert!((cdf(x, df).unwrap() - p).abs() < 1e-9, "df={df} p={p}");
            }
        }
    }

    #[test]
    fn quantile_common_critical_values() {
        assert!((quantile(0.95, 1.0).unwrap() - 3.841_458_820_694_124).abs() < 1e-6);
        assert!((quantile(0.99, 1.0).unwrap() - 6.634_896_601_021_213).abs() < 1e-6);
    }

    #[test]
    fn boundaries_and_errors() {
        assert_eq!(cdf(-1.0, 3.0).unwrap(), 0.0);
        assert_eq!(sf(-1.0, 3.0).unwrap(), 1.0);
        assert!(cdf(1.0, 0.0).is_err());
        assert!(cdf(1.0, -2.0).is_err());
        assert!(quantile(0.0, 1.0).is_err());
        assert!(quantile(1.0, 1.0).is_err());
    }

    #[test]
    fn sf_plus_cdf_is_one() {
        for &x in &[0.1, 1.0, 5.0, 20.0] {
            let s = sf(x, 4.0).unwrap() + cdf(x, 4.0).unwrap();
            assert!((s - 1.0).abs() < 1e-11);
        }
    }
}
