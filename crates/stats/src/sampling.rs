//! Seeded sampling utilities.
//!
//! Technique L1 subsamples the (possibly huge) log sequence of the
//! candidate dependent application and draws uniformly random comparison
//! points inside the analysis slot. Both operations are seeded so that
//! every experiment in this repository is exactly reproducible.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A seeded sampler wrapping a deterministic PRNG.
#[derive(Debug, Clone)]
pub struct Sampler {
    rng: StdRng,
}

impl Sampler {
    /// Creates a sampler from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draws `count` uniform points in `[lo, hi)`.
    ///
    /// Returns an empty vector when the range is empty or inverted.
    pub fn uniform_points(&mut self, lo: f64, hi: f64, count: usize) -> Vec<f64> {
        if !(hi > lo) {
            return Vec::new();
        }
        (0..count).map(|_| self.rng.gen_range(lo..hi)).collect()
    }

    /// Subsamples `count` elements from `xs` without replacement,
    /// preserving no particular order. If `count >= xs.len()` the whole
    /// slice is returned (copied).
    pub fn subsample<T: Copy>(&mut self, xs: &[T], count: usize) -> Vec<T> {
        if count >= xs.len() {
            return xs.to_vec();
        }
        // Partial Fisher–Yates via choose_multiple: O(n) but allocation-light.
        xs.choose_multiple(&mut self.rng, count).copied().collect()
    }

    /// Uniform integer in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        self.rng.gen_range(0..n)
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.rng.gen_range(0.0..1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = Sampler::from_seed(7);
        let mut b = Sampler::from_seed(7);
        assert_eq!(
            a.uniform_points(0.0, 10.0, 5),
            b.uniform_points(0.0, 10.0, 5)
        );
        let xs: Vec<u32> = (0..100).collect();
        assert_eq!(a.subsample(&xs, 10), b.subsample(&xs, 10));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Sampler::from_seed(1);
        let mut b = Sampler::from_seed(2);
        assert_ne!(a.uniform_points(0.0, 1.0, 8), b.uniform_points(0.0, 1.0, 8));
    }

    #[test]
    fn uniform_points_respect_bounds() {
        let mut s = Sampler::from_seed(42);
        for p in s.uniform_points(5.0, 6.0, 1000) {
            assert!((5.0..6.0).contains(&p));
        }
        assert!(s.uniform_points(3.0, 3.0, 10).is_empty());
        assert!(s.uniform_points(4.0, 2.0, 10).is_empty());
    }

    #[test]
    fn subsample_without_replacement() {
        let xs: Vec<u32> = (0..50).collect();
        let mut s = Sampler::from_seed(9);
        let sub = s.subsample(&xs, 20);
        assert_eq!(sub.len(), 20);
        let mut seen = sub.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 20, "duplicates in subsample");
        for v in sub {
            assert!(xs.contains(&v));
        }
    }

    #[test]
    fn subsample_larger_than_population_returns_all() {
        let xs = [1, 2, 3];
        let mut s = Sampler::from_seed(0);
        let sub = s.subsample(&xs, 10);
        assert_eq!(sub, vec![1, 2, 3]);
    }

    #[test]
    fn uniform_points_cover_range() {
        let mut s = Sampler::from_seed(11);
        let pts = s.uniform_points(0.0, 1.0, 2000);
        let below = pts.iter().filter(|p| **p < 0.5).count();
        assert!((800..1200).contains(&below), "heavily skewed: {below}");
    }
}
