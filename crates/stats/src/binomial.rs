//! The binomial distribution: PMF, CDF, and quantiles.
//!
//! Order-statistics confidence intervals (the robust method behind
//! technique L1's median test) reduce entirely to binomial quantiles, so
//! these routines are exact for the sample sizes those tests use and fall
//! back to a continuity-corrected normal approximation for very large `n`.

use crate::special::{beta_inc, ln_gamma};
use crate::{normal, Result, StatsError};

/// Threshold above which the CDF switches from the exact incomplete-beta
/// evaluation to the normal approximation. The beta evaluation is itself
/// O(1), so this is generous; the approximation only exists as a numerical
/// safety net for astronomically large `n`.
const EXACT_LIMIT: u64 = 100_000_000;

/// Validates the success probability parameter.
fn check_p(p: f64) -> Result<()> {
    if !(0.0..=1.0).contains(&p) || p.is_nan() {
        return Err(StatsError::InvalidParameter {
            name: "p",
            value: p,
        });
    }
    Ok(())
}

/// Natural log of the binomial coefficient `C(n, k)`.
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// Probability mass function `P(X = k)` for `X ~ Binomial(n, p)`.
pub fn pmf(n: u64, p: f64, k: u64) -> Result<f64> {
    check_p(p)?;
    if k > n {
        return Ok(0.0);
    }
    if p == 0.0 {
        return Ok(if k == 0 { 1.0 } else { 0.0 });
    }
    if p == 1.0 {
        return Ok(if k == n { 1.0 } else { 0.0 });
    }
    let ln = ln_choose(n, k) + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln();
    Ok(ln.exp())
}

/// Cumulative distribution function `P(X ≤ k)` for `X ~ Binomial(n, p)`.
///
/// Exact via the regularized incomplete beta identity
/// `P(X ≤ k) = I_{1−p}(n−k, k+1)`; normal approximation with continuity
/// correction beyond [`EXACT_LIMIT`].
pub fn cdf(n: u64, p: f64, k: u64) -> Result<f64> {
    check_p(p)?;
    if k >= n {
        return Ok(1.0);
    }
    if p == 0.0 {
        return Ok(1.0);
    }
    if p == 1.0 {
        return Ok(0.0); // k < n and all mass at n
    }
    if n <= EXACT_LIMIT {
        Ok(beta_inc((n - k) as f64, k as f64 + 1.0, 1.0 - p))
    } else {
        let mean = n as f64 * p;
        let sd = (n as f64 * p * (1.0 - p)).sqrt();
        Ok(normal::cdf((k as f64 + 0.5 - mean) / sd))
    }
}

/// Smallest `k` such that `P(X ≤ k) ≥ q` (the lower quantile function).
pub fn quantile(n: u64, p: f64, q: f64) -> Result<u64> {
    check_p(p)?;
    if !(0.0..=1.0).contains(&q) || q.is_nan() {
        return Err(StatsError::InvalidLevel(q));
    }
    if q <= 0.0 {
        return Ok(0);
    }
    if q >= 1.0 {
        return Ok(n);
    }
    // Bracket with the normal approximation, then binary search on the CDF.
    let mean = n as f64 * p;
    let sd = (n as f64 * p * (1.0 - p)).sqrt().max(1.0);
    let guess = (mean + normal::quantile(q)? * sd).floor();
    let mut lo = (guess - 10.0 * sd).max(0.0) as u64;
    let mut hi = ((guess + 10.0 * sd) as u64).min(n);
    // Widen brackets if the guess was off (tiny n or extreme q).
    while lo > 0 && cdf(n, p, lo)? >= q {
        lo = lo.saturating_sub((10.0 * sd) as u64 + 1);
    }
    while hi < n && cdf(n, p, hi)? < q {
        hi = (hi + (10.0 * sd) as u64 + 1).min(n);
    }
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if cdf(n, p, mid)? >= q {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Ok(lo)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmf_sums_to_one() {
        for &(n, p) in &[(1_u64, 0.5), (10, 0.3), (25, 0.77), (100, 0.01)] {
            let total: f64 = (0..=n).map(|k| pmf(n, p, k).unwrap()).sum();
            assert!((total - 1.0).abs() < 1e-10, "n={n} p={p}");
        }
    }

    #[test]
    fn pmf_fair_coin_values() {
        // Binomial(4, 0.5): 1/16, 4/16, 6/16, 4/16, 1/16
        let expect = [1.0, 4.0, 6.0, 4.0, 1.0];
        for (k, e) in expect.iter().enumerate() {
            assert!((pmf(4, 0.5, k as u64).unwrap() - e / 16.0).abs() < 1e-12);
        }
    }

    #[test]
    fn cdf_matches_pmf_sum() {
        let (n, p) = (30_u64, 0.42);
        let mut acc = 0.0;
        for k in 0..=n {
            acc += pmf(n, p, k).unwrap();
            assert!((cdf(n, p, k).unwrap() - acc).abs() < 1e-10, "k={k}");
        }
    }

    #[test]
    fn cdf_degenerate_parameters() {
        assert_eq!(cdf(10, 0.0, 0).unwrap(), 1.0);
        assert_eq!(cdf(10, 1.0, 9).unwrap(), 0.0);
        assert_eq!(cdf(10, 1.0, 10).unwrap(), 1.0);
        assert_eq!(pmf(10, 0.0, 0).unwrap(), 1.0);
        assert_eq!(pmf(10, 1.0, 10).unwrap(), 1.0);
    }

    #[test]
    fn quantile_is_cdf_inverse() {
        let (n, p) = (50_u64, 0.5);
        for &q in &[0.01, 0.025, 0.1, 0.5, 0.9, 0.975, 0.99] {
            let k = quantile(n, p, q).unwrap();
            assert!(cdf(n, p, k).unwrap() >= q);
            if k > 0 {
                assert!(cdf(n, p, k - 1).unwrap() < q);
            }
        }
    }

    #[test]
    fn quantile_order7_median_interval_level() {
        // With n = 7, P(X ≤ 0) + P(X ≥ 7) = 2·(1/2)^7 = 0.015625, so the
        // CI [x_(1), x_(7)] for the median has exactly level 0.984375 —
        // this is the 0.984 level the paper reports for its 7-day medians.
        let tail = cdf(7, 0.5, 0).unwrap() + (1.0 - cdf(7, 0.5, 6).unwrap());
        assert!((tail - 0.015_625).abs() < 1e-12);
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(pmf(5, -0.1, 2).is_err());
        assert!(pmf(5, 1.1, 2).is_err());
        assert!(cdf(5, f64::NAN, 2).is_err());
        assert!(quantile(5, 0.5, -0.2).is_err());
    }

    #[test]
    fn ln_choose_values() {
        assert!((ln_choose(5, 2) - 10.0_f64.ln()).abs() < 1e-12);
        assert!((ln_choose(10, 0)).abs() < 1e-12);
        assert_eq!(ln_choose(3, 5), f64::NEG_INFINITY);
    }

    #[test]
    fn large_n_normal_approx_is_sane() {
        // For huge n the approximation should put the median near n·p.
        let n = 200_000_000_u64;
        let k = quantile(n, 0.5, 0.5).unwrap();
        let diff = (k as i64 - (n / 2) as i64).abs();
        assert!(diff < 50_000, "median {k} too far from {}", n / 2);
    }
}
