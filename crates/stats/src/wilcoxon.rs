//! The Wilcoxon signed-rank test.
//!
//! The paper's timeout study (§4.7, Table 2) backs its median tests with a
//! "signed wilcoxon rank sum test" over the 7 paired daily differences and
//! reports p = 0.0156 whenever all 7 differences share a sign — which is
//! exactly the two-sided exact p-value `2 · (1/2)⁷ · 2⁷/2⁷`… more simply,
//! `2/2⁷ = 0.015625` for the extreme rank sum. This module reproduces that
//! exact small-sample distribution by dynamic programming, with a
//! tie-corrected normal approximation for larger samples.

use crate::{normal, Result, StatsError};
use serde::{Deserialize, Serialize};

/// Alternative hypothesis for the signed-rank test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Alternative {
    /// Median difference ≠ 0.
    TwoSided,
    /// Median difference > 0.
    Greater,
    /// Median difference < 0.
    Less,
}

/// Result of a signed-rank test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SignedRankResult {
    /// Sum of ranks of the positive differences (`W+`).
    pub w_plus: f64,
    /// Effective sample size after dropping zero differences.
    pub n_used: usize,
    /// p-value under the chosen alternative.
    pub p_value: f64,
    /// Whether the exact distribution was used (vs. normal approximation).
    pub exact: bool,
}

/// Largest `n` for which the exact null distribution is enumerated.
const EXACT_MAX_N: usize = 30;

/// Wilcoxon signed-rank test on paired differences.
///
/// Zero differences are dropped (the standard Wilcoxon treatment). Exact
/// p-values are computed when `n ≤ 30` and there are no ties in |d|;
/// otherwise a tie-corrected normal approximation with continuity
/// correction is used.
///
/// ```
/// use logdep_stats::wilcoxon::{signed_rank, Alternative};
///
/// // 7 same-sign differences: the paper's p = 0.0156 (two-sided).
/// let d = [5.4, 1.9, 9.3, 4.5, 2.0, 6.8, 5.1];
/// let r = signed_rank(&d, Alternative::TwoSided).unwrap();
/// assert!((r.p_value - 0.015625).abs() < 1e-12);
/// ```
pub fn signed_rank(diffs: &[f64], alternative: Alternative) -> Result<SignedRankResult> {
    if diffs.iter().any(|d| d.is_nan()) {
        return Err(StatsError::NanInput);
    }
    let nonzero: Vec<f64> = diffs.iter().copied().filter(|d| *d != 0.0).collect();
    let n = nonzero.len();
    if n == 0 {
        return Err(StatsError::EmptySample);
    }

    // Midranks of |d|.
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| nonzero[a].abs().total_cmp(&nonzero[b].abs()));
    let mut ranks = vec![0.0_f64; n];
    let mut ties: Vec<usize> = Vec::new();
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && nonzero[idx[j + 1]].abs() == nonzero[idx[i]].abs() {
            j += 1;
        }
        let avg_rank = (i + j + 2) as f64 / 2.0; // 1-based midrank
        for &k in &idx[i..=j] {
            ranks[k] = avg_rank;
        }
        if j > i {
            ties.push(j - i + 1);
        }
        i = j + 1;
    }

    let w_plus: f64 = (0..n).filter(|&i| nonzero[i] > 0.0).map(|i| ranks[i]).sum();

    let has_ties = !ties.is_empty();
    let (p_value, exact) = if n <= EXACT_MAX_N && !has_ties {
        (exact_p(w_plus as u64, n, alternative), true)
    } else {
        (approx_p(w_plus, n, &ties, alternative)?, false)
    };

    Ok(SignedRankResult {
        w_plus,
        n_used: n,
        p_value,
        exact,
    })
}

/// Exact null distribution of `W+` by subset-sum dynamic programming:
/// counts of subsets of {1..n} with each possible rank sum.
fn exact_p(w: u64, n: usize, alternative: Alternative) -> f64 {
    let max_sum = n * (n + 1) / 2;
    let mut counts = vec![0.0_f64; max_sum + 1];
    counts[0] = 1.0;
    for r in 1..=n {
        for s in (r..=max_sum).rev() {
            counts[s] += counts[s - r];
        }
    }
    let total = 2.0_f64.powi(n as i32);
    let cdf_at =
        |k: u64| -> f64 { counts[..=(k as usize).min(max_sum)].iter().sum::<f64>() / total };
    let p_le = cdf_at(w);
    let p_ge = 1.0 - if w == 0 { 0.0 } else { cdf_at(w - 1) };
    match alternative {
        Alternative::Greater => p_ge,
        Alternative::Less => p_le,
        Alternative::TwoSided => (2.0 * p_le.min(p_ge)).min(1.0),
    }
}

/// Normal approximation with tie correction and continuity correction.
fn approx_p(w: f64, n: usize, ties: &[usize], alternative: Alternative) -> Result<f64> {
    let nf = n as f64;
    let mean = nf * (nf + 1.0) / 4.0;
    let tie_term: f64 = ties.iter().map(|&t| (t * t * t - t) as f64).sum();
    let var = nf * (nf + 1.0) * (2.0 * nf + 1.0) / 24.0 - tie_term / 48.0;
    if var <= 0.0 {
        return Err(StatsError::InvalidParameter {
            name: "variance",
            value: var,
        });
    }
    let sd = var.sqrt();
    let z_upper = (w - mean - 0.5) / sd; // for P(W ≥ w)
    let z_lower = (w - mean + 0.5) / sd; // for P(W ≤ w)
    Ok(match alternative {
        Alternative::Greater => normal::sf(z_upper),
        Alternative::Less => normal::cdf(z_lower),
        Alternative::TwoSided => (2.0 * normal::sf(z_upper).min(normal::cdf(z_lower))).min(1.0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_positive_n7_matches_paper() {
        // Whenever all 7 paired differences share a sign, the exact
        // two-sided p is 2/2⁷ = 0.015625 — the value quoted in §4.7.
        let d = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        let r = signed_rank(&d, Alternative::TwoSided).unwrap();
        assert_eq!(r.w_plus, 28.0);
        assert!(r.exact);
        assert!((r.p_value - 0.015_625).abs() < 1e-12);

        let neg: Vec<f64> = d.iter().map(|x| -x).collect();
        let r = signed_rank(&neg, Alternative::TwoSided).unwrap();
        assert!((r.p_value - 0.015_625).abs() < 1e-12);
    }

    #[test]
    fn one_sided_extreme_n7() {
        let d = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        let r = signed_rank(&d, Alternative::Greater).unwrap();
        assert!((r.p_value - 1.0 / 128.0).abs() < 1e-12);
        let r = signed_rank(&d, Alternative::Less).unwrap();
        assert!((r.p_value - 1.0).abs() < 1e-12);
    }

    #[test]
    fn symmetric_data_is_insignificant() {
        let d = [1.0, -1.5, 2.0, -2.5, 3.0, -3.5, 4.0, -4.5];
        let r = signed_rank(&d, Alternative::TwoSided).unwrap();
        assert!(r.p_value > 0.5);
    }

    #[test]
    fn zero_differences_dropped() {
        let d = [0.0, 0.0, 1.0, 2.0, 3.0];
        let r = signed_rank(&d, Alternative::TwoSided).unwrap();
        assert_eq!(r.n_used, 3);
        // All positive, n = 3: two-sided exact p = 2/8 = 0.25.
        assert!((r.p_value - 0.25).abs() < 1e-12);
    }

    #[test]
    fn all_zero_is_error() {
        assert!(signed_rank(&[0.0, 0.0], Alternative::TwoSided).is_err());
        assert!(signed_rank(&[], Alternative::TwoSided).is_err());
        assert!(signed_rank(&[1.0, f64::NAN], Alternative::TwoSided).is_err());
    }

    #[test]
    fn exact_distribution_n5_reference() {
        // For n = 5, P(W+ ≥ 15) = 1/32, P(W+ ≥ 14) = 2/32, P(W+ ≥ 13) = 3/32.
        let d = [1.0, 2.0, 3.0, 4.0, 5.0];
        let r = signed_rank(&d, Alternative::Greater).unwrap();
        assert!((r.p_value - 1.0 / 32.0).abs() < 1e-12);

        // Flip the smallest difference: W+ = 14.
        let d = [-1.0, 2.0, 3.0, 4.0, 5.0];
        let r = signed_rank(&d, Alternative::Greater).unwrap();
        assert_eq!(r.w_plus, 14.0);
        assert!((r.p_value - 2.0 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn ties_fall_back_to_normal_approximation() {
        let d = [1.0, 1.0, 2.0, -2.0, 3.0, 4.0, 5.0, 6.0];
        let r = signed_rank(&d, Alternative::TwoSided).unwrap();
        assert!(!r.exact);
        assert!(r.p_value > 0.0 && r.p_value < 1.0);
    }

    #[test]
    fn large_sample_uses_approximation_and_is_sane() {
        // 40 clearly positive differences: p must be tiny.
        let d: Vec<f64> = (1..=40).map(|i| i as f64 / 10.0 + 0.05).collect();
        let r = signed_rank(&d, Alternative::TwoSided).unwrap();
        assert!(!r.exact);
        assert!(r.p_value < 1e-6);
    }

    #[test]
    fn approx_agrees_with_exact_mid_range() {
        // Compare exact and approximate p on an n = 20 sample with a
        // moderate W+; they should agree to a couple of percent.
        let mut d: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        for item in d.iter_mut().take(8) {
            *item = -*item;
        }
        let exact = signed_rank(&d, Alternative::TwoSided).unwrap();
        assert!(exact.exact);
        let ties = [];
        let approx = approx_p(exact.w_plus, 20, &ties, Alternative::TwoSided).unwrap();
        assert!(
            (exact.p_value - approx).abs() < 0.03,
            "exact {} vs approx {approx}",
            exact.p_value
        );
    }
}
