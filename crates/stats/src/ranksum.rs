//! The Mann–Whitney U / Wilcoxon rank-sum test.
//!
//! A distribution-free two-sample location test. In this workspace it
//! serves as an *alternative decision rule* for technique L1: instead
//! of requiring complete separation of the two median confidence
//! intervals (the paper's rule), one can rank-sum-test `S_b` against
//! `S_r` directly. The CI-separation rule is the more conservative of
//! the two; the ablation binaries compare them.

use crate::{normal, Result, StatsError};
use serde::{Deserialize, Serialize};

/// Alternative hypothesis for the rank-sum test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RankSumAlternative {
    /// The first sample is stochastically smaller.
    Less,
    /// The first sample is stochastically greater.
    Greater,
    /// Either direction.
    TwoSided,
}

/// Result of a Mann–Whitney test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RankSumResult {
    /// The U statistic of the first sample.
    pub u: f64,
    /// Normal-approximation z score (tie-corrected).
    pub z: f64,
    /// p-value under the chosen alternative.
    pub p_value: f64,
}

/// Minimum per-sample size for the normal approximation to be sound.
const MIN_N: usize = 8;

/// Mann–Whitney U test of `xs` against `ys` with midrank tie handling
/// and a tie-corrected normal approximation (both samples must have at
/// least 8 observations — the regime L1 uses it in).
pub fn rank_sum(xs: &[f64], ys: &[f64], alternative: RankSumAlternative) -> Result<RankSumResult> {
    if xs.iter().chain(ys).any(|v| v.is_nan()) {
        return Err(StatsError::NanInput);
    }
    let (n1, n2) = (xs.len(), ys.len());
    if n1 < MIN_N || n2 < MIN_N {
        return Err(StatsError::SampleTooSmall {
            required: MIN_N,
            actual: n1.min(n2),
        });
    }

    // Pool, sort, midrank.
    let mut pooled: Vec<(f64, bool)> = xs
        .iter()
        .map(|&v| (v, true))
        .chain(ys.iter().map(|&v| (v, false)))
        .collect();
    pooled.sort_by(|a, b| a.0.total_cmp(&b.0));
    let n = pooled.len();
    let mut rank_sum_x = 0.0_f64;
    let mut tie_term = 0.0_f64;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && pooled[j + 1].0 == pooled[i].0 {
            j += 1;
        }
        let midrank = (i + j + 2) as f64 / 2.0;
        let t = (j - i + 1) as f64;
        if t > 1.0 {
            tie_term += t * t * t - t;
        }
        for item in &pooled[i..=j] {
            if item.1 {
                rank_sum_x += midrank;
            }
        }
        i = j + 1;
    }

    let n1f = n1 as f64;
    let n2f = n2 as f64;
    let u = rank_sum_x - n1f * (n1f + 1.0) / 2.0;
    let mean = n1f * n2f / 2.0;
    let nf = n as f64;
    let var = n1f * n2f / 12.0 * ((nf + 1.0) - tie_term / (nf * (nf - 1.0)));
    if var <= 0.0 {
        return Err(StatsError::InvalidParameter {
            name: "variance (all values tied)",
            value: var,
        });
    }
    let sd = var.sqrt();
    // Continuity correction toward the mean.
    let cc = if u > mean {
        -0.5
    } else if u < mean {
        0.5
    } else {
        0.0
    };
    let z = (u - mean + cc) / sd;
    let p_value = match alternative {
        RankSumAlternative::Less => normal::cdf(z),
        RankSumAlternative::Greater => normal::sf(z),
        RankSumAlternative::TwoSided => (2.0 * normal::cdf(z).min(normal::sf(z))).min(1.0),
    };
    Ok(RankSumResult { u, z, p_value })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clearly_shifted_samples() {
        let xs: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let ys: Vec<f64> = (0..30).map(|i| i as f64 + 100.0).collect();
        let r = rank_sum(&xs, &ys, RankSumAlternative::Less).unwrap();
        assert!(r.p_value < 1e-9, "p = {}", r.p_value);
        assert_eq!(r.u, 0.0, "no x exceeds any y");
        let r = rank_sum(&xs, &ys, RankSumAlternative::Greater).unwrap();
        assert!(r.p_value > 0.999);
    }

    #[test]
    fn identical_distributions_are_insignificant() {
        let xs: Vec<f64> = (0..40).map(|i| (i * 7 % 40) as f64).collect();
        let ys: Vec<f64> = (0..40).map(|i| (i * 11 % 40) as f64 + 0.5).collect();
        let r = rank_sum(&xs, &ys, RankSumAlternative::TwoSided).unwrap();
        assert!(r.p_value > 0.2, "p = {}", r.p_value);
    }

    #[test]
    fn u_statistic_reference() {
        // Hand-checked: xs = [1,2,3,4,5,6,7,8], ys = [5.5,6.5,...,12.5]:
        // x values below all ys except x∈{6,7,8} overlap region.
        let xs: Vec<f64> = (1..=8).map(f64::from).collect();
        let ys: Vec<f64> = (0..8).map(|i| 5.5 + i as f64).collect();
        let r = rank_sum(&xs, &ys, RankSumAlternative::Less).unwrap();
        // U = #(x > y) pairs: x=6 beats 5.5 → 1; x=7 beats 5.5,6.5 → 2;
        // x=8 beats 5.5,6.5,7.5 → 3; total 6.
        assert_eq!(r.u, 6.0);
        assert!(r.p_value < 0.01);
    }

    #[test]
    fn symmetry_of_two_sided_p() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let ys: Vec<f64> = (0..20).map(|i| i as f64 + 5.0).collect();
        let a = rank_sum(&xs, &ys, RankSumAlternative::TwoSided).unwrap();
        let b = rank_sum(&ys, &xs, RankSumAlternative::TwoSided).unwrap();
        assert!((a.p_value - b.p_value).abs() < 1e-9);
    }

    #[test]
    fn ties_are_handled() {
        let xs = vec![1.0; 10]
            .into_iter()
            .chain(vec![2.0; 5])
            .collect::<Vec<_>>();
        let ys = vec![2.0; 10]
            .into_iter()
            .chain(vec![3.0; 5])
            .collect::<Vec<_>>();
        let r = rank_sum(&xs, &ys, RankSumAlternative::Less).unwrap();
        assert!(r.p_value < 0.01);
    }

    #[test]
    fn error_cases() {
        let small = vec![1.0; 3];
        let ok = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        assert!(rank_sum(&small, &ok, RankSumAlternative::TwoSided).is_err());
        assert!(rank_sum(&ok, &[f64::NAN; 8], RankSumAlternative::TwoSided).is_err());
        // All values identical → zero variance.
        let tied = vec![5.0; 10];
        assert!(rank_sum(&tied, &tied, RankSumAlternative::TwoSided).is_err());
    }
}
