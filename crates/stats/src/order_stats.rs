//! Distribution-free confidence intervals for quantiles by order
//! statistics.
//!
//! This is the "robust order statistics method" (Le Boudec, *Performance
//! Evaluation of Computer and Communication Systems*) the paper uses
//! everywhere: for technique L1's median-distance test, for the 0.984-level
//! cross-day intervals of Figures 5/6/8, and for the 0.98-level intervals
//! of Table 2. The only hypothesis is that observations are independent;
//! no distributional shape is assumed.
//!
//! For a sample of size `n` sorted ascending and a target quantile `q`,
//! the interval `[x_(j), x_(k)]` (1-based ranks) covers the true quantile
//! with probability `P(j ≤ B ≤ k − 1)` where `B ~ Binomial(n, q)`. We pick
//! the symmetric-tail ranks: the largest `j` with `P(B < j) ≤ α/2` and the
//! smallest `k` with `P(B ≥ k) ≤ α/2`.

use crate::{binomial, error::check_level, error::check_no_nan, Result, StatsError};

/// A confidence interval for a quantile, with the ranks that produced it
/// and the coverage actually achieved.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantileCi {
    /// Lower interval bound, `x_(lower_rank)`.
    pub lower: f64,
    /// Upper interval bound, `x_(upper_rank)`.
    pub upper: f64,
    /// 1-based rank of the lower bound in the sorted sample.
    pub lower_rank: usize,
    /// 1-based rank of the upper bound in the sorted sample.
    pub upper_rank: usize,
    /// Exact coverage probability of `[lower, upper]`.
    ///
    /// At least the requested level whenever the sample is large enough;
    /// otherwise the widest possible interval `[x_(1), x_(n)]` is returned
    /// and this field reports its (smaller) true coverage. Callers that
    /// need a guaranteed level must check this field.
    pub achieved_level: f64,
    /// Point estimate of the quantile (interpolated, type-7).
    pub point: f64,
}

/// Confidence interval for the `q`-quantile of `sample` at the given
/// two-sided confidence `level`.
///
/// The sample is copied and sorted; see [`quantile_ci_sorted`] to avoid
/// the copy when the data is already ordered.
pub fn quantile_ci(sample: &[f64], q: f64, level: f64) -> Result<QuantileCi> {
    check_no_nan(sample)?;
    let mut sorted = sample.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    quantile_ci_sorted(&sorted, q, level)
}

/// [`quantile_ci`] over data that is already sorted ascending.
///
/// Returns an error if the sample is empty, contains NaN, or is not
/// sorted.
pub fn quantile_ci_sorted(sorted: &[f64], q: f64, level: f64) -> Result<QuantileCi> {
    check_no_nan(sorted)?;
    check_level(level)?;
    if !(q > 0.0 && q < 1.0) {
        return Err(StatsError::InvalidLevel(q));
    }
    let n = sorted.len();
    if n == 0 {
        return Err(StatsError::EmptySample);
    }
    if sorted.windows(2).any(|w| w[0] > w[1]) {
        return Err(StatsError::InvalidParameter {
            name: "sorted (input not ascending)",
            value: f64::NAN,
        });
    }

    let alpha = 1.0 - level;
    let nn = n as u64;

    // Largest rank j in 1..=n with P(B ≤ j−1) ≤ α/2 (falling back to 1 when
    // even P(B = 0) exceeds the tail budget). binomial::quantile gives a
    // starting hint; a short local walk finds the exact boundary.
    // Rank j is admissible when CDF(j−1) ≤ α/2: walk down while the
    // current j is inadmissible, then up while the next j is still fine.
    let mut j = binomial::quantile(nn, q, alpha / 2.0)?.clamp(0, nn - 1) + 1;
    while j > 1 && binomial::cdf(nn, q, j - 1)? > alpha / 2.0 {
        j -= 1;
    }
    while j < nn && binomial::cdf(nn, q, j)? <= alpha / 2.0 {
        j += 1;
    }

    // Smallest rank k in 1..=n with P(B ≥ k) ≤ α/2, i.e. CDF(k−1) ≥ 1−α/2
    // (falling back to n when unreachable).
    let mut k = binomial::quantile(nn, q, 1.0 - alpha / 2.0)?.clamp(0, nn - 1) + 1;
    while k < nn && binomial::cdf(nn, q, k - 1)? < 1.0 - alpha / 2.0 {
        k += 1;
    }
    while k > 1 && binomial::cdf(nn, q, k - 2)? >= 1.0 - alpha / 2.0 {
        k -= 1;
    }

    let (j, k) = if j <= k { (j, k) } else { (1, nn) };
    // Exact coverage of [x_(j), x_(k)]: with B ~ Binomial(n, q) counting
    // observations below the true quantile, X_(j) ≤ x_q ⇔ B ≥ j and
    // x_q ≤ X_(k) ⇔ B ≤ k−1, so coverage = P(j ≤ B ≤ k−1).
    let achieved = binomial::cdf(nn, q, k - 1)? - binomial::cdf(nn, q, j - 1)?;

    Ok(QuantileCi {
        lower: sorted[(j - 1) as usize],
        upper: sorted[(k - 1) as usize],
        lower_rank: j as usize,
        upper_rank: k as usize,
        achieved_level: achieved,
        point: interpolated_quantile(sorted, q),
    })
}

/// Confidence interval for the median at the given level.
pub fn median_ci(sample: &[f64], level: f64) -> Result<QuantileCi> {
    quantile_ci(sample, 0.5, level)
}

/// [`median_ci`] over already-sorted data.
pub fn median_ci_sorted(sorted: &[f64], level: f64) -> Result<QuantileCi> {
    quantile_ci_sorted(sorted, 0.5, level)
}

/// Type-7 (linear interpolation) quantile point estimate of sorted data.
pub(crate) fn interpolated_quantile(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let h = (n as f64 - 1.0) * q;
    let lo = h.floor() as usize;
    let hi = (lo + 1).min(n - 1);
    sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_ci_n7_is_min_max_at_0984() {
        // The paper's 0.984-level CI across 7 daily values is [min, max].
        let days = [0.66, 0.63, 0.73, 0.70, 0.68, 0.71, 0.65];
        let ci = median_ci(&days, 0.984).unwrap();
        assert_eq!(ci.lower, 0.63);
        assert_eq!(ci.upper, 0.73);
        assert_eq!((ci.lower_rank, ci.upper_rank), (1, 7));
        assert!((ci.achieved_level - 0.984_375).abs() < 1e-12);
    }

    #[test]
    fn median_ci_known_ranks_n100() {
        // Classical result: for n = 100 at 95 %, ranks are 40 and 61.
        let sorted: Vec<f64> = (1..=100).map(f64::from).collect();
        let ci = median_ci_sorted(&sorted, 0.95).unwrap();
        assert_eq!((ci.lower_rank, ci.upper_rank), (40, 61));
        assert!(ci.achieved_level >= 0.95);
        assert_eq!(ci.lower, 40.0);
        assert_eq!(ci.upper, 61.0);
    }

    #[test]
    fn coverage_meets_level_when_achievable() {
        for n in [10usize, 25, 47, 99, 500] {
            let sorted: Vec<f64> = (0..n).map(|i| i as f64).collect();
            for &level in &[0.9, 0.95, 0.99] {
                let ci = median_ci_sorted(&sorted, level).unwrap();
                assert!(
                    ci.achieved_level >= level - 1e-12,
                    "n={n} level={level} achieved={}",
                    ci.achieved_level
                );
                assert!(ci.lower <= ci.point && ci.point <= ci.upper);
            }
        }
    }

    #[test]
    fn tiny_sample_returns_widest_interval() {
        let ci = median_ci(&[1.0, 2.0, 3.0], 0.99).unwrap();
        assert_eq!((ci.lower, ci.upper), (1.0, 3.0));
        // Widest achievable coverage for n = 3 is 1 − 2·(1/2)³ = 0.75.
        assert!((ci.achieved_level - 0.75).abs() < 1e-12);
        assert!(ci.achieved_level < 0.99);
    }

    #[test]
    fn nonmedian_quantile_ci() {
        let sorted: Vec<f64> = (1..=200).map(f64::from).collect();
        let ci = quantile_ci_sorted(&sorted, 0.9, 0.95).unwrap();
        // The 0.9-quantile of 1..=200 is ~180; interval must straddle it.
        assert!(ci.lower <= 180.0 && 180.0 <= ci.upper);
        assert!(ci.achieved_level >= 0.95);
        // Interval should be in the right region of the sample, not central.
        assert!(ci.lower_rank > 160 && ci.upper_rank <= 200);
    }

    #[test]
    fn unsorted_input_detected() {
        assert!(quantile_ci_sorted(&[3.0, 1.0, 2.0], 0.5, 0.95).is_err());
    }

    #[test]
    fn error_paths() {
        assert!(median_ci(&[], 0.95).is_err());
        assert!(median_ci(&[1.0, f64::NAN], 0.95).is_err());
        assert!(median_ci(&[1.0, 2.0], 0.0).is_err());
        assert!(median_ci(&[1.0, 2.0], 1.0).is_err());
        assert!(quantile_ci(&[1.0, 2.0], 0.0, 0.95).is_err());
        assert!(quantile_ci(&[1.0, 2.0], 1.0, 0.95).is_err());
    }

    #[test]
    fn point_estimate_is_type7_median() {
        let ci = median_ci(&[4.0, 1.0, 3.0, 2.0], 0.5).unwrap();
        assert_eq!(ci.point, 2.5);
        let ci = median_ci(&[5.0, 1.0, 3.0], 0.5).unwrap();
        assert_eq!(ci.point, 3.0);
    }

    #[test]
    fn monte_carlo_coverage_median() {
        // Empirical check: the CI should cover the true median (0.5 for
        // U(0,1)) at least `level` of the time. Deterministic LCG sampling.
        let mut state = 0x1234_5678_9abc_def0_u64;
        let mut uniform = || {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        let trials = 400;
        let n = 61;
        let level = 0.95;
        let mut covered = 0;
        for _ in 0..trials {
            let mut xs: Vec<f64> = (0..n).map(|_| uniform()).collect();
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let ci = median_ci_sorted(&xs, level).unwrap();
            if ci.lower <= 0.5 && 0.5 <= ci.upper {
                covered += 1;
            }
        }
        let rate = covered as f64 / trials as f64;
        assert!(rate > 0.91, "coverage too low: {rate}");
    }
}
