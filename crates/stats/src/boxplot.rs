//! Box-plot summaries with median confidence intervals.
//!
//! Figure 2 of the paper displays, for each distance sample, a box plot
//! annotated with the median (dashed), the 95 %-level median CI (solid)
//! and the 99 %-level median CI (dotted). [`BoxplotSummary`] captures
//! exactly those ingredients so a plotting front end — or the bench
//! binaries' ASCII renderer — can reproduce the figure.

use crate::{descriptive, error::check_no_nan, order_stats, Result, StatsError};
use serde::{Deserialize, Serialize};

/// Five-number summary plus median confidence intervals at two levels.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoxplotSummary {
    /// Smallest observation.
    pub min: f64,
    /// Lower quartile (type-7).
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Upper quartile (type-7).
    pub q3: f64,
    /// Largest observation.
    pub max: f64,
    /// Median CI at the primary level (the paper's 95 %).
    pub median_ci_primary: (f64, f64),
    /// Median CI at the secondary level (the paper's 99 %).
    pub median_ci_secondary: (f64, f64),
    /// Number of observations summarized.
    pub n: usize,
}

impl BoxplotSummary {
    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

/// Computes a [`BoxplotSummary`] with median CIs at the two given levels.
pub fn summarize(xs: &[f64], primary_level: f64, secondary_level: f64) -> Result<BoxplotSummary> {
    check_no_nan(xs)?;
    if xs.is_empty() {
        return Err(StatsError::EmptySample);
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let ci1 = order_stats::median_ci_sorted(&sorted, primary_level)?;
    let ci2 = order_stats::median_ci_sorted(&sorted, secondary_level)?;
    Ok(BoxplotSummary {
        min: sorted[0],
        q1: descriptive::quantile_sorted_unchecked(&sorted, 0.25),
        median: descriptive::quantile_sorted_unchecked(&sorted, 0.5),
        q3: descriptive::quantile_sorted_unchecked(&sorted, 0.75),
        max: sorted[sorted.len() - 1],
        median_ci_primary: (ci1.lower, ci1.upper),
        median_ci_secondary: (ci2.lower, ci2.upper),
        n: xs.len(),
    })
}

/// Convenience wrapper using the paper's levels (0.95 and 0.99).
pub fn summarize_paper_levels(xs: &[f64]) -> Result<BoxplotSummary> {
    summarize(xs, 0.95, 0.99)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_numbers_in_order() {
        let xs: Vec<f64> = (1..=101).map(f64::from).collect();
        let s = summarize_paper_levels(&xs).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.q1, 26.0);
        assert_eq!(s.median, 51.0);
        assert_eq!(s.q3, 76.0);
        assert_eq!(s.max, 101.0);
        assert_eq!(s.n, 101);
        assert_eq!(s.iqr(), 50.0);
        assert!(s.min <= s.q1 && s.q1 <= s.median && s.median <= s.q3 && s.q3 <= s.max);
    }

    #[test]
    fn wider_level_gives_wider_or_equal_ci() {
        let xs: Vec<f64> = (0..60).map(|i| (i as f64 * 0.37).sin() * 10.0).collect();
        let s = summarize_paper_levels(&xs).unwrap();
        assert!(s.median_ci_secondary.0 <= s.median_ci_primary.0);
        assert!(s.median_ci_secondary.1 >= s.median_ci_primary.1);
        assert!(s.median_ci_primary.0 <= s.median && s.median <= s.median_ci_primary.1);
    }

    #[test]
    fn single_observation() {
        let s = summarize(&[42.0], 0.95, 0.99).unwrap();
        assert_eq!(s.min, 42.0);
        assert_eq!(s.max, 42.0);
        assert_eq!(s.median, 42.0);
        assert_eq!(s.median_ci_primary, (42.0, 42.0));
    }

    #[test]
    fn error_on_empty_and_nan() {
        assert!(summarize(&[], 0.95, 0.99).is_err());
        assert!(summarize(&[1.0, f64::NAN], 0.95, 0.99).is_err());
    }
}
