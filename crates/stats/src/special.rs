//! Special functions: log-gamma, regularized incomplete gamma and beta,
//! and the error function.
//!
//! These are the primitives behind every distribution in this crate.
//! Implementations follow the classical Lanczos / continued-fraction
//! formulations and are accurate to roughly 1e-12 over the parameter
//! ranges exercised by the mining pipeline (degrees of freedom up to a few
//! thousand, sample sizes up to millions via the normal approximations).

/// Lanczos coefficients (g = 7, n = 9), double precision.
const LANCZOS_G: f64 = 7.0;
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural logarithm of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation with reflection for `x < 0.5`.
///
/// ```
/// use logdep_stats::special::ln_gamma;
/// assert!((ln_gamma(1.0)).abs() < 1e-12);           // Γ(1) = 1
/// assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10); // Γ(5) = 24
/// ```
pub fn ln_gamma(x: f64) -> f64 {
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1−x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut a = LANCZOS[0];
        let t = x + LANCZOS_G + 0.5;
        for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
    }
}

/// Maximum iterations for series / continued-fraction evaluation.
const MAX_ITER: usize = 500;
/// Relative accuracy target.
const EPS: f64 = 3.0e-14;
/// Number near the smallest representable double, guards CF denominators.
const FPMIN: f64 = 1.0e-300;

/// Regularized lower incomplete gamma function `P(a, x) = γ(a, x) / Γ(a)`.
///
/// `P(a, 0) = 0` and `P(a, ∞) = 1`. Chooses between the series expansion
/// (for `x < a + 1`) and the continued fraction for the complement.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_p requires a > 0, x >= 0");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 − P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_q requires a > 0, x >= 0");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

/// Series representation of `P(a, x)`, best for `x < a + 1`.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let gln = ln_gamma(a);
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - gln).exp()
}

/// Continued-fraction representation of `Q(a, x)`, best for `x >= a + 1`.
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    let gln = ln_gamma(a);
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    (-x + a * x.ln() - gln).exp() * h
}

/// Regularized incomplete beta function `I_x(a, b)`.
///
/// `I_0 = 0`, `I_1 = 1`; used for the Student-t and binomial CDFs.
pub fn beta_inc(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "beta_inc requires a, b > 0");
    assert!((0.0..=1.0).contains(&x), "beta_inc requires 0 <= x <= 1");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // Use the continued fraction in the regime where it converges fast.
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Lentz continued fraction for the incomplete beta function.
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Error function `erf(x)`, accurate to ~1e-12, via the incomplete gamma
/// relation `erf(x) = P(1/2, x²)` for `x ≥ 0` and oddness for `x < 0`.
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        0.0
    } else if x > 0.0 {
        gamma_p(0.5, x * x)
    } else {
        -gamma_p(0.5, x * x)
    }
}

/// Complementary error function `erfc(x) = 1 − erf(x)`, computed without
/// cancellation for large positive `x`.
pub fn erfc(x: f64) -> f64 {
    if x >= 0.0 {
        gamma_q(0.5, x * x)
    } else {
        1.0 + gamma_p(0.5, x * x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + b.abs())
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        let mut fact = 1.0_f64;
        for n in 1..20_u32 {
            // Γ(n) = (n-1)!
            assert!(close(ln_gamma(n as f64), fact.ln(), 1e-11), "n = {n}");
            fact *= n as f64;
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π
        assert!(close(
            ln_gamma(0.5),
            std::f64::consts::PI.sqrt().ln(),
            1e-12
        ));
        // Γ(3/2) = √π / 2
        assert!(close(
            ln_gamma(1.5),
            (std::f64::consts::PI.sqrt() / 2.0).ln(),
            1e-12
        ));
    }

    #[test]
    fn gamma_p_q_complement() {
        for &a in &[0.3, 1.0, 2.5, 10.0, 100.0] {
            for &x in &[0.1, 0.5, 1.0, 2.0, 5.0, 50.0, 150.0] {
                let p = gamma_p(a, x);
                let q = gamma_q(a, x);
                assert!(close(p + q, 1.0, 1e-11), "a={a} x={x}");
                assert!((0.0..=1.0).contains(&p));
            }
        }
    }

    #[test]
    fn gamma_p_exponential_special_case() {
        // P(1, x) = 1 − e^{−x}
        for &x in &[0.1, 1.0, 3.0, 10.0] {
            assert!(close(gamma_p(1.0, x), 1.0 - (-x).exp(), 1e-12));
        }
    }

    #[test]
    fn erf_reference_values() {
        // Abramowitz & Stegun table values.
        assert!(close(erf(0.5), 0.520_499_877_8, 1e-9));
        assert!(close(erf(1.0), 0.842_700_792_9, 1e-9));
        assert!(close(erf(2.0), 0.995_322_265_0, 1e-9));
        assert!(close(erf(-1.0), -0.842_700_792_9, 1e-9));
        assert_eq!(erf(0.0), 0.0);
    }

    #[test]
    fn erfc_large_x_no_underflow_to_garbage() {
        let v = erfc(6.0);
        assert!(v > 0.0 && v < 1e-15);
        assert!(close(erfc(1.0), 1.0 - 0.842_700_792_9, 1e-9));
    }

    #[test]
    fn beta_inc_boundaries_and_symmetry() {
        assert_eq!(beta_inc(2.0, 3.0, 0.0), 0.0);
        assert_eq!(beta_inc(2.0, 3.0, 1.0), 1.0);
        // I_x(a, b) = 1 − I_{1−x}(b, a)
        for &(a, b, x) in &[(2.0, 3.0, 0.3), (0.5, 0.5, 0.7), (10.0, 1.0, 0.9)] {
            assert!(close(
                beta_inc(a, b, x),
                1.0 - beta_inc(b, a, 1.0 - x),
                1e-11
            ));
        }
    }

    #[test]
    fn beta_inc_uniform_special_case() {
        // I_x(1, 1) = x
        for &x in &[0.1, 0.25, 0.5, 0.99] {
            assert!(close(beta_inc(1.0, 1.0, x), x, 1e-12));
        }
    }

    #[test]
    fn beta_inc_monotone_in_x() {
        let mut prev = 0.0;
        for i in 1..100 {
            let x = i as f64 / 100.0;
            let v = beta_inc(3.5, 2.25, x);
            assert!(v >= prev, "not monotone at x={x}");
            prev = v;
        }
    }
}
