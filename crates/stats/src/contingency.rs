//! 2×2 contingency tables and association tests.
//!
//! Technique L2 classifies every bigram of immediately succeeding logs
//! into a 2×2 table per ordered source pair `(A, B)`:
//!
//! |            | `a = A` | `a ≠ A` |
//! |------------|---------|---------|
//! | **`b = B`**  | `o11`   | `o12`   |
//! | **`b ≠ B`**  | `o21`   | `o22`   |
//!
//! and then tests for association. The paper follows Dunning (1993) in
//! preferring the log-likelihood ratio statistic G² over Pearson's X²
//! because G² keeps its asymptotic χ²₁ calibration on the heavily skewed
//! tables that bigram data produces (most mass in `o22`). Both statistics
//! are provided so the choice can be ablated.

use crate::{chi2, Result, StatsError};
use serde::{Deserialize, Serialize};

/// A 2×2 contingency table of observed counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Table2x2 {
    /// Joint count: first component matches A and second matches B.
    pub o11: u64,
    /// Second matches B, first does not match A.
    pub o12: u64,
    /// First matches A, second does not match B.
    pub o21: u64,
    /// Neither matches.
    pub o22: u64,
}

impl Table2x2 {
    /// Builds a table from the four observed cells.
    pub fn new(o11: u64, o12: u64, o21: u64, o22: u64) -> Self {
        Self { o11, o12, o21, o22 }
    }

    /// Builds a table from marginal form: joint count `f`, first-margin
    /// count `f1 = #(a = A)`, second-margin count `f2 = #(b = B)`, and
    /// total `n` — the `(f, f1, f2, N)` notation of Evert's UCS toolkit.
    ///
    /// Returns an error unless `f ≤ f1, f ≤ f2` and `f1 + f2 − f ≤ n`
    /// (including when `f1 + f2` would overflow `u64`).
    pub fn from_marginals(f: u64, f1: u64, f2: u64, n: u64) -> Result<Self> {
        let invalid = || StatsError::InvalidParameter {
            name: "marginals",
            value: f as f64,
        };
        if f > f1 || f > f2 {
            return Err(invalid());
        }
        // `f ≤ f1` makes the subtraction safe once the addition checks out.
        let union = f1.checked_add(f2).map(|s| s - f).ok_or_else(invalid)?;
        if union > n {
            return Err(invalid());
        }
        Ok(Self {
            o11: f,
            o12: f2 - f,
            o21: f1 - f,
            o22: n - union,
        })
    }

    /// Total number of observations (saturating: tables near `u64::MAX`
    /// clamp rather than overflow).
    pub fn n(&self) -> u64 {
        self.o11
            .saturating_add(self.o12)
            .saturating_add(self.o21)
            .saturating_add(self.o22)
    }

    /// Row sums `(o11 + o12, o21 + o22)` — the `b = B` / `b ≠ B` margins
    /// (saturating, like [`Table2x2::n`]).
    pub fn row_sums(&self) -> (u64, u64) {
        (
            self.o11.saturating_add(self.o12),
            self.o21.saturating_add(self.o22),
        )
    }

    /// Column sums `(o11 + o21, o12 + o22)` — the `a = A` / `a ≠ A` margins
    /// (saturating, like [`Table2x2::n`]).
    pub fn col_sums(&self) -> (u64, u64) {
        (
            self.o11.saturating_add(self.o21),
            self.o12.saturating_add(self.o22),
        )
    }

    /// Expected counts under independence, `E_ij = R_i · C_j / N`.
    ///
    /// Errors on a zero row or column margin, where independence expected
    /// counts (and hence every association statistic) are undefined.
    pub fn expected(&self) -> Result<[f64; 4]> {
        let n = self.n();
        let (r1, r2) = self.row_sums();
        let (c1, c2) = self.col_sums();
        if n == 0 || r1 == 0 || r2 == 0 || c1 == 0 || c2 == 0 {
            return Err(StatsError::DegenerateTable);
        }
        let n = n as f64;
        Ok([
            r1 as f64 * c1 as f64 / n,
            r1 as f64 * c2 as f64 / n,
            r2 as f64 * c1 as f64 / n,
            r2 as f64 * c2 as f64 / n,
        ])
    }

    /// True when the joint cell exceeds its independence expectation —
    /// the *positive association* gate that turns the two-sided χ² test
    /// into the one-sided test L2 needs (we only care about sources that
    /// co-occur *more* than chance).
    pub fn positively_associated(&self) -> Result<bool> {
        Ok(self.o11 as f64 > self.expected()?[0])
    }

    /// Dunning's log-likelihood ratio statistic
    /// `G² = 2 Σ O_ij · ln(O_ij / E_ij)` (zero cells contribute zero).
    ///
    /// Asymptotically χ² with one degree of freedom under independence.
    pub fn g2(&self) -> Result<f64> {
        let e = self.expected()?;
        let o = [
            self.o11 as f64,
            self.o12 as f64,
            self.o21 as f64,
            self.o22 as f64,
        ];
        let mut g2 = 0.0;
        for i in 0..4 {
            if o[i] > 0.0 {
                g2 += o[i] * (o[i] / e[i]).ln();
            }
        }
        Ok((2.0 * g2).max(0.0))
    }

    /// Pearson's chi-square statistic `X² = Σ (O_ij − E_ij)² / E_ij`.
    pub fn pearson_x2(&self) -> Result<f64> {
        let e = self.expected()?;
        let o = [
            self.o11 as f64,
            self.o12 as f64,
            self.o21 as f64,
            self.o22 as f64,
        ];
        let mut x2 = 0.0;
        for i in 0..4 {
            let d = o[i] - e[i];
            x2 += d * d / e[i];
        }
        Ok(x2)
    }
}

/// Which association statistic an [`AssociationTest`] computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AssociationStatistic {
    /// Dunning's log-likelihood ratio G² (the paper's choice).
    Dunning,
    /// Pearson's X² (the "more common" test the paper declines).
    Pearson,
}

/// Outcome of an association test on a 2×2 table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AssociationResult {
    /// Value of the chosen statistic.
    pub statistic: f64,
    /// Two-sided p-value against χ²₁.
    pub p_value: f64,
    /// Whether the joint cell exceeded expectation (direction gate).
    pub positive: bool,
}

impl AssociationResult {
    /// One-sided significance decision: positive association *and*
    /// statistic above the χ²₁ critical value for `alpha`.
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.positive && self.p_value <= alpha
    }
}

/// Runs an association test on `table` using the chosen statistic.
///
/// ```
/// use logdep_stats::contingency::{association_test, AssociationStatistic, Table2x2};
///
/// // The running example of the paper (Figure 4): bigram type (A2, A3)
/// // with counts o11 = 2, o12 = 0, o21 = 1, o22 = 5.
/// let t = Table2x2::new(2, 0, 1, 5);
/// let r = association_test(&t, AssociationStatistic::Dunning).unwrap();
/// assert!(r.positive); // 2 observed vs 0.75 expected
/// ```
pub fn association_test(
    table: &Table2x2,
    statistic: AssociationStatistic,
) -> Result<AssociationResult> {
    let stat = match statistic {
        AssociationStatistic::Dunning => table.g2()?,
        AssociationStatistic::Pearson => table.pearson_x2()?,
    };
    Ok(AssociationResult {
        statistic: stat,
        p_value: chi2::sf(stat, 1.0)?,
        positive: table.positively_associated()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_running_example_table() {
        // Figure 4 of the paper: (A2, A3) over 8 bigrams.
        let t = Table2x2::new(2, 0, 1, 5);
        assert_eq!(t.n(), 8);
        assert_eq!(t.row_sums(), (2, 6));
        assert_eq!(t.col_sums(), (3, 5));
        let e = t.expected().unwrap();
        assert!((e[0] - 0.75).abs() < 1e-12);
        assert!(t.positively_associated().unwrap());
    }

    #[test]
    fn from_marginals_round_trip() {
        let t = Table2x2::new(7, 3, 11, 979);
        let (f1, f2) = (t.col_sums().0, t.row_sums().0);
        let back = Table2x2::from_marginals(t.o11, f1, f2, t.n()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn from_marginals_validates() {
        assert!(Table2x2::from_marginals(5, 3, 10, 100).is_err()); // f > f1
        assert!(Table2x2::from_marginals(5, 10, 3, 100).is_err()); // f > f2
        assert!(Table2x2::from_marginals(0, 60, 50, 100).is_err()); // overflow n
    }

    #[test]
    fn g2_zero_under_exact_independence() {
        // Proportional table ⇒ observed == expected ⇒ G² = X² = 0.
        let t = Table2x2::new(10, 20, 30, 60);
        assert!(t.g2().unwrap().abs() < 1e-9);
        assert!(t.pearson_x2().unwrap().abs() < 1e-9);
        assert!(!t.positively_associated().unwrap());
    }

    #[test]
    fn g2_reference_value() {
        // Dunning (1993)-style check against a hand-computed value:
        // table (110, 2442, 111, 29114) gives G² ≈ 270.72 (the classic
        // "powerful computers" collocation example).
        let t = Table2x2::new(110, 2442, 111, 29114);
        let g2 = t.g2().unwrap();
        assert!((g2 - 270.72).abs() < 0.05, "g2 = {g2}");
    }

    #[test]
    fn pearson_reference_value() {
        // X² for (10, 10, 10, 30): e = [6.667,13.333,13.333,26.667]
        // X² = 1.6667+0.8333+0.8333+0.4167 = 3.75
        let t = Table2x2::new(10, 10, 10, 30);
        assert!((t.pearson_x2().unwrap() - 3.75).abs() < 1e-9);
    }

    #[test]
    fn dunning_vs_pearson_on_skewed_tables() {
        // On a heavily skewed table with a rare joint event, Pearson
        // overshoots relative to G² — the very reason the paper picks
        // Dunning. (X²'s quadratic term explodes when e11 is tiny.)
        let t = Table2x2::new(3, 2, 2, 100_000);
        let g2 = t.g2().unwrap();
        let x2 = t.pearson_x2().unwrap();
        assert!(x2 > 5.0 * g2, "x2 = {x2}, g2 = {g2}");
    }

    #[test]
    fn association_test_end_to_end() {
        let strong = Table2x2::new(50, 5, 5, 940);
        let r = association_test(&strong, AssociationStatistic::Dunning).unwrap();
        assert!(r.significant_at(0.01));
        assert!(r.p_value < 1e-10);

        let none = Table2x2::new(1, 99, 99, 9801);
        let r = association_test(&none, AssociationStatistic::Dunning).unwrap();
        assert!(!r.significant_at(0.05));
    }

    #[test]
    fn negative_association_is_gated_out() {
        // Strong *avoidance*: o11 far below expectation. Two-sided χ²
        // would fire; the positive gate must not.
        let t = Table2x2::new(0, 100, 100, 100);
        let r = association_test(&t, AssociationStatistic::Dunning).unwrap();
        assert!(r.p_value < 0.01); // statistically "associated"...
        assert!(!r.positive); // ...but in the wrong direction
        assert!(!r.significant_at(0.05));
    }

    #[test]
    fn degenerate_tables_error() {
        assert!(Table2x2::new(0, 0, 0, 0).expected().is_err());
        assert!(Table2x2::new(0, 0, 5, 5).g2().is_err()); // zero row
        assert!(Table2x2::new(0, 5, 0, 5).pearson_x2().is_err()); // zero col
    }

    #[test]
    fn statistics_are_nonnegative() {
        for &(a, b, c, d) in &[(1u64, 2u64, 3u64, 4u64), (9, 1, 1, 9), (2, 0, 1, 5)] {
            let t = Table2x2::new(a, b, c, d);
            assert!(t.g2().unwrap() >= 0.0);
            assert!(t.pearson_x2().unwrap() >= 0.0);
        }
    }
}
