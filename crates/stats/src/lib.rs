//! Statistics substrate for log-based dependency mining.
//!
//! This crate implements, from first principles, every statistical procedure
//! used by the dependency-mining techniques of Steinle et al. (VLDB 2006):
//!
//! * [`order_stats`] — distribution-free confidence intervals for quantiles
//!   (notably the median) by order statistics, the robust method of
//!   Le Boudec used by the paper's technique L1 and by all of its
//!   cross-day interval estimates;
//! * [`contingency`] — 2×2 contingency tables with Dunning's log-likelihood
//!   ratio test (G²) and Pearson's X², used by technique L2 for bigram
//!   association;
//! * [`wilcoxon`] — the exact signed-rank test used for the timeout study
//!   (Table 2 of the paper);
//! * [`ranksum`] / [`fisher`] — the Mann–Whitney rank-sum test and
//!   Fisher's exact test, used by the ablation studies as alternative
//!   decision rules;
//! * [`regression`] — ordinary least squares with confidence intervals for
//!   the slope, used by the load-influence study (Figure 9);
//! * [`boxplot`], [`descriptive`], [`sampling`] — supporting summaries.
//!
//! The distribution machinery ([`normal`], [`binomial`], [`chi2`],
//! [`tdist`], [`special`]) is self-contained; no external math crates are
//! required, which keeps the whole mining stack dependency-light and easy
//! to audit.
//!
//! # Example
//!
//! ```
//! use logdep_stats::order_stats::median_ci;
//!
//! // 0.984-level CI for the median of 7 daily precision values: with n = 7
//! // the order-statistics CI at that level is exactly [min, max].
//! let days = [0.66, 0.63, 0.73, 0.70, 0.68, 0.71, 0.65];
//! let ci = median_ci(&days, 0.984).unwrap();
//! assert_eq!((ci.lower, ci.upper), (0.63, 0.73));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// `!(x > 0.0)` deliberately catches NaN as well as non-positive values;
// rewriting via partial_cmp would obscure that.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![allow(clippy::excessive_precision)]

pub mod binomial;
pub mod boxplot;
pub mod chi2;
pub mod contingency;
pub mod descriptive;
pub mod error;
pub mod fisher;
pub mod normal;
pub mod order_stats;
pub mod ranksum;
pub mod regression;
pub mod sampling;
pub mod special;
pub mod tdist;
pub mod wilcoxon;

pub use error::StatsError;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StatsError>;
