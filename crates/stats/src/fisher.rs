//! Fisher's exact test for 2×2 contingency tables.
//!
//! The exact complement to Dunning's G² and Pearson's X²: when a
//! bigram type has only a handful of observations, the asymptotic χ²
//! calibration of both statistics is questionable and the
//! hypergeometric computation is cheap. `logdep`'s L2 keeps a
//! `min_joint` guard for that regime; this test lets an analyst check
//! borderline tables exactly.

use crate::binomial::ln_choose;
use crate::contingency::Table2x2;
use crate::Result;
use serde::{Deserialize, Serialize};

/// Result of Fisher's exact test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FisherResult {
    /// One-sided p-value for *positive* association (joint count at
    /// least as large as observed).
    pub p_greater: f64,
    /// Two-sided p-value (sum of all tables as or less probable).
    pub p_two_sided: f64,
}

/// Hypergeometric log-probability of a table with the given margins
/// and joint cell `k`.
fn ln_hyper(k: u64, r1: u64, c1: u64, n: u64) -> f64 {
    ln_choose(r1, k) + ln_choose(n - r1, c1 - k) - ln_choose(n, c1)
}

/// Fisher's exact test on a 2×2 table.
///
/// Returns an error for degenerate tables (a zero margin).
pub fn fisher_exact(table: &Table2x2) -> Result<FisherResult> {
    // Validate margins via the expected-count machinery.
    table.expected()?;
    let n = table.n();
    let (r1, _) = table.row_sums();
    let (c1, _) = table.col_sums();
    let observed = table.o11;

    // Feasible joint-cell range given the margins.
    let k_min = r1.saturating_sub(n - c1);
    let k_max = r1.min(c1);

    let ln_obs = ln_hyper(observed, r1, c1, n);
    let mut p_greater = 0.0_f64;
    let mut p_two_sided = 0.0_f64;
    for k in k_min..=k_max {
        let lp = ln_hyper(k, r1, c1, n);
        let p = lp.exp();
        if k >= observed {
            p_greater += p;
        }
        // Standard two-sided rule: sum tables no more probable than
        // the observed one (with a small tolerance for rounding).
        if lp <= ln_obs + 1e-9 {
            p_two_sided += p;
        }
    }
    Ok(FisherResult {
        p_greater: p_greater.min(1.0),
        p_two_sided: p_two_sided.min(1.0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lady_tasting_tea() {
        // Fisher's original: margins 4/4, all 4 correct: p = 1/70.
        let t = Table2x2::new(4, 0, 0, 4);
        let r = fisher_exact(&t).unwrap();
        assert!((r.p_greater - 1.0 / 70.0).abs() < 1e-9);
        assert!((r.p_two_sided - 2.0 / 70.0).abs() < 1e-9);
    }

    #[test]
    fn independent_table_is_insignificant() {
        let t = Table2x2::new(10, 10, 10, 10);
        let r = fisher_exact(&t).unwrap();
        assert!(r.p_greater > 0.4);
        assert!(
            (r.p_two_sided - 1.0).abs() < 1e-6,
            "central table sums everything"
        );
    }

    #[test]
    fn agrees_in_direction_with_g2_on_skewed_table() {
        // The bigram-like skewed table from the contingency tests.
        let t = Table2x2::new(7, 3, 11, 979);
        let r = fisher_exact(&t).unwrap();
        assert!(r.p_greater < 1e-6, "strong positive association expected");
        let g2_p = crate::chi2::sf(t.g2().unwrap(), 1.0).unwrap();
        // Same order of magnitude of evidence.
        assert!(r.p_greater.log10() - g2_p.log10() < 4.0);
    }

    #[test]
    fn probabilities_sum_to_one_over_the_range() {
        let t = Table2x2::new(3, 5, 7, 11);
        let n = t.n();
        let (r1, _) = t.row_sums();
        let (c1, _) = t.col_sums();
        let k_min = r1.saturating_sub(n - c1);
        let k_max = r1.min(c1);
        let total: f64 = (k_min..=k_max).map(|k| ln_hyper(k, r1, c1, n).exp()).sum();
        assert!((total - 1.0).abs() < 1e-9, "hypergeometric sums to {total}");
    }

    #[test]
    fn negative_association_has_large_p_greater() {
        let t = Table2x2::new(0, 10, 10, 0);
        let r = fisher_exact(&t).unwrap();
        assert!(r.p_greater > 0.999, "k_min == observed ⇒ p_greater ≈ 1");
        assert!(
            r.p_two_sided < 0.01,
            "perfect avoidance is two-sided significant"
        );
    }

    #[test]
    fn degenerate_table_errors() {
        assert!(fisher_exact(&Table2x2::new(0, 0, 3, 4)).is_err());
    }
}
