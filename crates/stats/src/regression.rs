//! Simple linear regression with confidence intervals.
//!
//! The load-influence experiment (§4.9, Figure 9) regresses the fraction
//! of dependencies each technique recovers per hour on the hourly log
//! volume, then checks whether the confidence interval for the slope is
//! strictly negative (L1) or contains zero (L2). The paper also validates
//! the model with normal QQ-plots of the residuals; [`Fit::qq_points`]
//! produces exactly that data.

use crate::{error::check_no_nan, normal, tdist, Result, StatsError};
use serde::{Deserialize, Serialize};

/// An interval estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interval {
    /// Lower bound.
    pub lower: f64,
    /// Upper bound.
    pub upper: f64,
}

impl Interval {
    /// True if the whole interval is below zero.
    pub fn strictly_negative(&self) -> bool {
        self.upper < 0.0
    }

    /// True if the whole interval is above zero.
    pub fn strictly_positive(&self) -> bool {
        self.lower > 0.0
    }

    /// True if zero lies inside (inclusive) the interval.
    pub fn contains_zero(&self) -> bool {
        self.lower <= 0.0 && 0.0 <= self.upper
    }
}

/// An ordinary-least-squares fit `y ≈ intercept + slope · x`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fit {
    /// Estimated intercept.
    pub intercept: f64,
    /// Estimated slope.
    pub slope: f64,
    /// Standard error of the slope.
    pub slope_se: f64,
    /// Standard error of the intercept.
    pub intercept_se: f64,
    /// Residual standard deviation (√(SSE / (n − 2))).
    pub residual_sd: f64,
    /// Coefficient of determination.
    pub r_squared: f64,
    /// Number of observations.
    pub n: usize,
    /// Residuals in input order.
    pub residuals: Vec<f64>,
}

impl Fit {
    /// Two-sided confidence interval for the slope at `level`, using the
    /// t distribution with `n − 2` degrees of freedom.
    pub fn slope_ci(&self, level: f64) -> Result<Interval> {
        let t = tdist::two_sided_t(level, (self.n - 2) as f64)?;
        Ok(Interval {
            lower: self.slope - t * self.slope_se,
            upper: self.slope + t * self.slope_se,
        })
    }

    /// Two-sided confidence interval for the intercept at `level`.
    pub fn intercept_ci(&self, level: f64) -> Result<Interval> {
        let t = tdist::two_sided_t(level, (self.n - 2) as f64)?;
        Ok(Interval {
            lower: self.intercept - t * self.intercept_se,
            upper: self.intercept + t * self.intercept_se,
        })
    }

    /// Predicted value at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }

    /// Normal QQ-plot data for the standardized residuals: pairs of
    /// (theoretical normal quantile, ordered standardized residual).
    ///
    /// A straight-line shape validates the regression's normality
    /// assumption, as done in §4.9 of the paper.
    pub fn qq_points(&self) -> Result<Vec<(f64, f64)>> {
        if self.residual_sd <= 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "residual_sd",
                value: self.residual_sd,
            });
        }
        let n = self.residuals.len();
        let mut std_res: Vec<f64> = self
            .residuals
            .iter()
            .map(|r| r / self.residual_sd)
            .collect();
        std_res.sort_by(|a, b| a.total_cmp(b));
        let mut pts = Vec::with_capacity(n);
        for (i, r) in std_res.into_iter().enumerate() {
            // Blom plotting positions.
            let p = (i as f64 + 1.0 - 0.375) / (n as f64 + 0.25);
            pts.push((normal::quantile(p)?, r));
        }
        Ok(pts)
    }
}

/// Fits `y ≈ a + b·x` by ordinary least squares.
///
/// Requires at least 3 points (so that the residual variance has at least
/// one degree of freedom) and non-constant `x`.
pub fn linear_fit(x: &[f64], y: &[f64]) -> Result<Fit> {
    if x.len() != y.len() {
        return Err(StatsError::InvalidParameter {
            name: "x/y length mismatch",
            value: x.len() as f64 - y.len() as f64,
        });
    }
    let n = x.len();
    if n < 3 {
        return Err(StatsError::SampleTooSmall {
            required: 3,
            actual: n,
        });
    }
    check_no_nan(x)?;
    check_no_nan(y)?;

    let nf = n as f64;
    let mean_x = x.iter().sum::<f64>() / nf;
    let mean_y = y.iter().sum::<f64>() / nf;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for i in 0..n {
        let dx = x[i] - mean_x;
        let dy = y[i] - mean_y;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    if sxx == 0.0 {
        return Err(StatsError::InvalidParameter {
            name: "x (constant)",
            value: mean_x,
        });
    }

    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let residuals: Vec<f64> = (0..n).map(|i| y[i] - (intercept + slope * x[i])).collect();
    let sse: f64 = residuals.iter().map(|r| r * r).sum();
    let df = nf - 2.0;
    let residual_var = sse / df;
    let residual_sd = residual_var.sqrt();
    let slope_se = (residual_var / sxx).sqrt();
    let intercept_se = (residual_var * (1.0 / nf + mean_x * mean_x / sxx)).sqrt();
    let r_squared = if syy == 0.0 { 1.0 } else { 1.0 - sse / syy };

    Ok(Fit {
        intercept,
        slope,
        slope_se,
        intercept_se,
        residual_sd,
        r_squared,
        n,
        residuals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let x: Vec<f64> = (0..10).map(f64::from).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 + 2.0 * v).collect();
        let fit = linear_fit(&x, &y).unwrap();
        assert!((fit.slope - 2.0).abs() < 1e-12);
        assert!((fit.intercept - 3.0).abs() < 1e-12);
        assert!(fit.r_squared > 0.999_999);
        assert!(fit.slope_se < 1e-10);
        assert!((fit.predict(20.0) - 43.0).abs() < 1e-9);
    }

    #[test]
    fn textbook_example_with_noise() {
        // Hand-checked small dataset.
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [2.1, 3.9, 6.2, 7.8, 10.1];
        let fit = linear_fit(&x, &y).unwrap();
        // Least squares: slope = Sxy/Sxx = 20.0/10.0 = 2.0 with these values.
        assert!((fit.slope - 2.0).abs() < 0.02, "slope = {}", fit.slope);
        assert!((fit.intercept - 0.02).abs() < 0.08);
        let ci = fit.slope_ci(0.95).unwrap();
        assert!(ci.lower < 2.0 && 2.0 < ci.upper);
        assert!(ci.strictly_positive());
    }

    #[test]
    fn negative_slope_detected_strictly() {
        let x: Vec<f64> = (0..50).map(f64::from).collect();
        let y: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, v)| 10.0 - 0.25 * v + if i % 2 == 0 { 0.1 } else { -0.1 })
            .collect();
        let fit = linear_fit(&x, &y).unwrap();
        let ci = fit.slope_ci(0.95).unwrap();
        assert!(ci.strictly_negative());
        assert!(!ci.contains_zero());
    }

    #[test]
    fn flat_noise_slope_ci_contains_zero() {
        // Deterministic "noise" with no trend.
        let x: Vec<f64> = (0..40).map(f64::from).collect();
        let y: Vec<f64> = (0..40)
            .map(|i| {
                if i % 3 == 0 {
                    1.2
                } else if i % 3 == 1 {
                    0.8
                } else {
                    1.0
                }
            })
            .collect();
        let fit = linear_fit(&x, &y).unwrap();
        let ci = fit.slope_ci(0.95).unwrap();
        assert!(ci.contains_zero(), "ci = {ci:?}");
    }

    #[test]
    fn residuals_sum_to_zero() {
        let x = [1.0, 2.0, 4.0, 7.0, 11.0, 16.0];
        let y = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0];
        let fit = linear_fit(&x, &y).unwrap();
        let s: f64 = fit.residuals.iter().sum();
        assert!(s.abs() < 1e-10);
    }

    #[test]
    fn qq_points_are_monotone_and_centered() {
        let x: Vec<f64> = (0..30).map(f64::from).collect();
        let y: Vec<f64> = x.iter().map(|v| v * 0.5 + ((v * 0.7).sin())).collect();
        let fit = linear_fit(&x, &y).unwrap();
        let pts = fit.qq_points().unwrap();
        assert_eq!(pts.len(), 30);
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        // Median theoretical quantile near zero.
        assert!(pts[15].0.abs() < 0.2);
    }

    #[test]
    fn error_cases() {
        assert!(linear_fit(&[1.0, 2.0], &[1.0, 2.0]).is_err()); // too small
        assert!(linear_fit(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).is_err()); // constant x
        assert!(linear_fit(&[1.0, 2.0, 3.0], &[1.0, 2.0]).is_err()); // mismatch
        assert!(linear_fit(&[1.0, 2.0, f64::NAN], &[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn interval_predicates() {
        let neg = Interval {
            lower: -2.0,
            upper: -0.5,
        };
        assert!(neg.strictly_negative() && !neg.contains_zero());
        let span = Interval {
            lower: -0.1,
            upper: 0.1,
        };
        assert!(span.contains_zero() && !span.strictly_positive());
        let pos = Interval {
            lower: 0.3,
            upper: 0.9,
        };
        assert!(pos.strictly_positive());
    }
}
