//! Descriptive statistics: means, variances, medians, quantiles.

use crate::{error::check_no_nan, order_stats, Result, StatsError};

/// Arithmetic mean.
pub fn mean(xs: &[f64]) -> Result<f64> {
    check_no_nan(xs)?;
    if xs.is_empty() {
        return Err(StatsError::EmptySample);
    }
    Ok(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Unbiased sample variance (denominator `n − 1`).
pub fn variance(xs: &[f64]) -> Result<f64> {
    check_no_nan(xs)?;
    if xs.len() < 2 {
        return Err(StatsError::SampleTooSmall {
            required: 2,
            actual: xs.len(),
        });
    }
    let m = mean(xs)?;
    let ss: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    Ok(ss / (xs.len() as f64 - 1.0))
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> Result<f64> {
    Ok(variance(xs)?.sqrt())
}

/// Sample median (type-7 interpolation). Copies and sorts.
pub fn median(xs: &[f64]) -> Result<f64> {
    quantile(xs, 0.5)
}

/// Type-7 interpolated quantile for `q ∈ [0, 1]`. Copies and sorts.
pub fn quantile(xs: &[f64], q: f64) -> Result<f64> {
    check_no_nan(xs)?;
    if xs.is_empty() {
        return Err(StatsError::EmptySample);
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(StatsError::InvalidLevel(q));
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    Ok(quantile_sorted_unchecked(&sorted, q))
}

/// Type-7 quantile over already-sorted data (no validation).
pub(crate) fn quantile_sorted_unchecked(sorted: &[f64], q: f64) -> f64 {
    if q <= 0.0 {
        return sorted[0];
    }
    if q >= 1.0 {
        return sorted[sorted.len() - 1];
    }
    order_stats::interpolated_quantile(sorted, q)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_basic() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs).unwrap(), 5.0);
        // Population variance of this classic set is 4; sample variance
        // is 32/7.
        assert!((variance(&xs).unwrap() - 32.0 / 7.0).abs() < 1e-12);
        assert!((std_dev(&xs).unwrap() - (32.0_f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn median_even_and_odd() {
        assert_eq!(median(&[3.0, 1.0, 2.0]).unwrap(), 2.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]).unwrap(), 2.5);
        assert_eq!(median(&[7.0]).unwrap(), 7.0);
    }

    #[test]
    fn quantiles_type7() {
        let xs: Vec<f64> = (1..=5).map(f64::from).collect();
        assert_eq!(quantile(&xs, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&xs, 0.25).unwrap(), 2.0);
        assert_eq!(quantile(&xs, 0.5).unwrap(), 3.0);
        assert_eq!(quantile(&xs, 0.75).unwrap(), 4.0);
        assert_eq!(quantile(&xs, 1.0).unwrap(), 5.0);
        // Interpolation between order statistics.
        assert!((quantile(&xs, 0.1).unwrap() - 1.4).abs() < 1e-12);
    }

    #[test]
    fn error_paths() {
        assert!(mean(&[]).is_err());
        assert!(variance(&[1.0]).is_err());
        assert!(median(&[]).is_err());
        assert!(quantile(&[1.0], 1.5).is_err());
        assert!(mean(&[f64::NAN]).is_err());
    }
}
