//! Error type for statistical computations.

use std::fmt;

/// Errors reported by statistical routines.
///
/// All routines validate their inputs and return a structured error rather
/// than panicking or silently producing NaNs, so mining pipelines can skip
/// degenerate slots (empty samples, zero-margin tables) deliberately.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// The sample was empty where at least one observation is required.
    EmptySample,
    /// The sample was too small for the requested procedure.
    SampleTooSmall {
        /// Observations required.
        required: usize,
        /// Observations provided.
        actual: usize,
    },
    /// A probability or confidence level lay outside its valid open interval.
    InvalidLevel(f64),
    /// A distribution parameter was out of range (e.g. negative variance).
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The value supplied.
        value: f64,
    },
    /// A contingency table had a zero row or column margin, so no
    /// association statistic is defined.
    DegenerateTable,
    /// The input contained a NaN, which has no ordering.
    NanInput,
    /// Numerical iteration failed to converge.
    NoConvergence(&'static str),
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::EmptySample => write!(f, "empty sample"),
            StatsError::SampleTooSmall { required, actual } => {
                write!(f, "sample too small: need {required}, got {actual}")
            }
            StatsError::InvalidLevel(l) => {
                write!(f, "confidence level {l} outside (0, 1)")
            }
            StatsError::InvalidParameter { name, value } => {
                write!(f, "invalid parameter {name} = {value}")
            }
            StatsError::DegenerateTable => {
                write!(f, "contingency table has a zero margin")
            }
            StatsError::NanInput => write!(f, "input contains NaN"),
            StatsError::NoConvergence(what) => {
                write!(f, "iteration failed to converge in {what}")
            }
        }
    }
}

impl std::error::Error for StatsError {}

/// Validates that `level` is a usable confidence level in `(0, 1)`.
pub(crate) fn check_level(level: f64) -> crate::Result<()> {
    if !(level > 0.0 && level < 1.0) {
        return Err(StatsError::InvalidLevel(level));
    }
    Ok(())
}

/// Validates that a slice of floats contains no NaN.
pub(crate) fn check_no_nan(xs: &[f64]) -> crate::Result<()> {
    if xs.iter().any(|x| x.is_nan()) {
        return Err(StatsError::NanInput);
    }
    Ok(())
}
