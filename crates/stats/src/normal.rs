//! The standard normal distribution: density, CDF, and quantile.

use crate::special::erfc;
use crate::{error::check_level, Result, StatsError};

/// Standard normal probability density function.
pub fn pdf(x: f64) -> f64 {
    (-(x * x) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal cumulative distribution function `Φ(x)`.
///
/// ```
/// use logdep_stats::normal::cdf;
/// assert!((cdf(0.0) - 0.5).abs() < 1e-12);
/// assert!((cdf(1.96) - 0.975).abs() < 1e-4);
/// ```
pub fn cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Standard normal survival function `1 − Φ(x)`, accurate in the far tail.
pub fn sf(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Standard normal quantile function `Φ⁻¹(p)` for `p ∈ (0, 1)`.
///
/// Uses Acklam's rational approximation refined by one Halley step on the
/// exact CDF, giving ~1e-14 relative accuracy.
pub fn quantile(p: f64) -> Result<f64> {
    if !(p > 0.0 && p < 1.0) {
        return Err(StatsError::InvalidLevel(p));
    }
    let x = acklam(p);
    // One Halley refinement step against the high-accuracy CDF.
    let e = cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    Ok(x - u / (1.0 + x * u / 2.0))
}

/// Two-sided critical value `z` with `Φ(z) − Φ(−z) = level`.
///
/// For `level = 0.95` this is the familiar 1.96.
pub fn two_sided_z(level: f64) -> Result<f64> {
    check_level(level)?;
    quantile(0.5 + level / 2.0)
}

/// Acklam's rational approximation to the normal quantile.
fn acklam(p: f64) -> f64 {
    const A: [f64; 6] = [
        -3.969_683_028_665_376e+1,
        2.209_460_984_245_205e+2,
        -2.759_285_104_469_687e+2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e+1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e+1,
        1.615_858_368_580_409e+2,
        -1.556_989_798_598_866e+2,
        6.680_131_188_771_972e+1,
        -1.328_068_155_288_572e+1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    const P_HIGH: f64 = 1.0 - P_LOW;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// CDF of a general normal with the given mean and standard deviation.
pub fn cdf_with(x: f64, mean: f64, sd: f64) -> Result<f64> {
    if sd <= 0.0 {
        return Err(StatsError::InvalidParameter {
            name: "sd",
            value: sd,
        });
    }
    Ok(cdf((x - mean) / sd))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::special::erf as erf_fn;

    #[test]
    fn pdf_symmetric_and_peaked_at_zero() {
        assert!((pdf(0.0) - 0.398_942_280_4).abs() < 1e-9);
        assert_eq!(pdf(1.3), pdf(-1.3));
        assert!(pdf(0.0) > pdf(0.5));
    }

    #[test]
    fn cdf_reference_values() {
        assert!((cdf(0.0) - 0.5).abs() < 1e-14);
        assert!((cdf(1.0) - 0.841_344_746_068_543).abs() < 1e-10);
        assert!((cdf(-1.0) - 0.158_655_253_931_457).abs() < 1e-10);
        assert!((cdf(3.0) - 0.998_650_101_968_37).abs() < 1e-10);
    }

    #[test]
    fn sf_tail_accuracy() {
        // 1 − Φ(6) ≈ 9.8659e−10; naive 1 − cdf would lose digits.
        let t = sf(6.0);
        assert!((t - 9.865_876_45e-10).abs() / t < 1e-6);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for &p in &[1e-8, 0.001, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999, 1.0 - 1e-8] {
            let x = quantile(p).unwrap();
            assert!((cdf(x) - p).abs() < 1e-12, "p = {p}");
        }
    }

    #[test]
    fn quantile_known_critical_values() {
        assert!((quantile(0.975).unwrap() - 1.959_963_984_540_054).abs() < 1e-9);
        assert!((quantile(0.995).unwrap() - 2.575_829_303_548_901).abs() < 1e-9);
        assert!((two_sided_z(0.95).unwrap() - 1.959_963_984_540_054).abs() < 1e-9);
    }

    #[test]
    fn quantile_rejects_bad_levels() {
        assert!(quantile(0.0).is_err());
        assert!(quantile(1.0).is_err());
        assert!(quantile(-0.3).is_err());
        assert!(two_sided_z(1.5).is_err());
    }

    #[test]
    fn cdf_consistent_with_erf() {
        for &x in &[-2.0, -0.5, 0.0, 0.5, 2.0] {
            let via_erf = 0.5 * (1.0 + erf_fn(x / std::f64::consts::SQRT_2));
            assert!((cdf(x) - via_erf).abs() < 1e-12);
        }
    }

    #[test]
    fn cdf_with_shifts_and_scales() {
        assert!((cdf_with(10.0, 10.0, 2.0).unwrap() - 0.5).abs() < 1e-14);
        assert!(cdf_with(0.0, 0.0, 0.0).is_err());
        assert!(cdf_with(0.0, 0.0, -1.0).is_err());
    }
}
