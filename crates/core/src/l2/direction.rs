//! Direction detection for L2-discovered pairs (§5 of the paper).
//!
//! The base technique cannot tell caller from callee. The paper
//! sketches the remedy implemented here: "Given a dependent pair type
//! (A, B), one could try counting the number of times the first
//! element of the *first* pair of the given type is an instance of A,
//! respectively B, in a sequence of logs that is not interrupted by a
//! pause of at least the length of the *timeout* parameter."
//!
//! Sessions are segmented into *bursts* at pauses of at least the
//! timeout; within each burst, for every unordered pair {A, B} active
//! in it, we look at the first adjacency of the two sources and count
//! which one led. Callers usually log before their callees, so a
//! significantly skewed lead count indicates the invocation direction.
//! A binomial sign test turns the counts into a decision.

use logdep_logstore::SourceId;
use logdep_sessions::Session;
use logdep_stats::binomial;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Direction verdict for one unordered pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DirectionOutcome {
    /// The pair, normalized (`a < b`).
    pub a: SourceId,
    /// Second element of the pair.
    pub b: SourceId,
    /// Bursts in which `a` led the first adjacency.
    pub a_led: u32,
    /// Bursts in which `b` led.
    pub b_led: u32,
    /// Two-sided binomial p-value against a fair coin.
    pub p_value: f64,
    /// The inferred caller, when the skew is significant.
    pub caller: Option<SourceId>,
}

impl DirectionOutcome {
    /// Total bursts with evidence.
    pub fn n_bursts(&self) -> u32 {
        self.a_led + self.b_led
    }
}

/// Parameters of direction detection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DirectionConfig {
    /// Pause (ms) that separates bursts — the paper reuses L2's
    /// timeout parameter.
    pub pause_ms: i64,
    /// Significance level for the sign test.
    pub alpha: f64,
    /// Minimum number of lead observations before deciding.
    pub min_bursts: u32,
}

impl Default for DirectionConfig {
    fn default() -> Self {
        Self {
            pause_ms: 1_000,
            alpha: 0.01,
            min_bursts: 8,
        }
    }
}

/// Counts burst leads for the given pairs across sessions and decides
/// directions. `pairs` should be the unordered pairs L2 declared
/// dependent; anything else is ignored.
pub fn detect_directions(
    sessions: &[Session],
    pairs: &[(SourceId, SourceId)],
    cfg: &DirectionConfig,
) -> Vec<DirectionOutcome> {
    let wanted: HashMap<(SourceId, SourceId), usize> = pairs
        .iter()
        .enumerate()
        .map(|(i, &(a, b))| ((a.min(b), a.max(b)), i))
        .collect();
    let mut a_led = vec![0u32; pairs.len()];
    let mut b_led = vec![0u32; pairs.len()];

    for session in sessions {
        // Split the session into bursts at long pauses.
        let mut burst_start = 0usize;
        let entries = &session.entries;
        for i in 0..=entries.len() {
            let is_break =
                i == entries.len() || (i > 0 && entries[i].ts - entries[i - 1].ts >= cfg.pause_ms);
            if !is_break {
                continue;
            }
            let burst = &entries[burst_start..i];
            burst_start = i;
            if burst.len() < 2 {
                continue;
            }
            // First adjacency of each wanted pair within the burst:
            // scan once, remembering which sources were already seen
            // and crediting the earlier one at the first co-occurrence.
            let mut seen_order: Vec<SourceId> = Vec::new();
            let mut credited: Vec<bool> = vec![false; pairs.len()];
            for e in burst {
                if !seen_order.contains(&e.source) {
                    // New source: pairs of it with every earlier source
                    // get their first adjacency now — the earlier one led.
                    for &prev in &seen_order {
                        let key = (prev.min(e.source), prev.max(e.source));
                        if let Some(&idx) = wanted.get(&key) {
                            if !credited[idx] {
                                credited[idx] = true;
                                let norm_a = pairs[idx].0.min(pairs[idx].1);
                                if prev == norm_a {
                                    a_led[idx] += 1;
                                } else {
                                    b_led[idx] += 1;
                                }
                            }
                        }
                    }
                    seen_order.push(e.source);
                }
            }
        }
    }

    pairs
        .iter()
        .enumerate()
        .map(|(i, &(pa, pb))| {
            let (na, nb) = (pa.min(pb), pa.max(pb));
            let (x, y) = (a_led[i], b_led[i]);
            let n = x + y;
            // Two-sided exact binomial sign test.
            let p_value = if n == 0 {
                1.0
            } else {
                let k = x.min(y) as u64;
                let cdf = binomial::cdf(n as u64, 0.5, k).unwrap_or(1.0);
                (2.0 * cdf).min(1.0)
            };
            let caller = if n >= cfg.min_bursts && p_value <= cfg.alpha {
                Some(if x > y { na } else { nb })
            } else {
                None
            };
            DirectionOutcome {
                a: na,
                b: nb,
                a_led: x,
                b_led: y,
                p_value,
                caller,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use logdep_logstore::{HostId, Millis, UserId};
    use logdep_sessions::SessionEntry;

    fn session(entries: &[(i64, u32)]) -> Session {
        Session {
            user: UserId(0),
            host: HostId(0),
            entries: entries
                .iter()
                .map(|&(t, s)| SessionEntry {
                    ts: Millis(t),
                    source: SourceId(s),
                })
                .collect(),
        }
    }

    fn caller_callee_sessions(n: usize) -> Vec<Session> {
        // Source 1 always precedes source 2 within bursts, separated by
        // long pauses between bursts.
        (0..n)
            .map(|k| {
                let base = k as i64 * 1_000_000;
                session(&[
                    (base, 1),
                    (base + 100, 2),
                    (base + 200, 1),
                    // Pause ≥ 1 s starts a new burst:
                    (base + 5_000, 1),
                    (base + 5_120, 2),
                ])
            })
            .collect()
    }

    #[test]
    fn detects_caller_direction() {
        let sessions = caller_callee_sessions(10);
        let pairs = vec![(SourceId(1), SourceId(2))];
        let out = detect_directions(&sessions, &pairs, &DirectionConfig::default());
        assert_eq!(out.len(), 1);
        let o = &out[0];
        // 2 bursts per session × 10 sessions, source 1 always leads.
        assert_eq!(o.a_led, 20);
        assert_eq!(o.b_led, 0);
        assert!(o.p_value < 1e-4);
        assert_eq!(o.caller, Some(SourceId(1)));
    }

    #[test]
    fn balanced_leads_stay_undecided() {
        // Alternating leader: half the bursts start with 1, half with 2.
        let mut sessions = Vec::new();
        for k in 0..10i64 {
            let base = k * 1_000_000;
            sessions.push(session(&[(base, 1), (base + 100, 2)]));
            sessions.push(session(&[(base + 500_000, 2), (base + 500_100, 1)]));
        }
        let pairs = vec![(SourceId(1), SourceId(2))];
        let out = detect_directions(&sessions, &pairs, &DirectionConfig::default());
        assert_eq!(out[0].caller, None);
        assert!(out[0].p_value > 0.5);
        assert_eq!(out[0].n_bursts(), 20);
    }

    #[test]
    fn too_few_bursts_stay_undecided() {
        let sessions = caller_callee_sessions(2); // 4 bursts < min 8
        let pairs = vec![(SourceId(1), SourceId(2))];
        let out = detect_directions(&sessions, &pairs, &DirectionConfig::default());
        assert_eq!(out[0].caller, None, "min_bursts gate must hold");
        assert_eq!(out[0].n_bursts(), 4);
    }

    #[test]
    fn only_first_adjacency_per_burst_counts() {
        // Within one burst the pair co-occurs three times; only the
        // first counts, so a single burst contributes exactly one lead.
        let s = session(&[(0, 1), (10, 2), (20, 1), (30, 2), (40, 1), (50, 2)]);
        let pairs = vec![(SourceId(1), SourceId(2))];
        let out = detect_directions(&[s], &pairs, &DirectionConfig::default());
        assert_eq!(out[0].n_bursts(), 1);
        assert_eq!(out[0].a_led, 1);
    }

    #[test]
    fn unrelated_pairs_report_zero_evidence() {
        let sessions = caller_callee_sessions(3);
        let pairs = vec![(SourceId(5), SourceId(6))];
        let out = detect_directions(&sessions, &pairs, &DirectionConfig::default());
        assert_eq!(out[0].n_bursts(), 0);
        assert_eq!(out[0].p_value, 1.0);
        assert_eq!(out[0].caller, None);
    }

    #[test]
    fn empty_inputs() {
        let out = detect_directions(&[], &[], &DirectionConfig::default());
        assert!(out.is_empty());
    }
}
