//! Bigram extraction and counting.

use logdep_logstore::SourceId;
use logdep_par::{par_chunks_fold, ParConfig};
use logdep_sessions::Session;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Frequency data of all bigrams extracted from a session set.
///
/// Uses the `(f, f1, f2, N)` marginal representation of Evert's UCS
/// toolkit: the joint count per ordered type plus the two margins and
/// the grand total, from which each 2×2 table is reconstructed.
///
/// The maps are `BTreeMap`s so iteration, serialization, and shard
/// merges are deterministically ordered — equal counts serialize to
/// byte-identical snapshots, which the incremental cache relies on.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BigramCounts {
    /// Joint counts per ordered `(first, second)` source pair.
    pub joint: BTreeMap<(SourceId, SourceId), u64>,
    /// Count of bigrams whose first component is the given source.
    pub first_margin: BTreeMap<SourceId, u64>,
    /// Count of bigrams whose second component is the given source.
    pub second_margin: BTreeMap<SourceId, u64>,
    /// Total number of bigrams.
    pub total: u64,
}

impl BigramCounts {
    /// Number of distinct ordered pair types observed.
    pub fn n_types(&self) -> usize {
        self.joint.len()
    }
}

/// Extracts bigrams from sessions.
///
/// For each pair of immediately succeeding logs `(a, b)` within one
/// session: the bigram is skipped when `a` and `b` share the source
/// (§3.2: "we ignore bigrams where a = b") or when `timeout_ms` is
/// finite and the gap exceeds it. Note the paper's semantics: a skipped
/// *timeout* bigram still advances the window — the successor of a
/// too-distant pair starts from the later log.
pub fn extract_bigrams(sessions: &[Session], timeout_ms: Option<i64>) -> BigramCounts {
    extract_bigrams_pool(sessions, timeout_ms, &ParConfig::serial())
}

/// [`extract_bigrams`] sharded over the pool: sessions are split into
/// contiguous chunks, each worker counts into a private contingency
/// map, and the per-shard maps are merged with saturating adds in
/// shard order. Sessions never share a bigram (no window crosses a
/// session boundary) and counter addition is order-free, so the result
/// is identical to the serial count at every thread count.
pub fn extract_bigrams_pool(
    sessions: &[Session],
    timeout_ms: Option<i64>,
    par: &ParConfig,
) -> BigramCounts {
    par_chunks_fold(
        par,
        sessions,
        BigramCounts::default,
        |mut counts, session| {
            count_session(&mut counts, session, timeout_ms);
            counts
        },
        merge_counts,
    )
}

/// Counts one session's bigrams into `counts` — the serial inner loop
/// (also the per-chunk primitive of the windowed cache driver).
pub(crate) fn count_session(counts: &mut BigramCounts, session: &Session, timeout_ms: Option<i64>) {
    for w in session.entries.windows(2) {
        let (first, second) = (w[0], w[1]);
        if first.source == second.source {
            continue;
        }
        if let Some(to) = timeout_ms {
            if second.ts - first.ts > to {
                continue;
            }
        }
        *counts
            .joint
            .entry((first.source, second.source))
            .or_insert(0) += 1;
        *counts.first_margin.entry(first.source).or_insert(0) += 1;
        *counts.second_margin.entry(second.source).or_insert(0) += 1;
        counts.total += 1;
    }
}

/// Merges two shard counts, saturating on overflow so a hostile 2⁶⁴-
/// bigram stream degrades to pinned counters instead of wrapping (the
/// same hardening as the contingency tables downstream).
pub fn merge_counts(mut a: BigramCounts, b: BigramCounts) -> BigramCounts {
    for (key, count) in b.joint {
        let slot = a.joint.entry(key).or_insert(0);
        *slot = slot.saturating_add(count);
    }
    for (key, count) in b.first_margin {
        let slot = a.first_margin.entry(key).or_insert(0);
        *slot = slot.saturating_add(count);
    }
    for (key, count) in b.second_margin {
        let slot = a.second_margin.entry(key).or_insert(0);
        *slot = slot.saturating_add(count);
    }
    a.total = a.total.saturating_add(b.total);
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use logdep_logstore::{HostId, Millis, UserId};
    use logdep_sessions::SessionEntry;

    fn session(entries: &[(i64, u32)]) -> Session {
        Session {
            user: UserId(0),
            host: HostId(0),
            entries: entries
                .iter()
                .map(|&(t, s)| SessionEntry {
                    ts: Millis(t),
                    source: SourceId(s),
                })
                .collect(),
        }
    }

    /// The running example of §3.2 / Figure 3: A2 calls A1, then twice
    /// A3 which calls A4. Log sequence (by source index):
    /// 2,1,2,3,4,2,3,4,2 with the final gap of 0.6 s.
    fn paper_session() -> Session {
        session(&[
            (0, 2),
            (100, 1),
            (200, 2),
            (300, 3),
            (400, 4),
            (500, 2),
            (600, 3),
            (700, 4),
            (1300, 2), // 0.6 s gap before the last log
        ])
    }

    #[test]
    fn paper_example_without_timeout() {
        let counts = extract_bigrams(&[paper_session()], None);
        // 8 bigrams, as listed in the paper.
        assert_eq!(counts.total, 8);
        let j = |a: u32, b: u32| {
            counts
                .joint
                .get(&(SourceId(a), SourceId(b)))
                .copied()
                .unwrap_or(0)
        };
        assert_eq!(j(2, 1), 1);
        assert_eq!(j(1, 2), 1);
        assert_eq!(j(2, 3), 2);
        assert_eq!(j(3, 4), 2);
        assert_eq!(j(4, 2), 2);
        assert_eq!(counts.n_types(), 5);
    }

    #[test]
    fn paper_example_contingency_for_a2_a3() {
        // Figure 4: for type (A2, A3): o11 = 2, o12 = 0, o21 = 1, o22 = 5.
        let counts = extract_bigrams(&[paper_session()], None);
        let f = counts.joint[&(SourceId(2), SourceId(3))];
        let f1 = counts.first_margin[&SourceId(2)];
        let f2 = counts.second_margin[&SourceId(3)];
        let n = counts.total;
        assert_eq!((f, f1, f2, n), (2, 3, 2, 8));
        let table = logdep_stats::contingency::Table2x2::from_marginals(f, f1, f2, n).unwrap();
        assert_eq!(table, logdep_stats::contingency::Table2x2::new(2, 0, 1, 5));
    }

    #[test]
    fn timeout_drops_the_last_bigram() {
        // "for any timeout value between 0 and 0.5 seconds" the final
        // (A4, A2) bigram disappears (gap = 0.6 s).
        let counts = extract_bigrams(&[paper_session()], Some(500));
        assert_eq!(counts.total, 7);
        assert_eq!(counts.joint[&(SourceId(4), SourceId(2))], 1);
        // Timeout above the gap keeps it.
        let counts = extract_bigrams(&[paper_session()], Some(600));
        assert_eq!(counts.total, 8);
    }

    #[test]
    fn same_source_bigrams_ignored() {
        let s = session(&[(0, 1), (10, 1), (20, 2)]);
        let counts = extract_bigrams(&[s], None);
        assert_eq!(counts.total, 1);
        assert_eq!(counts.joint[&(SourceId(1), SourceId(2))], 1);
    }

    #[test]
    fn multiple_sessions_accumulate_independently() {
        let s1 = session(&[(0, 1), (10, 2)]);
        let s2 = session(&[(1_000_000, 1), (1_000_010, 2)]);
        let counts = extract_bigrams(&[s1, s2], None);
        assert_eq!(counts.total, 2);
        assert_eq!(counts.joint[&(SourceId(1), SourceId(2))], 2);
        // No bigram across the session boundary even though the gap
        // logic alone would allow it.
        assert!(!counts.joint.contains_key(&(SourceId(2), SourceId(1))));
    }

    #[test]
    fn empty_and_singleton_sessions() {
        let counts = extract_bigrams(&[session(&[(0, 1)])], None);
        assert_eq!(counts.total, 0);
        let counts = extract_bigrams(&[], None);
        assert_eq!(counts.total, 0);
        assert_eq!(counts.n_types(), 0);
    }

    #[test]
    fn sharded_extraction_matches_serial_at_any_thread_count() {
        // Many small sessions with varied structure; shard boundaries
        // land all over the place across thread counts.
        let sessions: Vec<Session> = (0..37)
            .map(|k| {
                let base = k as i64 * 100_000;
                session(&[
                    (base, k % 5),
                    (base + 100, (k + 1) % 5),
                    (base + 900, (k + 2) % 5),
                    (base + 2_000, k % 5),
                ])
            })
            .collect();
        let serial = extract_bigrams(&sessions, Some(1_000));
        for threads in [2usize, 3, 8] {
            let par = ParConfig::with_threads(threads).expect("nonzero");
            let sharded = extract_bigrams_pool(&sessions, Some(1_000), &par);
            assert_eq!(sharded, serial, "threads = {threads}");
        }
    }

    #[test]
    fn merge_counts_saturates_instead_of_wrapping() {
        let mut a = BigramCounts::default();
        a.joint.insert((SourceId(1), SourceId(2)), u64::MAX - 1);
        a.total = u64::MAX - 1;
        let mut b = BigramCounts::default();
        b.joint.insert((SourceId(1), SourceId(2)), 5);
        b.total = 5;
        let merged = merge_counts(a, b);
        assert_eq!(merged.joint[&(SourceId(1), SourceId(2))], u64::MAX);
        assert_eq!(merged.total, u64::MAX);
    }

    #[test]
    fn margins_are_consistent() {
        let counts = extract_bigrams(&[paper_session()], None);
        let sum_first: u64 = counts.first_margin.values().sum();
        let sum_second: u64 = counts.second_margin.values().sum();
        let sum_joint: u64 = counts.joint.values().sum();
        assert_eq!(sum_first, counts.total);
        assert_eq!(sum_second, counts.total);
        assert_eq!(sum_joint, counts.total);
    }
}
