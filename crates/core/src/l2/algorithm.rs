//! The session-mining runner of technique L2.

use super::bigrams::{extract_bigrams_pool, BigramCounts};
use crate::model::PairModel;
use logdep_logstore::time::TimeRange;
use logdep_logstore::{LogStore, SourceId};
use logdep_par::ParConfig;
use logdep_sessions::{reconstruct_range, SessionConfig, SessionStats};
use logdep_stats::contingency::{association_test, AssociationStatistic, Table2x2};
use serde::{Deserialize, Serialize};

/// Parameters of technique L2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct L2Config {
    /// Bigram timeout in milliseconds; `None` reproduces the
    /// no-timeout ("infinity") configuration of §4.7.
    pub timeout_ms: Option<i64>,
    /// Significance level of the association gate.
    pub alpha: f64,
    /// Association statistic (the paper: Dunning's G²).
    pub statistic: AssociationStatistic,
    /// Minimum joint count for a pair type to be considered at all;
    /// guards the χ² approximation against single-occurrence types.
    pub min_joint: u64,
    /// Session reconstruction parameters.
    pub session: SessionConfig,
}

impl Default for L2Config {
    fn default() -> Self {
        Self {
            timeout_ms: Some(1_000), // the paper's headline setting
            alpha: 0.01,
            statistic: AssociationStatistic::Dunning,
            min_joint: 3,
            session: SessionConfig::default(),
        }
    }
}

impl L2Config {
    /// The paper's configuration with the given timeout (§4.6/§4.7).
    pub fn with_timeout(timeout_ms: Option<i64>) -> Self {
        Self {
            timeout_ms,
            ..Self::default()
        }
    }

    /// Validates parameter ranges.
    pub fn validate(&self) -> crate::Result<()> {
        if !(self.alpha > 0.0 && self.alpha < 1.0) {
            return Err(crate::MineError::InvalidConfig {
                name: "alpha",
                reason: format!("{} outside (0, 1)", self.alpha),
            });
        }
        if let Some(t) = self.timeout_ms {
            if t <= 0 {
                return Err(crate::MineError::InvalidConfig {
                    name: "timeout_ms",
                    reason: "must be positive (use None for infinity)".into(),
                });
            }
        }
        Ok(())
    }
}

/// Outcome of the association test for one ordered pair type.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PairTypeOutcome {
    /// First source of the bigram type.
    pub first: SourceId,
    /// Second source.
    pub second: SourceId,
    /// Joint count `f`.
    pub joint: u64,
    /// Association statistic value (G² or X²).
    pub statistic: f64,
    /// p-value against χ²₁.
    pub p_value: f64,
    /// Whether the type passed the one-sided gate at `alpha`.
    pub significant: bool,
}

/// Result of an L2 run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct L2Result {
    /// Unordered pairs declared dependent (union over ordered types).
    pub detected: PairModel,
    /// Per-ordered-type detail.
    pub outcomes: Vec<PairTypeOutcome>,
    /// The bigram counts the tests ran on.
    pub bigrams: BigramCounts,
    /// Session reconstruction statistics.
    pub session_stats: SessionStats,
}

/// Runs technique L2 on the records within `range`. Thread count comes
/// from [`ParConfig::default`] (`LOGDEP_THREADS` or the hardware);
/// results are bit-identical at every thread count.
pub fn run_l2(store: &LogStore, range: TimeRange, cfg: &L2Config) -> crate::Result<L2Result> {
    run_l2_pool(store, range, cfg, &ParConfig::default())
}

/// [`run_l2`] with an explicit worker-pool configuration. Bigram
/// counting shards across sessions on the pool (see
/// [`extract_bigrams_pool`]); the G² pass over the deterministic,
/// sorted type list stays serial — it is a few hundred 2×2 tests.
pub fn run_l2_pool(
    store: &LogStore,
    range: TimeRange,
    cfg: &L2Config,
    par: &ParConfig,
) -> crate::Result<L2Result> {
    cfg.validate()?;
    let session_set = reconstruct_range(store, range, &cfg.session);
    let bigrams = extract_bigrams_pool(&session_set.sessions, cfg.timeout_ms, par);
    let (detected, outcomes) = associations(&bigrams, cfg);
    Ok(L2Result {
        detected,
        outcomes,
        bigrams,
        session_stats: session_set.stats,
    })
}

/// The significance pass of L2: tests every ordered type in `bigrams`
/// against the χ²₁ gate and collects the detected pair model. Shared
/// between the batch runner and the windowed cache driver, so both
/// produce byte-identical outputs from equal counts. Iteration follows
/// the `BTreeMap` key order — deterministic by construction.
pub(crate) fn associations(
    bigrams: &BigramCounts,
    cfg: &L2Config,
) -> (PairModel, Vec<PairTypeOutcome>) {
    let mut detected = PairModel::new();
    let mut outcomes = Vec::new();
    for (&(first, second), &f) in bigrams.joint.iter() {
        if f < cfg.min_joint {
            continue;
        }
        let f1 = bigrams.first_margin[&first];
        let f2 = bigrams.second_margin[&second];
        let table = match Table2x2::from_marginals(f, f1, f2, bigrams.total) {
            Ok(t) => t,
            Err(_) => continue, // inconsistent margins cannot happen; skip defensively
        };
        let result = match association_test(&table, cfg.statistic) {
            Ok(r) => r,
            Err(_) => continue, // degenerate table (zero margin)
        };
        let significant = result.significant_at(cfg.alpha);
        if significant {
            detected.insert(first, second);
        }
        outcomes.push(PairTypeOutcome {
            first,
            second,
            joint: f,
            statistic: result.statistic,
            p_value: result.p_value,
            significant,
        });
    }
    (detected, outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use logdep_logstore::time::MS_PER_HOUR;
    use logdep_logstore::{LogRecord, Millis};

    /// Store with many sessions in which app 0 always precedes app 1
    /// (caller/callee), while app 2 floats independently through the
    /// sessions.
    fn sessioned_store(n_sessions: usize) -> (LogStore, Vec<SourceId>) {
        let mut store = LogStore::new();
        let s0 = store.registry.source("Caller");
        let s1 = store.registry.source("Callee");
        let s2 = store.registry.source("Floater");
        let user = store.registry.user("u");
        for k in 0..n_sessions {
            let host = store.registry.host(&format!("ws-{k}"));
            let base = (k as i64) * MS_PER_HOUR / 64;
            // Interleaved pattern: floater appears at shifting offsets
            // so it pairs with different neighbours across sessions.
            for round in 0..4i64 {
                let t = base + round * 4_000;
                store.push(
                    LogRecord::minimal(s0, Millis(t))
                        .with_user(user)
                        .with_host(host),
                );
                store.push(
                    LogRecord::minimal(s1, Millis(t + 120))
                        .with_user(user)
                        .with_host(host),
                );
                let float_off = 1_200 + ((k as i64 * 7 + round * 13) % 17) * 150;
                store.push(
                    LogRecord::minimal(s2, Millis(t + float_off))
                        .with_user(user)
                        .with_host(host),
                );
            }
        }
        store.finalize();
        (store, vec![s0, s1, s2])
    }

    fn range() -> TimeRange {
        TimeRange::new(Millis(0), Millis(MS_PER_HOUR))
    }

    #[test]
    fn detects_caller_callee_pair() {
        let (store, s) = sessioned_store(40);
        let res = run_l2(&store, range(), &L2Config::default()).unwrap();
        assert!(
            res.detected.contains(s[0], s[1]),
            "caller/callee pair missed; outcomes: {:?}",
            res.outcomes
        );
        assert!(res.session_stats.n_sessions >= 35);
        assert!(res.bigrams.total > 100);
    }

    #[test]
    fn causal_pair_outranks_concurrency_pair() {
        // In a session the floater trails the causal pair at varying
        // offsets — the very concurrency noise §4.6 blames for L2's
        // false positives. The periodic structure makes *every* ordered
        // type somewhat associated, but the tight caller→callee type
        // must carry (much) more evidence than the floater→caller one.
        let (store, s) = sessioned_store(40);
        let res = run_l2(&store, range(), &L2Config::default()).unwrap();
        // Only *immediately succeeding* logs form bigrams: the callee
        // always intervenes between caller and floater, so the ordered
        // type (Caller → Floater) must never be observed at all, while
        // the causal (Caller → Callee) type is significant.
        assert!(
            !res.outcomes
                .iter()
                .any(|o| o.first == s[0] && o.second == s[2]),
            "caller→floater bigram should not exist"
        );
        let causal = res
            .outcomes
            .iter()
            .find(|o| o.first == s[0] && o.second == s[1])
            .expect("causal type observed");
        assert!(causal.significant);
        // The trailing concurrency types carry fewer joint observations
        // than the causal type (most floater gaps exceed the timeout).
        let noise_joint: u64 = res
            .outcomes
            .iter()
            .filter(|o| o.first == s[2] || o.second == s[2])
            .map(|o| o.joint)
            .sum();
        assert!(
            causal.joint > noise_joint,
            "causal joint {} vs noise joint {noise_joint}",
            causal.joint
        );
    }

    #[test]
    fn timeout_prunes_distant_bigrams() {
        let (store, _) = sessioned_store(30);
        let with_to = run_l2(&store, range(), &L2Config::with_timeout(Some(300))).unwrap();
        let without = run_l2(&store, range(), &L2Config::with_timeout(None)).unwrap();
        assert!(
            with_to.bigrams.total < without.bigrams.total,
            "timeout did not drop bigrams ({} vs {})",
            with_to.bigrams.total,
            without.bigrams.total
        );
    }

    #[test]
    fn pearson_variant_runs() {
        let (store, s) = sessioned_store(40);
        let cfg = L2Config {
            statistic: AssociationStatistic::Pearson,
            ..L2Config::default()
        };
        let res = run_l2(&store, range(), &cfg).unwrap();
        assert!(res.detected.contains(s[0], s[1]));
    }

    #[test]
    fn min_joint_filters_rare_types() {
        let (store, _) = sessioned_store(10);
        let strict = L2Config {
            min_joint: 10_000,
            ..L2Config::default()
        };
        let res = run_l2(&store, range(), &strict).unwrap();
        assert!(res.detected.is_empty());
        assert!(res.outcomes.is_empty());
    }

    #[test]
    fn empty_range_yields_empty_result() {
        let (store, _) = sessioned_store(5);
        let empty = TimeRange::new(Millis(MS_PER_HOUR * 20), Millis(MS_PER_HOUR * 21));
        let res = run_l2(&store, empty, &L2Config::default()).unwrap();
        assert!(res.detected.is_empty());
        assert_eq!(res.bigrams.total, 0);
        assert_eq!(res.session_stats.n_sessions, 0);
    }

    #[test]
    fn invalid_configs_rejected() {
        let (store, _) = sessioned_store(2);
        let bad = L2Config {
            alpha: 0.0,
            ..L2Config::default()
        };
        assert!(run_l2(&store, range(), &bad).is_err());
        let bad = L2Config {
            timeout_ms: Some(0),
            ..L2Config::default()
        };
        assert!(run_l2(&store, range(), &bad).is_err());
    }

    #[test]
    fn deterministic() {
        let (store, _) = sessioned_store(20);
        let a = run_l2(&store, range(), &L2Config::default()).unwrap();
        let b = run_l2(&store, range(), &L2Config::default()).unwrap();
        assert_eq!(a.detected, b.detected);
        assert_eq!(a.outcomes, b.outcomes);
    }
}
