//! Technique L2: co-occurrence statistics on user sessions.
//!
//! §3.2 of the paper. Sessions (from `logdep-sessions`) are treated as
//! ordered sequences of activity statements. All pairs of immediately
//! succeeding logs become *bigrams* — dropping same-source pairs and,
//! with a finite **timeout**, pairs separated by a longer gap. Each
//! observed ordered pair type gets a 2×2 contingency table over all
//! bigrams, tested for (positive) association with Dunning's
//! log-likelihood statistic following Evert's UCS methodology.
//!
//! Two of the paper's §5 improvement directions are implemented on
//! top: [`detect_directions`] infers *who calls whom* from burst-lead
//! counts, and [`delay_profiles`] separates causal from concurrency
//! co-occurrence by testing bigram delays for a typical latency.

mod algorithm;
mod bigrams;
mod delays;
mod direction;

pub(crate) use algorithm::associations;
pub use algorithm::{run_l2, run_l2_pool, L2Config, L2Result, PairTypeOutcome};
pub(crate) use bigrams::count_session;
pub use bigrams::{extract_bigrams, extract_bigrams_pool, merge_counts, BigramCounts};
pub use delays::{delay_profiles, DelayConfig, DelayProfile};
pub use direction::{detect_directions, DirectionConfig, DirectionOutcome};
