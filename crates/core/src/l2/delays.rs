//! Typical-delay analysis for L2-discovered pairs (§5 of the paper).
//!
//! "Another direction for improvement is to apply algorithms like the
//! ones presented in [1, 3, 25] to analyze *typical delays* between
//! logs. In case of L2, this might help to distinguish frequent
//! co-occurrences due to concurrency from those that are causally
//! related."
//!
//! Implemented after Agrawal et al. [1]: for each ordered pair type,
//! collect the bigram gaps, build a histogram, and run a χ² test
//! against the uniform distribution. Causally related pairs show
//! *typical* delays (a spiked histogram — the service latency);
//! concurrency-induced co-occurrences show gaps spread evenly over the
//! timeout window.

use logdep_logstore::SourceId;
use logdep_sessions::Session;
use logdep_stats::chi2;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Parameters of the delay analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DelayConfig {
    /// Only gaps in `[0, window_ms)` are analyzed (reuse L2's timeout).
    pub window_ms: i64,
    /// Number of histogram bins.
    pub bins: usize,
    /// Significance level of the χ² uniformity test.
    pub alpha: f64,
    /// Minimum number of gap observations before testing.
    pub min_gaps: usize,
}

impl Default for DelayConfig {
    fn default() -> Self {
        Self {
            window_ms: 1_000,
            bins: 10,
            alpha: 0.01,
            min_gaps: 20,
        }
    }
}

/// Delay profile of one ordered pair type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DelayProfile {
    /// First source of the type.
    pub first: SourceId,
    /// Second source.
    pub second: SourceId,
    /// Gap histogram over `[0, window_ms)`.
    pub histogram: Vec<u32>,
    /// Number of gaps collected.
    pub n_gaps: usize,
    /// Pearson χ² statistic against uniform.
    pub x2: f64,
    /// p-value with `bins − 1` degrees of freedom.
    pub p_value: f64,
    /// True when the delays are significantly non-uniform — evidence
    /// of a *causal* (typical-latency) relationship.
    pub causal: bool,
}

/// Analyzes bigram delays for the given ordered pair types.
pub fn delay_profiles(
    sessions: &[Session],
    types: &[(SourceId, SourceId)],
    cfg: &DelayConfig,
) -> Vec<DelayProfile> {
    assert!(cfg.bins >= 2, "need at least two histogram bins");
    assert!(cfg.window_ms > 0, "window must be positive");
    let index: HashMap<(SourceId, SourceId), usize> =
        types.iter().enumerate().map(|(i, &t)| (t, i)).collect();
    let mut histograms = vec![vec![0u32; cfg.bins]; types.len()];

    for session in sessions {
        for w in session.entries.windows(2) {
            let gap = w[1].ts - w[0].ts;
            if gap < 0 || gap >= cfg.window_ms {
                continue;
            }
            if let Some(&i) = index.get(&(w[0].source, w[1].source)) {
                let bin = (gap * cfg.bins as i64 / cfg.window_ms) as usize;
                histograms[i][bin.min(cfg.bins - 1)] += 1;
            }
        }
    }

    types
        .iter()
        .zip(histograms)
        .map(|(&(first, second), histogram)| {
            let n: u32 = histogram.iter().sum();
            let expected = n as f64 / cfg.bins as f64;
            let x2: f64 = if n == 0 {
                0.0
            } else {
                histogram
                    .iter()
                    .map(|&o| {
                        let d = o as f64 - expected;
                        d * d / expected
                    })
                    .sum()
            };
            let df = (cfg.bins - 1) as f64;
            let p_value = if n == 0 {
                1.0
            } else {
                chi2::sf(x2, df).unwrap_or(1.0)
            };
            DelayProfile {
                first,
                second,
                causal: (n as usize) >= cfg.min_gaps && p_value <= cfg.alpha,
                n_gaps: n as usize,
                histogram,
                x2,
                p_value,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use logdep_logstore::{HostId, Millis, UserId};
    use logdep_sessions::SessionEntry;

    fn session(entries: &[(i64, u32)]) -> Session {
        Session {
            user: UserId(0),
            host: HostId(0),
            entries: entries
                .iter()
                .map(|&(t, s)| SessionEntry {
                    ts: Millis(t),
                    source: SourceId(s),
                })
                .collect(),
        }
    }

    #[test]
    fn typical_latency_is_flagged_causal() {
        // Gap is always ~120 ms: a service latency.
        let mut entries = Vec::new();
        for k in 0..60i64 {
            entries.push((k * 10_000, 1));
            entries.push((k * 10_000 + 118 + (k % 5), 2));
        }
        let s = session(&entries);
        let types = vec![(SourceId(1), SourceId(2))];
        let out = delay_profiles(&[s], &types, &DelayConfig::default());
        let p = &out[0];
        assert_eq!(p.n_gaps, 60);
        assert!(p.causal, "spiked delays must be causal: {p:?}");
        // All mass in one bin (gap ≈ 120 ms of a 1000 ms window → bin 1).
        assert_eq!(p.histogram[1], 60);
    }

    #[test]
    fn uniform_gaps_are_not_causal() {
        // Gaps spread evenly over the window: concurrency, not causality.
        let mut entries = Vec::new();
        let mut t = 0i64;
        for k in 0..200i64 {
            entries.push((t, 1));
            t += 50 + (k * 37) % 900; // pseudo-uniform gap in [50, 950)
            entries.push((t, 2));
            t += 5_000; // separate occurrences
        }
        let s = session(&entries);
        let types = vec![(SourceId(1), SourceId(2))];
        let out = delay_profiles(&[s], &types, &DelayConfig::default());
        let p = &out[0];
        assert!(p.n_gaps > 150);
        assert!(!p.causal, "uniform delays flagged causal: {p:?}");
    }

    #[test]
    fn min_gaps_gate() {
        let s = session(&[(0, 1), (100, 2), (10_000, 1), (10_100, 2)]);
        let types = vec![(SourceId(1), SourceId(2))];
        let out = delay_profiles(&[s], &types, &DelayConfig::default());
        assert_eq!(out[0].n_gaps, 2);
        assert!(!out[0].causal, "two observations cannot decide");
    }

    #[test]
    fn gaps_outside_window_ignored() {
        let s = session(&[(0, 1), (5_000, 2)]);
        let types = vec![(SourceId(1), SourceId(2))];
        let out = delay_profiles(&[s], &types, &DelayConfig::default());
        assert_eq!(out[0].n_gaps, 0);
        assert_eq!(out[0].p_value, 1.0);
    }

    #[test]
    fn ordered_types_are_distinct() {
        let s = session(&[(0, 1), (100, 2), (10_000, 2), (10_100, 1)]);
        let types = vec![(SourceId(1), SourceId(2)), (SourceId(2), SourceId(1))];
        let out = delay_profiles(&[s], &types, &DelayConfig::default());
        assert_eq!(out[0].n_gaps, 1);
        assert_eq!(out[1].n_gaps, 1);
    }

    #[test]
    #[should_panic(expected = "two histogram bins")]
    fn bad_config_panics() {
        let cfg = DelayConfig {
            bins: 1,
            ..DelayConfig::default()
        };
        delay_profiles(&[], &[], &cfg);
    }
}
