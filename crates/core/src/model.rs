//! Dependency models and their comparison against a reference.
//!
//! The paper uses two model flavours (§4.3):
//!
//! * an undirected **pair model** over applications — "pairs of log
//!   sources, which are said to be dependent if they are directly
//!   interacting"; produced by techniques L1 and L2;
//! * an **application → service model** — pairs of an application and a
//!   service-directory entry it uses; produced by technique L3.
//!
//! [`diff_pairs`] / [`diff_app_service`] compute the true/false
//! positive/negative partition against a reference model, yielding the
//! per-day counts plotted in Figures 5, 6 and 8.

use logdep_logstore::{NameRegistry, SourceId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// An undirected dependency model over applications. Pairs are stored
/// normalized (`a < b` by id) and self-pairs are rejected.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PairModel {
    pairs: BTreeSet<(SourceId, SourceId)>,
}

impl PairModel {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts the unordered pair `{a, b}`. Self-pairs are ignored.
    /// Returns whether the pair was newly inserted.
    pub fn insert(&mut self, a: SourceId, b: SourceId) -> bool {
        if a == b {
            return false;
        }
        self.pairs.insert(normalize(a, b))
    }

    /// Membership test, order-insensitive.
    pub fn contains(&self, a: SourceId, b: SourceId) -> bool {
        a != b && self.pairs.contains(&normalize(a, b))
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when no pair is present.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Iterates normalized pairs in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = (SourceId, SourceId)> + '_ {
        self.pairs.iter().copied()
    }

    /// Builds a model from `(name, name)` pairs resolved against a
    /// registry. Unresolvable names yield an error — a reference model
    /// naming an application that never logged is a configuration
    /// problem the caller must see.
    pub fn from_names<'a>(
        registry: &NameRegistry,
        names: impl IntoIterator<Item = (&'a str, &'a str)>,
    ) -> crate::Result<Self> {
        let mut model = Self::new();
        for (a, b) in names {
            let ia = registry
                .find_source(a)
                .ok_or_else(|| crate::MineError::UnknownName(a.to_owned()))?;
            let ib = registry
                .find_source(b)
                .ok_or_else(|| crate::MineError::UnknownName(b.to_owned()))?;
            model.insert(ia, ib);
        }
        Ok(model)
    }
}

impl FromIterator<(SourceId, SourceId)> for PairModel {
    fn from_iter<I: IntoIterator<Item = (SourceId, SourceId)>>(iter: I) -> Self {
        let mut m = Self::new();
        for (a, b) in iter {
            m.insert(a, b);
        }
        m
    }
}

fn normalize(a: SourceId, b: SourceId) -> (SourceId, SourceId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// A directed application → service dependency model. Services are
/// identified by their index in the service directory used for mining.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AppServiceModel {
    deps: BTreeSet<(SourceId, usize)>,
}

impl AppServiceModel {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a dependency of `app` on service `service_idx`.
    pub fn insert(&mut self, app: SourceId, service_idx: usize) -> bool {
        self.deps.insert((app, service_idx))
    }

    /// Membership test.
    pub fn contains(&self, app: SourceId, service_idx: usize) -> bool {
        self.deps.contains(&(app, service_idx))
    }

    /// Number of dependencies.
    pub fn len(&self) -> usize {
        self.deps.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.deps.is_empty()
    }

    /// Iterates dependencies in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = (SourceId, usize)> + '_ {
        self.deps.iter().copied()
    }

    /// Builds a model from `(app name, service id)` pairs, resolving app
    /// names against the registry and service ids against the directory
    /// id list used for mining.
    pub fn from_names<'a>(
        registry: &NameRegistry,
        service_ids: &[String],
        names: impl IntoIterator<Item = (&'a str, &'a str)>,
    ) -> crate::Result<Self> {
        let mut model = Self::new();
        for (app, svc) in names {
            let ia = registry
                .find_source(app)
                .ok_or_else(|| crate::MineError::UnknownName(app.to_owned()))?;
            let is = service_ids
                .iter()
                .position(|s| s == svc)
                .ok_or_else(|| crate::MineError::UnknownName(svc.to_owned()))?;
            model.insert(ia, is);
        }
        Ok(model)
    }
}

impl FromIterator<(SourceId, usize)> for AppServiceModel {
    fn from_iter<I: IntoIterator<Item = (SourceId, usize)>>(iter: I) -> Self {
        let mut m = Self::new();
        for (a, s) in iter {
            m.insert(a, s);
        }
        m
    }
}

/// The outcome of comparing a detected model against a reference.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diff<T: Ord> {
    /// Detected and in the reference.
    pub true_pos: Vec<T>,
    /// Detected but not in the reference.
    pub false_pos: Vec<T>,
    /// In the reference but not detected.
    pub false_neg: Vec<T>,
}

impl<T: Ord> Default for Diff<T> {
    fn default() -> Self {
        Self {
            true_pos: Vec::new(),
            false_pos: Vec::new(),
            false_neg: Vec::new(),
        }
    }
}

impl<T: Ord> Diff<T> {
    /// True-positive count.
    pub fn tp(&self) -> usize {
        self.true_pos.len()
    }

    /// False-positive count.
    pub fn fp(&self) -> usize {
        self.false_pos.len()
    }

    /// False-negative count.
    pub fn fn_(&self) -> usize {
        self.false_neg.len()
    }

    /// Ratio of true positives among all positive decisions — the
    /// number annotated on Figures 5/6/8 of the paper. Zero when there
    /// were no positives.
    pub fn true_positive_ratio(&self) -> f64 {
        let pos = self.tp() + self.fp();
        if pos == 0 {
            0.0
        } else {
            self.tp() as f64 / pos as f64
        }
    }

    /// Recall against the reference.
    pub fn recall(&self) -> f64 {
        let refs = self.tp() + self.fn_();
        if refs == 0 {
            0.0
        } else {
            self.tp() as f64 / refs as f64
        }
    }
}

/// Compares a detected pair model against a reference pair model.
pub fn diff_pairs(detected: &PairModel, reference: &PairModel) -> Diff<(SourceId, SourceId)> {
    let mut d = Diff::default();
    for p in detected.iter() {
        if reference.contains(p.0, p.1) {
            d.true_pos.push(p);
        } else {
            d.false_pos.push(p);
        }
    }
    for p in reference.iter() {
        if !detected.contains(p.0, p.1) {
            d.false_neg.push(p);
        }
    }
    d
}

/// Compares a detected app→service model against a reference.
pub fn diff_app_service(
    detected: &AppServiceModel,
    reference: &AppServiceModel,
) -> Diff<(SourceId, usize)> {
    let mut d = Diff::default();
    for p in detected.iter() {
        if reference.contains(p.0, p.1) {
            d.true_pos.push(p);
        } else {
            d.false_pos.push(p);
        }
    }
    for p in reference.iter() {
        if !detected.contains(p.0, p.1) {
            d.false_neg.push(p);
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u32) -> SourceId {
        SourceId(i)
    }

    #[test]
    fn pair_model_normalizes_and_dedups() {
        let mut m = PairModel::new();
        assert!(m.insert(s(2), s(1)));
        assert!(!m.insert(s(1), s(2)), "duplicate in other order");
        assert!(!m.insert(s(3), s(3)), "self pair rejected");
        assert_eq!(m.len(), 1);
        assert!(m.contains(s(1), s(2)));
        assert!(m.contains(s(2), s(1)));
        assert!(!m.contains(s(1), s(1)));
        let pairs: Vec<_> = m.iter().collect();
        assert_eq!(pairs, vec![(s(1), s(2))]);
    }

    #[test]
    fn pair_model_from_names() {
        let mut reg = NameRegistry::new();
        reg.source("A");
        reg.source("B");
        let m = PairModel::from_names(&reg, [("B", "A")]).unwrap();
        assert_eq!(m.len(), 1);
        assert!(PairModel::from_names(&reg, [("A", "Zed")]).is_err());
    }

    #[test]
    fn app_service_model_basics() {
        let mut m = AppServiceModel::new();
        assert!(m.insert(s(0), 3));
        assert!(!m.insert(s(0), 3));
        assert!(m.contains(s(0), 3));
        assert!(!m.contains(s(0), 4));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn app_service_from_names() {
        let mut reg = NameRegistry::new();
        reg.source("App");
        let ids = vec!["SVC0".to_owned(), "SVC1".to_owned()];
        let m = AppServiceModel::from_names(&reg, &ids, [("App", "SVC1")]).unwrap();
        assert!(m.contains(s(0), 1));
        assert!(AppServiceModel::from_names(&reg, &ids, [("App", "NOPE")]).is_err());
        assert!(AppServiceModel::from_names(&reg, &ids, [("Ghost", "SVC0")]).is_err());
    }

    #[test]
    fn diff_partitions_correctly() {
        let reference: PairModel = [(s(1), s(2)), (s(1), s(3)), (s(2), s(3))]
            .into_iter()
            .collect();
        let detected: PairModel = [(s(1), s(2)), (s(1), s(4))].into_iter().collect();
        let d = diff_pairs(&detected, &reference);
        assert_eq!(d.tp(), 1);
        assert_eq!(d.fp(), 1);
        assert_eq!(d.fn_(), 2);
        assert_eq!(d.true_positive_ratio(), 0.5);
        assert!((d.recall() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(d.false_pos, vec![(s(1), s(4))]);
    }

    #[test]
    fn diff_app_service_partitions() {
        let reference: AppServiceModel = [(s(0), 0), (s(0), 1)].into_iter().collect();
        let detected: AppServiceModel = [(s(0), 1), (s(1), 0)].into_iter().collect();
        let d = diff_app_service(&detected, &reference);
        assert_eq!((d.tp(), d.fp(), d.fn_()), (1, 1, 1));
    }

    #[test]
    fn empty_diffs() {
        let d = diff_pairs(&PairModel::new(), &PairModel::new());
        assert_eq!(d.true_positive_ratio(), 0.0);
        assert_eq!(d.recall(), 0.0);
    }

    #[test]
    fn from_iterator_collects() {
        let m: PairModel = [(s(5), s(4)), (s(4), s(5))].into_iter().collect();
        assert_eq!(m.len(), 1);
        let m: AppServiceModel = [(s(0), 1)].into_iter().collect();
        assert_eq!(m.len(), 1);
    }
}
