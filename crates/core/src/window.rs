//! Sliding-window incremental pipeline driver.
//!
//! The "around the clock" deployment of §1.2: re-mine the trailing
//! window (say, 7 days) once per day. The batch runners would replay
//! the whole window; the drivers here route every technique through the
//! [`EvidenceCache`] so an advance only recomputes the day that entered
//! the window — the rest hits on content address.
//!
//! Equality with the batch runners is structural, not statistical:
//!
//! * **L1** — slot evidence is cached per slot ([`run_l1_cached`]) and
//!   combined by the very same thresholding pass.
//! * **L2** — sessions of the window are bucketed by their *start day*;
//!   each bucket's [`BigramCounts`] is cached under a digest of the
//!   bucket's sessions and the buckets merge with saturating adds
//!   (order-free), reproducing the whole-window counts exactly. Gap
//!   splitting is local, so interior days' buckets are byte-stable as
//!   the window slides; only the edge days (whose sessions the window
//!   boundary clips) re-digest and recompute.
//! * **L3** — citation counts are additive over any partition of the
//!   records, so the window splits at absolute day boundaries and each
//!   chunk's counts are cached under a digest of its records.

use crate::cache::{
    l2_fingerprint, l3_fingerprint, run_l1_cached, CacheStats, EvidenceCache, EvidenceKey, Fnv,
    L3DayCounts,
};
use crate::health::PipelineConfig;
use crate::l1::L1Result;
use crate::l2::{associations, count_session, merge_counts, BigramCounts, L2Config, L2Result};
use crate::l3::{IncrementalL3, L3Config, L3Result};
use crate::model::AppServiceModel;
use logdep_logstore::time::{TimeRange, MS_PER_DAY};
use logdep_logstore::{LogStore, Millis};
use logdep_obs::{record, Field};
use logdep_sessions::{reconstruct_range, Session};
use std::collections::BTreeMap;

/// Everything one windowed pipeline pass produced, plus the cache
/// traffic it caused.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowOutcome {
    /// The analysis window.
    pub window: TimeRange,
    /// L1 result, when enabled in the [`PipelineConfig`].
    pub l1: Option<L1Result>,
    /// L2 result, when enabled.
    pub l2: Option<L2Result>,
    /// L3 result, when enabled.
    pub l3: Option<L3Result>,
    /// Hit/miss counters of *this pass only*.
    pub stats: CacheStats,
}

/// Runs every enabled technique of `cfg` over `window` through the
/// cache, then evicts entries that slid out of the window. The results
/// are byte-identical to [`crate::health::run_pipeline`]'s per-layer
/// outcomes on the same window.
pub fn run_window_cached(
    store: &LogStore,
    window: TimeRange,
    service_ids: &[String],
    cfg: &PipelineConfig,
    cache: &mut EvidenceCache,
) -> crate::Result<WindowOutcome> {
    let before = cache.stats();
    record(|r| {
        r.span_begin(
            "window",
            &[
                ("start_ms", Field::from(window.start.0)),
                ("end_ms", Field::from(window.end.0)),
            ],
        );
    });
    let sources = store.active_sources();
    let l1 = match &cfg.l1 {
        Some(c) => Some(run_l1_cached(store, window, &sources, c, &cfg.par, cache)?),
        None => None,
    };
    let l2 = match &cfg.l2 {
        Some(c) => Some(run_l2_windowed_cached(store, window, c, cache)?),
        None => None,
    };
    let l3 = match &cfg.l3 {
        Some(c) => Some(run_l3_windowed_cached(
            store,
            window,
            service_ids,
            c,
            cache,
        )?),
        None => None,
    };
    cache.evict_outside(window);
    let stats = cache.stats().since(&before);
    record(|r| {
        r.span_end(
            "window",
            &[
                ("hits", Field::from(stats.hits())),
                ("misses", Field::from(stats.misses())),
                ("entries", Field::from(cache.len())),
            ],
        );
    });
    Ok(WindowOutcome {
        window,
        l1,
        l2,
        l3,
        stats,
    })
}

/// Technique L2 over `window` with per-day bigram memoization —
/// byte-identical to [`crate::l2::run_l2`] on the same window.
///
/// Sessions are reconstructed for the whole window (cheap — a linear
/// sweep), bucketed by start day, and each bucket's counts are cached
/// under a digest of the bucket's exact session contents. A clipped
/// edge-day session changes its bucket's digest, so boundary effects
/// can never replay stale counts.
pub fn run_l2_windowed_cached(
    store: &LogStore,
    window: TimeRange,
    cfg: &L2Config,
    cache: &mut EvidenceCache,
) -> crate::Result<L2Result> {
    cfg.validate()?;
    record(|r| {
        r.span_begin(
            "window.l2",
            &[
                ("start_ms", Field::from(window.start.0)),
                ("end_ms", Field::from(window.end.0)),
            ],
        );
    });
    let (hits_before, misses_before) = (cache.stats.l2_hits, cache.stats.l2_misses);
    let fp = l2_fingerprint(cfg);
    let session_set = reconstruct_range(store, window, &cfg.session);

    // Bucket sessions by start day. Sessions are ordered by start time,
    // so buckets are contiguous runs and day order equals session order.
    let mut buckets: BTreeMap<i64, Vec<&Session>> = BTreeMap::new();
    for session in &session_set.sessions {
        buckets
            .entry(session.start().0.div_euclid(MS_PER_DAY))
            .or_default()
            .push(session);
    }

    let mut bigrams = BigramCounts::default();
    for (day, sessions) in &buckets {
        let key = EvidenceKey {
            fingerprint: fp,
            start: day.saturating_mul(MS_PER_DAY),
            end: day.saturating_add(1).saturating_mul(MS_PER_DAY),
            digest: sessions_digest(sessions),
        };
        let counts = match cache.l2.get(&key) {
            Some(stored) => {
                cache.stats.l2_hits += 1;
                stored.clone()
            }
            None => {
                cache.stats.l2_misses += 1;
                let mut fresh = BigramCounts::default();
                for session in sessions {
                    count_session(&mut fresh, session, cfg.timeout_ms);
                }
                cache.l2.insert(key, fresh.clone());
                fresh
            }
        };
        bigrams = merge_counts(bigrams, counts);
    }

    let (detected, outcomes) = associations(&bigrams, cfg);
    let (hits, misses) = (
        cache.stats.l2_hits - hits_before,
        cache.stats.l2_misses - misses_before,
    );
    record(|r| {
        r.counter_add("cache.l2.hits", hits);
        r.counter_add("cache.l2.misses", misses);
        r.span_end(
            "window.l2",
            &[
                ("buckets", Field::from(buckets.len())),
                ("hits", Field::from(hits)),
                ("misses", Field::from(misses)),
                ("detected", Field::from(detected.len())),
            ],
        );
    });
    Ok(L2Result {
        detected,
        outcomes,
        bigrams,
        session_stats: session_set.stats,
    })
}

/// Digest of one day bucket's sessions: every user/host key and every
/// entry's timestamp and source, length-framed per session so adjacent
/// sessions cannot alias.
fn sessions_digest(sessions: &[&Session]) -> u64 {
    let mut f = Fnv::new();
    f.push_u64(sessions.len() as u64);
    for session in sessions {
        f.push_u64(u64::from(session.user.0));
        f.push_u64(u64::from(session.host.0));
        f.push_u64(session.entries.len() as u64);
        for entry in &session.entries {
            f.push_i64(entry.ts.0);
            f.push_u64(u64::from(entry.source.0));
        }
    }
    f.finish()
}

/// Technique L3 over `window` with per-day-chunk count memoization —
/// byte-identical to [`crate::l3::run_l3`] on the same window.
/// Each chunk's miss path feeds its records through a fresh
/// [`IncrementalL3`], the very scanner the streaming deployment uses.
pub fn run_l3_windowed_cached(
    store: &LogStore,
    window: TimeRange,
    service_ids: &[String],
    cfg: &L3Config,
    cache: &mut EvidenceCache,
) -> crate::Result<L3Result> {
    record(|r| {
        r.span_begin(
            "window.l3",
            &[
                ("start_ms", Field::from(window.start.0)),
                ("end_ms", Field::from(window.end.0)),
            ],
        );
    });
    let (hits_before, misses_before) = (cache.stats.l3_hits, cache.stats.l3_misses);
    let fp = l3_fingerprint(cfg, service_ids);
    let mut citations: BTreeMap<(logdep_logstore::SourceId, usize), u64> = BTreeMap::new();
    let mut scanned = 0u64;
    let mut stopped = 0u64;

    let chunks = day_chunks(window);
    let n_chunks = chunks.len();
    for chunk in chunks {
        let records = store.range(chunk);
        let mut digest = Fnv::new();
        digest.push_u64(records.len() as u64);
        for rec in records {
            digest.push_i64(rec.client_ts.0);
            digest.push_u64(u64::from(rec.source.0));
            digest.push_str(&rec.text);
        }
        let key = EvidenceKey {
            fingerprint: fp,
            start: chunk.start.0,
            end: chunk.end.0,
            digest: digest.finish(),
        };
        let day = match cache.l3.get(&key) {
            Some(stored) => {
                cache.stats.l3_hits += 1;
                stored.clone()
            }
            None => {
                cache.stats.l3_misses += 1;
                let mut inc = IncrementalL3::new(service_ids, cfg);
                inc.observe_batch(records);
                let (s, p) = inc.stats();
                let fresh = L3DayCounts {
                    citations: inc.citation_counts(),
                    scanned: s as u64,
                    stopped: p as u64,
                };
                cache.l3.insert(key, fresh.clone());
                fresh
            }
        };
        for (k, c) in day.citations {
            let slot = citations.entry(k).or_insert(0);
            *slot = slot.saturating_add(c);
        }
        scanned = scanned.saturating_add(day.scanned);
        stopped = stopped.saturating_add(day.stopped);
    }

    let mut detected = AppServiceModel::new();
    for (&(app, svc), &count) in &citations {
        if count >= cfg.min_citations {
            detected.insert(app, svc);
        }
    }
    let (hits, misses) = (
        cache.stats.l3_hits - hits_before,
        cache.stats.l3_misses - misses_before,
    );
    record(|r| {
        r.counter_add("cache.l3.hits", hits);
        r.counter_add("cache.l3.misses", misses);
        r.span_end(
            "window.l3",
            &[
                ("days", Field::from(n_chunks)),
                ("hits", Field::from(hits)),
                ("misses", Field::from(misses)),
                ("detected", Field::from(detected.len())),
            ],
        );
    });
    Ok(L3Result {
        detected,
        citations,
        stopped_logs: usize::try_from(stopped).unwrap_or(usize::MAX),
        scanned_logs: usize::try_from(scanned).unwrap_or(usize::MAX),
    })
}

/// Splits `window` at absolute day boundaries (partial edge chunks
/// allowed). Chunk addresses are absolute, so a chunk keeps its cache
/// key as the window slides.
fn day_chunks(window: TimeRange) -> Vec<TimeRange> {
    let mut chunks = Vec::new();
    let mut t = window.start;
    while t < window.end {
        let next = Millis((t.0.div_euclid(MS_PER_DAY) + 1).saturating_mul(MS_PER_DAY));
        let end = next.min(window.end);
        chunks.push(TimeRange::new(t, end));
        t = end;
    }
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn day_chunks_split_at_absolute_boundaries() {
        let w = TimeRange::new(Millis(MS_PER_DAY / 2), Millis(2 * MS_PER_DAY + 7));
        let chunks = day_chunks(w);
        assert_eq!(
            chunks,
            vec![
                TimeRange::new(Millis(MS_PER_DAY / 2), Millis(MS_PER_DAY)),
                TimeRange::new(Millis(MS_PER_DAY), Millis(2 * MS_PER_DAY)),
                TimeRange::new(Millis(2 * MS_PER_DAY), Millis(2 * MS_PER_DAY + 7)),
            ]
        );
        assert!(day_chunks(TimeRange::new(Millis(5), Millis(5))).is_empty());
    }

    #[test]
    fn aligned_window_chunks_exactly() {
        let w = TimeRange::new(Millis(MS_PER_DAY), Millis(3 * MS_PER_DAY));
        let chunks = day_chunks(w);
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0], TimeRange::day(1));
        assert_eq!(chunks[1], TimeRange::day(2));
    }
}
