//! Applications of a mined dependency model.
//!
//! §1.1 of the paper lists why dependency models are worth mining in
//! the first place: "a support for both manual and automated fault
//! localization … *fault detection*, *impact prediction* and service
//! *availability requirements determination*". This module turns a
//! mined [`AppServiceModel`] (directed, app → service with known
//! owners) into a graph answering exactly those questions:
//!
//! * [`DependencyGraph::impact_set`] — who is (transitively) affected
//!   if a component degrades (impact prediction);
//! * [`DependencyGraph::root_candidates`] — which components could
//!   explain a set of simultaneously failing ones (root-cause
//!   analysis);
//! * [`DependencyGraph::criticality`] — ranking components by how much
//!   of the landscape depends on them (availability requirements).

use crate::model::AppServiceModel;
use logdep_logstore::SourceId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A directed dependency graph over applications: an edge `a → b`
/// means `a` depends on (a service of) `b`.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DependencyGraph {
    /// Forward adjacency: dependencies of each app.
    deps: BTreeMap<SourceId, BTreeSet<SourceId>>,
    /// Reverse adjacency: dependents of each app.
    rdeps: BTreeMap<SourceId, BTreeSet<SourceId>>,
}

impl DependencyGraph {
    /// Builds the graph from a mined app→service model plus the
    /// service-owner mapping (`owners[i]` implements service `i`).
    /// Self-loops are dropped.
    pub fn from_app_service(model: &AppServiceModel, owners: &[SourceId]) -> Self {
        let mut g = Self::default();
        for (app, svc) in model.iter() {
            if let Some(&owner) = owners.get(svc) {
                g.add_edge(app, owner);
            }
        }
        g
    }

    /// Builds the graph from explicit directed edges.
    pub fn from_edges(edges: impl IntoIterator<Item = (SourceId, SourceId)>) -> Self {
        let mut g = Self::default();
        for (a, b) in edges {
            g.add_edge(a, b);
        }
        g
    }

    /// Adds a directed dependency edge (no-op for self-loops).
    pub fn add_edge(&mut self, from: SourceId, to: SourceId) {
        if from == to {
            return;
        }
        self.deps.entry(from).or_default().insert(to);
        self.rdeps.entry(to).or_default().insert(from);
        self.deps.entry(to).or_default();
        self.rdeps.entry(from).or_default();
    }

    /// All nodes.
    pub fn nodes(&self) -> impl Iterator<Item = SourceId> + '_ {
        self.deps.keys().copied()
    }

    /// Number of directed edges.
    pub fn n_edges(&self) -> usize {
        self.deps.values().map(BTreeSet::len).sum()
    }

    /// Direct dependencies of `app`.
    pub fn dependencies(&self, app: SourceId) -> impl Iterator<Item = SourceId> + '_ {
        self.deps.get(&app).into_iter().flatten().copied()
    }

    /// Direct dependents of `app`.
    pub fn dependents(&self, app: SourceId) -> impl Iterator<Item = SourceId> + '_ {
        self.rdeps.get(&app).into_iter().flatten().copied()
    }

    /// Impact prediction: every application that transitively depends
    /// on `failing` (excluding `failing` itself), i.e. everything a
    /// degradation could propagate to.
    pub fn impact_set(&self, failing: SourceId) -> BTreeSet<SourceId> {
        self.reach(failing, |g, n| {
            Box::new(g.rdeps.get(&n).into_iter().flatten().copied())
        })
    }

    /// Everything `app` transitively depends on — the components whose
    /// availability `app` requires.
    pub fn requirement_set(&self, app: SourceId) -> BTreeSet<SourceId> {
        self.reach(app, |g, n| {
            Box::new(g.deps.get(&n).into_iter().flatten().copied())
        })
    }

    fn reach(
        &self,
        start: SourceId,
        next: impl Fn(&Self, SourceId) -> Box<dyn Iterator<Item = SourceId> + '_>,
    ) -> BTreeSet<SourceId> {
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::from([start]);
        while let Some(n) = queue.pop_front() {
            for m in next(self, n) {
                if m != start && seen.insert(m) {
                    queue.push_back(m);
                }
            }
        }
        seen
    }

    /// Root-cause candidates for a set of simultaneously symptomatic
    /// applications: components (possibly symptomatic themselves) whose
    /// failure would explain *all* symptoms — i.e. every symptomatic
    /// app either is the candidate or transitively depends on it.
    /// Ranked by how few *extra* (non-symptomatic) apps they would also
    /// have taken down — the most parsimonious explanation first.
    pub fn root_candidates(&self, symptoms: &[SourceId]) -> Vec<(SourceId, usize)> {
        if symptoms.is_empty() {
            return Vec::new();
        }
        let symptom_set: BTreeSet<SourceId> = symptoms.iter().copied().collect();
        let mut candidates: Vec<(SourceId, usize)> = Vec::new();
        for node in self.nodes() {
            let impact = self.impact_set(node);
            let explains = symptom_set.iter().all(|s| *s == node || impact.contains(s));
            if explains {
                let collateral = impact.difference(&symptom_set).count();
                candidates.push((node, collateral));
            }
        }
        candidates.sort_by_key(|&(n, c)| (c, n));
        candidates
    }

    /// Criticality ranking: applications ordered by the size of their
    /// impact set, descending — the components whose availability
    /// requirements should be strictest.
    pub fn criticality(&self) -> Vec<(SourceId, usize)> {
        let mut v: Vec<(SourceId, usize)> = self
            .nodes()
            .map(|n| (n, self.impact_set(n).len()))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u32) -> SourceId {
        SourceId(i)
    }

    /// Diamond: 0 → 1 → 3, 0 → 2 → 3; plus isolated 4 → 0.
    fn diamond() -> DependencyGraph {
        DependencyGraph::from_edges([
            (s(0), s(1)),
            (s(0), s(2)),
            (s(1), s(3)),
            (s(2), s(3)),
            (s(4), s(0)),
        ])
    }

    #[test]
    fn impact_propagates_upstream() {
        let g = diamond();
        // If 3 fails, everyone who depends on it is affected.
        let impact = g.impact_set(s(3));
        assert_eq!(impact, BTreeSet::from([s(0), s(1), s(2), s(4)]));
        // A leaf dependent affects nobody.
        assert!(g.impact_set(s(4)).is_empty());
    }

    #[test]
    fn requirements_propagate_downstream() {
        let g = diamond();
        assert_eq!(
            g.requirement_set(s(4)),
            BTreeSet::from([s(0), s(1), s(2), s(3)])
        );
        assert!(g.requirement_set(s(3)).is_empty());
    }

    #[test]
    fn root_candidates_prefer_parsimony() {
        let g = diamond();
        // Symptoms: 0 and 1 are failing. Candidates that explain both:
        // 1 (0 depends on it, 1 is itself) and 3 (both depend on it).
        let cands = g.root_candidates(&[s(0), s(1)]);
        let names: Vec<SourceId> = cands.iter().map(|c| c.0).collect();
        assert!(names.contains(&s(1)));
        assert!(names.contains(&s(3)));
        assert!(!names.contains(&s(2)), "2 does not explain symptom 1");
        // 1 is more parsimonious (collateral {4}=1... impact of 1 is {0,4}
        // minus symptoms {0,1} → {4}; impact of 3 is {0,1,2,4} minus
        // symptoms → {2,4}); so 1 ranks first.
        assert_eq!(cands[0].0, s(1));
        assert!(cands[0].1 < cands.last().unwrap().1);
    }

    #[test]
    fn criticality_ranks_the_shared_backend_first() {
        let g = diamond();
        let ranking = g.criticality();
        assert_eq!(ranking[0].0, s(3), "shared sink must rank first");
        assert_eq!(ranking[0].1, 4);
        assert_eq!(ranking.last().unwrap().1, 0);
    }

    #[test]
    fn cycles_terminate() {
        let g = DependencyGraph::from_edges([(s(0), s(1)), (s(1), s(0)), (s(1), s(2))]);
        assert_eq!(g.impact_set(s(2)), BTreeSet::from([s(0), s(1)]));
        assert_eq!(g.requirement_set(s(0)), BTreeSet::from([s(1), s(2)]));
        // A node in a cycle does not report itself.
        assert!(!g.impact_set(s(0)).contains(&s(0)));
    }

    #[test]
    fn from_app_service_uses_owners() {
        let mut model = AppServiceModel::new();
        model.insert(s(0), 0); // app0 -> svc0 (owned by 7)
        model.insert(s(0), 1); // app0 -> svc1 (owned by 0: self, dropped)
        let owners = vec![s(7), s(0)];
        let g = DependencyGraph::from_app_service(&model, &owners);
        assert_eq!(g.n_edges(), 1);
        assert!(g.dependencies(s(0)).any(|d| d == s(7)));
    }

    #[test]
    fn empty_graph_and_empty_symptoms() {
        let g = DependencyGraph::default();
        assert_eq!(g.n_edges(), 0);
        assert!(g.root_candidates(&[]).is_empty());
        assert!(g.criticality().is_empty());
        assert!(g.impact_set(s(9)).is_empty());
    }
}
