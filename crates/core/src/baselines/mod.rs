//! Related-work baselines the paper positions itself against (§2.1).
//!
//! * [`agrawal`] — Agrawal et al.'s activity-period technique: "one
//!   builds histograms of delays and performs a χ² test to measure the
//!   deviation from a uniformly random distribution". Non-intrusive
//!   like L1, but needs a delay *window* assumption and degrades with
//!   parallelism.
//! * [`ensel`] — Ensel's neural-network approach: a supervised
//!   classifier over activity-correlation features. Works on very
//!   generic data, but — the paper's core criticism — "the neural
//!   network has to be trained in a supervised manner, a laborious
//!   process": it needs labeled pairs that only an expert (or, here,
//!   the simulator's ground truth) can provide.
//!
//! The `baselines` experiment binary compares both against technique
//! L1 on the same simulated day.

pub mod agrawal;
pub mod ensel;

pub use agrawal::{run_agrawal, AgrawalConfig, AgrawalOutcome, AgrawalResult};
pub use ensel::{pair_features, EnselClassifier, EnselConfig, PairFeatures};
