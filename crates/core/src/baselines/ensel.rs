//! The Ensel neural-network baseline.
//!
//! §2.1 of the paper: Ensel "attempted to decide on the existence of a
//! dependency between objects based on time series of measurements of
//! their activity only … the decision on dependency is taken by an
//! artificial neural network", which "has to be trained in a
//! supervised manner, a laborious and delicate process".
//!
//! This module reproduces that approach faithfully enough to make the
//! paper's criticism quantitative: a small feed-forward network over
//! activity-correlation features of a pair, trained on *labeled* pairs
//! (which only an expert — or the simulator's ground truth — can
//! supply) and evaluated on held-out pairs. The `baselines` experiment
//! binary runs the comparison.

use logdep_logstore::time::TimeRange;
use logdep_logstore::{LogStore, SourceId};
use logdep_stats::sampling::Sampler;
use serde::{Deserialize, Serialize};

/// Number of activity features per pair.
pub const N_FEATURES: usize = 4;

/// Feature vector of one application pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PairFeatures {
    /// `[corr_1min, corr_5min, co_activity_jaccard, near_fraction]`.
    pub values: [f64; N_FEATURES],
}

/// Configuration of feature extraction and training.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnselConfig {
    /// Hidden-layer width.
    pub hidden: usize,
    /// Training epochs (full passes over the labeled set).
    pub epochs: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// Weight-init and shuffling seed.
    pub seed: u64,
    /// "Near" radius (ms) for the burst-lag feature.
    pub near_ms: i64,
    /// Cap on sampled logs per feature computation.
    pub sample_size: usize,
}

impl Default for EnselConfig {
    fn default() -> Self {
        Self {
            hidden: 6,
            epochs: 400,
            learning_rate: 0.05,
            seed: 1,
            near_ms: 500,
            sample_size: 300,
        }
    }
}

/// Pearson correlation of two equal-length count series.
fn corr(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut num = 0.0;
    let mut dx = 0.0;
    let mut dy = 0.0;
    for i in 0..xs.len() {
        let a = xs[i] - mx;
        let b = ys[i] - my;
        num += a * b;
        dx += a * a;
        dy += b * b;
    }
    let denom = (dx * dy).sqrt();
    if denom <= 0.0 {
        0.0
    } else {
        num / denom
    }
}

/// Extracts the activity features of pair `(a, b)` over `range`.
pub fn pair_features(
    store: &LogStore,
    range: TimeRange,
    a: SourceId,
    b: SourceId,
    cfg: &EnselConfig,
) -> PairFeatures {
    let ta = store.timeline(a);
    let tb = store.timeline(b);
    let counts = |tl: &logdep_logstore::Timeline, bin: i64| -> Vec<f64> {
        tl.counts_per_bin(range, bin)
            .into_iter()
            .map(|c| c as f64)
            .collect()
    };
    let a1 = counts(ta, 60_000);
    let b1 = counts(tb, 60_000);
    let a5 = counts(ta, 300_000);
    let b5 = counts(tb, 300_000);
    let corr1 = corr(&a1, &b1);
    let corr5 = corr(&a5, &b5);

    // Co-activity Jaccard over 1-minute bins.
    let (mut both, mut either) = (0usize, 0usize);
    for i in 0..a1.len() {
        let (x, y) = (a1[i] > 0.0, b1[i] > 0.0);
        if x || y {
            either += 1;
            if x && y {
                both += 1;
            }
        }
    }
    let jaccard = if either == 0 {
        0.0
    } else {
        both as f64 / either as f64
    };

    // Fraction of B's logs with an A log within `near_ms`.
    let mut sampler = Sampler::from_seed(cfg.seed ^ (a.0 as u64) << 20 ^ b.0 as u64);
    let b_slot = tb.slice_in(range);
    let picks = sampler.subsample(b_slot, cfg.sample_size);
    let near = if picks.is_empty() {
        0.0
    } else {
        picks
            .iter()
            .filter(|&&t| ta.dist_to_nearest(t).is_some_and(|d| d <= cfg.near_ms))
            .count() as f64
            / picks.len() as f64
    };

    PairFeatures {
        values: [corr1, corr5, jaccard, near],
    }
}

/// A 1-hidden-layer feed-forward classifier (tanh hidden, sigmoid out).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnselClassifier {
    w1: Vec<Vec<f64>>, // hidden × features
    b1: Vec<f64>,
    w2: Vec<f64>, // hidden
    b2: f64,
}

impl EnselClassifier {
    /// Trains on labeled feature vectors by plain SGD with logistic
    /// loss. Deterministic in `cfg.seed`.
    pub fn train(samples: &[(PairFeatures, bool)], cfg: &EnselConfig) -> crate::Result<Self> {
        if samples.is_empty() {
            return Err(crate::MineError::NoData("training samples"));
        }
        if cfg.hidden == 0 {
            return Err(crate::MineError::InvalidConfig {
                name: "hidden",
                reason: "need at least one hidden unit".into(),
            });
        }
        let mut rng = Sampler::from_seed(cfg.seed ^ 0xe45e1);
        let mut init = || rng.unit() - 0.5;
        let mut net = Self {
            w1: (0..cfg.hidden)
                .map(|_| (0..N_FEATURES).map(|_| init()).collect())
                .collect(),
            b1: (0..cfg.hidden).map(|_| init()).collect(),
            w2: (0..cfg.hidden).map(|_| init()).collect(),
            b2: init(),
        };

        let mut order: Vec<usize> = (0..samples.len()).collect();
        for _ in 0..cfg.epochs {
            // Deterministic reshuffle each epoch.
            for i in (1..order.len()).rev() {
                order.swap(i, rng.index(i + 1));
            }
            for &idx in &order {
                let (f, label) = &samples[idx];
                net.sgd_step(&f.values, *label as u8 as f64, cfg.learning_rate);
            }
        }
        Ok(net)
    }

    fn forward(&self, x: &[f64; N_FEATURES]) -> (Vec<f64>, f64) {
        let hidden: Vec<f64> = self
            .w1
            .iter()
            .zip(&self.b1)
            .map(|(w, b)| {
                let z: f64 = w.iter().zip(x).map(|(wi, xi)| wi * xi).sum::<f64>() + b;
                z.tanh()
            })
            .collect();
        let z: f64 = self.w2.iter().zip(&hidden).map(|(w, h)| w * h).sum::<f64>() + self.b2;
        (hidden, 1.0 / (1.0 + (-z).exp()))
    }

    fn sgd_step(&mut self, x: &[f64; N_FEATURES], y: f64, lr: f64) {
        let (hidden, p) = self.forward(x);
        let delta_out = p - y; // dL/dz for logistic loss
        for (j, h) in hidden.iter().enumerate() {
            let grad_h = delta_out * self.w2[j] * (1.0 - h * h);
            self.w2[j] -= lr * delta_out * h;
            for (wi, xi) in self.w1[j].iter_mut().zip(x) {
                *wi -= lr * grad_h * xi;
            }
            self.b1[j] -= lr * grad_h;
        }
        self.b2 -= lr * delta_out;
    }

    /// Dependency probability for a feature vector.
    pub fn predict(&self, f: &PairFeatures) -> f64 {
        self.forward(&f.values).1
    }

    /// Hard decision at the 0.5 threshold.
    pub fn classify(&self, f: &PairFeatures) -> bool {
        self.predict(f) > 0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logdep_logstore::time::MS_PER_HOUR;
    use logdep_logstore::{LogRecord, Millis};

    fn feat(v: [f64; N_FEATURES]) -> PairFeatures {
        PairFeatures { values: v }
    }

    #[test]
    fn learns_a_separable_problem() {
        // Dependent pairs: high correlation and near fraction.
        let mut samples = Vec::new();
        for k in 0..40 {
            let e = (k % 7) as f64 / 100.0;
            samples.push((feat([0.8 - e, 0.85 - e, 0.7 - e, 0.9 - e]), true));
            samples.push((feat([0.05 + e, 0.1 + e, 0.2 + e, 0.02 + e]), false));
        }
        let net = EnselClassifier::train(&samples, &EnselConfig::default()).unwrap();
        assert!(net.classify(&feat([0.75, 0.8, 0.65, 0.85])));
        assert!(!net.classify(&feat([0.1, 0.12, 0.25, 0.03])));
        // Probabilities are calibrated to the right side of 0.5.
        assert!(net.predict(&feat([0.8, 0.85, 0.7, 0.9])) > 0.8);
        assert!(net.predict(&feat([0.0, 0.0, 0.0, 0.0])) < 0.2);
    }

    #[test]
    fn training_is_deterministic() {
        let samples = vec![
            (feat([0.9, 0.9, 0.8, 0.9]), true),
            (feat([0.1, 0.0, 0.1, 0.0]), false),
            (feat([0.8, 0.7, 0.9, 0.8]), true),
            (feat([0.0, 0.1, 0.2, 0.1]), false),
        ];
        let a = EnselClassifier::train(&samples, &EnselConfig::default()).unwrap();
        let b = EnselClassifier::train(&samples, &EnselConfig::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn error_cases() {
        assert!(EnselClassifier::train(&[], &EnselConfig::default()).is_err());
        let bad = EnselConfig {
            hidden: 0,
            ..EnselConfig::default()
        };
        assert!(EnselClassifier::train(&[(feat([0.0; 4]), true)], &bad).is_err());
    }

    #[test]
    fn features_reflect_coupling() {
        let mut store = LogStore::new();
        let a = store.registry.source("A");
        let b = store.registry.source("B");
        let c = store.registry.source("C");
        for i in 0..300i64 {
            let t = i * 11_000 % MS_PER_HOUR;
            store.push(LogRecord::minimal(a, Millis(t)));
            store.push(LogRecord::minimal(b, Millis(t + 80)));
            store.push(LogRecord::minimal(
                c,
                Millis((i * 9_973 + 1_234) % MS_PER_HOUR),
            ));
        }
        store.finalize();
        let range = TimeRange::new(Millis(0), Millis(MS_PER_HOUR));
        let cfg = EnselConfig::default();
        let coupled = pair_features(&store, range, a, b, &cfg);
        let unrelated = pair_features(&store, range, a, c, &cfg);
        assert!(
            coupled.values[3] > 0.95,
            "near fraction should be ~1: {coupled:?}"
        );
        assert!(
            coupled.values[3] > unrelated.values[3] + 0.3,
            "{coupled:?} vs {unrelated:?}"
        );
        assert!(coupled.values[2] >= unrelated.values[2]);
    }

    #[test]
    fn corr_helper_behaviour() {
        assert!((corr(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-12);
        assert!((corr(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]) + 1.0).abs() < 1e-12);
        assert_eq!(corr(&[1.0], &[1.0]), 0.0);
        assert_eq!(corr(&[1.0, 1.0], &[2.0, 3.0]), 0.0, "constant series");
    }
}
