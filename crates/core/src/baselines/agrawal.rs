//! The Agrawal et al. delay-histogram baseline.
//!
//! §2.1 of the paper: "for SQL queries executed during EJB
//! transactions, the delay between the start of a transaction and an
//! independent query appears to be completely random, while the delay
//! for a dependent query shows some typical values. To exploit this
//! feature, one builds histograms of delays and performs a χ² test to
//! measure the deviation from a uniformly random distribution."
//!
//! Applied to plain log streams: for an ordered pair `(A, B)`, the
//! delay from each log of `A` to the *next* log of `B` is collected
//! (within a window); dependent pairs concentrate their mass at the
//! service latency, independent pairs spread it.

use crate::model::PairModel;
use logdep_logstore::time::TimeRange;
use logdep_logstore::{LogStore, SourceId};
use logdep_stats::{chi2, sampling::Sampler};
use serde::{Deserialize, Serialize};

/// Parameters of the baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AgrawalConfig {
    /// Delay window (ms): delays beyond it are discarded.
    pub window_ms: i64,
    /// Histogram bins.
    pub bins: usize,
    /// Significance level of the χ² uniformity test.
    pub alpha: f64,
    /// Minimum in-window delays before testing a pair.
    pub min_delays: usize,
    /// Per-pair cap on sampled origin logs (keeps the cost bounded).
    pub sample_size: usize,
    /// Minimum logs of each app in the range to consider the pair.
    pub minlogs: usize,
    /// Sampling seed.
    pub seed: u64,
}

impl Default for AgrawalConfig {
    fn default() -> Self {
        Self {
            window_ms: 2_000,
            bins: 10,
            alpha: 0.001,
            min_delays: 40,
            sample_size: 400,
            minlogs: 50,
            seed: 0,
        }
    }
}

/// Per-ordered-pair outcome.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AgrawalOutcome {
    /// Initiating application.
    pub from: SourceId,
    /// Responding application.
    pub to: SourceId,
    /// χ² statistic against the uniform delay distribution.
    pub x2: f64,
    /// p-value with `bins − 1` degrees of freedom.
    pub p_value: f64,
    /// In-window delays observed.
    pub n_delays: usize,
    /// Decision.
    pub dependent: bool,
}

/// Result of a baseline run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AgrawalResult {
    /// Unordered pairs declared dependent.
    pub detected: PairModel,
    /// Ordered-pair details (only pairs with enough delays).
    pub outcomes: Vec<AgrawalOutcome>,
}

/// Runs the delay-histogram baseline over `range`.
pub fn run_agrawal(
    store: &LogStore,
    range: TimeRange,
    sources: &[SourceId],
    cfg: &AgrawalConfig,
) -> crate::Result<AgrawalResult> {
    if cfg.bins < 2 {
        return Err(crate::MineError::InvalidConfig {
            name: "bins",
            reason: "need at least two histogram bins".into(),
        });
    }
    if !(cfg.alpha > 0.0 && cfg.alpha < 1.0) {
        return Err(crate::MineError::InvalidConfig {
            name: "alpha",
            reason: format!("{} outside (0, 1)", cfg.alpha),
        });
    }

    let active: Vec<SourceId> = sources
        .iter()
        .copied()
        .filter(|&s| store.timeline(s).count_in(range) >= cfg.minlogs)
        .collect();

    let mut detected = PairModel::new();
    let mut outcomes = Vec::new();
    for &a in &active {
        let a_slot = store.timeline(a).slice_in(range);
        for &b in &active {
            if a == b {
                continue;
            }
            let mut sampler = Sampler::from_seed(cfg.seed ^ (a.0 as u64) << 24 ^ b.0 as u64);
            let origins = sampler.subsample(a_slot, cfg.sample_size);
            let b_tl = store.timeline(b);
            let mut hist = vec![0u32; cfg.bins];
            let mut n = 0usize;
            for &t in &origins {
                if let Some(d) = b_tl.dist_to_next(t) {
                    if d < cfg.window_ms {
                        let bin = (d * cfg.bins as i64 / cfg.window_ms) as usize;
                        hist[bin.min(cfg.bins - 1)] += 1;
                        n += 1;
                    }
                }
            }
            if n < cfg.min_delays {
                continue;
            }
            let expected = n as f64 / cfg.bins as f64;
            let x2: f64 = hist
                .iter()
                .map(|&o| {
                    let d = o as f64 - expected;
                    d * d / expected
                })
                .sum();
            let p_value = chi2::sf(x2, (cfg.bins - 1) as f64)?;
            let dependent = p_value <= cfg.alpha;
            if dependent {
                detected.insert(a, b);
            }
            outcomes.push(AgrawalOutcome {
                from: a,
                to: b,
                x2,
                p_value,
                n_delays: n,
                dependent,
            });
        }
    }
    Ok(AgrawalResult { detected, outcomes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use logdep_logstore::time::MS_PER_HOUR;
    use logdep_logstore::{LogRecord, Millis};

    /// A pair with a typical 150 ms latency plus an independent third app.
    fn stores() -> (LogStore, Vec<SourceId>) {
        let mut store = LogStore::new();
        let a = store.registry.source("A");
        let b = store.registry.source("B");
        let c = store.registry.source("C");
        for i in 0..400i64 {
            let t = i * 9_000 % MS_PER_HOUR + (i / 400) * 37;
            store.push(LogRecord::minimal(a, Millis(t)));
            store.push(LogRecord::minimal(b, Millis(t + 140 + i % 25)));
            store.push(LogRecord::minimal(
                c,
                Millis((i * 8_641 + 4_321) % MS_PER_HOUR),
            ));
        }
        store.finalize();
        (store, vec![a, b, c])
    }

    fn hour() -> TimeRange {
        TimeRange::new(Millis(0), Millis(MS_PER_HOUR))
    }

    #[test]
    fn detects_typical_delay_pair() {
        let (store, s) = stores();
        let res = run_agrawal(&store, hour(), &s, &AgrawalConfig::default()).unwrap();
        assert!(
            res.detected.contains(s[0], s[1]),
            "typical-delay pair missed: {:?}",
            res.outcomes
        );
    }

    #[test]
    fn independent_pair_not_flagged() {
        let (store, s) = stores();
        let res = run_agrawal(&store, hour(), &s, &AgrawalConfig::default()).unwrap();
        // C's delays to A (and vice versa) are spread over the window.
        let o = res.outcomes.iter().find(|o| o.from == s[2] && o.to == s[0]);
        if let Some(o) = o {
            assert!(!o.dependent, "independent pair flagged: {o:?}");
        }
        assert!(!res.detected.contains(s[0], s[2]));
    }

    #[test]
    fn minlogs_and_min_delays_gate() {
        let (store, s) = stores();
        let strict = AgrawalConfig {
            minlogs: 100_000,
            ..AgrawalConfig::default()
        };
        let res = run_agrawal(&store, hour(), &s, &strict).unwrap();
        assert!(res.outcomes.is_empty());
        assert!(res.detected.is_empty());
    }

    #[test]
    fn config_validation() {
        let (store, s) = stores();
        let bad = AgrawalConfig {
            bins: 1,
            ..AgrawalConfig::default()
        };
        assert!(run_agrawal(&store, hour(), &s, &bad).is_err());
        let bad = AgrawalConfig {
            alpha: 0.0,
            ..AgrawalConfig::default()
        };
        assert!(run_agrawal(&store, hour(), &s, &bad).is_err());
    }

    #[test]
    fn deterministic() {
        let (store, s) = stores();
        let a = run_agrawal(&store, hour(), &s, &AgrawalConfig::default()).unwrap();
        let b = run_agrawal(&store, hour(), &s, &AgrawalConfig::default()).unwrap();
        assert_eq!(a, b);
    }
}
